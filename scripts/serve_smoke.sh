#!/usr/bin/env bash
# CI smoke for `rock serve`: a real daemon process under overload.
#
# Scenario: queue capacity 4, 2 workers, deterministic quotas (burst 4,
# refill 0). The hammer throws 4 tenants x 3 jobs + one greedy tenant
# x 12 + one deliberately slow (trickling) client at it concurrently —
# >= 3x queue capacity. Required outcome, asserted below: every shed
# request got a *typed* rejection, every admitted job completed, the
# greedy tenant lost its over-budget tail to quota_exceeded, and both
# shutdown paths (Drain frame, SIGTERM) drain cleanly with exit 0.
set -euo pipefail
cd "$(dirname "$0")/.."

ROCK=${ROCK:-target/release/rock}
[ -x "$ROCK" ] || { echo "build first: cargo build --release ($ROCK missing)"; exit 1; }

WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$ROCK" gen streams "$WORK/streams.rkb"

start_daemon() {
  "$ROCK" serve --addr 127.0.0.1:0 --store "$WORK/store" --port-file "$WORK/port" \
    --queue 4 --workers 2 --quota-burst 4 --quota-refill 0 \
    >"$WORK/serve.log" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 100); do [ -s "$WORK/port" ] && break; sleep 0.1; done
  [ -s "$WORK/port" ] || { echo "daemon never bound"; cat "$WORK/serve.log"; exit 1; }
  ADDR=$(cat "$WORK/port")
  rm -f "$WORK/port"
}

echo "== overload + typed shedding + slow client =="
start_daemon
echo "daemon at $ADDR (pid $SERVE_PID)"
# hammer exits non-zero unless every admitted job reached Done and
# every response was typed; the greps re-assert the headline numbers.
"$ROCK" client "$ADDR" hammer --clients 4 --jobs 3 --over-quota 12 --burst 4 --slow \
  | tee "$WORK/hammer.log"
grep -q 'failed=0' "$WORK/hammer.log"
grep -q 'errors=0' "$WORK/hammer.log"
# burst 4 + refill 0: at least 8 of the greedy tenant's 12 are shed.
QUOTA=$(sed -n 's/.*quota_exceeded=\([0-9]*\).*/\1/p' "$WORK/hammer.log")
[ "$QUOTA" -ge 8 ] || { echo "expected >=8 quota rejections, saw $QUOTA"; exit 1; }

echo "== graceful drain via the wire =="
"$ROCK" client "$ADDR" drain
wait "$SERVE_PID"; CODE=$?; SERVE_PID=""
[ "$CODE" -eq 0 ] || { echo "drain exit code $CODE"; cat "$WORK/serve.log"; exit 1; }
grep -q 'drained cleanly' "$WORK/serve.log"

echo "== SIGTERM drains the restarted daemon (same store) =="
start_daemon
"$ROCK" client "$ADDR" submit "$WORK/streams.rkb" --wait >/dev/null
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"; CODE=$?; SERVE_PID=""
[ "$CODE" -eq 0 ] || { echo "SIGTERM exit code $CODE"; cat "$WORK/serve.log"; exit 1; }
grep -q 'drained cleanly' "$WORK/serve.log"

echo "serve smoke: OK"
