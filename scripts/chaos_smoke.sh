#!/usr/bin/env bash
# CI smoke for the self-healing artifact store, end to end through the
# CLI. A durable batch populates checkpoints (fsync at every commit
# point); we then damage the store three ways — truncate one artifact,
# strand a crash-style .art.tmp, plant a foreign file in a job dir —
# and `rock store scrub` must classify all three: the dry run reports
# exact per-class counts while touching nothing, the real scrub
# quarantines/sweeps and converges to clean, and a `--resume` rerun
# restores every healthy stage while recomputing only the quarantined
# one, exiting 0 throughout.
set -euo pipefail
cd "$(dirname "$0")/.."

ROCK=${ROCK:-target/release/rock}
[ -x "$ROCK" ] || { echo "build first: cargo build --release ($ROCK missing)"; exit 1; }

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
STORE="$WORK/store"

"$ROCK" gen streams "$WORK/streams.rkb"

echo "== durable cold batch: every stage computed and fsync-committed =="
"$ROCK" batch "$WORK/streams.rkb" --store "$STORE" --resume --durable --timings \
  | tee "$WORK/cold.log" >/dev/null
grep -q '0 stages restored' "$WORK/cold.log"

echo "== warm rerun restores all four stages =="
"$ROCK" batch "$WORK/streams.rkb" --store "$STORE" --resume --timings \
  | tee "$WORK/warm.log" >/dev/null
grep -q '4 stages restored' "$WORK/warm.log"

echo "== damage: truncate lifting.art, strand a tmp, plant an alien file =="
LIFT=$(find "$STORE" -name lifting.art)
[ -n "$LIFT" ] || { echo "no lifting.art in $STORE"; exit 1; }
JOBDIR=$(dirname "$LIFT")
truncate -s 21 "$LIFT"
printf 'half a commit' > "$JOBDIR/.analysis.art.tmp"
printf 'not ours' > "$JOBDIR/alien.bin"

echo "== dry run reports exact counts and touches nothing =="
"$ROCK" store scrub --store "$STORE" --dry-run | tee "$WORK/dry.log"
grep -q '1 corrupt quarantined, 1 tmp swept, 1 unknown quarantined, 0 io errors' "$WORK/dry.log"
[ -f "$LIFT" ] && [ -f "$JOBDIR/.analysis.art.tmp" ] && [ -f "$JOBDIR/alien.bin" ] \
  || { echo "dry run modified the store"; exit 1; }

echo "== real scrub quarantines and sweeps, then converges clean =="
"$ROCK" store scrub --store "$STORE" | tee "$WORK/scrub.log"
grep -q '1 corrupt quarantined, 1 tmp swept, 1 unknown quarantined, 0 io errors' "$WORK/scrub.log"
[ ! -f "$LIFT" ] || { echo "corrupt artifact still in place"; exit 1; }
[ ! -f "$JOBDIR/.analysis.art.tmp" ] || { echo "stale tmp survived scrub"; exit 1; }
[ -d "$STORE/.quarantine" ] || { echo "no quarantine directory"; exit 1; }
"$ROCK" store scrub --store "$STORE" | grep -q 'clean'

echo "== resume recomputes only the quarantined stage =="
"$ROCK" batch "$WORK/streams.rkb" --store "$STORE" --resume --timings \
  | tee "$WORK/resume.log" >/dev/null
grep -q '3 stages restored' "$WORK/resume.log"

echo "== and the next rerun is fully warm again =="
"$ROCK" batch "$WORK/streams.rkb" --store "$STORE" --resume --timings \
  | tee "$WORK/rewarm.log" >/dev/null
grep -q '4 stages restored' "$WORK/rewarm.log"

echo "chaos smoke: all assertions held"
