//! Umbrella crate re-exporting the Rock reproduction workspace.
pub use rock_analysis as analysis;
pub use rock_binary as binary;
pub use rock_budget as budget;
pub use rock_core as core;
pub use rock_graph as graph;
pub use rock_loader as loader;
pub use rock_minicpp as minicpp;
pub use rock_serve as serve;
pub use rock_slm as slm;
pub use rock_structural as structural;
pub use rock_supervisor as supervisor;
pub use rock_trace as trace;
pub use rock_vm as vm;
