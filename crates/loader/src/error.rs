use std::error::Error;
use std::fmt;

use rock_binary::{Addr, DecodeError};

/// An error produced while loading a binary image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadError {
    /// The image has no text section.
    NoTextSection,
    /// Disassembly of the text section failed.
    Decode(DecodeError),
    /// The text section does not begin with a function prologue.
    NoPrologueAtStart {
        /// Address of the first text byte.
        at: Addr,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::NoTextSection => write!(f, "image has no text section"),
            LoadError::Decode(e) => write!(f, "disassembly failed: {e}"),
            LoadError::NoPrologueAtStart { at } => {
                write!(f, "text section does not start with a function prologue at {at}")
            }
        }
    }
}

impl Error for LoadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for LoadError {
    fn from(e: DecodeError) -> Self {
        LoadError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert_eq!(LoadError::NoTextSection.to_string(), "image has no text section");
        let e = LoadError::from(DecodeError::Truncated { at: Addr::new(4) });
        assert!(e.to_string().contains("disassembly failed"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&LoadError::NoTextSection).is_none());
    }
}
