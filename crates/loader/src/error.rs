use std::error::Error;
use std::fmt;

use rock_binary::{Addr, DecodeError};

/// An error produced while loading a binary image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadError {
    /// The image has no text section.
    NoTextSection,
    /// Disassembly of the text section failed.
    Decode(DecodeError),
    /// The text section does not begin with a function prologue.
    NoPrologueAtStart {
        /// Address of the first text byte.
        at: Addr,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::NoTextSection => write!(f, "image has no text section"),
            LoadError::Decode(e) => write!(f, "disassembly failed: {e}"),
            LoadError::NoPrologueAtStart { at } => {
                write!(f, "text section does not start with a function prologue at {at}")
            }
        }
    }
}

impl Error for LoadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for LoadError {
    fn from(e: DecodeError) -> Self {
        LoadError::Decode(e)
    }
}

/// A non-fatal defect observed while loading an image.
///
/// Strict loading ([`LoadedBinary::load`](crate::LoadedBinary::load))
/// turns the fatal subset of these into [`LoadError`]s; lenient loading
/// ([`LoadedBinary::load_lenient`](crate::LoadedBinary::load_lenient))
/// records every defect here and degrades to a partial view instead —
/// the behavior a service ingesting arbitrary user-supplied binaries
/// needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadIssue {
    /// The image has no text section; the loaded view is empty.
    NoTextSection,
    /// Disassembly stopped early; the bytes from `at` on were discarded.
    TruncatedText {
        /// Address of the first undecodable byte.
        at: Addr,
        /// The decode failure that stopped the sweep.
        reason: DecodeError,
        /// Number of text bytes discarded.
        dropped_bytes: usize,
    },
    /// Instructions before the first function prologue were discarded.
    SkippedPrefix {
        /// Address of the first discarded instruction.
        at: Addr,
        /// Number of instructions discarded.
        instrs: usize,
    },
    /// A vtable candidate whose first word was not a function entry
    /// (truncated table, out-of-image pointer, or plain data) was
    /// rejected.
    RejectedVtableCandidate {
        /// The candidate's rodata address.
        at: Addr,
    },
}

impl fmt::Display for LoadIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadIssue::NoTextSection => write!(f, "image has no text section"),
            LoadIssue::TruncatedText { at, reason, dropped_bytes } => {
                write!(f, "text truncated at {at} ({reason}); dropped {dropped_bytes} bytes")
            }
            LoadIssue::SkippedPrefix { at, instrs } => {
                write!(f, "skipped {instrs} instructions before the first prologue at {at}")
            }
            LoadIssue::RejectedVtableCandidate { at } => {
                write!(f, "rejected vtable candidate at {at}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert_eq!(LoadError::NoTextSection.to_string(), "image has no text section");
        let e = LoadError::from(DecodeError::Truncated { at: Addr::new(4) });
        assert!(e.to_string().contains("disassembly failed"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&LoadError::NoTextSection).is_none());
    }
}
