//! Whole-image loading: function recovery + vtable discovery.

use std::collections::BTreeSet;
use std::fmt;

use rock_binary::{decode_instr, Addr, BinaryImage, Instr, SectionKind, WORD_SIZE};

use crate::{Cfg, DecodedInstr, Function, LoadError, LoadIssue, Vtable};

/// A fully loaded binary: the image plus recovered functions and vtables.
///
/// Built by [`LoadedBinary::load`] (strict) or
/// [`LoadedBinary::load_lenient`] (degrading); this is the input type of
/// the Rock structural and behavioral analyses.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadedBinary {
    image: BinaryImage,
    functions: Vec<Function>,
    vtables: Vec<Vtable>,
    issues: Vec<LoadIssue>,
}

impl LoadedBinary {
    /// Loads an image: disassembles the text section, recovers function
    /// boundaries from `enter` prologues, and discovers vtables in rodata.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] if the image has no text section or the text
    /// bytes fail to disassemble.
    pub fn load(image: BinaryImage) -> Result<LoadedBinary, LoadError> {
        let text = image.section(SectionKind::Text).ok_or(LoadError::NoTextSection)?;

        // Linear sweep.
        let mut decoded: Vec<DecodedInstr> = Vec::new();
        let mut pos = 0usize;
        let bytes = text.bytes();
        while pos < bytes.len() {
            let addr = text.base() + pos as u64;
            let (instr, len) = decode_instr(&bytes[pos..], addr)?;
            decoded.push(DecodedInstr { addr, instr, len });
            pos += len;
        }

        if let Some(first) = decoded.first() {
            if !matches!(first.instr, Instr::Enter { .. }) {
                return Err(LoadError::NoPrologueAtStart { at: first.addr });
            }
        }
        let functions = split_functions(&decoded);
        let mut issues = Vec::new();
        let vtables = discover_vtables(&image, &functions, &decoded, &mut issues);
        Ok(LoadedBinary { image, functions, vtables, issues })
    }

    /// Loads an image, degrading around defects instead of erroring.
    ///
    /// Never fails: undecodable text is truncated at the first bad byte,
    /// instructions before the first prologue are discarded, a missing
    /// text section yields an empty view, and bad vtable candidates are
    /// rejected individually — each defect is recorded as a [`LoadIssue`]
    /// retrievable via [`LoadedBinary::issues`].
    ///
    /// On a well-formed image this returns exactly what [`LoadedBinary::load`]
    /// returns (and no issues besides any rejected vtable candidates,
    /// which strict loading records identically).
    pub fn load_lenient(image: BinaryImage) -> LoadedBinary {
        let mut issues = Vec::new();
        let Some(text) = image.section(SectionKind::Text) else {
            issues.push(LoadIssue::NoTextSection);
            return LoadedBinary { image, functions: Vec::new(), vtables: Vec::new(), issues };
        };

        // Linear sweep; stop at the first undecodable byte.
        let mut decoded: Vec<DecodedInstr> = Vec::new();
        let mut pos = 0usize;
        let bytes = text.bytes();
        while pos < bytes.len() {
            let addr = text.base() + pos as u64;
            match decode_instr(&bytes[pos..], addr) {
                Ok((instr, len)) => {
                    decoded.push(DecodedInstr { addr, instr, len });
                    pos += len;
                }
                Err(reason) => {
                    issues.push(LoadIssue::TruncatedText {
                        at: addr,
                        reason,
                        dropped_bytes: bytes.len() - pos,
                    });
                    break;
                }
            }
        }

        // Discard anything before the first prologue.
        let first_enter = decoded.iter().position(|d| matches!(d.instr, Instr::Enter { .. }));
        let body = match first_enter {
            Some(0) => decoded,
            Some(k) => {
                issues.push(LoadIssue::SkippedPrefix { at: decoded[0].addr, instrs: k });
                decoded.split_off(k)
            }
            None => {
                if let Some(first) = decoded.first() {
                    issues.push(LoadIssue::SkippedPrefix { at: first.addr, instrs: decoded.len() });
                }
                Vec::new()
            }
        };

        let functions = split_functions(&body);
        let vtables = discover_vtables(&image, &functions, &body, &mut issues);
        LoadedBinary { image, functions, vtables, issues }
    }

    /// Non-fatal defects recorded while loading (always empty for a
    /// strict load of a well-formed image, except rejected vtable
    /// candidates which both paths record).
    pub fn issues(&self) -> &[LoadIssue] {
        &self.issues
    }

    /// The underlying image.
    pub fn image(&self) -> &BinaryImage {
        &self.image
    }

    /// Recovered functions, sorted by entry address.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// The function whose entry is exactly `addr`.
    pub fn function_at(&self, addr: Addr) -> Option<&Function> {
        self.functions.binary_search_by_key(&addr, Function::entry).ok().map(|i| &self.functions[i])
    }

    /// The function containing `addr`.
    pub fn function_containing(&self, addr: Addr) -> Option<&Function> {
        self.functions.iter().find(|f| f.contains(addr))
    }

    /// Discovered vtables (binary types), sorted by address.
    pub fn vtables(&self) -> &[Vtable] {
        &self.vtables
    }

    /// The vtable at `addr`.
    pub fn vtable_at(&self, addr: Addr) -> Option<&Vtable> {
        self.vtables.binary_search_by_key(&addr, Vtable::addr).ok().map(|i| &self.vtables[i])
    }

    /// All vtables containing `function` in some slot.
    pub fn vtables_containing(&self, function: Addr) -> Vec<&Vtable> {
        self.vtables.iter().filter(|vt| vt.slots().contains(&function)).collect()
    }

    /// Builds the CFG of `function`.
    pub fn cfg_of(&self, function: &Function) -> Cfg {
        Cfg::build(function)
    }
}

impl fmt::Display for LoadedBinary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "loaded binary: {} functions, {} vtables",
            self.functions.len(),
            self.vtables.len()
        )
    }
}

/// Splits a decoded instruction stream into functions at `enter`
/// prologues. The stream must start with an `enter` (or be empty) —
/// both loaders guarantee that.
fn split_functions(decoded: &[DecodedInstr]) -> Vec<Function> {
    let mut functions = Vec::new();
    if !decoded.is_empty() {
        let mut start = 0usize;
        for i in 1..=decoded.len() {
            let is_boundary = i == decoded.len() || matches!(decoded[i].instr, Instr::Enter { .. });
            if is_boundary {
                let body = decoded[start..i].to_vec();
                functions.push(Function::new(body[0].addr, body));
                start = i;
            }
        }
    }
    functions
}

/// Vtable discovery (§3.2): candidate rodata addresses referenced from
/// code, scanned for runs of function-entry pointers. Candidates that
/// yield no valid slot (truncated tables, out-of-image pointers, plain
/// data) are rejected individually and recorded in `issues`.
fn discover_vtables(
    image: &BinaryImage,
    functions: &[Function],
    decoded: &[DecodedInstr],
    issues: &mut Vec<LoadIssue>,
) -> Vec<Vtable> {
    let Some(rodata) = image.section(SectionKind::RoData) else {
        return Vec::new();
    };
    let entries: BTreeSet<Addr> = functions.iter().map(Function::entry).collect();

    // Candidate table starts: immediates in code that point into rodata.
    let mut candidates: BTreeSet<Addr> = BTreeSet::new();
    for d in decoded {
        if let Instr::MovImm { imm, .. } = d.instr {
            let a = Addr::new(imm);
            if rodata.contains(a) && a.value().is_multiple_of(WORD_SIZE) {
                candidates.insert(a);
            }
        }
    }

    let cand_list: Vec<Addr> = candidates.iter().copied().collect();
    let mut vtables = Vec::new();
    for (i, &start) in cand_list.iter().enumerate() {
        let limit = cand_list.get(i + 1).copied().unwrap_or(rodata.end());
        let mut slots = Vec::new();
        let mut cur = start;
        while cur < limit {
            match rodata.read_word(cur) {
                Some(w) if entries.contains(&Addr::new(w)) => {
                    slots.push(Addr::new(w));
                    cur += WORD_SIZE;
                }
                _ => break,
            }
        }
        if slots.is_empty() {
            issues.push(LoadIssue::RejectedVtableCandidate { at: start });
        } else {
            vtables.push(Vtable::new(start, slots));
        }
    }
    vtables
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_binary::{ImageBuilder, Reg, Section};

    /// Two classes; B extends A (2 slots), ctors reference the vtables.
    fn two_class_image() -> (BinaryImage, Vec<Addr>) {
        let mut b = ImageBuilder::new();
        let m0 = b.begin_function("A::m0");
        b.push(Instr::Enter { frame: 0 });
        b.push(Instr::Ret);
        b.end_function();
        let m1 = b.begin_function("B::m1");
        b.push(Instr::Enter { frame: 0 });
        b.push(Instr::Nop);
        b.push(Instr::Ret);
        b.end_function();
        let vt_a = b.add_vtable("vtable for A", vec![m0]);
        let vt_b = b.add_vtable("vtable for B", vec![m0, m1]);
        b.begin_function("A::ctor");
        b.push(Instr::Enter { frame: 0 });
        b.push_mov_vtable_addr(Reg::R7, vt_a);
        b.push(Instr::Store { base: Reg::R0, offset: 0, src: Reg::R7 });
        b.push(Instr::Ret);
        b.end_function();
        b.begin_function("B::ctor");
        b.push(Instr::Enter { frame: 0 });
        b.push_mov_vtable_addr(Reg::R7, vt_b);
        b.push(Instr::Store { base: Reg::R0, offset: 0, src: Reg::R7 });
        b.push(Instr::Ret);
        b.end_function();
        let (mut image, layout) = b.finish_with_layout();
        image.strip();
        let addrs = vec![layout.vtable(vt_a), layout.vtable(vt_b)];
        (image, addrs)
    }

    #[test]
    fn recovers_functions_and_vtables() {
        let (image, vt_addrs) = two_class_image();
        let loaded = LoadedBinary::load(image).unwrap();
        assert_eq!(loaded.functions().len(), 4);
        assert_eq!(loaded.vtables().len(), 2);
        assert_eq!(loaded.vtables()[0].addr(), vt_addrs[0]);
        assert_eq!(loaded.vtables()[1].addr(), vt_addrs[1]);
        assert_eq!(loaded.vtables()[0].len(), 1);
        assert_eq!(loaded.vtables()[1].len(), 2);
        // Shared slot 0 (inherited implementation).
        assert_eq!(loaded.vtables()[0].slots()[0], loaded.vtables()[1].slots()[0]);
    }

    #[test]
    fn function_lookup() {
        let (image, _) = two_class_image();
        let loaded = LoadedBinary::load(image).unwrap();
        let f0 = &loaded.functions()[0];
        assert_eq!(loaded.function_at(f0.entry()).unwrap().entry(), f0.entry());
        assert!(loaded.function_at(f0.entry() + 1).is_none());
        assert!(loaded.function_containing(f0.entry() + 1).is_some());
        let last = loaded.functions().last().unwrap();
        assert!(loaded.function_containing(last.end()).is_none());
    }

    #[test]
    fn vtable_membership() {
        let (image, _) = two_class_image();
        let loaded = LoadedBinary::load(image).unwrap();
        let shared = loaded.vtables()[0].slots()[0];
        assert_eq!(loaded.vtables_containing(shared).len(), 2);
        let own = loaded.vtables()[1].slots()[1];
        assert_eq!(loaded.vtables_containing(own).len(), 1);
        assert!(loaded.vtable_at(loaded.vtables()[0].addr()).is_some());
        assert!(loaded.vtable_at(Addr::new(1)).is_none());
    }

    #[test]
    fn unreferenced_tables_are_invisible() {
        // A vtable never mentioned in code is not discovered (mirrors real
        // scanners needing an anchor).
        let mut b = ImageBuilder::new();
        let f = b.begin_function("f");
        b.push(Instr::Enter { frame: 0 });
        b.push(Instr::Ret);
        b.end_function();
        b.add_vtable("orphan", vec![f]);
        let mut image = b.finish();
        image.strip();
        let loaded = LoadedBinary::load(image).unwrap();
        assert!(loaded.vtables().is_empty());
    }

    #[test]
    fn rodata_noise_rejected() {
        let mut b = ImageBuilder::new();
        let f = b.begin_function("f");
        b.push(Instr::Enter { frame: 0 });
        b.push(Instr::Ret);
        b.end_function();
        // Noise blob made of huge values, referenced from code as if data.
        b.add_rodata_blob(0, 0xfff0_0000_0000_0001u64.to_le_bytes().to_vec());
        let vt = b.add_vtable("vt", vec![f]);
        b.begin_function("g");
        b.push(Instr::Enter { frame: 0 });
        b.push_mov_vtable_addr(Reg::R1, vt);
        b.push(Instr::Ret);
        b.end_function();
        let mut image = b.finish();
        image.strip();
        let loaded = LoadedBinary::load(image).unwrap();
        assert_eq!(loaded.vtables().len(), 1);
        assert_eq!(loaded.vtables()[0].len(), 1);
    }

    #[test]
    fn empty_image_fails() {
        let image = BinaryImage::new(vec![]);
        assert_eq!(LoadedBinary::load(image), Err(LoadError::NoTextSection));
    }

    #[test]
    fn display() {
        let (image, _) = two_class_image();
        let loaded = LoadedBinary::load(image).unwrap();
        assert!(loaded.to_string().contains("4 functions"));
    }

    #[test]
    fn lenient_matches_strict_on_clean_images() {
        let (image, _) = two_class_image();
        let strict = LoadedBinary::load(image.clone()).unwrap();
        let lenient = LoadedBinary::load_lenient(image);
        assert_eq!(strict, lenient);
        assert!(strict.issues().is_empty());
    }

    #[test]
    fn lenient_tolerates_empty_images() {
        let loaded = LoadedBinary::load_lenient(BinaryImage::new(vec![]));
        assert!(loaded.functions().is_empty());
        assert!(loaded.vtables().is_empty());
        assert_eq!(loaded.issues(), &[LoadIssue::NoTextSection]);
    }

    /// Rebuilds `image` with one section's bytes replaced.
    fn with_section_bytes(image: &BinaryImage, kind: SectionKind, bytes: Vec<u8>) -> BinaryImage {
        let base = image.section(kind).unwrap().base();
        let mut sections: Vec<Section> =
            image.sections().iter().filter(|s| s.kind() != kind).cloned().collect();
        sections.push(Section::new(kind, base, bytes));
        BinaryImage::new(sections)
    }

    #[test]
    fn lenient_truncates_undecodable_text() {
        let (image, _) = two_class_image();
        // Append garbage to the text section: strict errors, lenient
        // truncates and keeps every function decoded before the garbage.
        let strict_clean = LoadedBinary::load(image.clone()).unwrap();
        let mut bytes = image.section(SectionKind::Text).unwrap().bytes().to_vec();
        bytes.extend([0xff; 7]);
        let corrupted = with_section_bytes(&image, SectionKind::Text, bytes);
        assert!(matches!(LoadedBinary::load(corrupted.clone()), Err(LoadError::Decode(_))));
        let lenient = LoadedBinary::load_lenient(corrupted);
        assert_eq!(lenient.functions().len(), strict_clean.functions().len());
        assert_eq!(lenient.vtables().len(), strict_clean.vtables().len());
        assert!(lenient
            .issues()
            .iter()
            .any(|i| matches!(i, LoadIssue::TruncatedText { dropped_bytes: 7, .. })));
    }

    #[test]
    fn lenient_skips_pre_prologue_instructions() {
        // An image whose text starts with stray non-prologue code: a
        // 1-byte `ret` prepended before the first `enter`.
        let mut b = ImageBuilder::new();
        b.begin_function("f");
        b.push(Instr::Enter { frame: 0 });
        b.push(Instr::Ret);
        b.end_function();
        let mut image = b.finish();
        image.strip();
        let mut bytes = vec![0x02];
        bytes.extend_from_slice(image.section(SectionKind::Text).unwrap().bytes());
        let shifted = with_section_bytes(&image, SectionKind::Text, bytes);
        assert!(matches!(
            LoadedBinary::load(shifted.clone()),
            Err(LoadError::NoPrologueAtStart { .. })
        ));
        let lenient = LoadedBinary::load_lenient(shifted);
        assert_eq!(lenient.functions().len(), 1);
        assert!(lenient
            .issues()
            .iter()
            .any(|i| matches!(i, LoadIssue::SkippedPrefix { instrs: 1, .. })));
    }

    #[test]
    fn rejected_vtable_candidates_are_recorded() {
        // Corrupt vtable A's only slot: the candidate at its address no
        // longer starts with a function entry, so it is rejected — and
        // recorded, on both the strict and the lenient path.
        let (image, vt_addrs) = two_class_image();
        let rodata = image.section(SectionKind::RoData).unwrap();
        let mut bytes = rodata.bytes().to_vec();
        let off = (vt_addrs[0].value() - rodata.base().value()) as usize;
        bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let patched = with_section_bytes(&image, SectionKind::RoData, bytes);
        for loaded in
            [LoadedBinary::load(patched.clone()).unwrap(), LoadedBinary::load_lenient(patched)]
        {
            assert_eq!(loaded.vtables().len(), 1, "only B's table survives");
            assert!(loaded
                .issues()
                .iter()
                .any(|i| *i == LoadIssue::RejectedVtableCandidate { at: vt_addrs[0] }));
        }
    }
}
