//! Whole-image loading: function recovery + vtable discovery.

use std::collections::BTreeSet;
use std::fmt;

use rock_binary::{decode_instr, Addr, BinaryImage, Instr, SectionKind, WORD_SIZE};

use crate::{Cfg, DecodedInstr, Function, LoadError, Vtable};

/// A fully loaded binary: the image plus recovered functions and vtables.
///
/// Built by [`LoadedBinary::load`]; this is the input type of the Rock
/// structural and behavioral analyses.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadedBinary {
    image: BinaryImage,
    functions: Vec<Function>,
    vtables: Vec<Vtable>,
}

impl LoadedBinary {
    /// Loads an image: disassembles the text section, recovers function
    /// boundaries from `enter` prologues, and discovers vtables in rodata.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] if the image has no text section or the text
    /// bytes fail to disassemble.
    pub fn load(image: BinaryImage) -> Result<LoadedBinary, LoadError> {
        let text = image.section(SectionKind::Text).ok_or(LoadError::NoTextSection)?;

        // Linear sweep.
        let mut decoded: Vec<DecodedInstr> = Vec::new();
        let mut pos = 0usize;
        let bytes = text.bytes();
        while pos < bytes.len() {
            let addr = text.base() + pos as u64;
            let (instr, len) = decode_instr(&bytes[pos..], addr)?;
            decoded.push(DecodedInstr { addr, instr, len });
            pos += len;
        }

        // Function boundaries: every `enter` begins a function.
        let mut functions = Vec::new();
        if !decoded.is_empty() {
            if !matches!(decoded[0].instr, Instr::Enter { .. }) {
                return Err(LoadError::NoPrologueAtStart { at: decoded[0].addr });
            }
            let mut start = 0usize;
            for i in 1..=decoded.len() {
                let is_boundary =
                    i == decoded.len() || matches!(decoded[i].instr, Instr::Enter { .. });
                if is_boundary {
                    let body = decoded[start..i].to_vec();
                    functions.push(Function::new(body[0].addr, body));
                    start = i;
                }
            }
        }

        let vtables = discover_vtables(&image, &functions, &decoded);
        Ok(LoadedBinary { image, functions, vtables })
    }

    /// The underlying image.
    pub fn image(&self) -> &BinaryImage {
        &self.image
    }

    /// Recovered functions, sorted by entry address.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// The function whose entry is exactly `addr`.
    pub fn function_at(&self, addr: Addr) -> Option<&Function> {
        self.functions.binary_search_by_key(&addr, Function::entry).ok().map(|i| &self.functions[i])
    }

    /// The function containing `addr`.
    pub fn function_containing(&self, addr: Addr) -> Option<&Function> {
        self.functions.iter().find(|f| f.contains(addr))
    }

    /// Discovered vtables (binary types), sorted by address.
    pub fn vtables(&self) -> &[Vtable] {
        &self.vtables
    }

    /// The vtable at `addr`.
    pub fn vtable_at(&self, addr: Addr) -> Option<&Vtable> {
        self.vtables.binary_search_by_key(&addr, Vtable::addr).ok().map(|i| &self.vtables[i])
    }

    /// All vtables containing `function` in some slot.
    pub fn vtables_containing(&self, function: Addr) -> Vec<&Vtable> {
        self.vtables.iter().filter(|vt| vt.slots().contains(&function)).collect()
    }

    /// Builds the CFG of `function`.
    pub fn cfg_of(&self, function: &Function) -> Cfg {
        Cfg::build(function)
    }
}

impl fmt::Display for LoadedBinary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "loaded binary: {} functions, {} vtables",
            self.functions.len(),
            self.vtables.len()
        )
    }
}

/// Vtable discovery (§3.2): candidate rodata addresses referenced from
/// code, scanned for runs of function-entry pointers.
fn discover_vtables(
    image: &BinaryImage,
    functions: &[Function],
    decoded: &[DecodedInstr],
) -> Vec<Vtable> {
    let Some(rodata) = image.section(SectionKind::RoData) else {
        return Vec::new();
    };
    let entries: BTreeSet<Addr> = functions.iter().map(Function::entry).collect();

    // Candidate table starts: immediates in code that point into rodata.
    let mut candidates: BTreeSet<Addr> = BTreeSet::new();
    for d in decoded {
        if let Instr::MovImm { imm, .. } = d.instr {
            let a = Addr::new(imm);
            if rodata.contains(a) && a.value().is_multiple_of(WORD_SIZE) {
                candidates.insert(a);
            }
        }
    }

    let cand_list: Vec<Addr> = candidates.iter().copied().collect();
    let mut vtables = Vec::new();
    for (i, &start) in cand_list.iter().enumerate() {
        let limit = cand_list.get(i + 1).copied().unwrap_or(rodata.end());
        let mut slots = Vec::new();
        let mut cur = start;
        while cur < limit {
            match rodata.read_word(cur) {
                Some(w) if entries.contains(&Addr::new(w)) => {
                    slots.push(Addr::new(w));
                    cur += WORD_SIZE;
                }
                _ => break,
            }
        }
        if !slots.is_empty() {
            vtables.push(Vtable::new(start, slots));
        }
    }
    vtables
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_binary::{ImageBuilder, Reg};

    /// Two classes; B extends A (2 slots), ctors reference the vtables.
    fn two_class_image() -> (BinaryImage, Vec<Addr>) {
        let mut b = ImageBuilder::new();
        let m0 = b.begin_function("A::m0");
        b.push(Instr::Enter { frame: 0 });
        b.push(Instr::Ret);
        b.end_function();
        let m1 = b.begin_function("B::m1");
        b.push(Instr::Enter { frame: 0 });
        b.push(Instr::Nop);
        b.push(Instr::Ret);
        b.end_function();
        let vt_a = b.add_vtable("vtable for A", vec![m0]);
        let vt_b = b.add_vtable("vtable for B", vec![m0, m1]);
        b.begin_function("A::ctor");
        b.push(Instr::Enter { frame: 0 });
        b.push_mov_vtable_addr(Reg::R7, vt_a);
        b.push(Instr::Store { base: Reg::R0, offset: 0, src: Reg::R7 });
        b.push(Instr::Ret);
        b.end_function();
        b.begin_function("B::ctor");
        b.push(Instr::Enter { frame: 0 });
        b.push_mov_vtable_addr(Reg::R7, vt_b);
        b.push(Instr::Store { base: Reg::R0, offset: 0, src: Reg::R7 });
        b.push(Instr::Ret);
        b.end_function();
        let (mut image, layout) = b.finish_with_layout();
        image.strip();
        let addrs = vec![layout.vtable(vt_a), layout.vtable(vt_b)];
        (image, addrs)
    }

    #[test]
    fn recovers_functions_and_vtables() {
        let (image, vt_addrs) = two_class_image();
        let loaded = LoadedBinary::load(image).unwrap();
        assert_eq!(loaded.functions().len(), 4);
        assert_eq!(loaded.vtables().len(), 2);
        assert_eq!(loaded.vtables()[0].addr(), vt_addrs[0]);
        assert_eq!(loaded.vtables()[1].addr(), vt_addrs[1]);
        assert_eq!(loaded.vtables()[0].len(), 1);
        assert_eq!(loaded.vtables()[1].len(), 2);
        // Shared slot 0 (inherited implementation).
        assert_eq!(loaded.vtables()[0].slots()[0], loaded.vtables()[1].slots()[0]);
    }

    #[test]
    fn function_lookup() {
        let (image, _) = two_class_image();
        let loaded = LoadedBinary::load(image).unwrap();
        let f0 = &loaded.functions()[0];
        assert_eq!(loaded.function_at(f0.entry()).unwrap().entry(), f0.entry());
        assert!(loaded.function_at(f0.entry() + 1).is_none());
        assert!(loaded.function_containing(f0.entry() + 1).is_some());
        let last = loaded.functions().last().unwrap();
        assert!(loaded.function_containing(last.end()).is_none());
    }

    #[test]
    fn vtable_membership() {
        let (image, _) = two_class_image();
        let loaded = LoadedBinary::load(image).unwrap();
        let shared = loaded.vtables()[0].slots()[0];
        assert_eq!(loaded.vtables_containing(shared).len(), 2);
        let own = loaded.vtables()[1].slots()[1];
        assert_eq!(loaded.vtables_containing(own).len(), 1);
        assert!(loaded.vtable_at(loaded.vtables()[0].addr()).is_some());
        assert!(loaded.vtable_at(Addr::new(1)).is_none());
    }

    #[test]
    fn unreferenced_tables_are_invisible() {
        // A vtable never mentioned in code is not discovered (mirrors real
        // scanners needing an anchor).
        let mut b = ImageBuilder::new();
        let f = b.begin_function("f");
        b.push(Instr::Enter { frame: 0 });
        b.push(Instr::Ret);
        b.end_function();
        b.add_vtable("orphan", vec![f]);
        let mut image = b.finish();
        image.strip();
        let loaded = LoadedBinary::load(image).unwrap();
        assert!(loaded.vtables().is_empty());
    }

    #[test]
    fn rodata_noise_rejected() {
        let mut b = ImageBuilder::new();
        let f = b.begin_function("f");
        b.push(Instr::Enter { frame: 0 });
        b.push(Instr::Ret);
        b.end_function();
        // Noise blob made of huge values, referenced from code as if data.
        b.add_rodata_blob(0, 0xfff0_0000_0000_0001u64.to_le_bytes().to_vec());
        let vt = b.add_vtable("vt", vec![f]);
        b.begin_function("g");
        b.push(Instr::Enter { frame: 0 });
        b.push_mov_vtable_addr(Reg::R1, vt);
        b.push(Instr::Ret);
        b.end_function();
        let mut image = b.finish();
        image.strip();
        let loaded = LoadedBinary::load(image).unwrap();
        assert_eq!(loaded.vtables().len(), 1);
        assert_eq!(loaded.vtables()[0].len(), 1);
    }

    #[test]
    fn empty_image_fails() {
        let image = BinaryImage::new(vec![]);
        assert_eq!(LoadedBinary::load(image), Err(LoadError::NoTextSection));
    }

    #[test]
    fn display() {
        let (image, _) = two_class_image();
        let loaded = LoadedBinary::load(image).unwrap();
        assert!(loaded.to_string().contains("4 functions"));
    }
}
