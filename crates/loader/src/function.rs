use std::fmt;

use rock_binary::{Addr, Instr};

/// One decoded instruction with its address and encoded length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodedInstr {
    /// Address of the first byte.
    pub addr: Addr,
    /// The decoded instruction.
    pub instr: Instr,
    /// Encoded length in bytes.
    pub len: usize,
}

impl DecodedInstr {
    /// Address of the next instruction (fall-through successor).
    pub fn next_addr(&self) -> Addr {
        self.addr + self.len as u64
    }
}

impl fmt::Display for DecodedInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.addr, self.instr)
    }
}

/// A recovered function: entry address plus its disassembly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    entry: Addr,
    instrs: Vec<DecodedInstr>,
}

impl Function {
    /// Creates a function from its disassembly.
    ///
    /// # Panics
    ///
    /// Panics if `instrs` is empty or the first instruction's address is
    /// not `entry`.
    pub fn new(entry: Addr, instrs: Vec<DecodedInstr>) -> Self {
        assert!(!instrs.is_empty(), "function without instructions");
        assert_eq!(instrs[0].addr, entry, "first instruction must sit at entry");
        Function { entry, instrs }
    }

    /// The entry address (what call targets and vtable slots point at).
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// One-past-the-end address.
    pub fn end(&self) -> Addr {
        // The constructor guarantees at least one instruction; degrade to
        // a zero-extent function rather than panic if that is ever broken.
        match self.instrs.last() {
            Some(last) => last.next_addr(),
            None => self.entry,
        }
    }

    /// The disassembled instructions, in address order.
    pub fn instrs(&self) -> &[DecodedInstr] {
        &self.instrs
    }

    /// Index of the instruction at `addr`, if it is an instruction start.
    pub fn index_of(&self, addr: Addr) -> Option<usize> {
        self.instrs.binary_search_by_key(&addr, |d| d.addr).ok()
    }

    /// Returns `true` if `addr` lies within the function's extent.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.entry && addr < self.end()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the function has no instructions (never happens
    /// for functions built through [`Function::new`]).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fn @{}", self.entry)?;
        for i in &self.instrs {
            writeln!(f, "  {i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_binary::Reg;

    fn sample() -> Function {
        Function::new(
            Addr::new(0x100),
            vec![
                DecodedInstr { addr: Addr::new(0x100), instr: Instr::Enter { frame: 0 }, len: 3 },
                DecodedInstr {
                    addr: Addr::new(0x103),
                    instr: Instr::MovImm { dst: Reg::R0, imm: 1 },
                    len: 10,
                },
                DecodedInstr { addr: Addr::new(0x10d), instr: Instr::Ret, len: 1 },
            ],
        )
    }

    #[test]
    fn extents() {
        let f = sample();
        assert_eq!(f.entry(), Addr::new(0x100));
        assert_eq!(f.end(), Addr::new(0x10e));
        assert!(f.contains(Addr::new(0x10d)));
        assert!(!f.contains(Addr::new(0x10e)));
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
    }

    #[test]
    fn index_lookup() {
        let f = sample();
        assert_eq!(f.index_of(Addr::new(0x103)), Some(1));
        assert_eq!(f.index_of(Addr::new(0x104)), None, "mid-instruction address");
    }

    #[test]
    #[should_panic(expected = "first instruction")]
    fn mismatched_entry_panics() {
        Function::new(
            Addr::new(0x200),
            vec![DecodedInstr { addr: Addr::new(0x100), instr: Instr::Ret, len: 1 }],
        );
    }

    #[test]
    fn display() {
        let s = sample().to_string();
        assert!(s.contains("fn @0x100"));
        assert!(s.contains("ret"));
    }
}
