//! Loader: from raw [`rock_binary::BinaryImage`] bytes to analyzable form.
//!
//! Everything here works on a **stripped** image — no symbols, no RTTI:
//!
//! * **Function boundary recovery** — linear-sweep disassembly of the text
//!   section; `enter` prologues mark function entry points (the analogue of
//!   recognizing `push ebp; mov ebp, esp` signatures in x86 binaries).
//! * **Vtable discovery** — candidate rodata addresses referenced from code
//!   are scanned for runs of function-entry pointers; each run is a virtual
//!   function table, i.e. a *binary type* in the paper's sense (§3.2:
//!   "We use the set of virtual tables to represent the explicit types").
//! * **CFG construction** — per-function basic blocks and edges, consumed
//!   by the symbolic execution of `rock-analysis`.
//!
//! # Example
//!
//! ```
//! use rock_binary::{ImageBuilder, Instr, Reg};
//! use rock_loader::LoadedBinary;
//!
//! let mut b = ImageBuilder::new();
//! let f = b.begin_function("f");
//! b.push(Instr::Enter { frame: 0 });
//! b.push(Instr::Ret);
//! b.end_function();
//! let vt = b.add_vtable("vt", vec![f]);
//! // Reference the vtable from code so the scanner can find it.
//! let g = b.begin_function("g");
//! b.push(Instr::Enter { frame: 0 });
//! b.push_mov_vtable_addr(Reg::R1, vt);
//! b.push(Instr::Ret);
//! b.end_function();
//! let mut image = b.finish();
//! image.strip();
//! let loaded = LoadedBinary::load(image)?;
//! assert_eq!(loaded.functions().len(), 2);
//! assert_eq!(loaded.vtables().len(), 1);
//! # let _ = g;
//! # Ok::<(), rock_loader::LoadError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfg;
mod error;
mod function;
mod load;
mod vtable;

pub use cfg::{BasicBlock, Cfg};
pub use error::{LoadError, LoadIssue};
pub use function::{DecodedInstr, Function};
pub use load::LoadedBinary;
pub use vtable::Vtable;
