//! Intra-procedural control-flow graphs.

use std::collections::BTreeSet;
use std::fmt;

use rock_binary::{Addr, Instr};

use crate::Function;

/// A basic block: a maximal straight-line instruction run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: Addr,
    /// Indices into the owning function's instruction list.
    pub instr_range: (usize, usize),
    /// Start addresses of successor blocks.
    pub succs: Vec<Addr>,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.instr_range.1 - self.instr_range.0
    }

    /// Returns `true` if the block holds no instructions (never produced
    /// by [`Cfg::build`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The control-flow graph of one function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cfg {
    entry: Addr,
    blocks: Vec<BasicBlock>,
}

impl Cfg {
    /// Builds the CFG of a recovered function.
    ///
    /// Branch targets outside the function (tail jumps) are treated as
    /// block terminators with no intra-procedural successor.
    pub fn build(function: &Function) -> Cfg {
        let instrs = function.instrs();
        // Leaders: entry, branch targets inside the function, fall-through
        // successors of terminators.
        let mut leaders: BTreeSet<Addr> = BTreeSet::new();
        leaders.insert(function.entry());
        for (i, d) in instrs.iter().enumerate() {
            match d.instr {
                Instr::Jmp { target } | Instr::Branch { target, .. } => {
                    if function.contains(target) {
                        leaders.insert(target);
                    }
                    if i + 1 < instrs.len() {
                        leaders.insert(instrs[i + 1].addr);
                    }
                }
                Instr::Ret | Instr::Halt if i + 1 < instrs.len() => {
                    leaders.insert(instrs[i + 1].addr);
                }
                _ => {}
            }
        }

        let mut blocks = Vec::new();
        let leader_list: Vec<Addr> = leaders.iter().copied().collect();
        for (bi, &start) in leader_list.iter().enumerate() {
            // Leaders come from instruction addresses of this function, so
            // the lookup cannot miss; skip defensively instead of panicking.
            let Some(lo) = function.index_of(start) else {
                continue;
            };
            let hi = leader_list
                .get(bi + 1)
                .and_then(|next| function.index_of(*next))
                .unwrap_or(instrs.len());
            let last = &instrs[hi - 1];
            let mut succs = Vec::new();
            match last.instr {
                Instr::Jmp { target } => {
                    if function.contains(target) {
                        succs.push(target);
                    }
                }
                Instr::Branch { target, .. } => {
                    if function.contains(target) {
                        succs.push(target);
                    }
                    if hi < instrs.len() {
                        succs.push(instrs[hi].addr);
                    }
                }
                Instr::Ret | Instr::Halt => {}
                _ => {
                    if hi < instrs.len() {
                        succs.push(instrs[hi].addr);
                    }
                }
            }
            blocks.push(BasicBlock { start, instr_range: (lo, hi), succs });
        }
        Cfg { entry: function.entry(), blocks }
    }

    /// The entry block's address.
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// All blocks, ordered by start address.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block starting at `addr`.
    pub fn block_at(&self, addr: Addr) -> Option<&BasicBlock> {
        self.blocks.binary_search_by_key(&addr, |b| b.start).ok().map(|i| &self.blocks[i])
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if the CFG has no blocks (never produced by
    /// [`Cfg::build`]).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.blocks {
            write!(f, "block @{} ({} instrs) ->", b.start, b.len())?;
            for s in &b.succs {
                write!(f, " {s}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DecodedInstr;
    use rock_binary::{encoded_len, Reg};

    /// Builds a Function from instructions, assigning addresses by length.
    fn function(entry: u64, instrs: &[Instr]) -> Function {
        let mut out = Vec::new();
        let mut addr = Addr::new(entry);
        for i in instrs {
            let len = encoded_len(i);
            out.push(DecodedInstr { addr, instr: *i, len });
            addr += len as u64;
        }
        Function::new(Addr::new(entry), out)
    }

    #[test]
    fn straight_line_is_one_block() {
        let f = function(0x100, &[Instr::Enter { frame: 0 }, Instr::Nop, Instr::Ret]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 1);
        assert!(cfg.blocks()[0].succs.is_empty());
        assert_eq!(cfg.blocks()[0].len(), 3);
        assert!(!cfg.is_empty());
    }

    #[test]
    fn branch_splits_blocks() {
        // enter; bnz r1, L; nop; L: ret
        let enter = Instr::Enter { frame: 0 };
        let nop = Instr::Nop;
        let ret = Instr::Ret;
        let e0 = encoded_len(&enter) as u64;
        let b0 = encoded_len(&Instr::Branch { cond: Reg::R1, target: Addr::NULL }) as u64;
        let n0 = encoded_len(&nop) as u64;
        let l = 0x100 + e0 + b0 + n0; // address of ret
        let f = function(
            0x100,
            &[enter, Instr::Branch { cond: Reg::R1, target: Addr::new(l) }, nop, ret],
        );
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 3);
        let entry_block = cfg.block_at(Addr::new(0x100)).unwrap();
        assert_eq!(entry_block.succs.len(), 2, "branch: target + fallthrough");
        assert!(entry_block.succs.contains(&Addr::new(l)));
        let ret_block = cfg.block_at(Addr::new(l)).unwrap();
        assert!(ret_block.succs.is_empty());
    }

    #[test]
    fn backward_jmp_forms_loop() {
        let enter = Instr::Enter { frame: 0 };
        let e0 = encoded_len(&enter) as u64;
        let top = 0x100 + e0;
        // enter; top: nop; jmp top
        let f = function(0x100, &[enter, Instr::Nop, Instr::Jmp { target: Addr::new(top) }]);
        let cfg = Cfg::build(&f);
        let loop_block = cfg.block_at(Addr::new(top)).unwrap();
        assert_eq!(loop_block.succs, vec![Addr::new(top)]);
    }

    #[test]
    fn entry_accessor() {
        let f = function(0x400, &[Instr::Enter { frame: 0 }, Instr::Ret]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.entry(), Addr::new(0x400));
        assert!(cfg.block_at(Addr::new(0x999)).is_none());
        assert!(cfg.to_string().contains("block @0x400"));
    }
}
