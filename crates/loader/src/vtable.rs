use std::fmt;

use rock_binary::Addr;

/// A discovered virtual function table — a *binary type* in the paper's
/// terminology (§3.2).
///
/// `slots[i]` is the entry address of the implementation of the class's
/// i-th virtual function.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vtable {
    addr: Addr,
    slots: Vec<Addr>,
}

impl Vtable {
    /// Creates a vtable.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty — a vtable always has at least one
    /// virtual function.
    pub fn new(addr: Addr, slots: Vec<Addr>) -> Self {
        assert!(!slots.is_empty(), "vtable without slots");
        Vtable { addr, slots }
    }

    /// Address of slot 0 — the identity of the binary type.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The function addresses in slot order.
    pub fn slots(&self) -> &[Addr] {
        &self.slots
    }

    /// Number of virtual functions.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Always `false`; kept for API completeness.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns `true` if any slot of `self` points at the same function as
    /// a slot of `other` — the "DNA fingerprint" of §5.1.
    pub fn shares_function_with(&self, other: &Vtable) -> bool {
        self.slots.iter().any(|s| other.slots.contains(s))
    }

    /// Returns `true` if `self` could be an ancestor's vtable of `other`
    /// positionally: it is no longer, and shared prefix positions are not
    /// contradicted. (Only a cheap helper; real rules live in
    /// `rock-structural`.)
    pub fn slot_count_compatible_as_parent_of(&self, other: &Vtable) -> bool {
        self.len() <= other.len()
    }
}

impl fmt::Display for Vtable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vtable @{} [", self.addr)?;
        for (i, s) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let vt = Vtable::new(Addr::new(0x2000), vec![Addr::new(0x1000), Addr::new(0x1010)]);
        assert_eq!(vt.addr(), Addr::new(0x2000));
        assert_eq!(vt.len(), 2);
        assert!(!vt.is_empty());
        assert_eq!(vt.slots()[1], Addr::new(0x1010));
    }

    #[test]
    fn sharing() {
        let a = Vtable::new(Addr::new(0x2000), vec![Addr::new(0x1000)]);
        let b = Vtable::new(Addr::new(0x2010), vec![Addr::new(0x1000), Addr::new(0x1020)]);
        let c = Vtable::new(Addr::new(0x2030), vec![Addr::new(0x1030)]);
        assert!(a.shares_function_with(&b));
        assert!(b.shares_function_with(&a));
        assert!(!a.shares_function_with(&c));
        assert!(a.slot_count_compatible_as_parent_of(&b));
        assert!(!b.slot_count_compatible_as_parent_of(&a));
    }

    #[test]
    #[should_panic(expected = "vtable without slots")]
    fn empty_vtable_panics() {
        Vtable::new(Addr::new(0), vec![]);
    }

    #[test]
    fn display() {
        let vt = Vtable::new(Addr::new(0x2000), vec![Addr::new(0x1000)]);
        assert_eq!(vt.to_string(), "vtable @0x2000 [0x1000]");
    }
}
