//! CFG construction validated against compiled MiniCpp control flow.

use rock_binary::Instr;
use rock_loader::{Cfg, LoadedBinary};
use rock_minicpp::{compile, CompileOptions, Expr, ProgramBuilder};

fn load(p: ProgramBuilder) -> (LoadedBinary, rock_minicpp::Compiled) {
    let compiled = compile(&p.finish(), &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    (loaded, compiled)
}

fn cfg_of(loaded: &LoadedBinary, compiled: &rock_minicpp::Compiled, name: &str) -> Cfg {
    let entry = compiled.image().symbols().by_name(name).unwrap().addr;
    Cfg::build(loaded.function_at(entry).unwrap())
}

#[test]
fn straight_line_function_is_one_block() {
    let mut p = ProgramBuilder::new();
    p.func("f", |f| {
        f.let_("x", Expr::Const(1));
        f.let_("y", Expr::Const(2));
        f.ret_val(Expr::Var("x".into()));
    });
    let (loaded, compiled) = load(p);
    let cfg = cfg_of(&loaded, &compiled, "f");
    assert_eq!(cfg.len(), 1);
    assert!(cfg.blocks()[0].succs.is_empty());
}

#[test]
fn if_else_is_a_diamondish_shape() {
    let mut p = ProgramBuilder::new();
    p.func("f", |f| {
        f.param_val("c");
        f.if_else(
            Expr::Param(0),
            |t| {
                t.let_("a", Expr::Const(1));
            },
            |e| {
                e.let_("b", Expr::Const(2));
            },
        );
        f.ret();
    });
    let (loaded, compiled) = load(p);
    let cfg = cfg_of(&loaded, &compiled, "f");
    // entry(branch) + else + then + join.
    assert!(cfg.len() >= 4, "{cfg}");
    // The entry block ends in a two-way branch.
    let entry = cfg.block_at(cfg.entry()).unwrap();
    assert_eq!(entry.succs.len(), 2);
    // Every block is reachable from the entry.
    let mut reached = std::collections::BTreeSet::new();
    let mut stack = vec![cfg.entry()];
    while let Some(b) = stack.pop() {
        if reached.insert(b) {
            stack.extend(&cfg.block_at(b).unwrap().succs);
        }
    }
    assert_eq!(reached.len(), cfg.len(), "unreachable blocks");
}

#[test]
fn while_loop_has_a_back_edge() {
    let mut p = ProgramBuilder::new();
    p.func("f", |f| {
        f.param_val("n");
        f.let_("i", Expr::Const(0));
        f.while_loop(
            Expr::bin(rock_binary::BinOp::Lt, Expr::Var("i".into()), Expr::Param(0)),
            |b| {
                b.let_(
                    "i",
                    Expr::bin(rock_binary::BinOp::Add, Expr::Var("i".into()), Expr::Const(1)),
                );
            },
        );
        f.ret();
    });
    let (loaded, compiled) = load(p);
    let cfg = cfg_of(&loaded, &compiled, "f");
    // A back edge exists: some block's successor has a smaller start
    // address than the block itself.
    let back_edges = cfg
        .blocks()
        .iter()
        .flat_map(|b| b.succs.iter().map(move |s| (b.start, *s)))
        .filter(|(from, to)| to <= from)
        .count();
    assert!(back_edges >= 1, "{cfg}");
}

#[test]
fn calls_do_not_split_blocks() {
    let mut p = ProgramBuilder::new();
    p.func("callee", |f| {
        f.ret();
    });
    p.func("caller", |f| {
        f.call("callee", vec![]);
        f.call("callee", vec![]);
        f.ret();
    });
    let (loaded, compiled) = load(p);
    let cfg = cfg_of(&loaded, &compiled, "caller");
    assert_eq!(cfg.len(), 1, "intra-procedural CFG ignores calls: {cfg}");
    let f = loaded.function_at(compiled.image().symbols().by_name("caller").unwrap().addr).unwrap();
    let calls = f.instrs().iter().filter(|d| matches!(d.instr, Instr::Call { .. })).count();
    assert_eq!(calls, 2);
}

#[test]
fn every_suite_function_has_a_wellformed_cfg() {
    // Global invariant over a real benchmark: every block non-empty, all
    // successors are block starts, entry exists.
    let bench = rock_core_suite_analyzer();
    let compiled = bench.compile().unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    for f in loaded.functions() {
        let cfg = Cfg::build(f);
        assert!(!cfg.is_empty());
        assert!(cfg.block_at(cfg.entry()).is_some());
        for b in cfg.blocks() {
            assert!(!b.is_empty());
            for s in &b.succs {
                assert!(cfg.block_at(*s).is_some(), "dangling successor {s}");
            }
        }
    }
}

/// Indirection to avoid a dev-dependency cycle: build a small benchmark
/// program locally instead of importing rock-core.
fn rock_core_suite_analyzer() -> BenchLike {
    let mut p = ProgramBuilder::new();
    p.class("A").field("x").method("m", |b| {
        b.write("this", "x", Expr::Const(1));
        b.ret();
    });
    p.class("B").base("A").method("n", |b| {
        b.if_else(
            Expr::Const(1),
            |t| {
                t.read("v", "this", "x");
            },
            |e| {
                e.write("this", "x", Expr::Const(2));
            },
        );
        b.ret();
    });
    p.func("drive", |f| {
        f.new_obj("b", "B");
        f.vcall("b", "m", vec![]);
        f.vcall("b", "n", vec![]);
        f.delete("b");
        f.ret();
    });
    BenchLike { program: p.finish() }
}

struct BenchLike {
    program: rock_minicpp::Program,
}

impl BenchLike {
    fn compile(&self) -> Result<rock_minicpp::Compiled, rock_minicpp::CompileError> {
        compile(&self.program, &CompileOptions::default())
    }
}
