use std::fmt;

/// A general-purpose machine register.
///
/// The ISA has 16 registers. By convention (mirroring a simplified
/// `thiscall`-style calling convention):
///
/// * `R0` carries the first argument — the `this` pointer for methods — and
///   the return value;
/// * `R1..=R5` carry further arguments;
/// * `R15` is the stack pointer ([`Reg::SP`]).
///
/// # Example
///
/// ```
/// use rock_binary::Reg;
/// assert_eq!(Reg::arg(0), Some(Reg::R0));
/// assert_eq!(Reg::R3.index(), 3);
/// assert_eq!(format!("{}", Reg::SP), "sp");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// Number of registers in the ISA.
    pub const COUNT: usize = 16;

    /// The stack pointer register (alias of `R15`).
    pub const SP: Reg = Reg::R15;

    /// Number of argument-passing registers.
    pub const ARG_COUNT: usize = 6;

    /// All registers, in index order.
    pub const ALL: [Reg; Reg::COUNT] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// The register carrying the `i`-th call argument, or `None` if the
    /// argument is beyond the register-passing window.
    pub fn arg(i: usize) -> Option<Reg> {
        if i < Reg::ARG_COUNT {
            Some(Reg::ALL[i])
        } else {
            None
        }
    }

    /// Creates a register from its index.
    pub fn from_index(index: u8) -> Option<Reg> {
        Reg::ALL.get(index as usize).copied()
    }

    /// The register's index (0..16).
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Returns `true` if this register carries an argument in calls.
    pub fn is_arg(self) -> bool {
        (self.index() as usize) < Reg::ARG_COUNT
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Reg::SP {
            write!(f, "sp")
        } else {
            write!(f, "r{}", self.index())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index() as usize, i);
            assert_eq!(Reg::from_index(i as u8), Some(*r));
        }
        assert_eq!(Reg::from_index(16), None);
    }

    #[test]
    fn arg_registers() {
        assert_eq!(Reg::arg(0), Some(Reg::R0));
        assert_eq!(Reg::arg(5), Some(Reg::R5));
        assert_eq!(Reg::arg(6), None);
        assert!(Reg::R5.is_arg());
        assert!(!Reg::R6.is_arg());
    }

    #[test]
    fn sp_alias() {
        assert_eq!(Reg::SP, Reg::R15);
        assert_eq!(format!("{}", Reg::SP), "sp");
        assert_eq!(format!("{}", Reg::R2), "r2");
    }
}
