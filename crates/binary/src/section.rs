use std::fmt;

use crate::Addr;

/// The kind of a section inside a [`BinaryImage`](crate::BinaryImage).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SectionKind {
    /// Executable code (`.text`).
    Text,
    /// Read-only data (`.rodata`): vtables, RTTI, string literals.
    RoData,
    /// Mutable data (`.data`).
    Data,
}

impl SectionKind {
    /// Conventional section name.
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Text => ".text",
            SectionKind::RoData => ".rodata",
            SectionKind::Data => ".data",
        }
    }
}

impl fmt::Display for SectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A contiguous region of the binary image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    kind: SectionKind,
    base: Addr,
    bytes: Vec<u8>,
}

impl Section {
    /// Creates a section with the given kind, load address and contents.
    pub fn new(kind: SectionKind, base: Addr, bytes: Vec<u8>) -> Self {
        Section { kind, base, bytes }
    }

    /// The section kind.
    pub fn kind(&self) -> SectionKind {
        self.kind
    }

    /// The load address of the first byte.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// The section size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` if the section is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// One-past-the-end address.
    pub fn end(&self) -> Addr {
        self.base + self.bytes.len() as u64
    }

    /// The raw bytes of the section.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Returns `true` if `addr` lies within this section.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Slice of bytes starting at `addr` until the end of the section, or
    /// `None` if `addr` is outside the section.
    pub fn bytes_at(&self, addr: Addr) -> Option<&[u8]> {
        if !self.contains(addr) {
            return None;
        }
        let off = addr.offset_from(self.base) as usize;
        Some(&self.bytes[off..])
    }

    /// Reads a little-endian machine word at `addr`, or `None` if out of
    /// bounds.
    pub fn read_word(&self, addr: Addr) -> Option<u64> {
        let bytes = self.bytes_at(addr)?;
        let word: [u8; 8] = bytes.get(..8)?.try_into().ok()?;
        Some(u64::from_le_bytes(word))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn section() -> Section {
        let mut bytes = vec![0u8; 16];
        bytes[..8].copy_from_slice(&0x1122_3344_5566_7788u64.to_le_bytes());
        Section::new(SectionKind::RoData, Addr::new(0x100), bytes)
    }

    #[test]
    fn bounds() {
        let s = section();
        assert!(s.contains(Addr::new(0x100)));
        assert!(s.contains(Addr::new(0x10f)));
        assert!(!s.contains(Addr::new(0x110)));
        assert!(!s.contains(Addr::new(0xff)));
        assert_eq!(s.end(), Addr::new(0x110));
        assert_eq!(s.len(), 16);
        assert!(!s.is_empty());
    }

    #[test]
    fn read_word_le() {
        let s = section();
        assert_eq!(s.read_word(Addr::new(0x100)), Some(0x1122_3344_5566_7788));
        assert_eq!(s.read_word(Addr::new(0x108)), Some(0));
        // Partial word at the tail.
        assert_eq!(s.read_word(Addr::new(0x109)), None);
        assert_eq!(s.read_word(Addr::new(0x200)), None);
    }

    #[test]
    fn bytes_at() {
        let s = section();
        assert_eq!(s.bytes_at(Addr::new(0x100)).unwrap().len(), 16);
        assert_eq!(s.bytes_at(Addr::new(0x10f)).unwrap().len(), 1);
        assert!(s.bytes_at(Addr::new(0x110)).is_none());
    }

    #[test]
    fn names() {
        assert_eq!(SectionKind::Text.name(), ".text");
        assert_eq!(SectionKind::RoData.to_string(), ".rodata");
        assert_eq!(SectionKind::Data.name(), ".data");
    }
}
