use std::fmt;

use crate::Addr;

/// A runtime type information record, as emitted by the compiler when RTTI
/// generation is enabled.
///
/// The paper (§6.2) derives its **ground truth** mainly from RTTI records:
/// each record names the class a vtable belongs to and lists the vtables of
/// its ancestors, in order from immediate parent to root. Stripped release
/// binaries usually have these removed — the Rock pipeline never reads them;
/// only the evaluation harness does.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RttiRecord {
    /// Address of the vtable this record describes.
    pub vtable: Addr,
    /// Demangled class name.
    pub class_name: String,
    /// Vtable addresses of the ancestors, immediate parent first.
    pub ancestors: Vec<Addr>,
}

impl RttiRecord {
    /// Creates a record for a root class (no ancestors).
    pub fn root(vtable: Addr, class_name: impl Into<String>) -> Self {
        RttiRecord { vtable, class_name: class_name.into(), ancestors: Vec::new() }
    }

    /// Creates a record with an ancestor chain (immediate parent first).
    pub fn with_ancestors(
        vtable: Addr,
        class_name: impl Into<String>,
        ancestors: Vec<Addr>,
    ) -> Self {
        RttiRecord { vtable, class_name: class_name.into(), ancestors }
    }

    /// The immediate parent's vtable, if any.
    pub fn parent(&self) -> Option<Addr> {
        self.ancestors.first().copied()
    }

    /// Returns `true` if this class is a hierarchy root.
    pub fn is_root(&self) -> bool {
        self.ancestors.is_empty()
    }
}

impl fmt::Display for RttiRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rtti {} @{}", self.class_name, self.vtable)?;
        if let Some(p) = self.parent() {
            write!(f, " : parent @{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_record() {
        let r = RttiRecord::root(Addr::new(0x100), "Base");
        assert!(r.is_root());
        assert_eq!(r.parent(), None);
        assert_eq!(r.to_string(), "rtti Base @0x100");
    }

    #[test]
    fn ancestor_chain() {
        let r = RttiRecord::with_ancestors(
            Addr::new(0x300),
            "Leaf",
            vec![Addr::new(0x200), Addr::new(0x100)],
        );
        assert!(!r.is_root());
        assert_eq!(r.parent(), Some(Addr::new(0x200)));
        assert_eq!(r.ancestors.len(), 2);
        assert_eq!(r.to_string(), "rtti Leaf @0x300 : parent @0x200");
    }
}
