use std::fmt;

use crate::{Addr, RttiRecord, Section, SectionKind, SymbolTable};

/// A loaded binary image: sections, optional symbols, optional RTTI.
///
/// This is the sole input of the Rock pipeline. A **stripped** image has an
/// empty [`SymbolTable`] and no RTTI records; the pipeline must work from
/// bytes alone.
///
/// # Example
///
/// ```
/// use rock_binary::{BinaryImage, Section, SectionKind, Addr};
/// let image = BinaryImage::new(vec![
///     Section::new(SectionKind::Text, Addr::new(0x1000), vec![0x02]),
/// ]);
/// assert!(image.is_stripped());
/// assert!(image.in_section(Addr::new(0x1000), SectionKind::Text));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BinaryImage {
    sections: Vec<Section>,
    symbols: SymbolTable,
    rtti: Vec<RttiRecord>,
}

impl BinaryImage {
    /// Creates an image from sections, with no symbols or RTTI.
    pub fn new(sections: Vec<Section>) -> Self {
        BinaryImage { sections, symbols: SymbolTable::new(), rtti: Vec::new() }
    }

    /// Creates an image with full debug information.
    pub fn with_debug_info(
        sections: Vec<Section>,
        symbols: SymbolTable,
        rtti: Vec<RttiRecord>,
    ) -> Self {
        BinaryImage { sections, symbols, rtti }
    }

    /// All sections.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// The first section of the given kind, if present.
    pub fn section(&self, kind: SectionKind) -> Option<&Section> {
        self.sections.iter().find(|s| s.kind() == kind)
    }

    /// The section containing `addr`, if any.
    pub fn section_at(&self, addr: Addr) -> Option<&Section> {
        self.sections.iter().find(|s| s.contains(addr))
    }

    /// Returns `true` if `addr` lies inside a section of kind `kind`.
    pub fn in_section(&self, addr: Addr, kind: SectionKind) -> bool {
        self.section_at(addr).is_some_and(|s| s.kind() == kind)
    }

    /// Reads a machine word at an arbitrary address, if mapped.
    pub fn read_word(&self, addr: Addr) -> Option<u64> {
        self.section_at(addr)?.read_word(addr)
    }

    /// Raw bytes from `addr` to the end of its section, if mapped.
    pub fn bytes_at(&self, addr: Addr) -> Option<&[u8]> {
        self.section_at(addr)?.bytes_at(addr)
    }

    /// The symbol table (empty for stripped binaries).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// RTTI records (empty for stripped binaries).
    pub fn rtti(&self) -> &[RttiRecord] {
        &self.rtti
    }

    /// The RTTI record describing the vtable at `vtable`, if present.
    pub fn rtti_for(&self, vtable: Addr) -> Option<&RttiRecord> {
        self.rtti.iter().find(|r| r.vtable == vtable)
    }

    /// Returns `true` if the image carries neither symbols nor RTTI.
    pub fn is_stripped(&self) -> bool {
        self.symbols.is_empty() && self.rtti.is_empty()
    }

    /// Removes all symbols and RTTI records, returning them.
    ///
    /// This models the `strip` step applied to release binaries. The
    /// returned debug information is what the evaluation harness uses as
    /// ground truth while the pipeline sees only the stripped image.
    pub fn strip(&mut self) -> (SymbolTable, Vec<RttiRecord>) {
        let symbols = std::mem::take(&mut self.symbols);
        let rtti = std::mem::take(&mut self.rtti);
        (symbols, rtti)
    }

    /// Total mapped size in bytes across all sections.
    pub fn size(&self) -> usize {
        self.sections.iter().map(Section::len).sum()
    }
}

impl fmt::Display for BinaryImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "binary image, {} bytes", self.size())?;
        for s in &self.sections {
            writeln!(f, "  {} {}..{} ({} bytes)", s.kind(), s.base(), s.end(), s.len())?;
        }
        if !self.symbols.is_empty() {
            writeln!(f, "  {} symbols", self.symbols.len())?;
        }
        if !self.rtti.is_empty() {
            writeln!(f, "  {} rtti records", self.rtti.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Symbol;

    fn image() -> BinaryImage {
        let text = Section::new(SectionKind::Text, Addr::new(0x1000), vec![0x02; 4]);
        let mut ro = vec![0u8; 16];
        ro[..8].copy_from_slice(&0x1000u64.to_le_bytes());
        let rodata = Section::new(SectionKind::RoData, Addr::new(0x2000), ro);
        let mut symbols = SymbolTable::new();
        symbols.insert(Symbol::new(Addr::new(0x1000), "f"));
        let rtti = vec![RttiRecord::root(Addr::new(0x2000), "A")];
        BinaryImage::with_debug_info(vec![text, rodata], symbols, rtti)
    }

    #[test]
    fn section_lookup() {
        let img = image();
        assert_eq!(img.section(SectionKind::Text).unwrap().base(), Addr::new(0x1000));
        assert_eq!(img.section(SectionKind::RoData).unwrap().base(), Addr::new(0x2000));
        assert!(img.section(SectionKind::Data).is_none());
        assert!(img.in_section(Addr::new(0x1002), SectionKind::Text));
        assert!(!img.in_section(Addr::new(0x1002), SectionKind::RoData));
        assert!(img.section_at(Addr::new(0x5000)).is_none());
    }

    #[test]
    fn word_reads_cross_section() {
        let img = image();
        assert_eq!(img.read_word(Addr::new(0x2000)), Some(0x1000));
        assert_eq!(img.read_word(Addr::new(0x2008)), Some(0));
        assert_eq!(img.read_word(Addr::new(0x9999)), None);
    }

    #[test]
    fn strip_removes_debug_info() {
        let mut img = image();
        assert!(!img.is_stripped());
        let (symbols, rtti) = img.strip();
        assert!(img.is_stripped());
        assert_eq!(symbols.len(), 1);
        assert_eq!(rtti.len(), 1);
        assert!(img.rtti_for(Addr::new(0x2000)).is_none());
    }

    #[test]
    fn rtti_lookup() {
        let img = image();
        assert_eq!(img.rtti_for(Addr::new(0x2000)).unwrap().class_name, "A");
        assert!(img.rtti_for(Addr::new(0x2008)).is_none());
    }

    #[test]
    fn size_and_display() {
        let img = image();
        assert_eq!(img.size(), 20);
        let text = img.to_string();
        assert!(text.contains(".text"));
        assert!(text.contains(".rodata"));
        assert!(text.contains("1 symbols"));
    }
}
