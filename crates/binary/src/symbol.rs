use std::fmt;

use crate::Addr;

/// A named address — debug information that **stripping removes**.
///
/// Symbols exist so that tests and ground-truth extraction can correlate
/// binary artifacts with source names; the Rock pipeline itself never looks
/// at them (and on a stripped image there are none to look at).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Symbol {
    /// Address the symbol labels.
    pub addr: Addr,
    /// Symbol name (e.g. a mangled method name or `vtable for X`).
    pub name: String,
}

impl Symbol {
    /// Creates a symbol.
    pub fn new(addr: Addr, name: impl Into<String>) -> Self {
        Symbol { addr, name: name.into() }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.addr, self.name)
    }
}

/// An ordered collection of [`Symbol`]s with name/address lookup.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SymbolTable {
    symbols: Vec<Symbol>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Adds a symbol.
    pub fn insert(&mut self, symbol: Symbol) {
        self.symbols.push(symbol);
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` if the table holds no symbols (e.g. after stripping).
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Iterates over all symbols.
    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.iter()
    }

    /// Finds the first symbol with the given name.
    pub fn by_name(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Finds the first symbol at the given address.
    pub fn at(&self, addr: Addr) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.addr == addr)
    }

    /// Removes every symbol. This is what "stripping" does to the table.
    pub fn clear(&mut self) {
        self.symbols.clear();
    }
}

impl FromIterator<Symbol> for SymbolTable {
    fn from_iter<T: IntoIterator<Item = Symbol>>(iter: T) -> Self {
        SymbolTable { symbols: iter.into_iter().collect() }
    }
}

impl Extend<Symbol> for SymbolTable {
    fn extend<T: IntoIterator<Item = Symbol>>(&mut self, iter: T) {
        self.symbols.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut t = SymbolTable::new();
        assert!(t.is_empty());
        t.insert(Symbol::new(Addr::new(0x10), "ctor_A"));
        t.insert(Symbol::new(Addr::new(0x20), "vtable_A"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.by_name("ctor_A").unwrap().addr, Addr::new(0x10));
        assert_eq!(t.at(Addr::new(0x20)).unwrap().name, "vtable_A");
        assert!(t.by_name("missing").is_none());
        assert!(t.at(Addr::new(0x99)).is_none());
    }

    #[test]
    fn strip_clears() {
        let mut t: SymbolTable =
            vec![Symbol::new(Addr::new(1), "a"), Symbol::new(Addr::new(2), "b")]
                .into_iter()
                .collect();
        assert_eq!(t.len(), 2);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn display() {
        let s = Symbol::new(Addr::new(0x40), "f");
        assert_eq!(s.to_string(), "0x40 f");
    }
}
