//! Assembly and layout of [`BinaryImage`]s.
//!
//! [`ImageBuilder`] plays the role of assembler + linker: callers emit
//! instructions with *symbolic* targets (function handles, vtable handles,
//! local labels); [`ImageBuilder::finish`] lays everything out, resolves the
//! symbolic references and encodes the final byte image.

use std::collections::HashMap;

use crate::{
    encode_instr, encoded_len, Addr, BinaryImage, Instr, Reg, RttiRecord, Section, SectionKind,
    Symbol, SymbolTable, WORD_SIZE,
};

/// Load address of the text section.
pub const TEXT_BASE: Addr = Addr::new(0x1000);

/// Handle to a function being built; resolves to its entry address at
/// [`ImageBuilder::finish`] time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FunctionHandle(pub(crate) usize);

/// Handle to a vtable being built; resolves to its rodata address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VtableHandle(pub(crate) usize);

/// A local branch label inside the function currently being built.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Clone, Debug)]
enum Pending {
    Concrete(Instr),
    /// `call <fn>` with the callee address patched in later.
    CallFn(FunctionHandle),
    /// `mov dst, <addr of fn>` — function-pointer materialization.
    MovFnAddr(Reg, FunctionHandle),
    /// `mov dst, <addr of vtable>` — the vtable-pointer store idiom.
    MovVtAddr(Reg, VtableHandle),
    /// `jmp <label>`.
    JmpLabel(Label),
    /// `bnz cond, <label>`.
    BranchLabel(Reg, Label),
}

impl Pending {
    fn len(&self) -> usize {
        match self {
            Pending::Concrete(i) => encoded_len(i),
            Pending::CallFn(_) => encoded_len(&Instr::Call { target: Addr::NULL }),
            Pending::MovFnAddr(r, _) | Pending::MovVtAddr(r, _) => {
                encoded_len(&Instr::MovImm { dst: *r, imm: 0 })
            }
            Pending::JmpLabel(_) => encoded_len(&Instr::Jmp { target: Addr::NULL }),
            Pending::BranchLabel(c, _) => {
                encoded_len(&Instr::Branch { cond: *c, target: Addr::NULL })
            }
        }
    }
}

#[derive(Clone, Debug)]
struct PendingFunction {
    name: String,
    instrs: Vec<Pending>,
    finished: bool,
}

#[derive(Clone, Debug)]
struct PendingVtable {
    name: String,
    slots: Vec<FunctionHandle>,
}

#[derive(Clone, Debug)]
struct PendingRtti {
    vtable: VtableHandle,
    class_name: String,
    ancestors: Vec<VtableHandle>,
}

/// Final addresses assigned by [`ImageBuilder::finish_with_layout`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Layout {
    /// Entry address of each function, indexed by handle order.
    pub function_addrs: Vec<Addr>,
    /// Address of slot 0 of each vtable, indexed by handle order.
    pub vtable_addrs: Vec<Addr>,
}

impl Layout {
    /// Address of a function.
    pub fn function(&self, h: FunctionHandle) -> Addr {
        self.function_addrs[h.0]
    }

    /// Address of a vtable.
    pub fn vtable(&self, h: VtableHandle) -> Addr {
        self.vtable_addrs[h.0]
    }
}

/// Incrementally builds a [`BinaryImage`].
///
/// # Example
///
/// ```
/// use rock_binary::{ImageBuilder, Instr, Reg};
/// let mut b = ImageBuilder::new();
/// let callee = b.begin_function("callee");
/// b.push(Instr::Enter { frame: 0 });
/// b.push(Instr::Ret);
/// b.end_function();
///
/// let caller = b.begin_function("caller");
/// b.push(Instr::Enter { frame: 0 });
/// b.push_call(callee);
/// b.push(Instr::Ret);
/// b.end_function();
///
/// let vt = b.add_vtable("vtable for A", vec![callee]);
/// let (image, layout) = b.finish_with_layout();
/// assert_eq!(image.read_word(layout.vtable(vt)), Some(layout.function(callee).value()));
/// let _ = caller;
/// ```
#[derive(Clone, Debug, Default)]
pub struct ImageBuilder {
    functions: Vec<PendingFunction>,
    vtables: Vec<PendingVtable>,
    rtti: Vec<PendingRtti>,
    rodata_blobs: Vec<(usize, Vec<u8>)>, // (insertion order among vtables, bytes)
    current: Option<usize>,
    labels: Vec<Option<(usize, usize)>>, // (function index, instruction index)
    emit_symbols: bool,
}

impl ImageBuilder {
    /// Creates an empty builder that emits a symbol table.
    pub fn new() -> Self {
        ImageBuilder { emit_symbols: true, ..ImageBuilder::default() }
    }

    /// Disables symbol emission (produces an unsymbolized image directly).
    pub fn without_symbols(mut self) -> Self {
        self.emit_symbols = false;
        self
    }

    /// Declares a function without opening it for body emission. Use
    /// [`ImageBuilder::begin_declared`] later to provide the body. This
    /// enables forward references (mutually-recursive calls).
    pub fn declare_function(&mut self, name: impl Into<String>) -> FunctionHandle {
        let h = FunctionHandle(self.functions.len());
        self.functions.push(PendingFunction {
            name: name.into(),
            instrs: Vec::new(),
            finished: false,
        });
        h
    }

    /// Opens a previously declared function for body emission.
    ///
    /// # Panics
    ///
    /// Panics if another function is open or the function already has a
    /// body.
    pub fn begin_declared(&mut self, h: FunctionHandle) {
        assert!(self.current.is_none(), "begin_declared: previous function still open");
        let f = &self.functions[h.0];
        assert!(
            !f.finished && f.instrs.is_empty(),
            "begin_declared: function {:?} already defined",
            f.name
        );
        self.current = Some(h.0);
    }

    /// Starts a new function (declare + open in one step).
    ///
    /// # Panics
    ///
    /// Panics if another function is still open.
    pub fn begin_function(&mut self, name: impl Into<String>) -> FunctionHandle {
        assert!(self.current.is_none(), "begin_function: previous function still open");
        let h = self.declare_function(name);
        self.current = Some(h.0);
        h
    }

    /// Ends the currently open function.
    ///
    /// # Panics
    ///
    /// Panics if no function is open, the function is empty, or its last
    /// instruction can fall through (functions must end with a terminator).
    pub fn end_function(&mut self) {
        let idx = self.current.take().expect("end_function: no open function");
        let f = &mut self.functions[idx];
        assert!(!f.instrs.is_empty(), "end_function: empty function {:?}", f.name);
        let last_ok = match f.instrs.last().expect("non-empty") {
            Pending::Concrete(i) => !i.falls_through(),
            Pending::JmpLabel(_) => true,
            _ => false,
        };
        assert!(last_ok, "end_function: function {:?} does not end with ret/jmp/halt", f.name);
        f.finished = true;
    }

    fn current_mut(&mut self) -> &mut PendingFunction {
        let idx = self.current.expect("no open function");
        &mut self.functions[idx]
    }

    /// Appends a concrete instruction to the open function.
    pub fn push(&mut self, instr: Instr) {
        self.current_mut().instrs.push(Pending::Concrete(instr));
    }

    /// Appends a direct call to another function.
    pub fn push_call(&mut self, callee: FunctionHandle) {
        self.current_mut().instrs.push(Pending::CallFn(callee));
    }

    /// Appends `mov dst, <address of callee>`.
    pub fn push_mov_fn_addr(&mut self, dst: Reg, callee: FunctionHandle) {
        self.current_mut().instrs.push(Pending::MovFnAddr(dst, callee));
    }

    /// Appends `mov dst, <address of vtable>` — the first half of the
    /// vtable-pointer store idiom.
    pub fn push_mov_vtable_addr(&mut self, dst: Reg, vtable: VtableHandle) {
        self.current_mut().instrs.push(Pending::MovVtAddr(dst, vtable));
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.labels.len());
        self.labels.push(None);
        l
    }

    /// Binds `label` to the next instruction of the open function.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind_label(&mut self, label: Label) {
        let idx = self.current.expect("bind_label: no open function");
        let at = self.functions[idx].instrs.len();
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "bind_label: label bound twice");
        *slot = Some((idx, at));
    }

    /// Appends `jmp label`.
    pub fn push_jmp(&mut self, label: Label) {
        self.current_mut().instrs.push(Pending::JmpLabel(label));
    }

    /// Appends `bnz cond, label`.
    pub fn push_branch(&mut self, cond: Reg, label: Label) {
        self.current_mut().instrs.push(Pending::BranchLabel(cond, label));
    }

    /// Adds a vtable whose slots point at the given functions.
    pub fn add_vtable(
        &mut self,
        name: impl Into<String>,
        slots: Vec<FunctionHandle>,
    ) -> VtableHandle {
        let h = VtableHandle(self.vtables.len());
        self.vtables.push(PendingVtable { name: name.into(), slots });
        h
    }

    /// Adds an RTTI record for `vtable` (ancestors immediate-parent first).
    pub fn add_rtti(
        &mut self,
        vtable: VtableHandle,
        class_name: impl Into<String>,
        ancestors: Vec<VtableHandle>,
    ) {
        self.rtti.push(PendingRtti { vtable, class_name: class_name.into(), ancestors });
    }

    /// Appends raw bytes into rodata *before* vtable `before_vtable_index`
    /// (use `usize::MAX` to place after all vtables). Used to model string
    /// literals and other non-vtable rodata noise.
    pub fn add_rodata_blob(&mut self, before_vtable_index: usize, bytes: Vec<u8>) {
        self.rodata_blobs.push((before_vtable_index, bytes));
    }

    /// Number of functions added so far.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Number of vtables added so far.
    pub fn vtable_count(&self) -> usize {
        self.vtables.len()
    }

    /// Lays out and encodes the final image.
    ///
    /// # Panics
    ///
    /// Panics if a function is still open, a referenced label is unbound, or
    /// a function body was never finished.
    pub fn finish(self) -> BinaryImage {
        self.finish_with_layout().0
    }

    /// Like [`ImageBuilder::finish`], but also returns the assigned
    /// addresses.
    pub fn finish_with_layout(self) -> (BinaryImage, Layout) {
        assert!(self.current.is_none(), "finish: a function is still open");
        for f in &self.functions {
            assert!(f.finished, "finish: function {:?} was never ended", f.name);
        }

        // Pass 1: function layout.
        let mut function_addrs = Vec::with_capacity(self.functions.len());
        let mut cursor = TEXT_BASE;
        for f in &self.functions {
            function_addrs.push(cursor);
            let size: usize = f.instrs.iter().map(Pending::len).sum();
            cursor += size as u64;
        }
        let text_end = cursor;

        // Label addresses.
        let mut label_addrs: HashMap<usize, Addr> = HashMap::new();
        for (li, pos) in self.labels.iter().enumerate() {
            if let Some((fi, ii)) = pos {
                let f = &self.functions[*fi];
                let prefix: usize = f.instrs[..*ii].iter().map(Pending::len).sum();
                label_addrs.insert(li, function_addrs[*fi] + prefix as u64);
            }
        }

        // Rodata layout: blobs scheduled before a vtable index, then that
        // vtable, 8-byte aligned.
        let rodata_base = Addr::new((text_end.value() + 0xfff) & !0xfff);
        let mut ro_bytes: Vec<u8> = Vec::new();
        let mut vtable_addrs = vec![Addr::NULL; self.vtables.len()];
        let emit_blobs = |ro_bytes: &mut Vec<u8>, idx: usize| {
            for (before, bytes) in &self.rodata_blobs {
                if *before == idx {
                    ro_bytes.extend_from_slice(bytes);
                }
            }
        };
        for (vi, vt) in self.vtables.iter().enumerate() {
            emit_blobs(&mut ro_bytes, vi);
            while !ro_bytes.len().is_multiple_of(WORD_SIZE as usize) {
                ro_bytes.push(0);
            }
            vtable_addrs[vi] = rodata_base + ro_bytes.len() as u64;
            for slot in &vt.slots {
                let target = function_addrs[slot.0];
                ro_bytes.extend_from_slice(&target.value().to_le_bytes());
            }
        }
        emit_blobs(&mut ro_bytes, usize::MAX);

        // Pass 2: encode text with resolved targets.
        let mut text_bytes = Vec::new();
        for f in &self.functions {
            for p in &f.instrs {
                let concrete = match p {
                    Pending::Concrete(i) => *i,
                    Pending::CallFn(h) => Instr::Call { target: function_addrs[h.0] },
                    Pending::MovFnAddr(r, h) => {
                        Instr::MovImm { dst: *r, imm: function_addrs[h.0].value() }
                    }
                    Pending::MovVtAddr(r, h) => {
                        Instr::MovImm { dst: *r, imm: vtable_addrs[h.0].value() }
                    }
                    Pending::JmpLabel(l) => Instr::Jmp {
                        target: *label_addrs
                            .get(&l.0)
                            .unwrap_or_else(|| panic!("unbound label in {:?}", f.name)),
                    },
                    Pending::BranchLabel(c, l) => Instr::Branch {
                        cond: *c,
                        target: *label_addrs
                            .get(&l.0)
                            .unwrap_or_else(|| panic!("unbound label in {:?}", f.name)),
                    },
                };
                encode_instr(&concrete, &mut text_bytes);
            }
        }
        debug_assert_eq!(
            text_bytes.len() as u64,
            text_end.offset_from(TEXT_BASE),
            "layout size mismatch"
        );

        let sections = vec![
            Section::new(SectionKind::Text, TEXT_BASE, text_bytes),
            Section::new(SectionKind::RoData, rodata_base, ro_bytes),
        ];

        let mut symbols = SymbolTable::new();
        if self.emit_symbols {
            for (f, addr) in self.functions.iter().zip(&function_addrs) {
                symbols.insert(Symbol::new(*addr, f.name.clone()));
            }
            for (vt, addr) in self.vtables.iter().zip(&vtable_addrs) {
                symbols.insert(Symbol::new(*addr, vt.name.clone()));
            }
        }

        let rtti = self
            .rtti
            .iter()
            .map(|r| RttiRecord {
                vtable: vtable_addrs[r.vtable.0],
                class_name: r.class_name.clone(),
                ancestors: r.ancestors.iter().map(|a| vtable_addrs[a.0]).collect(),
            })
            .collect();

        let layout = Layout { function_addrs, vtable_addrs };
        (BinaryImage::with_debug_info(sections, symbols, rtti), layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode_instr;

    fn leaf(b: &mut ImageBuilder, name: &str) -> FunctionHandle {
        let h = b.begin_function(name);
        b.push(Instr::Enter { frame: 0 });
        b.push(Instr::Ret);
        b.end_function();
        h
    }

    #[test]
    fn empty_builder_finishes() {
        let (image, layout) = ImageBuilder::new().finish_with_layout();
        assert!(layout.function_addrs.is_empty());
        assert_eq!(image.section(SectionKind::Text).unwrap().len(), 0);
    }

    #[test]
    fn single_function_layout() {
        let mut b = ImageBuilder::new();
        let f = leaf(&mut b, "f");
        let (image, layout) = b.finish_with_layout();
        assert_eq!(layout.function(f), TEXT_BASE);
        let text = image.section(SectionKind::Text).unwrap();
        let (i0, n0) = decode_instr(text.bytes(), TEXT_BASE).unwrap();
        assert_eq!(i0, Instr::Enter { frame: 0 });
        let (i1, _) = decode_instr(&text.bytes()[n0..], TEXT_BASE + n0 as u64).unwrap();
        assert_eq!(i1, Instr::Ret);
    }

    #[test]
    fn call_resolution() {
        let mut b = ImageBuilder::new();
        let callee = leaf(&mut b, "callee");
        b.begin_function("caller");
        b.push(Instr::Enter { frame: 0 });
        b.push_call(callee);
        b.push(Instr::Ret);
        b.end_function();
        let (image, layout) = b.finish_with_layout();
        let text = image.section(SectionKind::Text).unwrap();
        // Decode the whole stream and find the call.
        let mut pos = 0usize;
        let mut found = false;
        while pos < text.len() {
            let (i, n) = decode_instr(&text.bytes()[pos..], text.base() + pos as u64).unwrap();
            if let Instr::Call { target } = i {
                assert_eq!(target, layout.function(callee));
                found = true;
            }
            pos += n;
        }
        assert!(found);
    }

    #[test]
    fn vtable_slots_point_to_functions() {
        let mut b = ImageBuilder::new();
        let f0 = leaf(&mut b, "A::m0");
        let f1 = leaf(&mut b, "A::m1");
        let vt = b.add_vtable("vtable for A", vec![f0, f1]);
        let (image, layout) = b.finish_with_layout();
        let base = layout.vtable(vt);
        assert_eq!(image.read_word(base), Some(layout.function(f0).value()));
        assert_eq!(image.read_word(base + 8), Some(layout.function(f1).value()));
        assert!(image.in_section(base, SectionKind::RoData));
    }

    #[test]
    fn mov_vtable_addr_materializes_rodata_address() {
        let mut b = ImageBuilder::new();
        let f0 = leaf(&mut b, "m");
        let vt = b.add_vtable("vt", vec![f0]);
        b.begin_function("ctor");
        b.push(Instr::Enter { frame: 0 });
        b.push_mov_vtable_addr(Reg::R1, vt);
        b.push(Instr::Store { base: Reg::R0, offset: 0, src: Reg::R1 });
        b.push(Instr::Ret);
        b.end_function();
        let (image, layout) = b.finish_with_layout();
        let text = image.section(SectionKind::Text).unwrap();
        let mut pos = 0usize;
        let mut seen = false;
        while pos < text.len() {
            let (i, n) = decode_instr(&text.bytes()[pos..], text.base() + pos as u64).unwrap();
            if let Instr::MovImm { imm, .. } = i {
                if imm == layout.vtable(vt).value() {
                    seen = true;
                }
            }
            pos += n;
        }
        assert!(seen);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut b = ImageBuilder::new();
        b.begin_function("loopy");
        let top = b.new_label();
        let out = b.new_label();
        b.push(Instr::Enter { frame: 0 });
        b.bind_label(top);
        b.push_branch(Reg::R1, out);
        b.push_jmp(top);
        b.bind_label(out);
        b.push(Instr::Ret);
        b.end_function();
        let (image, _) = b.finish_with_layout();
        let text = image.section(SectionKind::Text).unwrap();
        let mut pos = 0usize;
        let mut targets = Vec::new();
        let mut addrs = Vec::new();
        while pos < text.len() {
            let at = text.base() + pos as u64;
            let (i, n) = decode_instr(&text.bytes()[pos..], at).unwrap();
            addrs.push(at);
            match i {
                Instr::Branch { target, .. } | Instr::Jmp { target } => targets.push(target),
                _ => {}
            }
            pos += n;
        }
        // Branch targets the ret; jmp targets the branch itself.
        assert_eq!(targets.len(), 2);
        assert_eq!(targets[1], addrs[1]); // backward jmp to `top`
        assert_eq!(targets[0], addrs[3]); // forward branch to `out`
    }

    #[test]
    fn symbols_and_rtti() {
        let mut b = ImageBuilder::new();
        let f = leaf(&mut b, "B::m");
        let vt_a = b.add_vtable("vtable for A", vec![f]);
        let vt_b = b.add_vtable("vtable for B", vec![f]);
        b.add_rtti(vt_a, "A", vec![]);
        b.add_rtti(vt_b, "B", vec![vt_a]);
        let (image, layout) = b.finish_with_layout();
        assert_eq!(image.symbols().by_name("B::m").unwrap().addr, layout.function(f));
        let rec = image.rtti_for(layout.vtable(vt_b)).unwrap();
        assert_eq!(rec.class_name, "B");
        assert_eq!(rec.parent(), Some(layout.vtable(vt_a)));
    }

    #[test]
    fn without_symbols() {
        let mut b = ImageBuilder::new().without_symbols();
        leaf(&mut b, "f");
        let image = b.finish();
        assert!(image.symbols().is_empty());
    }

    #[test]
    fn rodata_blob_padding_keeps_vtables_aligned() {
        let mut b = ImageBuilder::new();
        let f = leaf(&mut b, "f");
        b.add_rodata_blob(0, vec![1, 2, 3]); // 3 bytes, forces padding
        let vt = b.add_vtable("vt", vec![f]);
        let (image, layout) = b.finish_with_layout();
        assert_eq!(layout.vtable(vt).value() % 8, 0);
        assert_eq!(image.read_word(layout.vtable(vt)), Some(layout.function(f).value()));
    }

    #[test]
    fn forward_declared_mutual_calls() {
        let mut b = ImageBuilder::new();
        let f = b.declare_function("f");
        let g = b.declare_function("g");
        b.begin_declared(f);
        b.push(Instr::Enter { frame: 0 });
        b.push_call(g);
        b.push(Instr::Ret);
        b.end_function();
        b.begin_declared(g);
        b.push(Instr::Enter { frame: 0 });
        b.push_call(f);
        b.push(Instr::Ret);
        b.end_function();
        let (image, layout) = b.finish_with_layout();
        let text = image.section(SectionKind::Text).unwrap();
        let mut pos = 0;
        let mut calls = Vec::new();
        while pos < text.len() {
            let (i, n) = decode_instr(&text.bytes()[pos..], text.base() + pos as u64).unwrap();
            if let Instr::Call { target } = i {
                calls.push(target);
            }
            pos += n;
        }
        assert_eq!(calls, vec![layout.function(g), layout.function(f)]);
    }

    #[test]
    #[should_panic(expected = "never ended")]
    fn declared_but_undefined_function_panics() {
        let mut b = ImageBuilder::new();
        b.declare_function("ghost");
        b.finish();
    }

    #[test]
    #[should_panic(expected = "already defined")]
    fn double_definition_panics() {
        let mut b = ImageBuilder::new();
        let f = b.begin_function("f");
        b.push(Instr::Ret);
        b.end_function();
        b.begin_declared(f);
    }

    #[test]
    #[should_panic(expected = "does not end with")]
    fn unterminated_function_panics() {
        let mut b = ImageBuilder::new();
        b.begin_function("bad");
        b.push(Instr::Nop);
        b.end_function();
    }

    #[test]
    #[should_panic(expected = "previous function still open")]
    fn nested_begin_panics() {
        let mut b = ImageBuilder::new();
        b.begin_function("a");
        b.begin_function("b");
    }
}
