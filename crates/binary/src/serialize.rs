//! On-disk container format for binary images (`.rkb`).
//!
//! A small, versioned, little-endian container so images can be written
//! by one process (e.g. the benchmark generator) and analyzed by another
//! (the `rock` CLI):
//!
//! ```text
//! "RKB1"                                  magic + version
//! u32 section_count
//!   { u8 kind, u64 base, u64 len, bytes } per section
//! u32 symbol_count
//!   { u64 addr, u32 len, utf8 }           per symbol
//! u32 rtti_count
//!   { u64 vtable, u32 len, utf8, u32 n, u64×n } per record
//! ```
//!
//! A stripped image simply has zero symbols and zero RTTI records.

use std::error::Error;
use std::fmt;

use crate::{Addr, BinaryImage, RttiRecord, Section, SectionKind, Symbol, SymbolTable};

/// Magic + version tag at the start of every serialized image.
pub const MAGIC: &[u8; 4] = b"RKB1";

/// An error produced while parsing a serialized image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImageFormatError {
    /// The magic/version tag is wrong.
    BadMagic,
    /// The data ended prematurely.
    Truncated,
    /// A section kind byte is invalid.
    BadSectionKind(u8),
    /// A string is not valid UTF-8.
    BadString,
    /// Trailing bytes after the image.
    TrailingBytes(usize),
}

impl fmt::Display for ImageFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageFormatError::BadMagic => write!(f, "not an RKB1 image"),
            ImageFormatError::Truncated => write!(f, "truncated image file"),
            ImageFormatError::BadSectionKind(k) => write!(f, "invalid section kind {k}"),
            ImageFormatError::BadString => write!(f, "invalid utf-8 string"),
            ImageFormatError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl Error for ImageFormatError {}

fn kind_code(kind: SectionKind) -> u8 {
    match kind {
        SectionKind::Text => 0,
        SectionKind::RoData => 1,
        SectionKind::Data => 2,
    }
}

fn kind_from(code: u8) -> Option<SectionKind> {
    match code {
        0 => Some(SectionKind::Text),
        1 => Some(SectionKind::RoData),
        2 => Some(SectionKind::Data),
        _ => None,
    }
}

/// Serializes an image to the `.rkb` container format.
pub fn image_to_bytes(image: &BinaryImage) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(image.sections().len() as u32).to_le_bytes());
    for s in image.sections() {
        out.push(kind_code(s.kind()));
        out.extend_from_slice(&s.base().value().to_le_bytes());
        out.extend_from_slice(&(s.len() as u64).to_le_bytes());
        out.extend_from_slice(s.bytes());
    }
    let symbols: Vec<&Symbol> = image.symbols().iter().collect();
    out.extend_from_slice(&(symbols.len() as u32).to_le_bytes());
    for sym in symbols {
        out.extend_from_slice(&sym.addr.value().to_le_bytes());
        write_str(&mut out, &sym.name);
    }
    out.extend_from_slice(&(image.rtti().len() as u32).to_le_bytes());
    for r in image.rtti() {
        out.extend_from_slice(&r.vtable.value().to_le_bytes());
        write_str(&mut out, &r.class_name);
        out.extend_from_slice(&(r.ancestors.len() as u32).to_le_bytes());
        for a in &r.ancestors {
            out.extend_from_slice(&a.value().to_le_bytes());
        }
    }
    out
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageFormatError> {
        // checked_add: a lying length field near usize::MAX must read as
        // truncation, not overflow the cursor.
        let end = self.pos.checked_add(n).ok_or(ImageFormatError::Truncated)?;
        if end > self.data.len() {
            return Err(ImageFormatError::Truncated);
        }
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ImageFormatError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ImageFormatError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ImageFormatError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn string(&mut self) -> Result<String, ImageFormatError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ImageFormatError::BadString)
    }
}

/// Parses an image from the `.rkb` container format.
///
/// # Errors
///
/// Returns [`ImageFormatError`] for malformed input; never panics.
pub fn image_from_bytes(data: &[u8]) -> Result<BinaryImage, ImageFormatError> {
    let mut r = Reader { data, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(ImageFormatError::BadMagic);
    }
    let section_count = r.u32()? as usize;
    let mut sections = Vec::with_capacity(section_count.min(16));
    for _ in 0..section_count {
        let kind = r.u8()?;
        let kind = kind_from(kind).ok_or(ImageFormatError::BadSectionKind(kind))?;
        let base = Addr::new(r.u64()?);
        let len = r.u64()? as usize;
        let bytes = r.take(len)?.to_vec();
        sections.push(Section::new(kind, base, bytes));
    }
    let symbol_count = r.u32()? as usize;
    let mut symbols = SymbolTable::new();
    for _ in 0..symbol_count {
        let addr = Addr::new(r.u64()?);
        let name = r.string()?;
        symbols.insert(Symbol::new(addr, name));
    }
    let rtti_count = r.u32()? as usize;
    let mut rtti = Vec::with_capacity(rtti_count.min(64));
    for _ in 0..rtti_count {
        let vtable = Addr::new(r.u64()?);
        let class_name = r.string()?;
        let n = r.u32()? as usize;
        let mut ancestors = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            ancestors.push(Addr::new(r.u64()?));
        }
        rtti.push(RttiRecord { vtable, class_name, ancestors });
    }
    if r.pos != data.len() {
        return Err(ImageFormatError::TrailingBytes(data.len() - r.pos));
    }
    Ok(BinaryImage::with_debug_info(sections, symbols, rtti))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ImageBuilder, Instr, Reg};

    fn sample_image() -> BinaryImage {
        let mut b = ImageBuilder::new();
        let f = b.begin_function("f");
        b.push(Instr::Enter { frame: 8 });
        b.push(Instr::MovImm { dst: Reg::R0, imm: 7 });
        b.push(Instr::Ret);
        b.end_function();
        let vt = b.add_vtable("vtable for A", vec![f]);
        b.add_rtti(vt, "A", vec![]);
        b.finish()
    }

    #[test]
    fn roundtrip_full_image() {
        let image = sample_image();
        let bytes = image_to_bytes(&image);
        let back = image_from_bytes(&bytes).unwrap();
        assert_eq!(back, image);
    }

    #[test]
    fn roundtrip_stripped_image() {
        let mut image = sample_image();
        image.strip();
        let back = image_from_bytes(&image_to_bytes(&image)).unwrap();
        assert_eq!(back, image);
        assert!(back.is_stripped());
    }

    #[test]
    fn bad_magic() {
        assert_eq!(image_from_bytes(b"NOPE"), Err(ImageFormatError::BadMagic));
        assert_eq!(image_from_bytes(b""), Err(ImageFormatError::Truncated));
    }

    #[test]
    fn truncation_everywhere() {
        let bytes = image_to_bytes(&sample_image());
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            let err = image_from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes unexpectedly parsed");
        }
    }

    #[test]
    fn huge_length_fields_are_truncation_not_overflow() {
        let mut bytes = image_to_bytes(&sample_image());
        // The first section's len field: magic(4) + count(4) + kind(1) + base(8).
        bytes[17..25].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(image_from_bytes(&bytes), Err(ImageFormatError::Truncated));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = image_to_bytes(&sample_image());
        bytes.push(0);
        assert_eq!(image_from_bytes(&bytes), Err(ImageFormatError::TrailingBytes(1)));
    }

    #[test]
    fn bad_section_kind() {
        let mut bytes = image_to_bytes(&sample_image());
        // First section kind byte sits right after magic + count.
        bytes[8] = 9;
        assert_eq!(image_from_bytes(&bytes), Err(ImageFormatError::BadSectionKind(9)));
    }

    #[test]
    fn error_display() {
        assert_eq!(ImageFormatError::BadMagic.to_string(), "not an RKB1 image");
        assert_eq!(ImageFormatError::TrailingBytes(3).to_string(), "3 trailing bytes");
    }
}
