//! Byte encoding and decoding (the "assembler" and "disassembler") for the
//! substrate ISA.
//!
//! Every instruction is encoded as one opcode byte followed by fixed-width
//! little-endian operands. [`decode_instr`] is the inverse of
//! [`encode_instr`]; the loader crate uses it to disassemble text sections.

use crate::{Addr, BinOp, DecodeError, Instr, Reg};

// Opcode space. Keep stable: encoded images embed these.
const OP_ENTER: u8 = 0x01;
const OP_RET: u8 = 0x02;
const OP_MOV_IMM: u8 = 0x03;
const OP_MOV_REG: u8 = 0x04;
const OP_LOAD: u8 = 0x05;
const OP_STORE: u8 = 0x06;
const OP_LEA: u8 = 0x07;
const OP_CALL: u8 = 0x08;
const OP_CALL_REG: u8 = 0x09;
const OP_JMP: u8 = 0x0a;
const OP_BRANCH: u8 = 0x0b;
const OP_BINOP: u8 = 0x0c;
const OP_NOP: u8 = 0x0d;
const OP_HALT: u8 = 0x0e;

/// Appends the encoding of `instr` to `out` and returns the number of bytes
/// written.
///
/// # Example
///
/// ```
/// use rock_binary::{encode_instr, decode_instr, Instr, Reg, Addr};
/// let mut buf = Vec::new();
/// let n = encode_instr(&Instr::MovImm { dst: Reg::R1, imm: 7 }, &mut buf);
/// let (decoded, len) = decode_instr(&buf, Addr::new(0)).unwrap();
/// assert_eq!(len, n);
/// assert_eq!(decoded, Instr::MovImm { dst: Reg::R1, imm: 7 });
/// ```
pub fn encode_instr(instr: &Instr, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    match instr {
        Instr::Enter { frame } => {
            out.push(OP_ENTER);
            out.extend_from_slice(&frame.to_le_bytes());
        }
        Instr::Ret => out.push(OP_RET),
        Instr::MovImm { dst, imm } => {
            out.push(OP_MOV_IMM);
            out.push(dst.index());
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Instr::MovReg { dst, src } => {
            out.push(OP_MOV_REG);
            out.push(dst.index());
            out.push(src.index());
        }
        Instr::Load { dst, base, offset } => {
            out.push(OP_LOAD);
            out.push(dst.index());
            out.push(base.index());
            out.extend_from_slice(&offset.to_le_bytes());
        }
        Instr::Store { base, offset, src } => {
            out.push(OP_STORE);
            out.push(base.index());
            out.push(src.index());
            out.extend_from_slice(&offset.to_le_bytes());
        }
        Instr::Lea { dst, base, offset } => {
            out.push(OP_LEA);
            out.push(dst.index());
            out.push(base.index());
            out.extend_from_slice(&offset.to_le_bytes());
        }
        Instr::Call { target } => {
            out.push(OP_CALL);
            out.extend_from_slice(&target.value().to_le_bytes());
        }
        Instr::CallReg { target } => {
            out.push(OP_CALL_REG);
            out.push(target.index());
        }
        Instr::Jmp { target } => {
            out.push(OP_JMP);
            out.extend_from_slice(&target.value().to_le_bytes());
        }
        Instr::Branch { cond, target } => {
            out.push(OP_BRANCH);
            out.push(cond.index());
            out.extend_from_slice(&target.value().to_le_bytes());
        }
        Instr::BinOp { op, dst, lhs, rhs } => {
            out.push(OP_BINOP);
            out.push(op.code());
            out.push(dst.index());
            out.push(lhs.index());
            out.push(rhs.index());
        }
        Instr::Nop => out.push(OP_NOP),
        Instr::Halt => out.push(OP_HALT),
    }
    out.len() - start
}

/// Returns the encoded length of `instr` in bytes without encoding it.
pub fn encoded_len(instr: &Instr) -> usize {
    match instr {
        Instr::Enter { .. } => 3,
        Instr::Ret | Instr::Nop | Instr::Halt => 1,
        Instr::MovImm { .. } => 10,
        Instr::MovReg { .. } => 3,
        Instr::Load { .. } | Instr::Lea { .. } | Instr::Store { .. } => 7,
        Instr::Call { .. } | Instr::Jmp { .. } => 9,
        Instr::CallReg { .. } => 2,
        Instr::Branch { .. } => 10,
        Instr::BinOp { .. } => 5,
    }
}

fn need(bytes: &[u8], n: usize, at: Addr) -> Result<(), DecodeError> {
    if bytes.len() < n {
        Err(DecodeError::Truncated { at })
    } else {
        Ok(())
    }
}

fn reg(byte: u8, at: Addr) -> Result<Reg, DecodeError> {
    Reg::from_index(byte).ok_or(DecodeError::BadRegister { at, index: byte })
}

fn read_u16(bytes: &[u8]) -> u16 {
    u16::from_le_bytes([bytes[0], bytes[1]])
}

fn read_i32(bytes: &[u8]) -> i32 {
    i32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

fn read_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes([
        bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7],
    ])
}

/// Decodes one instruction from the front of `bytes`.
///
/// `at` is the address of `bytes[0]`, used only for error reporting.
/// On success returns the instruction and its encoded length.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the bytes are truncated, the opcode is
/// unknown, or an operand is out of range.
pub fn decode_instr(bytes: &[u8], at: Addr) -> Result<(Instr, usize), DecodeError> {
    need(bytes, 1, at)?;
    let opcode = bytes[0];
    let rest = &bytes[1..];
    match opcode {
        OP_ENTER => {
            need(rest, 2, at)?;
            Ok((Instr::Enter { frame: read_u16(rest) }, 3))
        }
        OP_RET => Ok((Instr::Ret, 1)),
        OP_MOV_IMM => {
            need(rest, 9, at)?;
            Ok((Instr::MovImm { dst: reg(rest[0], at)?, imm: read_u64(&rest[1..9]) }, 10))
        }
        OP_MOV_REG => {
            need(rest, 2, at)?;
            Ok((Instr::MovReg { dst: reg(rest[0], at)?, src: reg(rest[1], at)? }, 3))
        }
        OP_LOAD => {
            need(rest, 6, at)?;
            Ok((
                Instr::Load {
                    dst: reg(rest[0], at)?,
                    base: reg(rest[1], at)?,
                    offset: read_i32(&rest[2..6]),
                },
                7,
            ))
        }
        OP_STORE => {
            need(rest, 6, at)?;
            Ok((
                Instr::Store {
                    base: reg(rest[0], at)?,
                    src: reg(rest[1], at)?,
                    offset: read_i32(&rest[2..6]),
                },
                7,
            ))
        }
        OP_LEA => {
            need(rest, 6, at)?;
            Ok((
                Instr::Lea {
                    dst: reg(rest[0], at)?,
                    base: reg(rest[1], at)?,
                    offset: read_i32(&rest[2..6]),
                },
                7,
            ))
        }
        OP_CALL => {
            need(rest, 8, at)?;
            Ok((Instr::Call { target: Addr::new(read_u64(rest)) }, 9))
        }
        OP_CALL_REG => {
            need(rest, 1, at)?;
            Ok((Instr::CallReg { target: reg(rest[0], at)? }, 2))
        }
        OP_JMP => {
            need(rest, 8, at)?;
            Ok((Instr::Jmp { target: Addr::new(read_u64(rest)) }, 9))
        }
        OP_BRANCH => {
            need(rest, 9, at)?;
            Ok((
                Instr::Branch { cond: reg(rest[0], at)?, target: Addr::new(read_u64(&rest[1..9])) },
                10,
            ))
        }
        OP_BINOP => {
            need(rest, 4, at)?;
            let op =
                BinOp::from_code(rest[0]).ok_or(DecodeError::BadBinOp { at, code: rest[0] })?;
            Ok((
                Instr::BinOp {
                    op,
                    dst: reg(rest[1], at)?,
                    lhs: reg(rest[2], at)?,
                    rhs: reg(rest[3], at)?,
                },
                5,
            ))
        }
        OP_NOP => Ok((Instr::Nop, 1)),
        OP_HALT => Ok((Instr::Halt, 1)),
        other => Err(DecodeError::BadOpcode { at, opcode: other }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instrs() -> Vec<Instr> {
        vec![
            Instr::Enter { frame: 64 },
            Instr::Ret,
            Instr::MovImm { dst: Reg::R3, imm: 0xdead_beef_cafe },
            Instr::MovReg { dst: Reg::R1, src: Reg::R2 },
            Instr::Load { dst: Reg::R4, base: Reg::R0, offset: 16 },
            Instr::Store { base: Reg::R0, offset: -8, src: Reg::R5 },
            Instr::Lea { dst: Reg::R6, base: Reg::SP, offset: 24 },
            Instr::Call { target: Addr::new(0x4000) },
            Instr::CallReg { target: Reg::R7 },
            Instr::Jmp { target: Addr::new(0x4100) },
            Instr::Branch { cond: Reg::R8, target: Addr::new(0x4200) },
            Instr::BinOp { op: BinOp::Xor, dst: Reg::R9, lhs: Reg::R10, rhs: Reg::R11 },
            Instr::Nop,
            Instr::Halt,
        ]
    }

    #[test]
    fn roundtrip_all_instrs() {
        for instr in sample_instrs() {
            let mut buf = Vec::new();
            let n = encode_instr(&instr, &mut buf);
            assert_eq!(n, buf.len());
            assert_eq!(n, encoded_len(&instr), "encoded_len mismatch for {instr}");
            let (decoded, len) = decode_instr(&buf, Addr::new(0)).unwrap();
            assert_eq!(len, n);
            assert_eq!(decoded, instr);
        }
    }

    #[test]
    fn roundtrip_stream() {
        let instrs = sample_instrs();
        let mut buf = Vec::new();
        for i in &instrs {
            encode_instr(i, &mut buf);
        }
        let mut out = Vec::new();
        let mut pos = 0;
        while pos < buf.len() {
            let (i, n) = decode_instr(&buf[pos..], Addr::new(pos as u64)).unwrap();
            out.push(i);
            pos += n;
        }
        assert_eq!(out, instrs);
    }

    #[test]
    fn truncated_stream() {
        let mut buf = Vec::new();
        encode_instr(&Instr::MovImm { dst: Reg::R0, imm: 1 }, &mut buf);
        let err = decode_instr(&buf[..4], Addr::new(0x99)).unwrap_err();
        assert_eq!(err, DecodeError::Truncated { at: Addr::new(0x99) });
        assert!(decode_instr(&[], Addr::new(0)).is_err());
    }

    #[test]
    fn bad_opcode() {
        let err = decode_instr(&[0xf7], Addr::new(1)).unwrap_err();
        assert_eq!(err, DecodeError::BadOpcode { at: Addr::new(1), opcode: 0xf7 });
        // 0x00 is deliberately not a valid opcode so zero-filled data
        // does not decode as code.
        assert!(decode_instr(&[0x00], Addr::new(0)).is_err());
    }

    #[test]
    fn bad_register() {
        // MovReg with register index 16.
        let err = decode_instr(&[super::OP_MOV_REG, 16, 0], Addr::new(0)).unwrap_err();
        assert_eq!(err, DecodeError::BadRegister { at: Addr::new(0), index: 16 });
    }

    #[test]
    fn bad_binop_code() {
        let err = decode_instr(&[super::OP_BINOP, 99, 0, 1, 2], Addr::new(0)).unwrap_err();
        assert_eq!(err, DecodeError::BadBinOp { at: Addr::new(0), code: 99 });
    }

    #[test]
    fn negative_offsets_roundtrip() {
        let instr = Instr::Load { dst: Reg::R0, base: Reg::SP, offset: -128 };
        let mut buf = Vec::new();
        encode_instr(&instr, &mut buf);
        let (decoded, _) = decode_instr(&buf, Addr::new(0)).unwrap();
        assert_eq!(decoded, instr);
    }
}
