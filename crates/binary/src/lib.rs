//! Binary image substrate for the Rock reproduction.
//!
//! This crate models everything Rock (Katz, Rinetzky, Yahav — ASPLOS'18)
//! assumes about its input: a flat, byte-addressed **binary image** with a
//! text section holding byte-encoded machine instructions, a read-only data
//! section holding **virtual function tables** (arrays of code pointers) and
//! optional RTTI records, and an optional symbol table that stripping
//! removes.
//!
//! The instruction set is a small RISC-flavoured ISA that is nevertheless
//! rich enough to express everything the paper's analysis consumes:
//! vtable-pointer stores into objects, indirect (virtual) calls through
//! vtable slots, field loads/stores at object offsets, direct calls, and
//! ordinary control flow. Instructions are *really encoded to bytes* and
//! decoded back by [`decode_instr`], so downstream crates work from a
//! genuine "disassembly" rather than an AST.
//!
//! # Example
//!
//! ```
//! use rock_binary::{ImageBuilder, Instr, Reg, SectionKind};
//!
//! let mut b = ImageBuilder::new();
//! let f = b.begin_function("f");
//! b.push(Instr::Enter { frame: 16 });
//! b.push(Instr::MovImm { dst: Reg::R0, imm: 42 });
//! b.push(Instr::Ret);
//! b.end_function();
//! let image = b.finish();
//! assert!(image.section(SectionKind::Text).is_some());
//! assert_eq!(image.symbols().len(), 1);
//! let _ = f;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod builder;
mod encode;
mod error;
mod image;
mod instr;
mod reg;
mod rtti;
mod section;
mod serialize;
mod symbol;

pub use addr::Addr;
pub use builder::{FunctionHandle, ImageBuilder, VtableHandle};
pub use encode::{decode_instr, encode_instr, encoded_len};
pub use error::DecodeError;
pub use image::BinaryImage;
pub use instr::{BinOp, Instr};
pub use reg::Reg;
pub use rtti::RttiRecord;
pub use section::{Section, SectionKind};
pub use serialize::{image_from_bytes, image_to_bytes, ImageFormatError, MAGIC};
pub use symbol::{Symbol, SymbolTable};

/// Size, in bytes, of one machine word (pointers, vtable slots).
pub const WORD_SIZE: u64 = 8;
