use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A byte address inside a [`BinaryImage`](crate::BinaryImage).
///
/// `Addr` is a transparent newtype over `u64` used to keep code addresses,
/// data addresses and plain integers statically distinct in downstream
/// analyses.
///
/// # Example
///
/// ```
/// use rock_binary::Addr;
/// let a = Addr::new(0x1000);
/// assert_eq!((a + 8).value(), 0x1008);
/// assert_eq!(format!("{a}"), "0x1000");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// The null address.
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw value.
    pub const fn new(value: u64) -> Self {
        Addr(value)
    }

    /// Returns the raw numeric value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the null address.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Byte distance from `other` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn offset_from(self, other: Addr) -> u64 {
        self.0.checked_sub(other.0).expect("offset_from: base address is above self")
    }

    /// Checked addition of a byte delta.
    pub fn checked_add(self, delta: u64) -> Option<Addr> {
        self.0.checked_add(delta).map(Addr)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(value: u64) -> Self {
        Addr(value)
    }
}

impl From<Addr> for u64 {
    fn from(addr: Addr) -> Self {
        addr.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl AddAssign<u64> for Addr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<u64> for Addr {
    type Output = Addr;
    fn sub(self, rhs: u64) -> Addr {
        Addr(self.0 - rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let a = Addr::new(0xdead_beef);
        assert_eq!(a.value(), 0xdead_beef);
        assert_eq!(u64::from(a), 0xdead_beef);
        assert_eq!(Addr::from(0xdead_beefu64), a);
    }

    #[test]
    fn arithmetic() {
        let a = Addr::new(0x100);
        assert_eq!(a + 0x10, Addr::new(0x110));
        assert_eq!(a - 0x10, Addr::new(0xf0));
        assert_eq!((a + 8).offset_from(a), 8);
        let mut b = a;
        b += 4;
        assert_eq!(b, Addr::new(0x104));
    }

    #[test]
    fn null_checks() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr::new(1).is_null());
        assert!(Addr::default().is_null());
    }

    #[test]
    fn display_and_hex() {
        let a = Addr::new(0x1a2b);
        assert_eq!(format!("{a}"), "0x1a2b");
        assert_eq!(format!("{a:x}"), "1a2b");
        assert_eq!(format!("{a:X}"), "1A2B");
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(Addr::new(u64::MAX).checked_add(1), None);
        assert_eq!(Addr::new(1).checked_add(1), Some(Addr::new(2)));
    }

    #[test]
    #[should_panic(expected = "offset_from")]
    fn offset_from_panics_when_negative() {
        let _ = Addr::new(0).offset_from(Addr::new(1));
    }

    #[test]
    fn ordering() {
        assert!(Addr::new(1) < Addr::new(2));
    }
}
