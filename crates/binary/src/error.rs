use std::error::Error;
use std::fmt;

use crate::Addr;

/// An error produced while decoding bytes into an instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream ended in the middle of an instruction.
    Truncated {
        /// Address the decode started at.
        at: Addr,
    },
    /// The opcode byte is not a valid instruction.
    BadOpcode {
        /// Address of the offending byte.
        at: Addr,
        /// The opcode byte found.
        opcode: u8,
    },
    /// A register operand is out of range.
    BadRegister {
        /// Address of the instruction.
        at: Addr,
        /// The register index found.
        index: u8,
    },
    /// A [`BinOp`](crate::BinOp) discriminant is out of range.
    BadBinOp {
        /// Address of the instruction.
        at: Addr,
        /// The discriminant found.
        code: u8,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { at } => {
                write!(f, "truncated instruction at {at}")
            }
            DecodeError::BadOpcode { at, opcode } => {
                write!(f, "invalid opcode {opcode:#04x} at {at}")
            }
            DecodeError::BadRegister { at, index } => {
                write!(f, "invalid register index {index} at {at}")
            }
            DecodeError::BadBinOp { at, code } => {
                write!(f, "invalid binary-op code {code} at {at}")
            }
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let at = Addr::new(0x10);
        assert_eq!(DecodeError::Truncated { at }.to_string(), "truncated instruction at 0x10");
        assert_eq!(
            DecodeError::BadOpcode { at, opcode: 0xff }.to_string(),
            "invalid opcode 0xff at 0x10"
        );
        assert_eq!(
            DecodeError::BadRegister { at, index: 99 }.to_string(),
            "invalid register index 99 at 0x10"
        );
        assert_eq!(
            DecodeError::BadBinOp { at, code: 42 }.to_string(),
            "invalid binary-op code 42 at 0x10"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<DecodeError>();
    }
}
