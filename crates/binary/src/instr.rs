use std::fmt;

use crate::{Addr, Reg};

/// A binary arithmetic / comparison operation used by [`Instr::BinOp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Lt,
}

impl BinOp {
    /// All operations, in encoding order.
    pub const ALL: [BinOp; 10] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Eq,
        BinOp::Lt,
    ];

    /// Encoding discriminant.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`BinOp::code`].
    pub fn from_code(code: u8) -> Option<BinOp> {
        BinOp::ALL.get(code as usize).copied()
    }

    /// Evaluates the operation over two machine words.
    pub fn eval(self, lhs: u64, rhs: u64) -> u64 {
        match self {
            BinOp::Add => lhs.wrapping_add(rhs),
            BinOp::Sub => lhs.wrapping_sub(rhs),
            BinOp::Mul => lhs.wrapping_mul(rhs),
            BinOp::And => lhs & rhs,
            BinOp::Or => lhs | rhs,
            BinOp::Xor => lhs ^ rhs,
            BinOp::Shl => lhs.wrapping_shl(rhs as u32),
            BinOp::Shr => lhs.wrapping_shr(rhs as u32),
            BinOp::Eq => u64::from(lhs == rhs),
            BinOp::Lt => u64::from(lhs < rhs),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Eq => "eq",
            BinOp::Lt => "lt",
        };
        f.write_str(s)
    }
}

/// A machine instruction of the substrate ISA.
///
/// The ISA is deliberately small but expresses every artifact the Rock
/// analysis consumes:
///
/// * `MovImm` of a data-section address + `Store { offset: 0 }` — a
///   **vtable-pointer assignment**, the signal used to identify typed
///   objects (paper §3.2);
/// * `Load` of a code pointer from a vtable slot + `CallReg` — a **virtual
///   call** `C(i)`;
/// * `Load`/`Store` at non-zero offsets — **field reads/writes** `R(i)`,
///   `W(i)`;
/// * `Call` — direct calls `call(f)` and argument events `Arg(i)`/`this`;
/// * `Ret` — the `ret` event;
/// * `Enter` — a prologue marker that doubles as the function-boundary
///   signature recovered by the loader (the stripped-binary equivalent of
///   recognizing `push ebp; mov ebp, esp`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Function prologue; `frame` is the stack-frame size in bytes.
    Enter {
        /// Stack frame size in bytes.
        frame: u16,
    },
    /// Return from the current function (return value in `R0`).
    Ret,
    /// `dst <- imm`. Also used to materialize code/data addresses.
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value (possibly an address).
        imm: u64,
    },
    /// `dst <- src`.
    MovReg {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst <- mem[base + offset]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// `mem[base + offset] <- src`.
    Store {
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i32,
        /// Source register.
        src: Reg,
    },
    /// `dst <- base + offset` (address computation; e.g. stack objects,
    /// multiple-inheritance `this` adjustment).
    Lea {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Direct call to a code address.
    Call {
        /// Callee entry point.
        target: Addr,
    },
    /// Indirect call through a register (virtual dispatch).
    CallReg {
        /// Register holding the callee address.
        target: Reg,
    },
    /// Unconditional jump.
    Jmp {
        /// Jump target.
        target: Addr,
    },
    /// Conditional branch: taken if `cond != 0`, otherwise falls through.
    Branch {
        /// Condition register.
        cond: Reg,
        /// Branch target when the condition is non-zero.
        target: Addr,
    },
    /// `dst <- op(lhs, rhs)`.
    BinOp {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
    },
    /// No operation (alignment / padding).
    Nop,
    /// Stop execution (process exit).
    Halt,
}

impl Instr {
    /// Returns `true` for instructions that terminate a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Instr::Ret | Instr::Jmp { .. } | Instr::Branch { .. } | Instr::Halt)
    }

    /// Returns `true` if this instruction can fall through to the next one.
    pub fn falls_through(&self) -> bool {
        !matches!(self, Instr::Ret | Instr::Jmp { .. } | Instr::Halt)
    }

    /// Returns `true` for call instructions (direct or indirect).
    pub fn is_call(&self) -> bool {
        matches!(self, Instr::Call { .. } | Instr::CallReg { .. })
    }

    /// The immediate value carried by the instruction, if any.
    pub fn immediate(&self) -> Option<u64> {
        match self {
            Instr::MovImm { imm, .. } => Some(*imm),
            Instr::Call { target } | Instr::Jmp { target } | Instr::Branch { target, .. } => {
                Some(target.value())
            }
            _ => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Enter { frame } => write!(f, "enter {frame}"),
            Instr::Ret => write!(f, "ret"),
            Instr::MovImm { dst, imm } => write!(f, "mov {dst}, {imm:#x}"),
            Instr::MovReg { dst, src } => write!(f, "mov {dst}, {src}"),
            Instr::Load { dst, base, offset } => write!(f, "ld {dst}, [{base}{offset:+}]"),
            Instr::Store { base, offset, src } => write!(f, "st [{base}{offset:+}], {src}"),
            Instr::Lea { dst, base, offset } => write!(f, "lea {dst}, [{base}{offset:+}]"),
            Instr::Call { target } => write!(f, "call {target}"),
            Instr::CallReg { target } => write!(f, "call [{target}]"),
            Instr::Jmp { target } => write!(f, "jmp {target}"),
            Instr::Branch { cond, target } => write!(f, "bnz {cond}, {target}"),
            Instr::BinOp { op, dst, lhs, rhs } => write!(f, "{op} {dst}, {lhs}, {rhs}"),
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_code_roundtrip() {
        for op in BinOp::ALL {
            assert_eq!(BinOp::from_code(op.code()), Some(op));
        }
        assert_eq!(BinOp::from_code(200), None);
    }

    #[test]
    fn binop_eval() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Sub.eval(2, 3), u64::MAX);
        assert_eq!(BinOp::Mul.eval(4, 4), 16);
        assert_eq!(BinOp::Eq.eval(7, 7), 1);
        assert_eq!(BinOp::Eq.eval(7, 8), 0);
        assert_eq!(BinOp::Lt.eval(1, 2), 1);
        assert_eq!(BinOp::Shl.eval(1, 4), 16);
        assert_eq!(BinOp::Shr.eval(16, 4), 1);
        assert_eq!(BinOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(BinOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(BinOp::Or.eval(0b1100, 0b1010), 0b1110);
    }

    #[test]
    fn terminators() {
        assert!(Instr::Ret.is_terminator());
        assert!(Instr::Halt.is_terminator());
        assert!(Instr::Jmp { target: Addr::new(0) }.is_terminator());
        assert!(Instr::Branch { cond: Reg::R0, target: Addr::new(0) }.is_terminator());
        assert!(!Instr::Nop.is_terminator());
        assert!(!Instr::Call { target: Addr::new(0) }.is_terminator());
    }

    #[test]
    fn fallthrough() {
        assert!(!Instr::Ret.falls_through());
        assert!(!Instr::Jmp { target: Addr::new(4) }.falls_through());
        assert!(Instr::Branch { cond: Reg::R1, target: Addr::new(4) }.falls_through());
        assert!(Instr::Nop.falls_through());
    }

    #[test]
    fn calls_and_immediates() {
        assert!(Instr::Call { target: Addr::new(8) }.is_call());
        assert!(Instr::CallReg { target: Reg::R3 }.is_call());
        assert!(!Instr::Ret.is_call());
        assert_eq!(Instr::MovImm { dst: Reg::R0, imm: 9 }.immediate(), Some(9));
        assert_eq!(Instr::Call { target: Addr::new(8) }.immediate(), Some(8));
        assert_eq!(Instr::Ret.immediate(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Instr::Enter { frame: 32 }), "enter 32");
        assert_eq!(
            format!("{}", Instr::Load { dst: Reg::R1, base: Reg::R0, offset: 8 }),
            "ld r1, [r0+8]"
        );
        assert_eq!(
            format!("{}", Instr::Store { base: Reg::R0, offset: 0, src: Reg::R2 }),
            "st [r0+0], r2"
        );
        assert_eq!(format!("{}", Instr::CallReg { target: Reg::R4 }), "call [r4]");
    }
}
