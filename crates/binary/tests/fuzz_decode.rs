//! Fuzz-style property tests: the decoder and the image parser must never
//! panic, whatever bytes they are fed, and must roundtrip everything the
//! encoder produces.

use proptest::prelude::*;
use rock_binary::{
    decode_instr, encode_instr, image_from_bytes, image_to_bytes, Addr, BinOp, Instr, Reg,
};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::from_index(i).expect("valid index"))
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (any::<u16>()).prop_map(|frame| Instr::Enter { frame }),
        Just(Instr::Ret),
        (arb_reg(), any::<u64>()).prop_map(|(dst, imm)| Instr::MovImm { dst, imm }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Instr::MovReg { dst, src }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(dst, base, offset)| Instr::Load {
            dst,
            base,
            offset
        }),
        (arb_reg(), any::<i32>(), arb_reg()).prop_map(|(base, offset, src)| Instr::Store {
            base,
            offset,
            src
        }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(dst, base, offset)| Instr::Lea {
            dst,
            base,
            offset
        }),
        any::<u64>().prop_map(|a| Instr::Call { target: Addr::new(a) }),
        arb_reg().prop_map(|target| Instr::CallReg { target }),
        any::<u64>().prop_map(|a| Instr::Jmp { target: Addr::new(a) }),
        (arb_reg(), any::<u64>())
            .prop_map(|(cond, a)| Instr::Branch { cond, target: Addr::new(a) }),
        (0u8..10, arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, dst, lhs, rhs)| {
            Instr::BinOp { op: BinOp::from_code(op).expect("valid"), dst, lhs, rhs }
        }),
        Just(Instr::Nop),
        Just(Instr::Halt),
    ]
}

proptest! {
    /// Arbitrary instruction streams roundtrip exactly.
    #[test]
    fn instruction_streams_roundtrip(instrs in prop::collection::vec(arb_instr(), 0..40)) {
        let mut bytes = Vec::new();
        for i in &instrs {
            encode_instr(i, &mut bytes);
        }
        let mut decoded = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let (i, n) = decode_instr(&bytes[pos..], Addr::new(pos as u64)).unwrap();
            decoded.push(i);
            pos += n;
        }
        prop_assert_eq!(decoded, instrs);
    }

    /// Arbitrary bytes never panic the decoder — they decode or error.
    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut pos = 0usize;
        // Walk as far as the stream decodes; stop at the first error.
        while pos < bytes.len() {
            match decode_instr(&bytes[pos..], Addr::new(pos as u64)) {
                Ok((_, n)) => {
                    prop_assert!(n > 0);
                    pos += n;
                }
                Err(_) => break,
            }
        }
    }

    /// Arbitrary bytes never panic the image parser.
    #[test]
    fn image_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = image_from_bytes(&bytes);
    }

    /// Mutating one byte of a valid image never panics the parser.
    #[test]
    fn image_mutation_never_panics(pos_seed in any::<usize>(), val in any::<u8>()) {
        use rock_binary::ImageBuilder;
        let mut b = ImageBuilder::new();
        let f = b.begin_function("f");
        b.push(Instr::Enter { frame: 0 });
        b.push(Instr::Ret);
        b.end_function();
        b.add_vtable("vt", vec![f]);
        let image = b.finish();
        let mut bytes = image_to_bytes(&image);
        let pos = pos_seed % bytes.len();
        bytes[pos] = val;
        let _ = image_from_bytes(&bytes);
    }
}
