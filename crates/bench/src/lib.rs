//! Benchmark and table/figure regeneration harness for the Rock
//! reproduction.
//!
//! Binaries (run with `cargo run -p rock-bench --bin <name>`):
//!
//! * `table2` — regenerates Table 2 (application distance per benchmark,
//!   with vs. without SLMs, measured vs. paper);
//! * `fig6` — the running example's D_KL ranking (Fig. 6 / §2.2);
//! * `metric_ablation` — KL vs. JS-divergence vs. JS-distance (§6.4
//!   "Other Metrics");
//! * `sweeps` — tracelet-length and SLM-depth sensitivity (design
//!   ablations called out in DESIGN.md).
//!
//! Criterion benches live in `benches/` (arborescence scaling, analysis
//! scalability, pipeline end-to-end).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rock_core::suite::Benchmark;
use rock_core::{evaluate, Evaluation, Rock, RockConfig};
use rock_loader::LoadedBinary;

/// Compiles, strips, loads, reconstructs and evaluates one benchmark.
///
/// # Panics
///
/// Panics if the benchmark fails to compile or load (suite programs never
/// should).
pub fn run_benchmark(bench: &Benchmark, config: RockConfig) -> Evaluation {
    run_benchmark_with(bench, &Rock::new(config))
}

/// Like [`run_benchmark`], with a caller-supplied reconstructor.
///
/// Lets ablation sweeps pass a [`Rock`] built via
/// [`Rock::with_shared_cache`] so repeated passes over the same benchmark
/// (e.g. one per metric) reuse every already-computed pair divergence
/// instead of recomputing the full distance matrix.
///
/// # Panics
///
/// Panics if the benchmark fails to compile or load (suite programs never
/// should).
pub fn run_benchmark_with(bench: &Benchmark, rock: &Rock) -> Evaluation {
    let compiled = bench.compile().expect("suite benchmarks compile");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("compiled images load");
    let recon = rock.reconstruct(&loaded);
    evaluate(&compiled, &recon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_core::suite;

    #[test]
    fn streams_example_runs_clean() {
        let eval = run_benchmark(&suite::streams_example(), RockConfig::paper());
        assert_eq!(eval.with_slm.avg_missing, 0.0);
        assert_eq!(eval.with_slm.avg_added, 0.0);
    }

    #[test]
    fn shared_cache_carries_across_passes() {
        let bench = suite::streams_example();
        let rock = Rock::new(RockConfig::paper());
        let first = run_benchmark_with(&bench, &rock);
        let warm = rock.cache().misses();
        assert!(warm > 0, "first pass must populate the cache");
        let second = run_benchmark_with(&bench, &rock);
        assert_eq!(rock.cache().misses(), warm, "second pass must be all hits");
        assert_eq!(first.with_slm.avg_missing, second.with_slm.avg_missing);
        assert_eq!(first.with_slm.avg_added, second.with_slm.avg_added);
    }
}
