//! Ablation of **Heuristic 4.1** ("it is more plausible for a binary type
//! to be a derived type than a root type") and of the *global* tree
//! constraint.
//!
//! Compares three lifting strategies over the same structural candidates
//! and behavioral distances:
//!
//! 1. **arborescence** (the paper): minimum-weight maximal forest —
//!    global consistency + root-aversion;
//! 2. **greedy argmin**: every type independently picks its cheapest
//!    candidate parent — no tree constraint (may create cycles, which the
//!    successor computation then truncates);
//! 3. **thresholded greedy**: like 2, but a type stays a root unless its
//!    best candidate is below the median edge weight — root-friendly,
//!    violating Heuristic 4.1.
//!
//! ```text
//! cargo run -p rock-bench --bin heuristic_ablation
//! ```

use std::collections::BTreeMap;

use rock_binary::Addr;
use rock_core::suite::all_benchmarks;
use rock_core::{evaluate, Rock, RockConfig};
use rock_graph::Forest;
use rock_loader::LoadedBinary;

fn main() {
    let benches: Vec<_> =
        all_benchmarks().into_iter().filter(|b| !b.structurally_resolvable).collect();

    let mut totals: BTreeMap<&str, (f64, f64)> = BTreeMap::new();
    println!(
        "{:<18} | {:>13} | {:>13} | {:>13}",
        "benchmark", "arborescence", "greedy", "threshold"
    );
    println!("{}", "-".repeat(70));
    for bench in &benches {
        let compiled = bench.compile().expect("compiles");
        let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
        let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);

        // 1. The paper's result.
        let arb = evaluate(&compiled, &recon).with_slm;

        // Median edge weight for the threshold variant.
        let mut weights: Vec<f64> = recon.distances.values().copied().collect();
        weights.sort_by(f64::total_cmp);
        let median = weights.get(weights.len() / 2).copied().unwrap_or(f64::MAX);

        let variant = |threshold: Option<f64>| {
            let mut forest: Forest<Addr> = Forest::new();
            for family in recon.structural.families() {
                for &child in family {
                    let best = recon
                        .structural
                        .possible_parents()
                        .of(child)
                        .into_iter()
                        .map(|p| (recon.distances.get(&(p, child)).copied().unwrap_or(f64::MAX), p))
                        .min_by(|a, b| a.0.total_cmp(&b.0));
                    let parent = match (best, threshold) {
                        (Some((w, p)), Some(t)) if w <= t => Some(p),
                        (Some(_), Some(_)) => None,
                        (Some((_, p)), None) => Some(p),
                        (None, _) => None,
                    };
                    forest.insert(child, parent);
                }
            }
            // Break any greedy cycles by re-rooting an arbitrary member.
            let nodes: Vec<Addr> = forest.nodes().copied().collect();
            for n in nodes {
                if !forest.is_acyclic() {
                    forest.insert(n, None);
                }
            }
            let mut alt = recon.clone();
            alt.hierarchy = forest;
            evaluate(&compiled, &alt).with_slm
        };

        let greedy = variant(None);
        let thresh = variant(Some(median));

        println!(
            "{:<18} | {:>5.2}/{:<6.2} | {:>5.2}/{:<6.2} | {:>5.2}/{:<6.2}",
            bench.name,
            arb.avg_missing,
            arb.avg_added,
            greedy.avg_missing,
            greedy.avg_added,
            thresh.avg_missing,
            thresh.avg_added,
        );
        for (key, d) in [("arb", &arb), ("greedy", &greedy), ("thresh", &thresh)] {
            let e = totals.entry(key).or_insert((0.0, 0.0));
            e.0 += d.avg_missing;
            e.1 += d.avg_added;
        }
    }
    println!("{}", "-".repeat(70));
    let n = benches.len() as f64;
    for (key, (m, a)) in &totals {
        println!("{key:>10}: mean missing {:.3}, mean added {:.3}", m / n, a / n);
    }
    let arb_total = totals["arb"].0 + totals["arb"].1;
    let thresh_total = totals["thresh"].0 + totals["thresh"].1;
    println!(
        "\nHeuristic 4.1 + global tree constraint {} the threshold variant.",
        if arb_total <= thresh_total { "beats" } else { "LOSES TO" }
    );
}
