//! Regenerates the **Fig. 6 / §2.2** measurement: the D_KL ranking that
//! picks `Class1` (Stream) over `Class2` (ConfirmableStream) as the
//! parent of `Class3` (FlushableStream).
//!
//! The paper reports 0.07 vs 0.21 on its (unspecified) word weighting;
//! absolute values differ here, but the *ranking* — the only thing the
//! algorithm consumes (Remark 4.1) — must match.
//!
//! ```text
//! cargo run -p rock-bench --bin fig6
//! ```

use rock_core::suite::streams_example;
use rock_core::{Rock, RockConfig};
use rock_loader::LoadedBinary;

fn main() {
    let bench = streams_example();
    let compiled = bench.compile().expect("compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);

    let stream = compiled.vtable_of("Stream").expect("exists");
    let confirmable = compiled.vtable_of("ConfirmableStream").expect("exists");
    let flushable = compiled.vtable_of("FlushableStream").expect("exists");

    let d31 = recon.distances[&(stream, flushable)];
    let d32 = recon.distances[&(confirmable, flushable)];
    println!("Fig. 6 candidate parents of Class3 (FlushableStream):");
    println!("  (a) Class1 = Stream:            D = {d31:.4}   (paper: 0.07)");
    println!("  (b) Class2 = ConfirmableStream: D = {d32:.4}   (paper: 0.21)");
    println!(
        "  ranking {} (paper: (a) wins)",
        if d31 < d32 { "(a) wins — hierarchy 6a chosen" } else { "(b) wins — WRONG" }
    );
    assert!(d31 < d32);
    println!("\nchosen hierarchy:");
    for (class, vt) in compiled.vtables() {
        let parent = recon.parent_of(*vt).and_then(|p| compiled.class_of(p)).unwrap_or("(root)");
        println!("  {class} : {parent}");
    }
}
