//! Parameter sweeps: design-choice ablations called out in DESIGN.md.
//!
//! * **tracelet window length** (paper uses 7, §3.2);
//! * **SLM depth D** (paper's running example uses 2, §3.1);
//! * **structural phase on/off** (SLM-only: every same-family pair is a
//!   candidate edge).
//!
//! ```text
//! cargo run -p rock-bench --bin sweeps
//! ```

use rock_bench::run_benchmark;
use rock_core::suite::all_benchmarks;
use rock_core::RockConfig;

fn main() {
    let benches: Vec<_> =
        all_benchmarks().into_iter().filter(|b| !b.structurally_resolvable).collect();

    println!("== tracelet window length sweep (with-SLM mean missing/added) ==");
    for len in [3usize, 5, 7, 9, 12] {
        let mut config = RockConfig::paper();
        config.analysis.tracelet_len = len;
        let (m, a) = mean(&benches, config);
        println!("  L = {len:>2}: missing {m:.3}, added {a:.3}");
    }

    println!("\n== SLM depth sweep ==");
    for depth in [0usize, 1, 2, 3, 4] {
        let mut config = RockConfig::paper();
        config.analysis.slm_depth = depth;
        let (m, a) = mean(&benches, config);
        println!("  D = {depth}: missing {m:.3}, added {a:.3}");
    }

    println!("\n== path budget sweep (scalability/accuracy trade-off, §3.2) ==");
    for paths in [4usize, 16, 64] {
        let mut config = RockConfig::paper();
        config.analysis.max_paths = paths;
        let (m, a) = mean(&benches, config);
        println!("  max_paths = {paths:>3}: missing {m:.3}, added {a:.3}");
    }
}

fn mean(benches: &[rock_core::suite::Benchmark], config: RockConfig) -> (f64, f64) {
    let mut m = 0.0;
    let mut a = 0.0;
    for b in benches {
        let eval = run_benchmark(b, config);
        m += eval.with_slm.avg_missing;
        a += eval.with_slm.avg_added;
    }
    (m / benches.len() as f64, a / benches.len() as f64)
}
