//! Regenerates the **§6.4 "Applying Control Flow Integrity"** trade-off:
//! assigning several parents to each type trades false negatives
//! (missing successor types — lost CFI targets, unsound) for false
//! positives (added types — larger CFI payload).
//!
//! ```text
//! cargo run -p rock-bench --bin k_parents
//! ```

use rock_core::suite::all_benchmarks;
use rock_core::{evaluate_k_parents, Rock, RockConfig};
use rock_loader::LoadedBinary;

fn main() {
    let benches: Vec<_> =
        all_benchmarks().into_iter().filter(|b| !b.structurally_resolvable).collect();

    println!("k-parents CFI trade-off (mean missing/added over the 9 behavioral benchmarks)");
    println!("{:<4} | {:>8} | {:>8}", "k", "missing", "added");
    println!("{}", "-".repeat(28));
    let mut prev_missing = f64::INFINITY;
    for k in 1..=4usize {
        let mut missing = 0.0;
        let mut added = 0.0;
        for bench in &benches {
            let compiled = bench.compile().expect("compiles");
            let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
            let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
            let dist = evaluate_k_parents(&compiled, &recon, k);
            missing += dist.avg_missing;
            added += dist.avg_added;
        }
        missing /= benches.len() as f64;
        added /= benches.len() as f64;
        println!("{k:<4} | {missing:>8.3} | {added:>8.3}");
        assert!(missing <= prev_missing + 1e-9, "missing must be non-increasing in k");
        prev_missing = missing;
    }
    println!("\nMore parents per type -> fewer missing (false negatives), more added");
    println!("(false positives) — the §6.4 trade-off, 'still polynomial'.");
}
