//! Evaluates the **behavioral family repartitioning** extension — the
//! future work the paper sketches in §6.4 ("since our current
//! implementation does not attempt to repartition based on usage, our
//! technique will not be beneficial in these cases").
//!
//! False family splits (error source 2) produce *missing* types that no
//! within-family analysis can recover: tinyxml's root loses all 8
//! children. Repartitioning reattaches hierarchy roots across family
//! boundaries when the behavioral distance is within the range of
//! already-accepted edges.
//!
//! ```text
//! cargo run -p rock-bench --bin repartition --release
//! ```

use rock_bench::run_benchmark;
use rock_core::suite::all_benchmarks;
use rock_core::RockConfig;

fn main() {
    println!("{:<18} | {:>15} | {:>15}", "benchmark", "baseline (m/a)", "repartition (m/a)");
    println!("{}", "-".repeat(60));
    let mut base_total = (0.0, 0.0);
    let mut rep_total = (0.0, 0.0);
    let mut n = 0.0;
    for bench in all_benchmarks() {
        let base = run_benchmark(&bench, RockConfig::paper()).with_slm;
        let rep = run_benchmark(&bench, RockConfig::paper().with_repartitioning()).with_slm;
        println!(
            "{:<18} | {:>6.2}/{:<7.2} | {:>6.2}/{:<7.2}",
            bench.name, base.avg_missing, base.avg_added, rep.avg_missing, rep.avg_added
        );
        base_total.0 += base.avg_missing;
        base_total.1 += base.avg_added;
        rep_total.0 += rep.avg_missing;
        rep_total.1 += rep.avg_added;
        n += 1.0;
    }
    println!("{}", "-".repeat(60));
    println!(
        "mean: baseline {:.3}/{:.3}  repartition {:.3}/{:.3}",
        base_total.0 / n,
        base_total.1 / n,
        rep_total.0 / n,
        rep_total.1 / n
    );
    println!(
        "\nRepartitioning heals split-family *missing* errors (tinyxml & co.)\n\
         at the risk of extra *added* types where the ground truth really\n\
         does keep families apart."
    );
}
