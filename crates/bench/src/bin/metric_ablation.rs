//! Regenerates the **§6.4 "Other Metrics"** ablation: KL divergence vs.
//! the symmetric JS divergence and JS distance, across the nine
//! benchmarks that need behavioral analysis.
//!
//! The paper: "These other metrics performed poorly compared to the DKL
//! metric we used. This is most likely because these are symmetric
//! methods while our problem is inherently asymmetric."
//!
//! ```text
//! cargo run -p rock-bench --bin metric_ablation
//! ```

use std::sync::Arc;

use rock_bench::run_benchmark_with;
use rock_core::suite::all_benchmarks;
use rock_core::{Rock, RockConfig};
use rock_slm::{DistanceCache, Metric};

fn main() {
    let benches: Vec<_> =
        all_benchmarks().into_iter().filter(|b| !b.structurally_resolvable).collect();

    println!(
        "{:<18} | {:>13} | {:>13} | {:>13}",
        "benchmark", "KL (m/a)", "JS-div (m/a)", "JS-dist (m/a)"
    );
    println!("{}", "-".repeat(70));

    let mut totals = vec![(0.0, 0.0); Metric::ALL.len()];
    for bench in &benches {
        // One distance cache per benchmark (cache keys are vtable
        // addresses, valid only within one binary): the three metric
        // passes share every pair divergence they have in common.
        let cache = Arc::new(DistanceCache::new());
        let mut cells = Vec::new();
        for (mi, metric) in Metric::ALL.iter().enumerate() {
            let rock =
                Rock::with_shared_cache(RockConfig::with_metric(*metric), Arc::clone(&cache));
            let eval = run_benchmark_with(bench, &rock);
            totals[mi].0 += eval.with_slm.avg_missing;
            totals[mi].1 += eval.with_slm.avg_added;
            cells.push(format!(
                "{:>5.2}/{:<5.2}",
                eval.with_slm.avg_missing, eval.with_slm.avg_added
            ));
        }
        println!("{:<18} | {} | {} | {}", bench.name, cells[0], cells[1], cells[2]);
    }
    println!("{}", "-".repeat(70));
    let n = benches.len() as f64;
    print!("{:<18} |", "mean");
    for (m, a) in &totals {
        print!(" {:>5.2}/{:<5.2} |", m / n, a / n);
    }
    println!();

    let kl_err = totals[0].0 + totals[0].1;
    let js_err = totals[1].0 + totals[1].1;
    let jsd_err = totals[2].0 + totals[2].1;
    println!("\ntotal error: KL {kl_err:.2}, JS-divergence {js_err:.2}, JS-distance {jsd_err:.2}");
    if kl_err <= js_err && kl_err <= jsd_err {
        println!("KL (asymmetric) wins — matches the paper's §6.4 observation.");
    } else {
        println!("WARNING: a symmetric metric won; the paper's observation did not hold.");
    }
}
