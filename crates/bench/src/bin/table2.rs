//! Regenerates **Table 2** of the paper: the application distance (average
//! missing / added successor types per type) on all 19 benchmarks, with
//! and without SLMs, next to the paper's reported values.
//!
//! ```text
//! cargo run -p rock-bench --bin table2
//! ```

use rock_bench::run_benchmark;
use rock_core::suite::all_benchmarks;
use rock_core::{render_table2, RockConfig, Table2Row};

fn main() {
    let mut rows = Vec::new();
    for bench in all_benchmarks() {
        let eval = run_benchmark(&bench, RockConfig::paper());
        let row = Table2Row::new(&bench, &eval);
        eprintln!(
            "{:<18} done ({} types, structurally resolved: {})",
            bench.name, eval.num_types, eval.structurally_resolved
        );
        rows.push(row);
    }
    println!();
    println!("Table 2 — Application distance from H_P (measured | paper)");
    println!("{}", render_table2(&rows));
    let holding = rows.iter().filter(|r| r.shape_holds()).count();
    println!("shape holds on {holding}/{} benchmarks", rows.len());
}
