//! Reproduces the paper's **§7 related-work argument** against dynamic
//! reconstruction (Lego, Srinivasan & Reps): dynamic tools recover
//! hierarchies from vtable-pointer evolution during construction, which
//! works perfectly on debug builds and **collapses under constructor
//! inlining** — while Rock's static behavioral analysis keeps working.
//!
//! For each of the nine behavioral benchmarks, both reconstructors run on
//! the same binary (the dynamic one gets the *unstripped* image — it
//! needs the allocator; Rock gets the stripped one, as always).
//!
//! ```text
//! cargo run -p rock-bench --bin dynamic_vs_static --release
//! ```

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use rock_core::suite::all_benchmarks;
use rock_core::{evaluate, Rock, RockConfig};
use rock_loader::LoadedBinary;
use rock_vm::{dynamic_reconstruct, DynamicOptions};

fn main() {
    println!("{:<18} | {:>16} | {:>16}", "benchmark", "dynamic (m/a)", "Rock static (m/a)");
    println!("{}", "-".repeat(60));
    let mut dyn_missing_total = 0.0;
    let mut rock_missing_total = 0.0;
    let mut n = 0.0;
    for bench in all_benchmarks().into_iter().filter(|b| !b.structurally_resolvable) {
        let compiled = bench.compile().expect("compiles");

        // Dynamic baseline on the unstripped image.
        let dyn_forest =
            dynamic_reconstruct(compiled.image(), &DynamicOptions::default()).expect("runs");
        // Score it with the same successor metric: project to names.
        let mut dyn_succ: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let gt = compiled.ground_truth();
        for c in gt.classes() {
            let vt = compiled.vtable_of(c).expect("class has vtable");
            let succ: BTreeSet<String> = dyn_forest
                .successors(&vt)
                .into_iter()
                .filter_map(|s| compiled.class_of(s).map(str::to_string))
                .collect();
            dyn_succ.insert(c.to_string(), succ);
        }
        let mut dyn_missing = 0usize;
        let mut dyn_added = 0usize;
        for c in gt.classes() {
            let want = gt.successors(c);
            let got = &dyn_succ[c];
            dyn_missing += want.difference(got).count();
            dyn_added += got.difference(&want).count();
        }
        let types = gt.len() as f64;

        // Rock on the stripped image.
        let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
        let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
        let eval = evaluate(&compiled, &recon);

        let dm = dyn_missing as f64 / types;
        let da = dyn_added as f64 / types;
        println!(
            "{:<18} | {:>7.2}/{:<8.2} | {:>7.2}/{:<8.2}",
            bench.name, dm, da, eval.with_slm.avg_missing, eval.with_slm.avg_added
        );
        dyn_missing_total += dm;
        rock_missing_total += eval.with_slm.avg_missing;
        n += 1.0;
    }
    println!("{}", "-".repeat(60));
    println!(
        "mean missing: dynamic {:.2} vs Rock {:.2}",
        dyn_missing_total / n,
        rock_missing_total / n
    );
    assert!(
        dyn_missing_total > rock_missing_total,
        "inlined ctors must hurt the dynamic baseline more than Rock"
    );
    println!(
        "\nWith parent-ctor inlining, the construction-time evidence dynamic tools\n\
         rely on is dead-store-eliminated; Rock's behavioral analysis is unaffected\n\
         (the §7 Lego comparison)."
    );
}
