//! Microbenchmarks of the statistical substrate (§3.1): PPM-C training,
//! sequence scoring and pairwise divergence, as a function of training
//! volume and model depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rock_slm::{kl_divergence, Slm};

/// Deterministic pseudo-random tracelet corpus over a small alphabet.
fn corpus(sequences: usize, len: usize, salt: u64) -> Vec<Vec<u8>> {
    let mut state = 0xabcdef12u64 ^ salt;
    (0..sequences)
        .map(|_| {
            (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((state >> 33) % 12) as u8
                })
                .collect()
        })
        .collect()
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("slm_train");
    for n in [16usize, 64, 256] {
        let data = corpus(n, 7, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                let mut m = Slm::new(2);
                for seq in data {
                    m.train(std::hint::black_box(seq));
                }
                m
            });
        });
    }
    group.finish();
}

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("slm_train_depth");
    let data = corpus(64, 7, 2);
    for depth in [1usize, 2, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut m = Slm::new(depth);
                for seq in &data {
                    m.train(seq);
                }
                m
            });
        });
    }
    group.finish();
}

fn bench_divergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("kl_divergence");
    for n in [16usize, 64, 256] {
        let mut a = Slm::new(2);
        let mut b_model = Slm::new(2);
        for seq in corpus(n, 7, 3) {
            a.train(&seq);
        }
        for seq in corpus(n, 7, 4) {
            b_model.train(&seq);
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(a, b_model),
            |bencher, (a, b_model)| {
                bencher
                    .iter(|| kl_divergence(std::hint::black_box(a), std::hint::black_box(b_model)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_training, bench_depth, bench_divergence);
criterion_main!(benches);
