//! Microbenchmarks of the statistical substrate (§3.1): PPM-C training,
//! sequence scoring and pairwise divergence, as a function of training
//! volume and model depth — plus the arena-vs-seed comparison on real
//! `stress_program(3, 3, 3)` tracelets, with a machine-readable
//! `BENCH_slm.json` summary written at the workspace root.
//!
//! Set `ROCK_BENCH_SMOKE=1` to run a tiny subset (CI smoke).

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rock_analysis::{extract_tracelets, AnalysisConfig, Event};
use rock_core::suite::stress_program;
use rock_core::{Parallelism, Rock, RockConfig};
use rock_loader::LoadedBinary;
use rock_slm::reference::{reference_kl_divergence, ReferenceSlm};
use rock_slm::{kl_divergence, Slm};

/// Serial cold-cache distance stage on `stress_program(3, 3, 3)` as
/// measured at the PR 1 head on the reference container (median of 4
/// runs). The JSON report cites this so the arena speedup is explicit;
/// on a different host the ratio is only indicative.
const PR1_DISTANCE_STAGE_MS: f64 = 1.33;

fn smoke() -> bool {
    std::env::var_os("ROCK_BENCH_SMOKE").is_some()
}

/// Deterministic pseudo-random tracelet corpus over a small alphabet.
fn corpus(sequences: usize, len: usize, salt: u64) -> Vec<Vec<u8>> {
    let mut state = 0xabcdef12u64 ^ salt;
    (0..sequences)
        .map(|_| {
            (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((state >> 33) % 12) as u8
                })
                .collect()
        })
        .collect()
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("slm_train");
    for n in [16usize, 64, 256] {
        let data = corpus(n, 7, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                let mut m = Slm::new(2);
                for seq in data {
                    m.train(std::hint::black_box(seq));
                }
                m
            });
        });
    }
    group.finish();
}

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("slm_train_depth");
    let data = corpus(64, 7, 2);
    for depth in [1usize, 2, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut m = Slm::new(depth);
                for seq in &data {
                    m.train(seq);
                }
                m
            });
        });
    }
    group.finish();
}

fn bench_divergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("kl_divergence");
    for n in [16usize, 64, 256] {
        let mut a = Slm::new(2);
        let mut b_model = Slm::new(2);
        for seq in corpus(n, 7, 3) {
            a.train(&seq);
        }
        for seq in corpus(n, 7, 4) {
            b_model.train(&seq);
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(a, b_model),
            |bencher, (a, b_model)| {
                bencher
                    .iter(|| kl_divergence(std::hint::black_box(a), std::hint::black_box(b_model)));
            },
        );
    }
    group.finish();
}

/// Per-type tracelet pools of the §6.1 stress shape — the real workload
/// the pipeline's training and distance stages see.
fn stress_pools() -> Vec<Vec<Arc<[Event]>>> {
    let bench = stress_program(3, 3, 3);
    let compiled = bench.compile().expect("stress program compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
    let analysis = extract_tracelets(&loaded, &AnalysisConfig::default());
    let mut pools: Vec<Vec<Arc<[Event]>>> =
        analysis.tracelets().types().map(|vt| analysis.tracelets().of_type(vt).to_vec()).collect();
    if smoke() {
        pools.truncate(6);
    }
    pools
}

fn train_arena(pools: &[Vec<Arc<[Event]>>], depth: usize) -> Vec<Slm<Event>> {
    pools
        .iter()
        .map(|pool| {
            let mut m = Slm::new(depth);
            for t in pool {
                m.train(t);
            }
            m.finalize(); // index build is part of the training cost
            m
        })
        .collect()
}

fn train_reference(pools: &[Vec<Arc<[Event]>>], depth: usize) -> Vec<ReferenceSlm<Event>> {
    pools
        .iter()
        .map(|pool| {
            let mut m = ReferenceSlm::new(depth);
            for t in pool {
                m.train(t);
            }
            m
        })
        .collect()
}

/// Train-throughput on real stress tracelets: dedup + interning + arena
/// build vs. the seed's per-clone nested-map inserts.
fn bench_stress_train(c: &mut Criterion) {
    let pools = stress_pools();
    let depth = AnalysisConfig::default().slm_depth;
    let mut group = c.benchmark_group("stress_slm_train");
    group.sample_size(if smoke() { 2 } else { 20 });
    group.bench_with_input(BenchmarkId::from_parameter("arena"), &pools, |b, pools| {
        b.iter(|| train_arena(pools, depth));
    });
    group.bench_with_input(BenchmarkId::from_parameter("reference"), &pools, |b, pools| {
        b.iter(|| train_reference(pools, depth));
    });
    group.finish();
}

fn pairwise_arena(models: &[Slm<Event>]) -> f64 {
    let mut acc = 0.0;
    for a in models {
        for b in models {
            acc += kl_divergence(a, b);
        }
    }
    acc
}

fn pairwise_reference(models: &[ReferenceSlm<Event>]) -> f64 {
    let mut acc = 0.0;
    for a in models {
        for b in models {
            acc += reference_kl_divergence(a, b);
        }
    }
    acc
}

/// All-ordered-pairs KL on stress tracelets. `arena_cold` clones the
/// models first (dropping the cached index and word tables — the shape of
/// a fresh binary); `arena_warm` reuses cached word-evaluation tables
/// (the shape of ablation sweeps and repeated passes).
fn bench_stress_divergence(c: &mut Criterion) {
    let pools = stress_pools();
    let depth = AnalysisConfig::default().slm_depth;
    let arena = train_arena(&pools, depth);
    let seed = train_reference(&pools, depth);
    let mut group = c.benchmark_group("stress_pairwise_divergence");
    group.sample_size(if smoke() { 2 } else { 10 });
    group.bench_with_input(BenchmarkId::from_parameter("arena_cold"), &arena, |b, arena| {
        b.iter(|| {
            let fresh: Vec<Slm<Event>> = arena.to_vec();
            pairwise_arena(std::hint::black_box(&fresh))
        });
    });
    group.bench_with_input(BenchmarkId::from_parameter("arena_warm"), &arena, |b, arena| {
        b.iter(|| pairwise_arena(std::hint::black_box(arena)));
    });
    group.bench_with_input(BenchmarkId::from_parameter("reference"), &seed, |b, seed| {
        b.iter(|| pairwise_reference(std::hint::black_box(seed)));
    });
    group.finish();
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let v = f();
    (ms(start.elapsed()), v)
}

fn median(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[sorted.len() / 2]
}

/// One instrumented measurement pass, summarized to `BENCH_slm.json` at
/// the workspace root. Runs regardless of any bench filter so the report
/// is always refreshed.
fn emit_bench_json(_c: &mut Criterion) {
    let runs = if smoke() { 2 } else { 5 };

    // Serial, cold-cache reconstructions: the pipeline's own stage
    // timings isolate the distance stage (the PR 1 baseline's unit).
    let bench = stress_program(3, 3, 3);
    let compiled = bench.compile().expect("stress program compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
    let config = RockConfig::paper().with_parallelism(Parallelism::Serial);
    let mut distance_ms = Vec::new();
    let mut training_ms = Vec::new();
    let mut timings = None;
    for _ in 0..runs {
        let recon = Rock::new(config).reconstruct(&loaded);
        distance_ms.push(ms(recon.timings.distances));
        training_ms.push(ms(recon.timings.training));
        timings = Some(recon.timings);
    }
    let t = timings.expect("at least one run");
    let distance_median = median(&distance_ms);
    let speedup = PR1_DISTANCE_STAGE_MS / distance_median;

    // Arena vs. seed, outside the pipeline: train-all and all-pairs KL.
    let pools = stress_pools();
    let depth = AnalysisConfig::default().slm_depth;
    let (train_arena_ms, arena) = time(|| train_arena(&pools, depth));
    let (train_reference_ms, seed) = time(|| train_reference(&pools, depth));
    let (pairwise_cold_ms, _) = time(|| {
        let fresh: Vec<Slm<Event>> = arena.to_vec();
        pairwise_arena(&fresh)
    });
    let (pairwise_warm_ms, _) = time(|| pairwise_arena(&arena));
    let (pairwise_reference_ms, _) = time(|| pairwise_reference(&seed));

    let runs_json = distance_ms.iter().map(|v| format!("{v:.3}")).collect::<Vec<_>>().join(", ");
    let json = format!(
        "{{\n  \"benchmark\": \"stress_program(3,3,3)\",\n  \"mode\": \"{mode}\",\n  \
         \"parallelism\": \"serial\",\n  \
         \"pr1_baseline_distance_stage_ms\": {baseline},\n  \
         \"baseline_note\": \"PR 1 head, same container, serial cold-cache median of 4\",\n  \
         \"distance_stage_runs_ms\": [{runs_json}],\n  \
         \"distance_stage_median_ms\": {distance_median:.3},\n  \
         \"distance_speedup_vs_pr1\": {speedup:.2},\n  \
         \"training_stage_median_ms\": {training_median:.3},\n  \
         \"slm_count\": {slms},\n  \"slm_nodes\": {nodes},\n  \"slm_edges\": {edges},\n  \
         \"slm_bytes\": {bytes},\n  \"slm_unique_words\": {unique},\n  \
         \"slm_total_words\": {total},\n  \"cache_misses\": {misses},\n  \
         \"stress_models\": {models},\n  \
         \"train_all_arena_ms\": {train_arena_ms:.3},\n  \
         \"train_all_reference_ms\": {train_reference_ms:.3},\n  \
         \"pairwise_kl_arena_cold_ms\": {pairwise_cold_ms:.3},\n  \
         \"pairwise_kl_arena_warm_ms\": {pairwise_warm_ms:.3},\n  \
         \"pairwise_kl_reference_ms\": {pairwise_reference_ms:.3}\n}}\n",
        mode = if smoke() { "smoke" } else { "full" },
        baseline = PR1_DISTANCE_STAGE_MS,
        training_median = median(&training_ms),
        slms = t.slm_count,
        nodes = t.slm_nodes,
        edges = t.slm_edges,
        bytes = t.slm_bytes,
        unique = t.slm_unique_words,
        total = t.slm_total_words,
        misses = t.cache_misses,
        models = arena.len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_slm.json");
    std::fs::write(path, &json).expect("write BENCH_slm.json");
    println!("\nwrote {path}:\n{json}");
}

criterion_group!(
    benches,
    bench_training,
    bench_depth,
    bench_divergence,
    bench_stress_train,
    bench_stress_divergence,
    emit_bench_json,
);
criterion_main!(benches);
