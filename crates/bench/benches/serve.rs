//! Serve-daemon benchmarks: the wire + admission + scheduling overhead
//! a tenant pays per job over loopback TCP, against the same job run
//! directly on a `Supervisor` — plus admission-path throughput for
//! typed rejections (the cost of saying no under overload). A
//! machine-readable `BENCH_serve.json` summary is written at the
//! workspace root.
//!
//! Set `ROCK_BENCH_SMOKE=1` to run a tiny subset (CI smoke).

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rock_binary::image_to_bytes;
use rock_core::suite::streams_example;
use rock_serve::wire::Response;
use rock_serve::{ServeClient, ServeConfig, Server};
use rock_supervisor::{ArtifactStore, Supervisor};

fn smoke() -> bool {
    std::env::var_os("ROCK_BENCH_SMOKE").is_some()
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("rock-bench-serve-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn image() -> Vec<u8> {
    image_to_bytes(&streams_example().compile().expect("compiles").stripped_image())
}

/// Daemon round-trip: submit over loopback, poll to `Done`. The store
/// is warm after the first job, so steady-state numbers isolate the
/// serving overhead (framing, admission, queue hop, status polls) from
/// reconstruction work.
fn bench_serve_roundtrip(c: &mut Criterion) {
    let scratch = Scratch::new("roundtrip");
    let mut cfg = ServeConfig::new(&scratch.0);
    cfg.poll_ms = 1;
    // Round-trip latency is the measurement; quotas must never shed.
    cfg.quota.burst = u64::MAX / 2000;
    let server = Server::bind(cfg, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    let bytes = image();
    let mut client = ServeClient::connect(addr, "bench").expect("connect");
    let mut seq = 0u64;
    c.bench_function("serve/roundtrip_warm", |b| {
        b.iter(|| {
            seq += 1;
            let Response::Accepted { job } =
                client.submit(&format!("job-{seq}"), 0, &bytes).expect("submit")
            else {
                panic!("bench submission rejected")
            };
            client.wait(job, 1, 60_000).expect("job completes")
        })
    });
    handle.drain();
    join.join().expect("server thread").expect("clean drain");
}

/// The same warm job, no daemon: direct supervisor invocation.
fn bench_direct_supervisor(c: &mut Criterion) {
    let scratch = Scratch::new("direct");
    let cfg = ServeConfig::new(&scratch.0);
    let bytes = image();
    let mut seq = 0u64;
    c.bench_function("serve/direct_warm", |b| {
        b.iter(|| {
            seq += 1;
            let sup = Supervisor::new(
                cfg.config,
                ArtifactStore::open(&scratch.0).expect("store"),
                cfg.options.clone(),
            );
            sup.run_job(&format!("job-{seq}"), &bytes)
        })
    });
}

/// How fast the daemon can shed: typed quota rejections per second
/// (burst 0 via an exhausted bucket, refill 0 keeps it deterministic).
fn bench_admission_rejection(c: &mut Criterion) {
    let scratch = Scratch::new("shed");
    let mut cfg = ServeConfig::new(&scratch.0);
    cfg.poll_ms = 1;
    cfg.quota.burst = 1;
    cfg.quota.refill_per_sec = 0;
    let server = Server::bind(cfg, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    let bytes = image();
    let mut client = ServeClient::connect(addr, "greedy").expect("connect");
    // Burn the single token; every further submit is a typed rejection.
    let first = client.submit("seed", 0, &bytes).expect("submit");
    assert!(matches!(first, Response::Accepted { .. }));
    c.bench_function("serve/typed_rejection", |b| {
        b.iter(|| {
            let r = client.submit("over", 0, &bytes).expect("submit");
            assert!(matches!(r, Response::Rejected { .. }));
            r
        })
    });
    handle.drain();
    join.join().expect("server thread").expect("clean drain");
}

/// Instrumented medians, summarized to `BENCH_serve.json`.
fn emit_bench_json(_c: &mut Criterion) {
    let iters = if smoke() { 10 } else { 50 };
    let bytes = image();

    let scratch = Scratch::new("json");
    let mut cfg = ServeConfig::new(&scratch.0);
    cfg.poll_ms = 1;
    cfg.quota.burst = u64::MAX / 2000;
    let server = Server::bind(cfg.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    let mut client = ServeClient::connect(addr, "bench").expect("connect");

    let median = |samples: &mut Vec<f64>| -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[samples.len() / 2]
    };

    let mut roundtrip = Vec::new();
    for i in 0..iters {
        let t = Instant::now();
        let Response::Accepted { job } =
            client.submit(&format!("rt-{i}"), 0, &bytes).expect("submit")
        else {
            panic!("bench submission rejected")
        };
        client.wait(job, 1, 60_000).expect("completes");
        roundtrip.push(t.elapsed().as_secs_f64() * 1e3);
    }
    handle.drain();
    join.join().expect("server thread").expect("clean drain");

    let mut direct = Vec::new();
    for i in 0..iters {
        let t = Instant::now();
        let sup = Supervisor::new(
            cfg.config,
            ArtifactStore::open(&scratch.0).expect("store"),
            cfg.options.clone(),
        );
        sup.run_job(&format!("rt-{i}"), &bytes);
        direct.push(t.elapsed().as_secs_f64() * 1e3);
    }

    let rt = median(&mut roundtrip);
    let dx = median(&mut direct);
    let json = format!(
        "{{\"roundtrip_warm_ms\":{rt:.3},\"direct_warm_ms\":{dx:.3},\
         \"daemon_overhead_ms\":{:.3},\"iters\":{iters}}}\n",
        rt - dx
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    fs::write(path, &json).expect("write BENCH_serve.json");
    eprintln!("BENCH_serve.json: {json}");
}

criterion_group!(
    benches,
    bench_serve_roundtrip,
    bench_direct_supervisor,
    bench_admission_rejection,
    emit_bench_json
);
criterion_main!(benches);
