//! Batch-runtime benchmarks: supervised throughput (jobs/s through the
//! full checkpoint-writing pipeline) and the resume win — a warm second
//! pass that restores every stage from the artifact store instead of
//! recomputing. A machine-readable `BENCH_batch.json` summary is written
//! at the workspace root.
//!
//! Set `ROCK_BENCH_SMOKE=1` to run a tiny subset (CI smoke).

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rock_binary::image_to_bytes;
use rock_core::suite::{datasource_example, streams_example, stress_program, Benchmark};
use rock_core::{Parallelism, RockConfig};
use rock_supervisor::{ArtifactStore, JobOutcome, StdVfs, Supervisor, SupervisorOptions, Vfs};

fn smoke() -> bool {
    std::env::var_os("ROCK_BENCH_SMOKE").is_some()
}

/// The job mix: the two worked examples plus a stress shape.
fn jobs() -> Vec<(String, Vec<u8>)> {
    let mut benches: Vec<Benchmark> = vec![streams_example(), datasource_example()];
    if !smoke() {
        benches.push(stress_program(2, 2, 2));
    }
    benches
        .into_iter()
        .map(|b| {
            let compiled = b.compile().expect("suite program compiles");
            (b.name.to_string(), image_to_bytes(&compiled.stripped_image()))
        })
        .collect()
}

/// A scratch artifact store under the target-adjacent temp dir.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("rock-bench-batch-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn supervisor(&self, resume: bool) -> Supervisor {
        let options = SupervisorOptions { resume, ..SupervisorOptions::default() };
        Supervisor::new(
            RockConfig::paper().with_parallelism(Parallelism::Serial),
            ArtifactStore::open(&self.0).unwrap(),
            options,
        )
    }

    /// Total bytes of every artifact in the store.
    fn store_bytes(&self) -> u64 {
        fn walk(dir: &PathBuf, acc: &mut u64) {
            let Ok(entries) = fs::read_dir(dir) else { return };
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    walk(&p, acc);
                } else if let Ok(m) = p.metadata() {
                    *acc += m.len();
                }
            }
        }
        let mut acc = 0;
        walk(&self.0, &mut acc);
        acc
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn run_batch(sup: &Supervisor, jobs: &[(String, Vec<u8>)]) -> usize {
    let batch = sup.run_batch(jobs);
    assert_eq!(batch.exit_code, 0, "bench jobs must be healthy");
    batch.jobs.len()
}

/// Cold supervised batch: every stage computed and checkpointed.
fn bench_batch_cold(c: &mut Criterion) {
    let jobs = jobs();
    let mut group = c.benchmark_group("batch_cold");
    group.sample_size(if smoke() { 2 } else { 10 });
    group.bench_with_input(BenchmarkId::from_parameter(jobs.len()), &jobs, |b, jobs| {
        b.iter(|| {
            // A fresh store per iteration: genuinely cold.
            let scratch = Scratch::new("cold-iter");
            run_batch(&scratch.supervisor(true), jobs)
        });
    });
    group.finish();
}

/// Warm resume: the store already holds every stage, so a rerun only
/// replays checkpoints.
fn bench_batch_resume(c: &mut Criterion) {
    let jobs = jobs();
    let scratch = Scratch::new("warm");
    run_batch(&scratch.supervisor(true), &jobs); // populate once
    let mut group = c.benchmark_group("batch_resume");
    group.sample_size(if smoke() { 2 } else { 10 });
    group.bench_with_input(BenchmarkId::from_parameter(jobs.len()), &jobs, |b, jobs| {
        b.iter(|| run_batch(&scratch.supervisor(true), jobs));
    });
    group.finish();
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn median(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[sorted.len() / 2]
}

/// A/B of the `Vfs` seam on the warm-resume read path: the same
/// artifact file read through `Arc<dyn Vfs>` (one virtual dispatch per
/// call, the production shape since the store was ported onto the
/// trait) and via `fs::read` directly. Samples are interleaved so
/// clock drift and cache state hit both arms equally; the reported
/// number is the best of three median-ratio trials (syscall noise is
/// one-sided, so min-of-trials isolates the structural overhead).
fn vfs_read_overhead_ratio(scratch: &Scratch) -> f64 {
    fn largest_file(dir: &PathBuf, best: &mut Option<(u64, PathBuf)>) {
        let Ok(entries) = fs::read_dir(dir) else { return };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                largest_file(&p, best);
            } else if let Ok(m) = p.metadata() {
                if best.as_ref().is_none_or(|(len, _)| m.len() > *len) {
                    *best = Some((m.len(), p));
                }
            }
        }
    }
    let mut best = None;
    largest_file(&scratch.0, &mut best);
    let (_, path) = best.expect("a populated store has artifacts");
    let vfs: std::sync::Arc<dyn Vfs> = StdVfs::arc();
    let rounds = if smoke() { 128 } else { 512 };
    let mut ratio = f64::INFINITY;
    for _ in 0..3 {
        let mut dyn_ns = Vec::with_capacity(rounds);
        let mut std_ns = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let t = Instant::now();
            let a = vfs.read(&path).expect("dyn read");
            dyn_ns.push(t.elapsed().as_nanos() as f64);
            std::hint::black_box(a);
            let t = Instant::now();
            let b = fs::read(&path).expect("std read");
            std_ns.push(t.elapsed().as_nanos() as f64);
            std::hint::black_box(b);
        }
        ratio = ratio.min(median(&dyn_ns) / median(&std_ns).max(1.0));
    }
    ratio
}

/// One instrumented pass, summarized to `BENCH_batch.json` at the
/// workspace root: throughput, resume overhead, and store footprint.
fn emit_bench_json(_c: &mut Criterion) {
    let runs = if smoke() { 2 } else { 5 };
    let jobs = jobs();

    let mut cold_ms = Vec::new();
    for _ in 0..runs {
        let scratch = Scratch::new("json-cold");
        let start = Instant::now();
        run_batch(&scratch.supervisor(true), &jobs);
        cold_ms.push(ms(start));
    }

    let scratch = Scratch::new("json-warm");
    run_batch(&scratch.supervisor(true), &jobs);
    let store_bytes = scratch.store_bytes();
    let mut resume_ms = Vec::new();
    let mut restored_stages = 0usize;
    for _ in 0..runs {
        let start = Instant::now();
        let batch = scratch.supervisor(true).run_batch(&jobs);
        resume_ms.push(ms(start));
        assert_eq!(batch.exit_code, 0);
        restored_stages = batch.jobs.iter().map(|j| j.report.restored.len()).sum::<usize>();
        assert!(batch.jobs.iter().all(|j| j.report.outcome == JobOutcome::Ok));
    }

    let vfs_overhead = vfs_read_overhead_ratio(&scratch);

    let cold = median(&cold_ms);
    let warm = median(&resume_ms);
    let json = format!(
        "{{\n  \"mode\": \"{mode}\",\n  \"jobs\": {jobs},\n  \
         \"parallelism\": \"serial\",\n  \
         \"cold_batch_runs_ms\": [{cold_runs}],\n  \
         \"cold_batch_median_ms\": {cold:.3},\n  \
         \"cold_throughput_jobs_per_s\": {cold_tput:.2},\n  \
         \"resume_batch_runs_ms\": [{warm_runs}],\n  \
         \"resume_batch_median_ms\": {warm:.3},\n  \
         \"resume_speedup\": {speedup:.2},\n  \
         \"restored_stages_per_resume\": {restored},\n  \
         \"artifact_store_bytes\": {store_bytes},\n  \
         \"vfs_read_overhead_ratio\": {vfs_overhead:.4}\n}}\n",
        mode = if smoke() { "smoke" } else { "full" },
        jobs = jobs.len(),
        cold_runs = cold_ms.iter().map(|v| format!("{v:.3}")).collect::<Vec<_>>().join(", "),
        warm_runs = resume_ms.iter().map(|v| format!("{v:.3}")).collect::<Vec<_>>().join(", "),
        cold_tput = jobs.len() as f64 / (cold / 1e3),
        speedup = cold / warm.max(1e-6),
        restored = restored_stages,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    fs::write(path, &json).expect("write BENCH_batch.json");
    println!("\nwrote {path}:\n{json}");
    // The storage trait must stay free: one virtual dispatch against a
    // multi-microsecond syscall. Enforced in CI (smoke mode, release).
    if smoke() {
        assert!(
            vfs_overhead <= 1.02,
            "Vfs indirection costs {:.2}% on the warm-resume read path (budget: 2%)",
            (vfs_overhead - 1.0) * 100.0
        );
    }
}

criterion_group!(benches, bench_batch_cold, bench_batch_resume, emit_bench_json);
criterion_main!(benches);
