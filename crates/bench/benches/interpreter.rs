//! Interpreter throughput: how fast compiled benchmarks execute in the
//! reference VM (validates that the dynamic baseline's cost is dominated
//! by coverage, not by emulation overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rock_binary::Addr;
use rock_core::suite::{benchmark, streams_example};
use rock_vm::Machine;

fn drivers_of(compiled: &rock_minicpp::Compiled) -> Vec<Addr> {
    compiled
        .image()
        .symbols()
        .iter()
        .filter(|s| s.name.starts_with("drive") || s.name.starts_with("use"))
        .map(|s| s.addr)
        .collect()
}

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_run_all_drivers");
    for name in ["streams", "echoparams", "Smoothing"] {
        let bench = if name == "streams" {
            streams_example()
        } else {
            benchmark(name).expect("suite benchmark")
        };
        let compiled = bench.compile().expect("compiles");
        let drivers = drivers_of(&compiled);
        let vm = Machine::new(compiled.image().clone()).expect("vm");
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(vm, drivers),
            |b, (vm, drivers)| {
                b.iter(|| {
                    let mut vm = vm.clone();
                    let mut steps = 0;
                    for d in drivers {
                        vm.reset();
                        steps += vm.run(*d, &[]).expect("runs").steps;
                    }
                    steps
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_interpreter);
criterion_main!(benches);
