//! Table 2 as a criterion bench: times the full
//! compile-strip-load-reconstruct-evaluate loop per benchmark, and (once
//! per run) asserts the qualitative result still holds, so regressions in
//! either speed or accuracy surface here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rock_bench::run_benchmark;
use rock_core::suite::all_benchmarks;
use rock_core::{RockConfig, Table2Row};

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_row");
    group.sample_size(10);
    for bench in all_benchmarks() {
        // Accuracy gate.
        let eval = run_benchmark(&bench, RockConfig::paper());
        let row = Table2Row::new(&bench, &eval);
        assert!(
            row.shape_holds(),
            "{}: qualitative shape regressed ({:?} vs {:?})",
            bench.name,
            row.with,
            row.without
        );
        // Speed measurement.
        group.bench_with_input(BenchmarkId::from_parameter(bench.name), &bench, |b, bench| {
            b.iter(|| run_benchmark(std::hint::black_box(bench), RockConfig::paper()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
