//! §4.2.2 runtime claim: "it takes only a few minutes to construct the
//! weighted graph and find an arborescence" — here, the Chu-Liu/Edmonds
//! solver is benchmarked against growing complete candidate graphs
//! (the worst case: every pair of types in one family).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rock_graph::{min_spanning_forest, DiGraph};

/// Complete digraph over `n` nodes with deterministic pseudo-random
/// weights (mimicking a one-family KL matrix).
fn complete_graph(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    let mut state = 0x12345678u64;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let w = (state >> 33) as f64 / (1u64 << 31) as f64;
                g.add_edge(i, j, w);
            }
        }
    }
    g
}

fn bench_arborescence(c: &mut Criterion) {
    let mut group = c.benchmark_group("edmonds_min_spanning_forest");
    group.sample_size(10);
    for n in [8usize, 16, 32, 64, 128] {
        let g = complete_graph(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let r = min_spanning_forest(std::hint::black_box(g));
                assert_eq!(r.parent.len(), g.node_count());
                r
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_arborescence);
criterion_main!(benches);
