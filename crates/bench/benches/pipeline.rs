//! End-to-end pipeline cost on representative Table 2 benchmarks: one
//! small structurally-resolved binary, the echoparams showcase, and the
//! two largest families (Smoothing, Analyzer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rock_core::suite::benchmark;
use rock_core::{Rock, RockConfig};
use rock_loader::LoadedBinary;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("rock_reconstruct");
    group.sample_size(10);
    for name in ["pop3", "echoparams", "Smoothing", "Analyzer", "libctemplate"] {
        let bench = benchmark(name).expect("suite benchmark");
        let compiled = bench.compile().expect("compiles");
        let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
        let rock = Rock::new(RockConfig::paper());
        group.bench_with_input(BenchmarkId::from_parameter(name), &loaded, |b, loaded| {
            b.iter(|| rock.reconstruct(std::hint::black_box(loaded)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
