//! End-to-end pipeline cost on representative Table 2 benchmarks: one
//! small structurally-resolved binary, the echoparams showcase, and the
//! two largest families (Smoothing, Analyzer) — plus the §6.1
//! "Skype-scale" stress shape, serial vs. parallel, with a per-stage
//! [`rock_core::StageTimings`] breakdown.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rock_core::suite::{benchmark, stress_program};
use rock_core::{Parallelism, Rock, RockConfig, TraceLevel};
use rock_loader::LoadedBinary;
use rock_trace::Tracer;

fn smoke() -> bool {
    std::env::var_os("ROCK_BENCH_SMOKE").is_some()
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("rock_reconstruct");
    group.sample_size(10);
    for name in ["pop3", "echoparams", "Smoothing", "Analyzer", "libctemplate"] {
        let bench = benchmark(name).expect("suite benchmark");
        let compiled = bench.compile().expect("compiles");
        let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
        let rock = Rock::new(RockConfig::paper());
        group.bench_with_input(BenchmarkId::from_parameter(name), &loaded, |b, loaded| {
            b.iter(|| rock.reconstruct(std::hint::black_box(loaded)));
        });
    }
    group.finish();
}

/// The same reconstruction, serial vs. 4 worker threads, on the largest
/// suite shape. Results are bit-identical (asserted by
/// `tests/parallel_determinism.rs`); only wall-clock should differ. The
/// speedup scales with available cores — on a single-core host the
/// threaded variant can only tie serial (minus scheduling overhead), so
/// the detected core count is printed alongside the numbers.
fn bench_parallelism(c: &mut Criterion) {
    let bench = stress_program(3, 3, 3);
    let compiled = bench.compile().expect("stress program compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("\ndetected hardware threads: {cores}");
    if cores < 2 {
        println!("(single-core host: expect parity, not speedup, from threads-4)");
    }

    let mut group = c.benchmark_group("rock_reconstruct_stress_3_3_3");
    group.sample_size(10);
    for (label, parallelism) in
        [("serial", Parallelism::Serial), ("threads-4", Parallelism::Threads(4))]
    {
        // A fresh Rock per measured call keeps the distance cache cold,
        // so both variants do the full quadratic work every iteration.
        let config = RockConfig::paper().with_parallelism(parallelism);
        group.bench_with_input(BenchmarkId::from_parameter(label), &loaded, |b, loaded| {
            b.iter(|| Rock::new(config).reconstruct(std::hint::black_box(loaded)));
        });
    }
    group.finish();

    // One instrumented run per variant: where the time actually goes.
    for (label, parallelism) in
        [("serial", Parallelism::Serial), ("threads-4", Parallelism::Threads(4))]
    {
        let config = RockConfig::paper().with_parallelism(parallelism);
        let recon = Rock::new(config).reconstruct(&loaded);
        println!("\nstress_program(3, 3, 3) [{label}]\n{}", recon.timings);
    }
}

/// The distance cache's wall-clock contribution: the same binary
/// reconstructed with a cold cache every iteration vs. a cache warmed by
/// one prior pass (the repeated-pass shape of ablation sweeps and
/// `k_most_likely_parents` queries). Warm passes skip every divergence.
fn bench_distance_cache(c: &mut Criterion) {
    let bench = stress_program(3, 3, 3);
    let compiled = bench.compile().expect("stress program compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
    let config = RockConfig::paper();

    let mut group = c.benchmark_group("rock_reconstruct_stress_3_3_3_cache");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("cold"), &loaded, |b, loaded| {
        b.iter(|| Rock::new(config).reconstruct(std::hint::black_box(loaded)));
    });
    let warm = Rock::new(config);
    warm.reconstruct(&loaded); // warm the shared cache once
    group.bench_with_input(BenchmarkId::from_parameter("warm"), &loaded, |b, loaded| {
        b.iter(|| warm.reconstruct(std::hint::black_box(loaded)));
    });
    group.finish();
}

/// Tracer overhead guard: the same reconstruction with the tracer
/// detached vs. attached at each [`TraceLevel`]. The detached path is a
/// structural no-op (no clock reads, no span buffers, no locks — proven
/// allocation-free by `crates/trace/tests/no_alloc.rs`), so "tracer-off"
/// here must match the plain groups above; the per-level variants bound
/// the cost of span capture from stage-only up to full per-item
/// granularity. Medians land in `BENCH_trace.json` at the workspace
/// root; under `ROCK_BENCH_SMOKE=1` the run doubles as a CI guard that
/// fails if `sampled` (the production default) costs more than 10%.
fn bench_trace_overhead(c: &mut Criterion) {
    let bench = stress_program(3, 3, 3);
    let compiled = bench.compile().expect("stress program compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
    let config = RockConfig::paper().with_parallelism(Parallelism::Threads(4));
    const LEVELS: [TraceLevel; 3] = [TraceLevel::Stage, TraceLevel::Sampled, TraceLevel::Full];

    let run_off = |loaded: &LoadedBinary| drop(Rock::new(config).reconstruct(loaded));
    let run_at = |loaded: &LoadedBinary, level: TraceLevel| {
        // A fresh tracer per iteration: steady-state span capture, not an
        // ever-growing log.
        drop(
            Rock::new(config)
                .with_tracer(Arc::new(Tracer::new()))
                .with_trace_level(level)
                .reconstruct(loaded),
        )
    };

    let mut group = c.benchmark_group("rock_reconstruct_stress_3_3_3_trace");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("tracer-off"), &loaded, |b, loaded| {
        b.iter(|| run_off(std::hint::black_box(loaded)));
    });
    for level in LEVELS {
        let id = BenchmarkId::from_parameter(format!("level-{level}"));
        group.bench_with_input(id, &loaded, |b, loaded| {
            b.iter(|| run_at(std::hint::black_box(loaded), level));
        });
    }
    group.finish();

    // Machine-readable timings for the workspace-root report. The
    // variants are interleaved round-robin (off, stage, sampled, full,
    // off, ...) so machine-load drift hits every variant equally, and
    // overhead compares best-of-runs: timing noise is strictly additive
    // (interruptions only ever slow a sample down), so the minimum is
    // the tightest estimate of each variant's true cost.
    fn best(xs: &[f64]) -> f64 {
        xs.iter().copied().fold(f64::INFINITY, f64::min)
    }
    // Each sample times a batch of reconstructions: the workload is a
    // few milliseconds, so single-shot samples are dominated by
    // scheduler jitter rather than tracer cost.
    const BATCH: usize = 5;
    let ms = |f: &dyn Fn()| {
        let t0 = Instant::now();
        for _ in 0..BATCH {
            f();
        }
        t0.elapsed().as_secs_f64() * 1e3 / BATCH as f64
    };
    let runs = if smoke() { 7 } else { 17 };
    let mut off_ms = Vec::with_capacity(runs);
    let mut level_ms: [Vec<f64>; LEVELS.len()] = Default::default();
    run_off(&loaded); // warmup: caches, allocator, thread pool
    for _ in 0..runs {
        off_ms.push(ms(&|| run_off(&loaded)));
        for (i, level) in LEVELS.into_iter().enumerate() {
            level_ms[i].push(ms(&|| run_at(&loaded, level)));
        }
    }
    let off = best(&off_ms);
    let overhead_pct = |on: f64| (on / off.max(1e-9) - 1.0) * 100.0;

    // One counted run per level: how many spans each level records, plus
    // the (level-independent) metrics document size.
    let mut metrics_bytes = 0;
    let spans_at: Vec<usize> = LEVELS
        .into_iter()
        .map(|level| {
            let tracer = Arc::new(Tracer::new());
            let recon = Rock::new(config)
                .with_tracer(tracer.clone())
                .with_trace_level(level)
                .reconstruct(&loaded);
            metrics_bytes = recon.metrics.to_json().len();
            tracer.events().len()
        })
        .collect();

    let mode = if smoke() { "smoke" } else { "full" };
    let mut rows = String::new();
    let mut sampled_pct = f64::NAN;
    for (i, level) in LEVELS.into_iter().enumerate() {
        let on = best(&level_ms[i]);
        let pct = overhead_pct(on);
        if level == TraceLevel::Sampled {
            sampled_pct = pct;
        }
        rows.push_str(&format!(
            "    \"{level}\": {{ \"tracer_on_best_ms\": {on:.3}, \
             \"overhead_pct\": {pct:.1}, \"spans_recorded\": {spans} }}{comma}\n",
            spans = spans_at[i],
            comma = if i + 1 < LEVELS.len() { "," } else { "" },
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"stress_program(3,3,3)\",\n  \
         \"mode\": \"{mode}\",\n  \"parallelism\": \"threads-4\",\n  \
         \"tracer_off_best_ms\": {off:.3},\n  \
         \"levels\": {{\n{rows}  }},\n  \
         \"metrics_doc_bytes\": {metrics_bytes}\n}}\n",
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    std::fs::write(path, &json).expect("write BENCH_trace.json");
    println!("\nwrote {path}:\n{json}");

    // CI smoke guard: the production default must stay cheap. The full
    // re-record targets <5%; the smoke bound is looser because smoke runs
    // are short and noisy.
    if smoke() {
        assert!(
            sampled_pct <= 10.0,
            "tracer-on overhead at --trace-level=sampled is {sampled_pct:.1}% (limit 10%)"
        );
    }
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_parallelism,
    bench_distance_cache,
    bench_trace_overhead
);
criterion_main!(benches);
