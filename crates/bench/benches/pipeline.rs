//! End-to-end pipeline cost on representative Table 2 benchmarks: one
//! small structurally-resolved binary, the echoparams showcase, and the
//! two largest families (Smoothing, Analyzer) — plus the §6.1
//! "Skype-scale" stress shape, serial vs. parallel, with a per-stage
//! [`rock_core::StageTimings`] breakdown.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rock_core::suite::{benchmark, stress_program};
use rock_core::{Parallelism, Rock, RockConfig};
use rock_loader::LoadedBinary;
use rock_trace::Tracer;

fn smoke() -> bool {
    std::env::var_os("ROCK_BENCH_SMOKE").is_some()
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("rock_reconstruct");
    group.sample_size(10);
    for name in ["pop3", "echoparams", "Smoothing", "Analyzer", "libctemplate"] {
        let bench = benchmark(name).expect("suite benchmark");
        let compiled = bench.compile().expect("compiles");
        let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
        let rock = Rock::new(RockConfig::paper());
        group.bench_with_input(BenchmarkId::from_parameter(name), &loaded, |b, loaded| {
            b.iter(|| rock.reconstruct(std::hint::black_box(loaded)));
        });
    }
    group.finish();
}

/// The same reconstruction, serial vs. 4 worker threads, on the largest
/// suite shape. Results are bit-identical (asserted by
/// `tests/parallel_determinism.rs`); only wall-clock should differ. The
/// speedup scales with available cores — on a single-core host the
/// threaded variant can only tie serial (minus scheduling overhead), so
/// the detected core count is printed alongside the numbers.
fn bench_parallelism(c: &mut Criterion) {
    let bench = stress_program(3, 3, 3);
    let compiled = bench.compile().expect("stress program compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("\ndetected hardware threads: {cores}");
    if cores < 2 {
        println!("(single-core host: expect parity, not speedup, from threads-4)");
    }

    let mut group = c.benchmark_group("rock_reconstruct_stress_3_3_3");
    group.sample_size(10);
    for (label, parallelism) in
        [("serial", Parallelism::Serial), ("threads-4", Parallelism::Threads(4))]
    {
        // A fresh Rock per measured call keeps the distance cache cold,
        // so both variants do the full quadratic work every iteration.
        let config = RockConfig::paper().with_parallelism(parallelism);
        group.bench_with_input(BenchmarkId::from_parameter(label), &loaded, |b, loaded| {
            b.iter(|| Rock::new(config).reconstruct(std::hint::black_box(loaded)));
        });
    }
    group.finish();

    // One instrumented run per variant: where the time actually goes.
    for (label, parallelism) in
        [("serial", Parallelism::Serial), ("threads-4", Parallelism::Threads(4))]
    {
        let config = RockConfig::paper().with_parallelism(parallelism);
        let recon = Rock::new(config).reconstruct(&loaded);
        println!("\nstress_program(3, 3, 3) [{label}]\n{}", recon.timings);
    }
}

/// The distance cache's wall-clock contribution: the same binary
/// reconstructed with a cold cache every iteration vs. a cache warmed by
/// one prior pass (the repeated-pass shape of ablation sweeps and
/// `k_most_likely_parents` queries). Warm passes skip every divergence.
fn bench_distance_cache(c: &mut Criterion) {
    let bench = stress_program(3, 3, 3);
    let compiled = bench.compile().expect("stress program compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
    let config = RockConfig::paper();

    let mut group = c.benchmark_group("rock_reconstruct_stress_3_3_3_cache");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("cold"), &loaded, |b, loaded| {
        b.iter(|| Rock::new(config).reconstruct(std::hint::black_box(loaded)));
    });
    let warm = Rock::new(config);
    warm.reconstruct(&loaded); // warm the shared cache once
    group.bench_with_input(BenchmarkId::from_parameter("warm"), &loaded, |b, loaded| {
        b.iter(|| warm.reconstruct(std::hint::black_box(loaded)));
    });
    group.finish();
}

/// Tracer overhead guard: the same reconstruction with the tracer
/// detached vs. attached. The detached path is a structural no-op
/// (no clock reads, no span buffers, no locks — proven allocation-free
/// by `crates/trace/tests/no_alloc.rs`), so "tracer-off" here must match
/// the plain groups above; "tracer-on" bounds the cost of full per-item
/// span capture. Medians land in `BENCH_trace.json` at the workspace
/// root.
fn bench_trace_overhead(c: &mut Criterion) {
    let bench = stress_program(3, 3, 3);
    let compiled = bench.compile().expect("stress program compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
    let config = RockConfig::paper().with_parallelism(Parallelism::Threads(4));

    let mut group = c.benchmark_group("rock_reconstruct_stress_3_3_3_trace");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("tracer-off"), &loaded, |b, loaded| {
        b.iter(|| Rock::new(config).reconstruct(std::hint::black_box(loaded)));
    });
    group.bench_with_input(BenchmarkId::from_parameter("tracer-on"), &loaded, |b, loaded| {
        b.iter(|| {
            // A fresh tracer per iteration: steady-state span capture,
            // not an ever-growing log.
            Rock::new(config)
                .with_tracer(Arc::new(Tracer::new()))
                .reconstruct(std::hint::black_box(loaded))
        });
    });
    group.finish();

    // Machine-readable medians for the workspace-root report.
    fn median(xs: &mut [f64]) -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    }
    let ms = |f: &dyn Fn()| {
        let t0 = Instant::now();
        f();
        t0.elapsed().as_secs_f64() * 1e3
    };
    let runs = if smoke() { 2 } else { 5 };
    let mut off_ms: Vec<f64> =
        (0..runs).map(|_| ms(&|| drop(Rock::new(config).reconstruct(&loaded)))).collect();
    let mut on_ms: Vec<f64> = (0..runs)
        .map(|_| {
            ms(&|| {
                drop(Rock::new(config).with_tracer(Arc::new(Tracer::new())).reconstruct(&loaded))
            })
        })
        .collect();
    let tracer = Arc::new(Tracer::new());
    let recon = Rock::new(config).with_tracer(tracer.clone()).reconstruct(&loaded);
    let spans = tracer.events().len();
    let metrics_bytes = recon.metrics.to_json().len();
    let (off, on) = (median(&mut off_ms), median(&mut on_ms));
    let json = format!(
        "{{\n  \"benchmark\": \"stress_program(3,3,3)\",\n  \
         \"mode\": \"{mode}\",\n  \"parallelism\": \"threads-4\",\n  \
         \"tracer_off_median_ms\": {off:.3},\n  \"tracer_on_median_ms\": {on:.3},\n  \
         \"overhead_pct\": {pct:.1},\n  \"spans_recorded\": {spans},\n  \
         \"metrics_doc_bytes\": {metrics_bytes}\n}}\n",
        mode = if smoke() { "smoke" } else { "full" },
        pct = (on / off.max(1e-9) - 1.0) * 100.0,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    std::fs::write(path, &json).expect("write BENCH_trace.json");
    println!("\nwrote {path}:\n{json}");
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_parallelism,
    bench_distance_cache,
    bench_trace_overhead
);
criterion_main!(benches);
