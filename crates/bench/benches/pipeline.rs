//! End-to-end pipeline cost on representative Table 2 benchmarks: one
//! small structurally-resolved binary, the echoparams showcase, and the
//! two largest families (Smoothing, Analyzer) — plus the §6.1
//! "Skype-scale" stress shape, serial vs. parallel, with a per-stage
//! [`rock_core::StageTimings`] breakdown.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rock_core::suite::{benchmark, stress_program};
use rock_core::{Parallelism, Rock, RockConfig};
use rock_loader::LoadedBinary;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("rock_reconstruct");
    group.sample_size(10);
    for name in ["pop3", "echoparams", "Smoothing", "Analyzer", "libctemplate"] {
        let bench = benchmark(name).expect("suite benchmark");
        let compiled = bench.compile().expect("compiles");
        let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
        let rock = Rock::new(RockConfig::paper());
        group.bench_with_input(BenchmarkId::from_parameter(name), &loaded, |b, loaded| {
            b.iter(|| rock.reconstruct(std::hint::black_box(loaded)));
        });
    }
    group.finish();
}

/// The same reconstruction, serial vs. 4 worker threads, on the largest
/// suite shape. Results are bit-identical (asserted by
/// `tests/parallel_determinism.rs`); only wall-clock should differ. The
/// speedup scales with available cores — on a single-core host the
/// threaded variant can only tie serial (minus scheduling overhead), so
/// the detected core count is printed alongside the numbers.
fn bench_parallelism(c: &mut Criterion) {
    let bench = stress_program(3, 3, 3);
    let compiled = bench.compile().expect("stress program compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("\ndetected hardware threads: {cores}");
    if cores < 2 {
        println!("(single-core host: expect parity, not speedup, from threads-4)");
    }

    let mut group = c.benchmark_group("rock_reconstruct_stress_3_3_3");
    group.sample_size(10);
    for (label, parallelism) in
        [("serial", Parallelism::Serial), ("threads-4", Parallelism::Threads(4))]
    {
        // A fresh Rock per measured call keeps the distance cache cold,
        // so both variants do the full quadratic work every iteration.
        let config = RockConfig::paper().with_parallelism(parallelism);
        group.bench_with_input(BenchmarkId::from_parameter(label), &loaded, |b, loaded| {
            b.iter(|| Rock::new(config).reconstruct(std::hint::black_box(loaded)));
        });
    }
    group.finish();

    // One instrumented run per variant: where the time actually goes.
    for (label, parallelism) in
        [("serial", Parallelism::Serial), ("threads-4", Parallelism::Threads(4))]
    {
        let config = RockConfig::paper().with_parallelism(parallelism);
        let recon = Rock::new(config).reconstruct(&loaded);
        println!("\nstress_program(3, 3, 3) [{label}]\n{}", recon.timings);
    }
}

/// The distance cache's wall-clock contribution: the same binary
/// reconstructed with a cold cache every iteration vs. a cache warmed by
/// one prior pass (the repeated-pass shape of ablation sweeps and
/// `k_most_likely_parents` queries). Warm passes skip every divergence.
fn bench_distance_cache(c: &mut Criterion) {
    let bench = stress_program(3, 3, 3);
    let compiled = bench.compile().expect("stress program compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
    let config = RockConfig::paper();

    let mut group = c.benchmark_group("rock_reconstruct_stress_3_3_3_cache");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("cold"), &loaded, |b, loaded| {
        b.iter(|| Rock::new(config).reconstruct(std::hint::black_box(loaded)));
    });
    let warm = Rock::new(config);
    warm.reconstruct(&loaded); // warm the shared cache once
    group.bench_with_input(BenchmarkId::from_parameter("warm"), &loaded, |b, loaded| {
        b.iter(|| warm.reconstruct(std::hint::black_box(loaded)));
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_parallelism, bench_distance_cache);
criterion_main!(benches);
