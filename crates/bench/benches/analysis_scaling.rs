//! §3.2 scalability claim: "since our analysis and symbolic execution are
//! entirely intra-procedural … they are inherently scalable. The number
//! of procedures in a binary … [has] no effect" — i.e. total analysis
//! time grows linearly with procedure count. Benchmarked by extracting
//! tracelets from generated programs of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rock_analysis::{extract_tracelets, AnalysisConfig};
use rock_core::suite::stress_program;
use rock_loader::LoadedBinary;

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracelet_extraction");
    group.sample_size(10);
    // families × (1 + fanout + fanout²) classes, each with drivers,
    // ctors, dtors and method bodies: procedure count grows ~linearly
    // with `families`.
    for families in [1usize, 2, 4, 8] {
        let bench = stress_program(families, 3, 2);
        let compiled = bench.compile().expect("compiles");
        let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
        let procs = loaded.functions().len();
        group.bench_with_input(BenchmarkId::new("procedures", procs), &loaded, |b, loaded| {
            b.iter(|| {
                let a = extract_tracelets(std::hint::black_box(loaded), &AnalysisConfig::default());
                assert!(!a.tracelets().is_empty());
                a
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
