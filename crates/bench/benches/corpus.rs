//! Corpus-dedup benchmarks: amortized fleet throughput with the shared
//! content-addressed [`CorpusCache`] against the cold per-binary
//! baseline, on a synthetic corpus with controlled overlap (see
//! `rock_core::suite::corpus_member`: a lib family shared by every
//! member, app families shared per template, a unique salt class that
//! shifts addresses in half the members).
//!
//! Two corpus shapes are summarized to `BENCH_corpus.json`:
//!
//! * **50% overlap** — every app template is instantiated exactly
//!   twice (`templates = n/2`), the ≥2× amortized-speedup target;
//! * **high overlap** — a handful of templates across the whole fleet,
//!   the >90% hit-rate target.
//!
//! Warm runs are asserted bit-identical to cold runs at `Serial`,
//! `Threads(2)` and `Threads(8)` before any number is reported. Set
//! `ROCK_BENCH_SMOKE=1` for the CI subset, which also *enforces* the
//! hit-rate and speedup floors.

use std::fs;
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rock_core::suite::corpus_member;
use rock_core::{CorpusCache, CorpusStats, Parallelism, Reconstruction, Rock, RockConfig};
use rock_loader::LoadedBinary;

fn smoke() -> bool {
    std::env::var_os("ROCK_BENCH_SMOKE").is_some()
}

fn config(par: Parallelism) -> RockConfig {
    RockConfig::paper().with_parallelism(par).with_canonical_calls()
}

/// Compiles an `n`-member corpus with `templates` distinct app families.
fn corpus(n: usize, templates: usize) -> Vec<LoadedBinary> {
    (0..n)
        .map(|i| {
            let c = corpus_member(i, templates).compile().expect("corpus member compiles");
            LoadedBinary::load(c.stripped_image()).expect("corpus member loads")
        })
        .collect()
}

fn run_cold(images: &[LoadedBinary], par: Parallelism) -> Vec<Reconstruction> {
    images.iter().map(|l| Rock::new(config(par)).reconstruct(l)).collect()
}

fn run_warm(
    images: &[LoadedBinary],
    par: Parallelism,
    shared: &Arc<CorpusCache>,
) -> Vec<Reconstruction> {
    images
        .iter()
        .map(|l| Rock::new(config(par)).with_corpus_cache(Arc::clone(shared)).reconstruct(l))
        .collect()
}

/// Criterion group: the cold fleet, one full pass per iteration.
fn bench_corpus_cold(c: &mut Criterion) {
    let n = if smoke() { 8 } else { 24 };
    let images = corpus(n, n / 2);
    let mut group = c.benchmark_group("corpus_cold");
    group.sample_size(if smoke() { 2 } else { 10 });
    group.bench_with_input(BenchmarkId::from_parameter(n), &images, |b, images| {
        b.iter(|| run_cold(images, Parallelism::Serial).len());
    });
    group.finish();
}

/// Criterion group: the same fleet against a fresh shared cache per
/// iteration — amortized cost including cache population.
fn bench_corpus_amortized(c: &mut Criterion) {
    let n = if smoke() { 8 } else { 24 };
    let images = corpus(n, n / 2);
    let mut group = c.benchmark_group("corpus_amortized");
    group.sample_size(if smoke() { 2 } else { 10 });
    group.bench_with_input(BenchmarkId::from_parameter(n), &images, |b, images| {
        b.iter(|| {
            let shared = Arc::new(CorpusCache::new());
            run_warm(images, Parallelism::Serial, &shared).len()
        });
    });
    group.finish();
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn median(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[sorted.len() / 2]
}

fn fmt_runs(xs: &[f64]) -> String {
    xs.iter().map(|v| format!("{v:.3}")).collect::<Vec<_>>().join(", ")
}

/// Asserts warm output equals cold output for every member, then
/// returns the cache stats of one warm pass.
fn verify_and_stats(images: &[LoadedBinary], pars: &[Parallelism]) -> CorpusStats {
    let mut stats = CorpusStats::default();
    for &par in pars {
        let cold = run_cold(images, par);
        let shared = Arc::new(CorpusCache::new());
        let warm = run_warm(images, par, &shared);
        for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
            assert_eq!(c.hierarchy, w.hierarchy, "{par:?} member {i}: hierarchy diverged");
            assert_eq!(c.distances, w.distances, "{par:?} member {i}: distances diverged");
        }
        stats = shared.stats();
    }
    stats
}

/// One instrumented measurement of a corpus shape: cold vs amortized
/// medians plus the warm cache's tier stats.
struct Shape {
    n: usize,
    templates: usize,
    cold_ms: Vec<f64>,
    warm_ms: Vec<f64>,
    stats: CorpusStats,
}

fn measure(n: usize, templates: usize, runs: usize) -> Shape {
    let images = corpus(n, templates);
    // One untimed pass warms the process (allocator arenas, page
    // faults); cold and warm passes then alternate so drift affects
    // both sides equally instead of whichever ran last.
    run_cold(&images, Parallelism::Serial);
    let mut cold_ms = Vec::new();
    let mut warm_ms = Vec::new();
    let mut stats = CorpusStats::default();
    for _ in 0..runs {
        let start = Instant::now();
        run_cold(&images, Parallelism::Serial);
        cold_ms.push(ms(start));
        let shared = Arc::new(CorpusCache::new());
        let start = Instant::now();
        run_warm(&images, Parallelism::Serial, &shared);
        warm_ms.push(ms(start));
        stats = shared.stats();
    }
    Shape { n, templates, cold_ms, warm_ms, stats }
}

fn shape_json(label: &str, s: &Shape) -> String {
    let cold = median(&s.cold_ms);
    let warm = median(&s.warm_ms);
    let st = &s.stats;
    format!(
        "  \"{label}\": {{\n    \"binaries\": {n},\n    \"app_templates\": {templates},\n    \
         \"cold_runs_ms\": [{cold_runs}],\n    \"cold_median_ms\": {cold:.3},\n    \
         \"cold_jobs_per_s\": {cold_tput:.1},\n    \
         \"amortized_runs_ms\": [{warm_runs}],\n    \"amortized_median_ms\": {warm:.3},\n    \
         \"amortized_jobs_per_s\": {warm_tput:.1},\n    \
         \"amortized_speedup\": {speedup:.2},\n    \"hit_rate\": {hit_rate:.4},\n    \
         \"tracelet_hits\": {th},\n    \"tracelet_misses\": {tm},\n    \
         \"slm_hits\": {sh},\n    \"slm_misses\": {sm},\n    \
         \"distance_hits\": {dh},\n    \"distance_misses\": {dm},\n    \
         \"bytes_stored\": {bytes}\n  }}",
        n = s.n,
        templates = s.templates,
        cold_runs = fmt_runs(&s.cold_ms),
        warm_runs = fmt_runs(&s.warm_ms),
        cold_tput = s.n as f64 / (cold / 1e3),
        warm_tput = s.n as f64 / (warm / 1e3),
        speedup = cold / warm.max(1e-6),
        hit_rate = st.hit_rate(),
        th = st.tracelet_hits,
        tm = st.tracelet_misses,
        sh = st.slm_hits,
        sm = st.slm_misses,
        dh = st.distance_hits,
        dm = st.distance_misses,
        bytes = st.bytes_stored,
    )
}

/// The summary pass: verifies bit-identity at three thread counts,
/// measures both corpus shapes, writes `BENCH_corpus.json`, and (in
/// smoke mode) enforces the CI floors.
fn emit_bench_json(_c: &mut Criterion) {
    let runs = if smoke() { 2 } else { 5 };
    let (n50, nhi, thi) = if smoke() { (12, 24, 1) } else { (120, 120, 6) };

    // Bit-identity first: no number is worth reporting if the cache
    // changes an answer. Serial, 2 and 8 threads over a mixed corpus.
    let pinned = corpus(6, 3);
    verify_and_stats(
        &pinned,
        &[Parallelism::Serial, Parallelism::Threads(2), Parallelism::Threads(8)],
    );

    let overlap50 = measure(n50, n50 / 2, runs);
    let high = measure(nhi, thi, runs);

    let speedup50 = median(&overlap50.cold_ms) / median(&overlap50.warm_ms).max(1e-6);
    let hit_hi = high.stats.hit_rate();
    let json = format!(
        "{{\n  \"mode\": \"{mode}\",\n  \"parallelism\": \"serial\",\n  \
         \"identity_pinned_at\": [\"serial\", \"threads2\", \"threads8\"],\n\
         {fifty},\n{high}\n}}\n",
        mode = if smoke() { "smoke" } else { "full" },
        fifty = shape_json("overlap_50", &overlap50),
        high = shape_json("overlap_high", &high),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_corpus.json");
    fs::write(path, &json).expect("write BENCH_corpus.json");
    println!("\nwrote {path}:\n{json}");

    if smoke() {
        // The CI floors: dedup must stay worth having.
        assert!(hit_hi >= 0.90, "corpus-smoke: high-overlap hit rate {hit_hi:.3} fell below 0.90");
        assert!(
            speedup50 >= 1.5,
            "corpus-smoke: 50%-overlap amortized speedup {speedup50:.2}x fell below 1.5x"
        );
    }
}

criterion_group!(benches, bench_corpus_cold, bench_corpus_amortized, emit_bench_json);
criterion_main!(benches);
