//! Incremental-invalidation benchmarks: the patch-and-rerun loop. A
//! large multi-family image (the delta workload,
//! `rock_core::suite::delta_spec`) is reconstructed once and its corpus
//! sub-artifacts flushed to an artifact store; then a *patched* variant
//! is reconstructed cold (no store) versus warm-delta (a fresh process
//! that preloads the base image's sub-artifacts from disk and recomputes
//! only what the edit dirtied).
//!
//! Three edit shapes are summarized to `BENCH_incremental.json`:
//!
//! * **edit_1fn** — one method body rewritten in one leaf class: the
//!   canonical one-line patch. CI gates warm-delta ≥ 3× cold here.
//! * **edit_family** — one whole family re-seeded: every artifact in it
//!   misses, every other family is served from disk.
//! * **edit_salt** — the image-unique salt class re-seeded: no family
//!   function changes; this is the ceiling of the approach.
//!
//! Warm-delta runs are asserted bit-identical to cold runs at `Serial`
//! and `Threads(8)` before any number is reported. The timed warm-delta
//! region includes the preload itself — it is the cost a patched rerun
//! actually pays. Set `ROCK_BENCH_SMOKE=1` for the CI subset, which
//! also *enforces* the speedup and reuse floors.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rock_core::suite::{self, DeltaEdit, DeltaSpec};
use rock_core::{CorpusCache, CorpusStats, Parallelism, Reconstruction, Rock, RockConfig};
use rock_loader::LoadedBinary;
use rock_supervisor::{flush_subartifacts, preload_subartifacts, ArtifactStore};

fn smoke() -> bool {
    std::env::var_os("ROCK_BENCH_SMOKE").is_some()
}

/// Position-independent function keys require canonical calls.
fn config(par: Parallelism) -> RockConfig {
    RockConfig::paper().with_parallelism(par).with_canonical_calls()
}

/// The base image: `families` shallow trees of `classes` classes each.
/// Full mode sizes it to 120 classes — the aggregate type count of the
/// 120-binary corpus fleet benchmark, i.e. a statically linked image at
/// fleet scale.
fn base_spec() -> DeltaSpec {
    if smoke() {
        suite::delta_spec(6, 12, 1205)
    } else {
        suite::delta_spec(12, 10, 1205)
    }
}

fn load(spec: &DeltaSpec) -> LoadedBinary {
    let compiled = suite::delta_program(spec).compile().expect("delta program compiles");
    LoadedBinary::load(compiled.stripped_image()).expect("delta image loads")
}

/// The three measured edits, applied to a clone of the base spec.
fn edits() -> Vec<(&'static str, DeltaEdit)> {
    let last_class = if smoke() { 5 } else { 9 };
    vec![
        ("edit_1fn", DeltaEdit::EditBody { family: 1, class: last_class, method: 1 }),
        ("edit_family", DeltaEdit::ReseedFamily { family: 2 }),
        ("edit_salt", DeltaEdit::ReseedSalt),
    ]
}

fn edited_spec(edit: DeltaEdit) -> DeltaSpec {
    let mut spec = base_spec();
    suite::apply_delta(&mut spec, edit);
    spec
}

fn run_cold(image: &LoadedBinary, par: Parallelism) -> Reconstruction {
    Rock::new(config(par)).reconstruct(image)
}

fn run_warm(image: &LoadedBinary, par: Parallelism, cache: &Arc<CorpusCache>) -> Reconstruction {
    Rock::new(config(par)).with_corpus_cache(Arc::clone(cache)).reconstruct(image)
}

/// A scratch artifact-store root, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("rock-bench-incr-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn store(&self) -> ArtifactStore {
        ArtifactStore::open(&self.0).unwrap()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Runs the base image once and flushes its sub-artifacts to `store`;
/// returns the flushed count.
fn populate(base: &LoadedBinary, store: &ArtifactStore) -> u64 {
    let cache = Arc::new(CorpusCache::new());
    run_warm(base, Parallelism::Serial, &cache);
    let stats = flush_subartifacts(store, &cache);
    assert_eq!(stats.io_errors, 0, "healthy flush must not error");
    assert!(stats.flushed > 0, "the base run must persist sub-artifacts");
    stats.flushed
}

/// One timed warm-delta pass: fresh cache, preload from disk, run the
/// patched image. Returns (elapsed ms, cache stats, preloaded count).
fn warm_delta(image: &LoadedBinary, store: &ArtifactStore) -> (f64, CorpusStats, u64) {
    let cache = Arc::new(CorpusCache::new());
    let start = Instant::now();
    let pre = preload_subartifacts(store, &cache);
    run_warm(image, Parallelism::Serial, &cache);
    let elapsed = ms(start);
    (elapsed, cache.stats(), pre.preloaded)
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn median(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[sorted.len() / 2]
}

fn fmt_runs(xs: &[f64]) -> String {
    xs.iter().map(|v| format!("{v:.3}")).collect::<Vec<_>>().join(", ")
}

/// Criterion group: cold reconstruction of the 1-function-edited image.
fn bench_incremental_cold(c: &mut Criterion) {
    let image = load(&edited_spec(edits()[0].1));
    let mut group = c.benchmark_group("incremental_cold");
    group.sample_size(if smoke() { 2 } else { 10 });
    group.bench_function("edit_1fn", |b| {
        b.iter(|| run_cold(&image, Parallelism::Serial).hierarchy.len());
    });
    group.finish();
}

/// Criterion group: the warm-delta rerun of the same image, preload
/// included, against a store populated once from the base image.
fn bench_incremental_warm_delta(c: &mut Criterion) {
    let base = load(&base_spec());
    let image = load(&edited_spec(edits()[0].1));
    let scratch = Scratch::new("criterion");
    let store = scratch.store();
    populate(&base, &store);
    let mut group = c.benchmark_group("incremental_warm_delta");
    group.sample_size(if smoke() { 2 } else { 10 });
    group.bench_function("edit_1fn", |b| {
        b.iter(|| warm_delta(&image, &store).0);
    });
    group.finish();
}

/// One instrumented edit shape: cold vs warm-delta medians plus the
/// warm cache's reuse profile.
struct Shape {
    label: &'static str,
    cold_ms: Vec<f64>,
    warm_ms: Vec<f64>,
    stats: CorpusStats,
    flushed: u64,
    preloaded: u64,
}

impl Shape {
    fn reuse(&self) -> f64 {
        let lookups = self.stats.tracelet_hits + self.stats.tracelet_misses;
        self.stats.tracelet_hits as f64 / (lookups.max(1)) as f64
    }

    fn speedup(&self) -> f64 {
        median(&self.cold_ms) / median(&self.warm_ms).max(1e-6)
    }
}

fn measure(label: &'static str, base: &LoadedBinary, edit: DeltaEdit, runs: usize) -> Shape {
    let image = load(&edited_spec(edit));
    let scratch = Scratch::new(label);
    let store = scratch.store();
    let flushed = populate(base, &store);
    // One untimed pass warms the process (allocator arenas, page
    // faults); cold and warm-delta passes then alternate so drift
    // affects both sides equally instead of whichever ran last.
    run_cold(&image, Parallelism::Serial);
    let mut cold_ms = Vec::new();
    let mut warm_ms = Vec::new();
    let mut stats = CorpusStats::default();
    let mut preloaded = 0;
    for _ in 0..runs {
        let start = Instant::now();
        run_cold(&image, Parallelism::Serial);
        cold_ms.push(ms(start));
        let (elapsed, s, pre) = warm_delta(&image, &store);
        warm_ms.push(elapsed);
        stats = s;
        preloaded = pre;
    }
    Shape { label, cold_ms, warm_ms, stats, flushed, preloaded }
}

fn shape_json(s: &Shape) -> String {
    let st = &s.stats;
    format!(
        "  \"{label}\": {{\n    \"cold_runs_ms\": [{cold_runs}],\n    \
         \"cold_median_ms\": {cold:.3},\n    \
         \"warm_delta_runs_ms\": [{warm_runs}],\n    \"warm_delta_median_ms\": {warm:.3},\n    \
         \"warm_delta_speedup\": {speedup:.2},\n    \
         \"function_artifact_reuse\": {reuse:.4},\n    \
         \"sub_flushed\": {flushed},\n    \"sub_preloaded\": {preloaded},\n    \
         \"tracelet_hits\": {th},\n    \"tracelet_misses\": {tm},\n    \
         \"slm_hits\": {sh},\n    \"slm_misses\": {sm},\n    \
         \"distance_hits\": {dh},\n    \"distance_misses\": {dm},\n    \
         \"lifting_hits\": {lh},\n    \"lifting_misses\": {lm}\n  }}",
        label = s.label,
        cold_runs = fmt_runs(&s.cold_ms),
        cold = median(&s.cold_ms),
        warm_runs = fmt_runs(&s.warm_ms),
        warm = median(&s.warm_ms),
        speedup = s.speedup(),
        reuse = s.reuse(),
        flushed = s.flushed,
        preloaded = s.preloaded,
        th = st.tracelet_hits,
        tm = st.tracelet_misses,
        sh = st.slm_hits,
        sm = st.slm_misses,
        dh = st.distance_hits,
        dm = st.distance_misses,
        lh = st.lifting_hits,
        lm = st.lifting_misses,
    )
}

/// Asserts warm-delta output equals cold output for every edit shape at
/// `Serial` and `Threads(8)` — through the disk round trip, exactly the
/// path the measurements take.
fn verify_identity(base: &LoadedBinary) {
    let scratch = Scratch::new("identity");
    let store = scratch.store();
    populate(base, &store);
    for (label, edit) in edits() {
        let image = load(&edited_spec(edit));
        for par in [Parallelism::Serial, Parallelism::Threads(8)] {
            let cold = run_cold(&image, par);
            let cache = Arc::new(CorpusCache::new());
            preload_subartifacts(&store, &cache);
            let warm = run_warm(&image, par, &cache);
            assert_eq!(cold.hierarchy, warm.hierarchy, "{label} {par:?}: hierarchy diverged");
            assert_eq!(cold.distances, warm.distances, "{label} {par:?}: distances diverged");
            assert_eq!(cold.diagnostics, warm.diagnostics, "{label} {par:?}: diagnostics diverged");
        }
    }
}

/// The summary pass: pins bit-identity, measures the three edit shapes,
/// writes `BENCH_incremental.json`, and (in smoke mode) enforces the CI
/// floors.
fn emit_bench_json(_c: &mut Criterion) {
    let runs = if smoke() { 2 } else { 5 };
    let base = load(&base_spec());

    // Bit-identity first: no number is worth reporting if reuse changes
    // an answer.
    verify_identity(&base);

    let shapes: Vec<Shape> =
        edits().into_iter().map(|(label, edit)| measure(label, &base, edit, runs)).collect();

    let body = shapes.iter().map(shape_json).collect::<Vec<_>>().join(",\n");
    let json = format!(
        "{{\n  \"mode\": \"{mode}\",\n  \"parallelism\": \"serial\",\n  \
         \"identity_pinned_at\": [\"serial\", \"threads8\"],\n{body}\n}}\n",
        mode = if smoke() { "smoke" } else { "full" },
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    fs::write(path, &json).expect("write BENCH_incremental.json");
    println!("\nwrote {path}:\n{json}");

    if smoke() {
        // The CI floors: a one-line patch must rerun ≥ 3× faster than
        // cold and reuse ≥ 90% of the function-level artifacts.
        let one_fn = &shapes[0];
        assert!(
            one_fn.speedup() >= 3.0,
            "incremental-smoke: 1-function-edit warm-delta speedup {:.2}x fell below 3x",
            one_fn.speedup()
        );
        assert!(
            one_fn.reuse() >= 0.90,
            "incremental-smoke: 1-function-edit reuse {:.3} fell below 0.90",
            one_fn.reuse()
        );
    }
}

criterion_group!(benches, bench_incremental_cold, bench_incremental_warm_delta, emit_bench_json);
criterion_main!(benches);
