//! The disabled tracing path must cost **zero heap allocations**: a
//! reconstruction without `--trace` pays nothing for the
//! instrumentation now threaded through every hot loop. This harness
//! installs a counting global allocator and drives the exact call shape
//! the pipeline's inner loops use — `TraceCtx::local` per work item,
//! `enter`/`exit` per item and per pair, `merge` per buffer, `span` per
//! stage — asserting the allocation counter does not move.
//!
//! Everything lives in one `#[test]` so no sibling test can allocate
//! concurrently and contaminate the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rock_trace::{names, LocalSpans, TraceCtx, Tracer};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_in(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn disabled_tracing_allocates_nothing() {
    let ctx = TraceCtx::disabled();
    assert!(!ctx.is_enabled());

    // The per-stage driver shape: a stage guard around a fan-out of work
    // items, each with its own local buffer, nested per-pair spans, and
    // an input-order merge — exactly what `staged.rs` runs per stage.
    let disabled = allocations_in(|| {
        for round in 0..1_000u64 {
            let _stage = ctx.span(names::STAGE_DISTANCES, round);
            for item in 0..8u64 {
                let mut local = ctx.local();
                let child = local.enter(names::DISTANCES_CHILD, item);
                for pair in 0..16u64 {
                    let tok = local.enter(names::DISTANCES_PAIR, pair);
                    local.exit(tok);
                }
                local.scoped(names::DISTANCES_PAIR, item, |_| ());
                local.exit(child);
                assert!(local.is_empty());
                ctx.merge(local);
            }
        }
        // The standalone disabled buffer (used where no ctx is threaded).
        let mut inert = LocalSpans::disabled();
        let tok = inert.enter(names::ANALYSIS_FUNCTION, 1);
        inert.exit(tok);
    });
    assert_eq!(disabled, 0, "disabled tracing path must be allocation-free");

    // Sanity: the counter itself works — the enabled path must allocate
    // (span buffers are real Vecs), or the zero above proves nothing.
    let tracer = Tracer::new();
    let enabled = allocations_in(|| {
        let ctx = TraceCtx::enabled(&tracer);
        let _stage = ctx.span(names::STAGE_DISTANCES, 0);
        let mut local = ctx.local();
        let tok = local.enter(names::DISTANCES_PAIR, 0);
        local.exit(tok);
        ctx.merge(local);
    });
    assert!(enabled > 0, "counting allocator failed to observe enabled-path allocations");
}
