//! The cheap tracing paths must cost **zero heap allocations**: a
//! reconstruction without `--trace` pays nothing for the
//! instrumentation threaded through every hot loop, and with tracing at
//! `stage` or `sampled` the spans each level *filters out* must be just
//! as free. This harness installs a counting global allocator and
//! drives the exact call shape the pipeline's inner loops use —
//! `TraceCtx::local` per work item, `enter`/`exit` per item and per
//! pair, `merge` per buffer, `span` per stage — asserting the
//! allocation counter does not move.
//!
//! Everything lives in one `#[test]` so no sibling test can allocate
//! concurrently and contaminate the counter. The libtest harness itself
//! still owns background threads that may allocate at unpredictable
//! moments, so each section retries: allocations made by the traced
//! code would repeat on *every* attempt (the workload is
//! deterministic), while harness noise is transient — observing a
//! single zero-allocation attempt proves the path clean.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rock_trace::{names, span_sampled, LocalSpans, TraceCtx, TraceLevel, Tracer};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_in(f: &mut impl FnMut()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

/// Asserts `f` can run without a single heap allocation. Retries to ride
/// out transient allocations from harness background threads — the
/// workload itself is deterministic, so code under test that allocates
/// fails every attempt.
fn assert_allocation_free(label: &str, mut f: impl FnMut()) {
    let mut observed = u64::MAX;
    for _ in 0..5 {
        observed = observed.min(allocations_in(&mut f));
        if observed == 0 {
            return;
        }
    }
    panic!("{label}: expected an allocation-free path, best attempt allocated {observed} times");
}

#[test]
fn cheap_tracing_paths_allocate_nothing() {
    // --- Tracing disabled: the whole API is a no-op. ------------------
    let ctx = TraceCtx::disabled();
    assert!(!ctx.is_enabled());

    // The per-stage driver shape: a stage guard around a fan-out of work
    // items, each with its own local buffer, nested per-pair spans, and
    // an input-order merge — exactly what `staged.rs` runs per stage.
    assert_allocation_free("disabled tracing", || {
        for round in 0..1_000u64 {
            let _stage = ctx.span(names::STAGE_DISTANCES, round);
            for item in 0..8u64 {
                let mut local = ctx.local();
                let child = local.enter(names::DISTANCES_CHILD, item);
                for pair in 0..16u64 {
                    let tok = local.enter(names::DISTANCES_PAIR, pair);
                    local.exit(tok);
                }
                local.scoped(names::DISTANCES_PAIR, item, |_| ());
                local.exit(child);
                assert!(local.is_empty());
                ctx.merge(local);
            }
        }
        // The standalone disabled buffer (used where no ctx is threaded).
        let mut inert = LocalSpans::disabled();
        let tok = inert.enter(names::ANALYSIS_FUNCTION, 1);
        inert.exit(tok);
    });

    // --- `stage` level: every per-item span is filtered out. ----------
    // The stage guard itself records (and may grow the shared log), so it
    // sits outside the counted region; the per-item work inside must be
    // free.
    let tracer = Tracer::new();
    let ctx = TraceCtx::with_level(&tracer, TraceLevel::Stage);
    let stage = ctx.span(names::STAGE_DISTANCES, 0).expect("stage spans survive `stage` level");
    assert_allocation_free("stage-level per-item path", || {
        for item in 0..1_000u64 {
            let mut local = ctx.local();
            let child = local.enter(names::DISTANCES_CHILD, item);
            for pair in 0..16u64 {
                let tok = local.enter(names::DISTANCES_PAIR, pair);
                local.exit(tok);
            }
            local.exit(child);
            assert!(local.is_empty(), "stage level must record no per-item spans");
            ctx.merge(local);
        }
    });
    drop(stage);

    // --- `sampled` level: spans the hash drops are free. --------------
    // Subjects outside the deterministic 1-in-16 sample must cost no
    // clock read and no push; only they are driven inside the counter.
    let unsampled: Vec<u64> =
        (0..1_000u64).filter(|&s| !span_sampled(names::DISTANCES_PAIR, s)).collect();
    assert!(unsampled.len() > 800, "sanity: most subjects are unsampled at 1-in-16");
    let ctx = TraceCtx::with_level(&tracer, TraceLevel::Sampled);
    let stage = ctx.span(names::STAGE_DISTANCES, 1).expect("stage spans survive `sampled` level");
    assert_allocation_free("sampled-level unsampled-span path", || {
        for _ in 0..50 {
            let mut local = ctx.local();
            for &subject in &unsampled {
                let tok = local.enter(names::DISTANCES_PAIR, subject);
                local.exit(tok);
            }
            assert!(local.is_empty(), "unsampled subjects must record nothing");
            ctx.merge(local);
        }
    });
    drop(stage);

    // Sanity: the counter itself works — the full-level path must
    // allocate (span buffers are real Vecs), or the zeros above prove
    // nothing.
    let enabled = allocations_in(&mut || {
        let ctx = TraceCtx::enabled(&tracer);
        let _stage = ctx.span(names::STAGE_DISTANCES, 2);
        let mut local = ctx.local();
        let tok = local.enter(names::DISTANCES_PAIR, 0);
        local.exit(tok);
        ctx.merge(local);
    });
    assert!(enabled > 0, "counting allocator failed to observe enabled-path allocations");
}
