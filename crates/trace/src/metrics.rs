//! Typed metrics: named counters and fixed-bucket histograms.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version stamped into every exported metrics document.
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// Default histogram bucket bounds: powers of two up to 1024 (an
/// observation lands in the first bucket whose bound is `>=` it; larger
/// values fall into the implicit overflow bucket).
pub const DEFAULT_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// A fixed-bucket histogram over `u64` observations.
///
/// Buckets never change after construction, so two registries built from
/// the same observations compare equal — the property the determinism
/// suite pins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One count per bound, plus the trailing overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::with_bounds(DEFAULT_BOUNDS)
    }
}

impl Histogram {
    /// A histogram over the given strictly increasing bucket bounds.
    ///
    /// # Panics
    ///
    /// If `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly increasing");
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], count: 0, sum: 0 }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let bucket = self.bounds.partition_point(|&b| b < value);
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries; last = overflow).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Folds another histogram in (bounds must match).
    fn merge_from(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram merge needs identical buckets");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// A registry of named counters and histograms.
///
/// Names come from the [`crate::names`] taxonomy; values are plain `u64`
/// work counts, never wall-clock readings, so registries are comparable
/// across thread counts and repeated runs. The pipeline owns one per run
/// and updates it only on serial paths (stage bodies and merge loops) —
/// no interior locking, no atomics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry (allocation-free until first write).
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to a counter, creating it at zero.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets a counter to an absolute value.
    pub fn set(&mut self, name: &'static str, value: u64) {
        self.counters.insert(name, value);
    }

    /// Current value of a counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one observation in a histogram, creating it with
    /// [`DEFAULT_BOUNDS`].
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Folds another registry in: counters add, histograms merge.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (&name, &v) in &other.counters {
            self.add(name, v);
        }
        for (&name, h) in &other.histograms {
            self.histograms
                .entry(name)
                .or_insert_with(|| Histogram::with_bounds(h.bounds()))
                .merge_from(h);
        }
    }

    /// The versioned metrics document (see `DESIGN.md` §14): integer-only
    /// JSON, counters and histograms keyed by name in sorted order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"version\":{METRICS_SCHEMA_VERSION},\"counters\":{{");
        for (i, (name, v)) in self.counters().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\"{name}\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let bounds = h.bounds().iter().map(u64::to_string).collect::<Vec<_>>().join(",");
            let counts = h.bucket_counts().iter().map(u64::to_string).collect::<Vec<_>>().join(",");
            let _ = write!(
                out,
                "{sep}\"{name}\":{{\"bounds\":[{bounds}],\"counts\":[{counts}],\
                 \"count\":{},\"sum\":{}}}",
                h.count(),
                h.sum()
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_observations() {
        let mut h = Histogram::with_bounds(&[1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), &[2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1045);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_bounds_are_rejected() {
        Histogram::with_bounds(&[4, 4]);
    }

    #[test]
    fn registry_round_trips_and_merges() {
        let mut a = MetricsRegistry::new();
        a.add("x.count", 2);
        a.add("x.count", 3);
        a.set("y.count", 7);
        a.observe("z.len", 3);
        let mut b = MetricsRegistry::new();
        b.add("x.count", 1);
        b.observe("z.len", 100);
        a.merge_from(&b);
        assert_eq!(a.counter("x.count"), 6);
        assert_eq!(a.counter("y.count"), 7);
        assert_eq!(a.counter("unknown"), 0);
        let h = a.histogram("z.len").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 103);
    }

    #[test]
    fn equal_observations_mean_equal_registries() {
        let build = || {
            let mut m = MetricsRegistry::new();
            m.add("a", 1);
            m.observe("h", 9);
            m.observe("h", 2000);
            m
        };
        assert_eq!(build(), build());
        assert_eq!(build().to_json(), build().to_json());
    }

    #[test]
    fn json_document_is_versioned_and_sorted() {
        let mut m = MetricsRegistry::new();
        m.set("b.second", 2);
        m.set("a.first", 1);
        m.observe("h.len", 5);
        let doc = m.to_json();
        assert!(doc.starts_with("{\"version\":1,"));
        let a = doc.find("a.first").unwrap();
        let b = doc.find("b.second").unwrap();
        assert!(a < b, "counters must serialize in name order");
        assert!(doc.contains("\"count\":1,\"sum\":5"));
        // Empty registry still emits the full shape.
        assert_eq!(
            MetricsRegistry::new().to_json(),
            "{\"version\":1,\"counters\":{},\"histograms\":{}}"
        );
    }
}
