//! Per-worker span buffers: lock-free, and allocation-free when disabled.

use std::time::Instant;

use crate::tracer::SpanEvent;

/// Handle returned by [`LocalSpans::enter`]; pass it back to
/// [`LocalSpans::exit`] to close the span.
#[derive(Clone, Copy, Debug)]
#[must_use = "an unexited span stays open (dur_ns = 0)"]
pub struct SpanToken {
    index: u32,
}

impl SpanToken {
    const DISABLED: SpanToken = SpanToken { index: u32::MAX };
}

/// A span buffer owned by one parallel work item.
///
/// Created through [`crate::TraceCtx::local`]: enabled buffers share the
/// tracer's epoch and record into a private `Vec`; disabled buffers hold
/// empty vectors (`Vec::new` does not allocate), never read the clock,
/// and never touch a lock — the whole API degenerates to an index check.
/// Workers hand finished buffers back with their results; the serial
/// merge loop absorbs them in input order via [`crate::Tracer::merge`].
#[derive(Debug)]
pub struct LocalSpans {
    epoch: Option<Instant>,
    events: Vec<SpanEvent>,
    /// Indices of currently-open spans, innermost last.
    stack: Vec<u32>,
}

impl LocalSpans {
    /// An inert buffer: every operation is a no-op.
    pub fn disabled() -> Self {
        LocalSpans { epoch: None, events: Vec::new(), stack: Vec::new() }
    }

    pub(crate) fn enabled(epoch: Instant) -> Self {
        LocalSpans { epoch: Some(epoch), events: Vec::new(), stack: Vec::new() }
    }

    /// Whether this buffer records anything.
    pub fn is_enabled(&self) -> bool {
        self.epoch.is_some()
    }

    /// Opens a span nested under the innermost open span of this buffer.
    pub fn enter(&mut self, name: &'static str, subject: u64) -> SpanToken {
        let Some(epoch) = self.epoch else { return SpanToken::DISABLED };
        let start_ns = epoch.elapsed().as_nanos() as u64;
        let index = self.events.len() as u32;
        let parent = self.stack.last().copied();
        self.events.push(SpanEvent { name, subject, start_ns, dur_ns: 0, parent, unit: 0 });
        self.stack.push(index);
        SpanToken { index }
    }

    /// Closes the span opened by `token` (and any spans still open inside
    /// it, so a panic-skipped `exit` cannot corrupt later nesting).
    pub fn exit(&mut self, token: SpanToken) {
        let Some(epoch) = self.epoch else { return };
        let end_ns = epoch.elapsed().as_nanos() as u64;
        while let Some(open) = self.stack.pop() {
            if let Some(e) = self.events.get_mut(open as usize) {
                e.dur_ns = end_ns.saturating_sub(e.start_ns);
            }
            if open == token.index {
                break;
            }
        }
    }

    /// Runs `f` inside a span — the closure shape sidesteps borrow checks
    /// when the traced region itself needs `&mut self`.
    pub fn scoped<R>(
        &mut self,
        name: &'static str,
        subject: u64,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        let token = self.enter(name, subject);
        let out = f(self);
        self.exit(token);
        out
    }

    /// Number of recorded spans (0 for disabled buffers).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub(crate) fn into_events(self) -> Vec<SpanEvent> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_records_nothing_and_holds_no_capacity() {
        let mut l = LocalSpans::disabled();
        assert!(!l.is_enabled());
        let t = l.enter("a", 1);
        let inner = l.enter("b", 2);
        l.exit(inner);
        l.exit(t);
        let r = l.scoped("c", 3, |_| 42);
        assert_eq!(r, 42);
        assert!(l.is_empty());
        assert_eq!(l.events.capacity(), 0, "disabled buffers must not allocate");
        assert_eq!(l.stack.capacity(), 0);
    }

    #[test]
    fn enabled_buffer_nests_and_closes() {
        let mut l = LocalSpans::enabled(Instant::now());
        let outer = l.enter("outer", 1);
        let inner = l.enter("inner", 2);
        l.exit(inner);
        l.exit(outer);
        assert_eq!(l.len(), 2);
        let events = l.into_events();
        assert_eq!(events[0].parent, None);
        assert_eq!(events[1].parent, Some(0));
    }

    #[test]
    fn exiting_an_outer_span_closes_leaked_inner_spans() {
        let mut l = LocalSpans::enabled(Instant::now());
        let outer = l.enter("outer", 1);
        let _leaked = l.enter("inner", 2);
        l.exit(outer);
        let next = l.enter("sibling", 3);
        l.exit(next);
        let events = l.into_events();
        assert_eq!(events[2].parent, None, "sibling must not nest under the leaked span");
    }
}
