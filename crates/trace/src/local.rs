//! Per-worker span buffers: lock-free, and allocation-free when disabled.

use std::time::Instant;

use crate::level::TraceLevel;
use crate::tracer::SpanEvent;

/// Handle returned by [`LocalSpans::enter`]; pass it back to
/// [`LocalSpans::exit`] to close the span.
#[derive(Clone, Copy, Debug)]
#[must_use = "an unexited span stays open (dur_ns = 0)"]
pub struct SpanToken {
    index: u32,
}

impl SpanToken {
    /// Returned for spans that were filtered out (buffer disabled, or the
    /// span's `(name, subject)` not admitted at the buffer's level).
    const DISABLED: SpanToken = SpanToken { index: u32::MAX };
}

/// A span buffer owned by one parallel work item.
///
/// Created through [`crate::TraceCtx::local`]: enabled buffers share the
/// tracer's epoch, filter spans through the context's [`TraceLevel`],
/// and record into a private `Vec`; disabled buffers hold empty vectors
/// (`Vec::new` does not allocate), never read the clock, and never touch
/// a lock — the whole API degenerates to an index check. A span the
/// level does not admit costs the same nothing: no clock read, no push.
/// Workers hand finished buffers back with their results; the serial
/// merge loop absorbs them in input order via [`crate::Tracer::merge`]
/// (or one lock for a whole stage via [`crate::Tracer::merge_many`]),
/// parenting buffer roots to the span that was open when the buffer was
/// created.
#[derive(Debug)]
pub struct LocalSpans {
    epoch: Option<Instant>,
    level: TraceLevel,
    /// Merge parent captured at creation time: the index of the span
    /// open on the owning tracer when this buffer was made.
    outer: Option<u32>,
    events: Vec<SpanEvent>,
    /// Indices of currently-open spans, innermost last.
    stack: Vec<u32>,
}

impl LocalSpans {
    /// An inert buffer: every operation is a no-op.
    pub fn disabled() -> Self {
        LocalSpans {
            epoch: None,
            level: TraceLevel::Off,
            outer: None,
            events: Vec::new(),
            stack: Vec::new(),
        }
    }

    pub(crate) fn enabled(epoch: Instant, level: TraceLevel, outer: Option<u32>) -> Self {
        LocalSpans { epoch: Some(epoch), level, outer, events: Vec::new(), stack: Vec::new() }
    }

    /// Whether this buffer records anything.
    pub fn is_enabled(&self) -> bool {
        self.epoch.is_some()
    }

    /// Opens a span nested under the innermost open span of this buffer.
    /// Returns an inert token (and does no work — not even a clock read)
    /// when the buffer is disabled or its level filters the span out.
    pub fn enter(&mut self, name: &'static str, subject: u64) -> SpanToken {
        let Some(epoch) = self.epoch else { return SpanToken::DISABLED };
        if !self.level.admits(name, subject) {
            return SpanToken::DISABLED;
        }
        let start_ns = epoch.elapsed().as_nanos() as u64;
        let index = self.events.len() as u32;
        let parent = self.stack.last().copied();
        self.events.push(SpanEvent { name, subject, start_ns, dur_ns: 0, parent, unit: 0 });
        self.stack.push(index);
        SpanToken { index }
    }

    /// Closes the span opened by `token` (and any spans still open inside
    /// it, so a panic-skipped `exit` cannot corrupt later nesting). An
    /// inert token is a no-op — it must not drain spans that *were*
    /// recorded.
    pub fn exit(&mut self, token: SpanToken) {
        if token.index == u32::MAX {
            return;
        }
        let Some(epoch) = self.epoch else { return };
        let end_ns = epoch.elapsed().as_nanos() as u64;
        while let Some(open) = self.stack.pop() {
            if let Some(e) = self.events.get_mut(open as usize) {
                e.dur_ns = end_ns.saturating_sub(e.start_ns);
            }
            if open == token.index {
                break;
            }
        }
    }

    /// Runs `f` inside a span — the closure shape sidesteps borrow checks
    /// when the traced region itself needs `&mut self`.
    pub fn scoped<R>(
        &mut self,
        name: &'static str,
        subject: u64,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        let token = self.enter(name, subject);
        let out = f(self);
        self.exit(token);
        out
    }

    /// Number of recorded spans (0 for disabled buffers).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The merge parent captured when this buffer was created.
    pub(crate) fn outer(&self) -> Option<u32> {
        self.outer
    }

    pub(crate) fn into_events(self) -> Vec<SpanEvent> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full() -> LocalSpans {
        LocalSpans::enabled(Instant::now(), TraceLevel::Full, None)
    }

    #[test]
    fn disabled_buffer_records_nothing_and_holds_no_capacity() {
        let mut l = LocalSpans::disabled();
        assert!(!l.is_enabled());
        let t = l.enter("a", 1);
        let inner = l.enter("b", 2);
        l.exit(inner);
        l.exit(t);
        let r = l.scoped("c", 3, |_| 42);
        assert_eq!(r, 42);
        assert!(l.is_empty());
        assert_eq!(l.events.capacity(), 0, "disabled buffers must not allocate");
        assert_eq!(l.stack.capacity(), 0);
    }

    #[test]
    fn enabled_buffer_nests_and_closes() {
        let mut l = full();
        let outer = l.enter("outer", 1);
        let inner = l.enter("inner", 2);
        l.exit(inner);
        l.exit(outer);
        assert_eq!(l.len(), 2);
        let events = l.into_events();
        assert_eq!(events[0].parent, None);
        assert_eq!(events[1].parent, Some(0));
    }

    #[test]
    fn exiting_an_outer_span_closes_leaked_inner_spans() {
        let mut l = full();
        let outer = l.enter("outer", 1);
        let _leaked = l.enter("inner", 2);
        l.exit(outer);
        let next = l.enter("sibling", 3);
        l.exit(next);
        let events = l.into_events();
        assert_eq!(events[2].parent, None, "sibling must not nest under the leaked span");
    }

    #[test]
    fn filtered_spans_leave_recorded_nesting_intact() {
        // Stage level on a worker buffer filters every per-item span; an
        // exit with the resulting inert token must not pop real spans.
        let mut l = LocalSpans::enabled(Instant::now(), TraceLevel::Stage, None);
        let real = l.enter("stage.analysis", 0);
        let filtered = l.enter("analysis.function", 7);
        l.exit(filtered);
        assert_eq!(l.len(), 1, "filtered span must not be recorded");
        let nested = l.enter("stage.training", 0);
        l.exit(nested);
        l.exit(real);
        let events = l.into_events();
        assert_eq!(events[1].parent, Some(0), "nesting survives an inert exit in between");
        assert!(events[0].dur_ns >= events[1].dur_ns);
    }

    #[test]
    fn sampled_buffer_keeps_exactly_the_admitted_subjects() {
        let mut l = LocalSpans::enabled(Instant::now(), TraceLevel::Sampled, None);
        let expected: Vec<u64> =
            (0..1000u64).filter(|&s| TraceLevel::Sampled.admits("distances.pair", s)).collect();
        for s in 0..1000u64 {
            let tok = l.enter("distances.pair", s);
            l.exit(tok);
        }
        let got: Vec<u64> = l.into_events().iter().map(|e| e.subject).collect();
        assert_eq!(got, expected);
        assert!(!got.is_empty(), "1000 subjects at 1-in-16 must keep some");
    }
}
