//! The span and metric name taxonomy.
//!
//! Names are dotted `area.detail` strings; the prefix before the first
//! dot becomes the chrome-trace category. The full registry (with
//! semantics and subjects) is tabulated in `DESIGN.md` §14.

// --- Stage spans (serial driver thread, one per pipeline stage) -------

/// Behavioral analysis stage.
pub const STAGE_ANALYSIS: &str = "stage.analysis";
/// Structural analysis (families + possible parents).
pub const STAGE_STRUCTURAL: &str = "stage.structural";
/// SLM training stage.
pub const STAGE_TRAINING: &str = "stage.training";
/// Distance-scoring stage.
pub const STAGE_DISTANCES: &str = "stage.distances";
/// Arborescence-lifting stage.
pub const STAGE_LIFTING: &str = "stage.lifting";
/// Cross-family repartition pass.
pub const STAGE_REPARTITION: &str = "stage.repartition";

// --- Per-item spans (worker-local buffers) ----------------------------

/// One function's symbolic execution; subject = entry address.
pub const ANALYSIS_FUNCTION: &str = "analysis.function";
/// One type's SLM training; subject = vtable address.
pub const TRAINING_TYPE: &str = "training.type";
/// One child's candidate-edge scoring; subject = child vtable address.
pub const DISTANCES_CHILD: &str = "distances.child";
/// One candidate pair's KL evaluation; subject = parent vtable address.
pub const DISTANCES_PAIR: &str = "distances.pair";
/// One family's arborescence search; subject = family index.
pub const LIFTING_FAMILY: &str = "lifting.family";
/// One root's cross-family adoption scan; subject = root vtable address.
pub const REPARTITION_ROOT: &str = "repartition.root";

// --- Supervisor spans -------------------------------------------------

/// One supervised job; subject = truncated content key.
pub const SUPERVISOR_JOB: &str = "supervisor.job";
/// One attempt on the retry ladder; subject = attempt ordinal.
pub const SUPERVISOR_ATTEMPT: &str = "supervisor.attempt";
/// Saving one stage checkpoint; subject = stage ordinal.
pub const SUPERVISOR_CHECKPOINT: &str = "supervisor.checkpoint";
/// Restoring the checkpointed prefix; subject = stages restored.
pub const SUPERVISOR_RESTORE: &str = "supervisor.restore";

/// One daemon connection, accept to close; subject = connection id.
pub const SERVE_CONNECTION: &str = "serve.connection";
/// One admitted request, dequeue to terminal state; subject = job id.
pub const SERVE_REQUEST: &str = "serve.request";
/// A backoff wait between attempts; subject = wait in ms.
pub const SUPERVISOR_BACKOFF: &str = "supervisor.backoff";

// --- Counters ---------------------------------------------------------

/// Functions in the loaded binary.
pub const ANALYSIS_FUNCTIONS_TOTAL: &str = "analysis.functions_total";
/// Functions whose symbolic execution completed.
pub const ANALYSIS_FUNCTIONS_ANALYZED: &str = "analysis.functions_analyzed";
/// Functions excluded (skips + contained panics + budget exhaustion).
pub const ANALYSIS_FUNCTIONS_SKIPPED: &str = "analysis.functions_skipped";
/// Functions excluded specifically by fuel exhaustion (live runs only;
/// checkpoints do not carry it).
pub const ANALYSIS_FUEL_EXHAUSTED: &str = "analysis.fuel_exhausted";
/// Fuel units spent across all completed symbolic executions (live runs
/// only; zero when the analysis stage was restored from a checkpoint).
pub const ANALYSIS_FUEL_SPENT: &str = "analysis.fuel_spent";
/// Tracelets pooled across all types.
pub const ANALYSIS_TRACELETS: &str = "analysis.tracelets";
/// Events across all pooled tracelets.
pub const ANALYSIS_EVENTS: &str = "analysis.events";

/// Vtables the loader accepted.
pub const LOAD_VTABLES_PARSED: &str = "load.vtables_parsed";
/// Vtable candidates the loader rejected.
pub const LOAD_VTABLES_REJECTED: &str = "load.vtables_rejected";

/// Candidate edges eliminated by rule 1 (slot count).
pub const STRUCTURAL_RULE1_ELIMINATED: &str = "structural.rule1_eliminated";
/// Candidate edges eliminated by rule 2 (pure-slot reuse).
pub const STRUCTURAL_RULE2_ELIMINATED: &str = "structural.rule2_eliminated";
/// Candidate edges eliminated by rule 3 (ctor pinning).
pub const STRUCTURAL_RULE3_ELIMINATED: &str = "structural.rule3_eliminated";
/// Candidate edges surviving all elimination rules.
pub const STRUCTURAL_REMAINING: &str = "structural.remaining_candidates";

/// SLMs trained (one per vtable that trained successfully).
pub const SLM_MODELS_TRAINED: &str = "slm.models_trained";
/// Context nodes across all SLM arena tries.
pub const SLM_ARENA_NODES: &str = "slm.arena_nodes";
/// Child edges across all SLM arena tries.
pub const SLM_ARENA_EDGES: &str = "slm.arena_edges";
/// Approximate resident bytes of all SLM arena tries.
pub const SLM_ARENA_BYTES: &str = "slm.arena_bytes";
/// Distinct training sequences after multiplicity deduplication.
pub const SLM_WORDS_UNIQUE: &str = "slm.words_unique";
/// Total training sequences fed in (clones included).
pub const SLM_WORDS_TOTAL: &str = "slm.words_total";

/// Candidate pairs evaluated (accepted + unmodeled).
pub const DISTANCES_PAIRS_SCORED: &str = "distances.pairs_scored";
/// Weighted edges put into family digraphs.
pub const DISTANCES_EDGES: &str = "distances.edges";
/// Candidates skipped for sitting outside their family.
pub const DISTANCES_FOREIGN_CANDIDATES: &str = "distances.foreign_candidates";
/// Candidate pairs dropped because an endpoint had no model.
pub const DISTANCES_UNMODELED: &str = "distances.unmodeled_pairs";
/// Distance lookups answered by the shared cache.
pub const DISTANCES_CACHE_HIT: &str = "distances.cache_hit";
/// Distance lookups that had to compute.
pub const DISTANCES_CACHE_MISS: &str = "distances.cache_miss";

/// Families found by the structural phase.
pub const LIFTING_FAMILIES_TOTAL: &str = "lifting.families_total";
/// Families whose arborescence search succeeded.
pub const LIFTING_FAMILIES_LIFTED: &str = "lifting.families_lifted";
/// Families degraded to all-roots by a contained fault.
pub const LIFTING_FAMILIES_DEGRADED: &str = "lifting.families_degraded";
/// Co-optimal tie variants enumerated across all families.
pub const LIFTING_TIE_VARIANTS: &str = "lifting.tie_variants";

/// Cross-family adoptions applied by the repartition pass.
pub const REPARTITION_ADOPTIONS: &str = "repartition.adoptions";

/// Diagnostics recorded at error severity.
pub const DIAGNOSTICS_ERRORS: &str = "diagnostics.errors";
/// Diagnostics recorded at warning severity.
pub const DIAGNOSTICS_WARNINGS: &str = "diagnostics.warnings";
/// Approximate bytes retained by the run's diagnostics.
pub const DIAGNOSTICS_BYTES: &str = "diagnostics.bytes";

/// Symbolic executions answered by the corpus tracelet tier.
pub const CORPUS_TRACELET_HIT: &str = "corpus.tracelet_hit";
/// Symbolic executions the corpus tracelet tier could not answer.
pub const CORPUS_TRACELET_MISS: &str = "corpus.tracelet_miss";
/// SLM trainings answered by the corpus model tier.
pub const CORPUS_SLM_HIT: &str = "corpus.slm_hit";
/// SLM trainings the corpus model tier could not answer.
pub const CORPUS_SLM_MISS: &str = "corpus.slm_miss";
/// Distances answered by the corpus distance tier.
pub const CORPUS_DISTANCE_HIT: &str = "corpus.distance_hit";
/// Distances the corpus distance tier could not answer.
pub const CORPUS_DISTANCE_MISS: &str = "corpus.distance_miss";
/// Approximate bytes resident in the corpus cache after the run.
pub const CORPUS_BYTES_STORED: &str = "corpus.bytes_stored";
/// Corpus entries dropped on checksum mismatch (then recomputed).
pub const CORPUS_CORRUPT_DROPPED: &str = "corpus.corrupt_dropped";
/// Corpus entries displaced by capacity eviction (bounded caches).
pub const CORPUS_EVICTED: &str = "corpus.evicted";
/// Family liftings answered by the corpus lifting tier.
pub const CORPUS_LIFTING_HIT: &str = "corpus.lifting_hit";
/// Family liftings the corpus lifting tier could not answer.
pub const CORPUS_LIFTING_MISS: &str = "corpus.lifting_miss";

/// Sub-artifacts restored into the corpus cache at preload.
pub const INCR_PRELOADED: &str = "incr.preloaded";
/// Sub-artifacts newly written to disk at flush.
pub const INCR_FLUSHED: &str = "incr.flushed";
/// Sub-artifacts already on disk and skipped at flush.
pub const INCR_UNCHANGED: &str = "incr.unchanged";
/// Sub-artifacts rejected at preload (recomputed instead).
pub const INCR_CORRUPT_SKIPPED: &str = "incr.corrupt_skipped";
/// Sub-artifact reads/writes abandoned on an i/o error.
pub const INCR_IO_ERRORS: &str = "incr.io_errors";

/// Orphaned `.art.tmp` files the artifact store swept.
pub const STORE_TMP_SWEPT: &str = "store.tmp_swept";
/// Checkpoint saves re-attempted after a transient i/o fault.
pub const STORE_WRITE_RETRIES: &str = "store.write_retries";
/// Checkpoint saves abandoned after retries (resume lost, job lives).
pub const STORE_WRITE_FAILURES: &str = "store.write_failures";
/// Artifact loads re-attempted after a transient i/o fault.
pub const STORE_READ_RETRIES: &str = "store.read_retries";
/// Artifact loads abandoned after retries (the job recomputes).
pub const STORE_READ_FAILURES: &str = "store.read_failures";
/// Artifacts whose checksum or frame failed verification.
pub const STORE_CORRUPT_DETECTED: &str = "store.corrupt_detected";
/// Saves skipped after degrading to recompute-without-checkpointing.
pub const STORE_CHECKPOINTS_SKIPPED: &str = "store.checkpoints_skipped";
/// Backoff milliseconds scheduled for store retries.
pub const STORE_RETRY_BACKOFF_MS: &str = "store.retry_backoff_ms";

/// Attempts the supervised job made (1 = clean first try).
pub const SUPERVISOR_ATTEMPTS: &str = "supervisor.attempts";
/// Stage checkpoints the job saved.
pub const SUPERVISOR_CHECKPOINTS_SAVED: &str = "supervisor.checkpoints_saved";
/// Stages restored from artifacts on resume.
pub const SUPERVISOR_STAGES_RESTORED: &str = "supervisor.stages_restored";
/// Total scheduled backoff across attempts, milliseconds.
pub const SUPERVISOR_BACKOFF_MS: &str = "supervisor.backoff_ms_total";

/// Connections the serve daemon accepted.
pub const SERVE_CONNECTIONS: &str = "serve.connections";
/// Request frames the daemon decoded (well-formed or not).
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Submissions admitted to the queue.
pub const SERVE_ACCEPTED: &str = "serve.accepted";
/// Admitted jobs that ran to a terminal state.
pub const SERVE_COMPLETED: &str = "serve.completed";
/// Submissions shed because the admission queue was full.
pub const SERVE_REJECTED_QUEUE_FULL: &str = "serve.rejected_queue_full";
/// Submissions shed by a per-client quota (tokens or inflight).
pub const SERVE_REJECTED_QUOTA: &str = "serve.rejected_quota";
/// Submissions shed because the daemon was draining.
pub const SERVE_REJECTED_DRAINING: &str = "serve.rejected_draining";
/// Submissions shed because the image exceeded the size cap.
pub const SERVE_REJECTED_TOO_LARGE: &str = "serve.rejected_too_large";
/// Malformed frames answered with a typed protocol error.
pub const SERVE_PROTOCOL_ERRORS: &str = "serve.protocol_errors";
/// Job panics contained by the worker (daemon kept serving).
pub const SERVE_PANICS_CONTAINED: &str = "serve.panics_contained";
/// Connections dropped for exhausting their send budget or write
/// timeout (slow readers).
pub const SERVE_SLOW_CLIENT_DROPS: &str = "serve.slow_client_drops";
/// Jobs cancelled while still queued.
pub const SERVE_CANCELLED: &str = "serve.cancelled";

// --- Histograms -------------------------------------------------------

/// Tracelet lengths (events per tracelet) across all pools.
pub const HIST_TRACELET_LEN: &str = "analysis.tracelet_len";
/// Arena nodes per trained model.
pub const HIST_NODES_PER_MODEL: &str = "slm.nodes_per_model";
/// Surviving candidate parents per child.
pub const HIST_CANDIDATES_PER_CHILD: &str = "distances.candidates_per_child";
/// Members per family at lifting time.
pub const HIST_FAMILY_SIZE: &str = "lifting.family_size";
