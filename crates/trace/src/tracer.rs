//! The shared span log and its RAII guards.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::level::TraceLevel;
use crate::local::LocalSpans;

/// Sentinel for "no span open" in [`Tracer::open`].
const NO_SPAN: u32 = u32::MAX;

/// One closed span: a named, subject-tagged interval with a parent link.
///
/// `start_ns`/`dur_ns` are monotonic nanoseconds relative to the owning
/// [`Tracer`]'s epoch. `parent` is an index into the same event log
/// (`None` for roots). `unit` groups the events of one merged
/// [`LocalSpans`] buffer (0 for spans opened directly on the tracer), so
/// the chrome export can lay overlapping item spans out on separate
/// lanes; like the timestamps, it is presentational — the deterministic
/// part of an event is `(name, subject, parent)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name from the [`crate::names`] taxonomy.
    pub name: &'static str,
    /// The analysis unit (function/vtable address, family index, …).
    pub subject: u64,
    /// Start offset from the tracer epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Index of the enclosing span in the same log, if any.
    pub parent: Option<u32>,
    /// Merge-buffer id (0 = opened directly on the tracer).
    pub unit: u32,
}

#[derive(Default)]
struct SpanLog {
    events: Vec<SpanEvent>,
    /// Indices of currently-open spans opened via [`Tracer::span`].
    stack: Vec<u32>,
    /// Merge buffers absorbed so far (next unit id minus one).
    units: u32,
}

/// A hierarchical span tracer: an epoch plus an append-only span log.
///
/// Serial code opens spans directly ([`Tracer::span`]); parallel workers
/// record into [`LocalSpans`] buffers handed back to the serial merge
/// loop, which absorbs them in input order ([`Tracer::merge`], or one
/// lock for a whole stage's buffers via [`Tracer::merge_many`]). The log
/// lock is therefore only ever taken on serial paths — workers read at
/// most the lock-free [`Tracer::open`] cell when their buffer is
/// created.
pub struct Tracer {
    epoch: Instant,
    log: Mutex<SpanLog>,
    /// Index of the innermost span currently open via [`Tracer::span`]
    /// ([`NO_SPAN`] when none). Maintained under the log lock, read
    /// lock-free by [`Tracer::local`] so worker buffers capture their
    /// merge parent at **creation** time — a stage guard that unwinds
    /// before its workers' buffers are merged can no longer orphan
    /// those spans.
    open: AtomicU32,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer").field("events", &self.lock().events.len()).finish()
    }
}

impl Tracer {
    /// A fresh tracer whose epoch is "now".
    pub fn new() -> Self {
        Tracer {
            epoch: Instant::now(),
            log: Mutex::new(SpanLog::default()),
            open: AtomicU32::new(NO_SPAN),
        }
    }

    /// The log survives a panic on another thread; span data is telemetry,
    /// never load-bearing, so a poisoned lock is simply cleared.
    fn lock(&self) -> MutexGuard<'_, SpanLog> {
        self.log.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Opens a span; it closes (and records its duration) when the
    /// returned guard drops. Nested calls on the same tracer parent to
    /// the innermost open span.
    pub fn span(&self, name: &'static str, subject: u64) -> SpanGuard<'_> {
        let mut log = self.lock();
        // The timestamp is captured *under* the lock: log order and
        // timestamp order then agree by construction, so chrome-trace
        // lanes stay monotonic however many threads contend here.
        let start_ns = self.epoch.elapsed().as_nanos() as u64;
        let index = log.events.len() as u32;
        let parent = log.stack.last().copied();
        log.events.push(SpanEvent { name, subject, start_ns, dur_ns: 0, parent, unit: 0 });
        log.stack.push(index);
        self.open.store(index, Ordering::Release);
        drop(log);
        SpanGuard { tracer: self, index }
    }

    /// A per-worker span buffer sharing this tracer's epoch, recording
    /// at [`TraceLevel::Full`]. The buffer remembers the span open on
    /// the tracer *now* as its merge parent.
    pub fn local(&self) -> LocalSpans {
        self.local_at(TraceLevel::Full)
    }

    /// Like [`Tracer::local`], at an explicit level. Lock-free: reads
    /// only the atomic open-span cell.
    pub fn local_at(&self, level: TraceLevel) -> LocalSpans {
        let open = self.open.load(Ordering::Acquire);
        LocalSpans::enabled(self.epoch, level, (open != NO_SPAN).then_some(open))
    }

    /// Absorbs one worker buffer: events keep their relative order, local
    /// parent links are rebased, and buffer roots are parented to the
    /// span that was open when the buffer was created (the stage span,
    /// in pipeline use — even if its guard has since dropped). Call
    /// order defines event order, so merging buffers in input order
    /// makes the log deterministic modulo timestamps.
    pub fn merge(&self, local: LocalSpans) {
        if local.is_empty() {
            return;
        }
        merge_into(&mut self.lock(), local);
    }

    /// Absorbs a whole stage's worth of buffers under **one** lock
    /// acquisition (none at all if every buffer is empty), in iteration
    /// order — the per-item merge loop of each stage funnels through
    /// here so the mutex is only touched at stage boundaries.
    pub fn merge_many<I>(&self, buffers: I)
    where
        I: IntoIterator<Item = LocalSpans>,
    {
        let mut log: Option<MutexGuard<'_, SpanLog>> = None;
        for local in buffers {
            if local.is_empty() {
                continue;
            }
            merge_into(log.get_or_insert_with(|| self.lock()), local);
        }
    }

    /// A snapshot of the span log (closed and still-open spans alike; an
    /// open span has `dur_ns == 0`).
    pub fn events(&self) -> Vec<SpanEvent> {
        self.lock().events.clone()
    }
}

/// Rebases one non-empty buffer into the log (see [`Tracer::merge`]).
fn merge_into(log: &mut SpanLog, local: LocalSpans) {
    let outer = local.outer();
    let events = local.into_events();
    let base = log.events.len() as u32;
    log.units += 1;
    let unit = log.units;
    for mut e in events {
        e.parent = match e.parent {
            Some(p) => Some(base + p),
            None => outer,
        };
        e.unit = unit;
        log.events.push(e);
    }
}

/// Closes its span on drop.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    index: u32,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let mut log = self.tracer.lock();
        let end_ns = self.tracer.epoch.elapsed().as_nanos() as u64;
        if let Some(e) = log.events.get_mut(self.index as usize) {
            e.dur_ns = end_ns.saturating_sub(e.start_ns);
        }
        // Guards drop innermost-first on the serial driver, so the top
        // of the stack is this span: pop and verify. The O(depth) sweep
        // survives only as the defensive fallback for out-of-order
        // drops in tests.
        if log.stack.last() == Some(&self.index) {
            log.stack.pop();
        } else {
            let index = self.index;
            log.stack.retain(|&i| i != index);
        }
        self.tracer.open.store(log.stack.last().copied().unwrap_or(NO_SPAN), Ordering::Release);
    }
}

/// A copyable handle to "maybe a tracer" plus the [`TraceLevel`] it
/// records at: every operation is a no-op when disabled, so pipeline
/// code threads one value through both paths, and every span (serial or
/// worker-local) is filtered through the same level.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceCtx<'a> {
    tracer: Option<&'a Tracer>,
    level: TraceLevel,
}

impl<'a> TraceCtx<'a> {
    /// The null sink: spans vanish, buffers never allocate.
    pub fn disabled() -> Self {
        TraceCtx { tracer: None, level: TraceLevel::Off }
    }

    /// A context recording every span into `tracer`
    /// ([`TraceLevel::Full`] — the pre-level behavior).
    pub fn enabled(tracer: &'a Tracer) -> Self {
        TraceCtx::with_level(tracer, TraceLevel::Full)
    }

    /// A context recording into `tracer` at `level`
    /// ([`TraceLevel::Off`] degenerates to [`TraceCtx::disabled`]).
    pub fn with_level(tracer: &'a Tracer, level: TraceLevel) -> Self {
        if level == TraceLevel::Off {
            return TraceCtx::disabled();
        }
        TraceCtx { tracer: Some(tracer), level }
    }

    /// Whether spans are being recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// The level spans are filtered through.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Opens a span on the underlying tracer, if the level admits it.
    pub fn span(&self, name: &'static str, subject: u64) -> Option<SpanGuard<'a>> {
        let t = self.tracer?;
        self.level.admits(name, subject).then(|| t.span(name, subject))
    }

    /// A worker buffer: live (at this context's level) when enabled,
    /// inert (no allocation, no clock reads) when disabled.
    pub fn local(&self) -> LocalSpans {
        match self.tracer {
            Some(t) => t.local_at(self.level),
            None => LocalSpans::disabled(),
        }
    }

    /// Merges a worker buffer back, if enabled.
    pub fn merge(&self, local: LocalSpans) {
        if let Some(t) = self.tracer {
            t.merge(local);
        }
    }

    /// Merges a whole stage's buffers back under one lock, if enabled.
    pub fn merge_many<I>(&self, buffers: I)
    where
        I: IntoIterator<Item = LocalSpans>,
    {
        if let Some(t) = self.tracer {
            t.merge_many(buffers);
        }
    }
}

impl<'a> From<Option<&'a Tracer>> for TraceCtx<'a> {
    fn from(tracer: Option<&'a Tracer>) -> Self {
        match tracer {
            Some(t) => TraceCtx::enabled(t),
            None => TraceCtx::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_on_the_serial_path() {
        let t = Tracer::new();
        {
            let _outer = t.span("stage.analysis", 0);
            let _inner = t.span("analysis.function", 7);
        }
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "stage.analysis");
        assert_eq!(events[0].parent, None);
        assert_eq!(events[1].subject, 7);
        assert_eq!(events[1].parent, Some(0));
        assert_eq!(events[1].unit, 0);
        assert!(events[0].dur_ns >= events[1].dur_ns);
    }

    #[test]
    fn merge_rebases_parents_under_the_open_span() {
        let t = Tracer::new();
        let stage = t.span("stage.training", 0);
        let mut a = t.local();
        let tok = a.enter("training.type", 0x1000);
        let nested = a.enter("training.word", 1);
        a.exit(nested);
        a.exit(tok);
        let mut b = t.local();
        let tok = b.enter("training.type", 0x2000);
        b.exit(tok);
        t.merge(a);
        t.merge(b);
        drop(stage);
        let events = t.events();
        assert_eq!(events.len(), 4);
        // Buffer roots hang off the stage span; nesting is rebased.
        assert_eq!(events[1].parent, Some(0));
        assert_eq!(events[2].parent, Some(1));
        assert_eq!(events[3].parent, Some(0));
        assert_eq!((events[1].unit, events[3].unit), (1, 2));
        assert!(events[0].dur_ns > 0, "stage span closed");
    }

    #[test]
    fn disabled_ctx_is_inert() {
        let ctx = TraceCtx::disabled();
        assert!(!ctx.is_enabled());
        assert_eq!(ctx.level(), TraceLevel::Off);
        assert!(ctx.span("stage.analysis", 0).is_none());
        let mut l = ctx.local();
        let tok = l.enter("analysis.function", 1);
        l.exit(tok);
        ctx.merge(l);
    }

    #[test]
    fn off_level_with_a_tracer_records_nothing() {
        let t = Tracer::new();
        let ctx = TraceCtx::with_level(&t, TraceLevel::Off);
        assert!(!ctx.is_enabled());
        assert!(ctx.span("stage.analysis", 0).is_none());
        let mut l = ctx.local();
        assert!(!l.is_enabled());
        let tok = l.enter("analysis.function", 1);
        l.exit(tok);
        ctx.merge(l);
        assert!(t.events().is_empty());
    }

    #[test]
    fn stage_level_drops_per_item_spans_in_both_paths() {
        let t = Tracer::new();
        let ctx = TraceCtx::with_level(&t, TraceLevel::Stage);
        {
            let _stage = ctx.span("stage.distances", 0);
            assert!(ctx.span("distances.child", 7).is_none(), "serial per-item span filtered");
            let mut l = ctx.local();
            let tok = l.enter("distances.pair", 9);
            l.exit(tok);
            assert!(l.is_empty(), "worker per-item span filtered");
            ctx.merge(l);
        }
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "stage.distances");
    }

    #[test]
    fn merging_an_empty_buffer_adds_no_unit() {
        let t = Tracer::new();
        t.merge(t.local());
        assert!(t.events().is_empty());
        let mut l = t.local();
        let tok = l.enter("x", 0);
        l.exit(tok);
        t.merge(l);
        assert_eq!(t.events()[0].unit, 1);
    }

    #[test]
    fn merge_many_takes_buffers_in_order_with_fresh_units() {
        let t = Tracer::new();
        let stage = t.span("stage.training", 0);
        let buffers: Vec<LocalSpans> = (0..3u64)
            .map(|i| {
                let mut l = t.local();
                if i != 1 {
                    let tok = l.enter("training.type", i);
                    l.exit(tok);
                }
                l
            })
            .collect();
        t.merge_many(buffers);
        drop(stage);
        let events = t.events();
        // The empty middle buffer consumed no unit id.
        assert_eq!(events.len(), 3);
        assert_eq!((events[1].subject, events[2].subject), (0, 2));
        assert_eq!((events[1].unit, events[2].unit), (1, 2));
        assert_eq!(events[1].parent, Some(0));
        assert_eq!(events[2].parent, Some(0));
    }

    /// Regression (timestamp-before-lock): spans opened concurrently
    /// must carry non-decreasing `start_ns` in log order. With the old
    /// code the clock was read before the lock, so a thread descheduled
    /// between the two could publish an *earlier* timestamp at a *later*
    /// index.
    #[test]
    fn concurrent_spans_have_monotonic_start_times_in_log_order() {
        let t = Tracer::new();
        std::thread::scope(|scope| {
            for worker in 0..8u64 {
                let t = &t;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        drop(t.span("stage.analysis", worker * 1000 + i));
                    }
                });
            }
        });
        let events = t.events();
        assert_eq!(events.len(), 1600);
        for pair in events.windows(2) {
            assert!(
                pair[0].start_ns <= pair[1].start_ns,
                "log order must equal timestamp order ({} > {})",
                pair[0].start_ns,
                pair[1].start_ns,
            );
        }
    }

    /// Regression (merge-time parenting): a buffer created under a stage
    /// span keeps that parent even when the stage guard unwinds before
    /// the buffer is merged — the `par_map_catch` containment shape,
    /// reproduced here with an injected panic.
    #[test]
    fn buffers_keep_their_parent_across_a_guard_unwind() {
        let t = Tracer::new();
        let mut escaped: Option<LocalSpans> = None;
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _stage = t.span("stage.training", 0);
            let mut l = t.local();
            let tok = l.enter("training.type", 0x1000);
            l.exit(tok);
            escaped = Some(l);
            panic!("injected fault before the merge loop");
        }))
        .unwrap_err();
        assert!(format!("{:?}", err.downcast_ref::<&str>()).contains("injected"));
        // The guard unwound (stage span closed) before this merge runs.
        t.merge(escaped.expect("buffer survived the unwind"));
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert!(events[0].dur_ns > 0, "stage span closed by the unwind");
        assert_eq!(
            events[1].parent,
            Some(0),
            "buffer root must parent to the span open at local() time, not at merge time"
        );
    }

    /// The fast close path pops the stack top; out-of-order drops (never
    /// produced by the pipeline, but possible in tests holding guards in
    /// locals) fall back to the defensive sweep.
    #[test]
    fn out_of_order_guard_drops_keep_nesting_consistent() {
        let t = Tracer::new();
        let outer = t.span("stage.analysis", 0);
        let inner = t.span("analysis.function", 1);
        drop(outer); // out of order: the fallback removes it mid-stack
        let sibling = t.span("analysis.function", 2);
        drop(sibling);
        drop(inner);
        let after = t.span("stage.training", 3);
        drop(after);
        let events = t.events();
        assert_eq!(events[2].parent, Some(1), "sibling nests under the still-open inner span");
        assert_eq!(events[3].parent, None, "all guards dropped: the next span is a root");
    }
}
