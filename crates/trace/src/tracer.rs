//! The shared span log and its RAII guards.

use std::fmt;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::local::LocalSpans;

/// One closed span: a named, subject-tagged interval with a parent link.
///
/// `start_ns`/`dur_ns` are monotonic nanoseconds relative to the owning
/// [`Tracer`]'s epoch. `parent` is an index into the same event log
/// (`None` for roots). `unit` groups the events of one merged
/// [`LocalSpans`] buffer (0 for spans opened directly on the tracer), so
/// the chrome export can lay overlapping item spans out on separate
/// lanes; like the timestamps, it is presentational — the deterministic
/// part of an event is `(name, subject, parent)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name from the [`crate::names`] taxonomy.
    pub name: &'static str,
    /// The analysis unit (function/vtable address, family index, …).
    pub subject: u64,
    /// Start offset from the tracer epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Index of the enclosing span in the same log, if any.
    pub parent: Option<u32>,
    /// Merge-buffer id (0 = opened directly on the tracer).
    pub unit: u32,
}

#[derive(Default)]
struct SpanLog {
    events: Vec<SpanEvent>,
    /// Indices of currently-open spans opened via [`Tracer::span`].
    stack: Vec<u32>,
    /// Merge buffers absorbed so far (next unit id minus one).
    units: u32,
}

/// A hierarchical span tracer: an epoch plus an append-only span log.
///
/// Serial code opens spans directly ([`Tracer::span`]); parallel workers
/// record into [`LocalSpans`] buffers handed back to the serial merge
/// loop, which absorbs them in input order ([`Tracer::merge`]). The log
/// lock is therefore only ever taken on serial paths.
pub struct Tracer {
    epoch: Instant,
    log: Mutex<SpanLog>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer").field("events", &self.lock().events.len()).finish()
    }
}

impl Tracer {
    /// A fresh tracer whose epoch is "now".
    pub fn new() -> Self {
        Tracer { epoch: Instant::now(), log: Mutex::new(SpanLog::default()) }
    }

    /// The log survives a panic on another thread; span data is telemetry,
    /// never load-bearing, so a poisoned lock is simply cleared.
    fn lock(&self) -> MutexGuard<'_, SpanLog> {
        self.log.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Opens a span; it closes (and records its duration) when the
    /// returned guard drops. Nested calls on the same tracer parent to
    /// the innermost open span.
    pub fn span(&self, name: &'static str, subject: u64) -> SpanGuard<'_> {
        let start_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut log = self.lock();
        let index = log.events.len() as u32;
        let parent = log.stack.last().copied();
        log.events.push(SpanEvent { name, subject, start_ns, dur_ns: 0, parent, unit: 0 });
        log.stack.push(index);
        drop(log);
        SpanGuard { tracer: self, index }
    }

    /// A per-worker span buffer sharing this tracer's epoch.
    pub fn local(&self) -> LocalSpans {
        LocalSpans::enabled(self.epoch)
    }

    /// Absorbs one worker buffer: events keep their relative order, local
    /// parent links are rebased, and buffer roots are parented to the
    /// innermost span currently open on the tracer (the stage span, in
    /// pipeline use). Call order defines event order, so merging buffers
    /// in input order makes the log deterministic modulo timestamps.
    pub fn merge(&self, local: LocalSpans) {
        let events = local.into_events();
        if events.is_empty() {
            return;
        }
        let mut log = self.lock();
        let base = log.events.len() as u32;
        let outer = log.stack.last().copied();
        log.units += 1;
        let unit = log.units;
        for mut e in events {
            e.parent = match e.parent {
                Some(p) => Some(base + p),
                None => outer,
            };
            e.unit = unit;
            log.events.push(e);
        }
    }

    /// A snapshot of the span log (closed and still-open spans alike; an
    /// open span has `dur_ns == 0`).
    pub fn events(&self) -> Vec<SpanEvent> {
        self.lock().events.clone()
    }
}

/// Closes its span on drop.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    index: u32,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end_ns = self.tracer.epoch.elapsed().as_nanos() as u64;
        let mut log = self.tracer.lock();
        if let Some(e) = log.events.get_mut(self.index as usize) {
            e.dur_ns = end_ns.saturating_sub(e.start_ns);
        }
        // Guards drop innermost-first on the serial driver; a defensive
        // retain also survives out-of-order drops in tests.
        let index = self.index;
        log.stack.retain(|&i| i != index);
    }
}

/// A copyable handle to "maybe a tracer": every operation is a no-op when
/// disabled, so pipeline code threads one value through both paths.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceCtx<'a> {
    tracer: Option<&'a Tracer>,
}

impl<'a> TraceCtx<'a> {
    /// The null sink: spans vanish, buffers never allocate.
    pub fn disabled() -> Self {
        TraceCtx { tracer: None }
    }

    /// A context recording into `tracer`.
    pub fn enabled(tracer: &'a Tracer) -> Self {
        TraceCtx { tracer: Some(tracer) }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Opens a span on the underlying tracer, if any.
    pub fn span(&self, name: &'static str, subject: u64) -> Option<SpanGuard<'a>> {
        self.tracer.map(|t| t.span(name, subject))
    }

    /// A worker buffer: live when enabled, inert (no allocation, no clock
    /// reads) when disabled.
    pub fn local(&self) -> LocalSpans {
        match self.tracer {
            Some(t) => t.local(),
            None => LocalSpans::disabled(),
        }
    }

    /// Merges a worker buffer back, if enabled.
    pub fn merge(&self, local: LocalSpans) {
        if let Some(t) = self.tracer {
            t.merge(local);
        }
    }
}

impl<'a> From<Option<&'a Tracer>> for TraceCtx<'a> {
    fn from(tracer: Option<&'a Tracer>) -> Self {
        TraceCtx { tracer }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_on_the_serial_path() {
        let t = Tracer::new();
        {
            let _outer = t.span("stage.analysis", 0);
            let _inner = t.span("analysis.function", 7);
        }
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "stage.analysis");
        assert_eq!(events[0].parent, None);
        assert_eq!(events[1].subject, 7);
        assert_eq!(events[1].parent, Some(0));
        assert_eq!(events[1].unit, 0);
        assert!(events[0].dur_ns >= events[1].dur_ns);
    }

    #[test]
    fn merge_rebases_parents_under_the_open_span() {
        let t = Tracer::new();
        let stage = t.span("stage.training", 0);
        let mut a = t.local();
        let tok = a.enter("training.type", 0x1000);
        let nested = a.enter("training.word", 1);
        a.exit(nested);
        a.exit(tok);
        let mut b = t.local();
        let tok = b.enter("training.type", 0x2000);
        b.exit(tok);
        t.merge(a);
        t.merge(b);
        drop(stage);
        let events = t.events();
        assert_eq!(events.len(), 4);
        // Buffer roots hang off the stage span; nesting is rebased.
        assert_eq!(events[1].parent, Some(0));
        assert_eq!(events[2].parent, Some(1));
        assert_eq!(events[3].parent, Some(0));
        assert_eq!((events[1].unit, events[3].unit), (1, 2));
        assert!(events[0].dur_ns > 0, "stage span closed");
    }

    #[test]
    fn disabled_ctx_is_inert() {
        let ctx = TraceCtx::disabled();
        assert!(!ctx.is_enabled());
        assert!(ctx.span("stage.analysis", 0).is_none());
        let mut l = ctx.local();
        let tok = l.enter("analysis.function", 1);
        l.exit(tok);
        ctx.merge(l);
    }

    #[test]
    fn merging_an_empty_buffer_adds_no_unit() {
        let t = Tracer::new();
        t.merge(t.local());
        assert!(t.events().is_empty());
        let mut l = t.local();
        let tok = l.enter("x", 0);
        l.exit(tok);
        t.merge(l);
        assert_eq!(t.events()[0].unit, 1);
    }
}
