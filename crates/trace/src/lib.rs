//! Structured observability for the reconstruction pipeline.
//!
//! Two cooperating pieces:
//!
//! * a **hierarchical span tracer** ([`Tracer`]) recording monotonic
//!   wall-clock intervals with parent links — stage spans on the serial
//!   driver thread, per-item spans ([`LocalSpans`]) buffered inside
//!   parallel workers and merged back **in input order** at stage
//!   boundaries, so the span *tree* is deterministic modulo timestamps;
//! * a **typed metrics registry** ([`MetricsRegistry`]) of named counters
//!   and fixed-bucket histograms. No wall-clock value ever enters the
//!   registry, so two runs of the same binary under any thread count
//!   produce *equal* registries.
//!
//! The disabled path is a strict no-op: [`TraceCtx`] wraps
//! `Option<&Tracer>`, a disabled [`LocalSpans`] never allocates, never
//! reads the clock, and never takes a lock — the hot loops pay only a
//! branch. Enabled tracing is filtered through a [`TraceLevel`]:
//! `stage` keeps only the coarse `stage.*`/`supervisor.*` spans, and
//! `sampled` adds a deterministic 1-in-[`SPAN_SAMPLE_RATE`] subset of
//! per-item spans chosen purely by a hash of `(name, subject)` — a span
//! the level drops costs no clock read and no buffer push, which is
//! what takes tracer-on overhead from ~48% to a few percent.
//!
//! Exports: [`chrome_trace_json`] renders a span log in the Chrome
//! `chrome://tracing` event format; [`MetricsRegistry::to_json`] emits a
//! versioned metrics document. Both are validated (offline, no deps) by
//! [`validate_chrome_trace`] / [`validate_metrics_doc`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod json;
mod level;
mod local;
mod metrics;
pub mod names;
mod tracer;

pub use export::{
    chrome_trace_json, scrubbed, validate_chrome_trace, validate_metrics_doc, ScrubbedSpan,
};
pub use json::{parse_json, Json};
pub use level::{is_coarse_span, span_sampled, TraceLevel, SPAN_SAMPLE_RATE};
pub use local::{LocalSpans, SpanToken};
pub use metrics::{Histogram, MetricsRegistry, DEFAULT_BOUNDS, METRICS_SCHEMA_VERSION};
pub use tracer::{SpanEvent, SpanGuard, TraceCtx, Tracer};
