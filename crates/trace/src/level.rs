//! Trace levels and the deterministic span sampler.
//!
//! Recording every per-item span costs real wall-clock (two monotonic
//! clock reads per span, plus buffer pushes), which `BENCH_trace.json`
//! put at ~48% of an untraced reconstruction. A [`TraceLevel`] trades
//! span-tree completeness for that cost without ever touching the
//! metrics registry: counters and histograms record 100% of the work at
//! every level, because they are fed by the stage bodies, not by span
//! emission.
//!
//! The `sampled` level keeps a deterministic 1-in-[`SPAN_SAMPLE_RATE`]
//! subset of per-item spans, chosen purely by a SplitMix64 hash of
//! `(name, subject)` — never by thread id, execution order, or clock —
//! so the sampled subject set is byte-identical across `Serial`,
//! `Threads(2)`, `Threads(8)`, and repeated runs.

use std::fmt;

/// Keep one per-item span in this many at [`TraceLevel::Sampled`]
/// (subjects whose hash clears `u64::MAX / SPAN_SAMPLE_RATE`).
pub const SPAN_SAMPLE_RATE: u64 = 16;

/// How much of the span taxonomy a tracer records.
///
/// Coarse spans (`stage.*`, `supervisor.*`) are a handful per run and
/// are kept at every enabled level; per-item spans (everything else)
/// are where the volume — and the overhead — lives. The variants are
/// ordered: a higher level records a superset of a lower one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// Record nothing (an attached tracer stays empty).
    Off,
    /// Only the stage spans and supervisor spans.
    Stage,
    /// Stage/supervisor spans plus a deterministic 1-in-16 sample of
    /// per-item spans (see [`span_sampled`]). The production default of
    /// the CLI's `--trace-level`.
    Sampled,
    /// Every span — today's complete tree, used by the golden and
    /// determinism suites. The default for embedders ([`Default`]), so
    /// attaching a tracer without choosing a level behaves exactly as
    /// it did before levels existed.
    #[default]
    Full,
}

impl TraceLevel {
    /// All levels, coarsest first.
    pub const ALL: [TraceLevel; 4] =
        [TraceLevel::Off, TraceLevel::Stage, TraceLevel::Sampled, TraceLevel::Full];

    /// Stable lowercase name (CLI flag values, bench rows).
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Stage => "stage",
            TraceLevel::Sampled => "sampled",
            TraceLevel::Full => "full",
        }
    }

    /// Parses a [`TraceLevel::name`] back to the level.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        TraceLevel::ALL.into_iter().find(|l| l.name() == s)
    }

    /// Whether a span with this `(name, subject)` is recorded at this
    /// level. Pure: depends on nothing but the arguments, which is what
    /// makes the recorded set identical across thread counts and reruns.
    pub fn admits(self, name: &str, subject: u64) -> bool {
        match self {
            TraceLevel::Off => false,
            TraceLevel::Stage => is_coarse_span(name),
            TraceLevel::Sampled => is_coarse_span(name) || span_sampled(name, subject),
            TraceLevel::Full => true,
        }
    }
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether `name` is a coarse span — one of the handful of serial-driver
/// spans (`stage.*`), supervisor spans (`supervisor.*`), or daemon
/// spans (`serve.*`, per-connection/per-request) kept at every enabled
/// level.
pub fn is_coarse_span(name: &str) -> bool {
    name.starts_with("stage.") || name.starts_with("supervisor.") || name.starts_with("serve.")
}

/// The deterministic per-item sampling predicate: keep the span iff
/// `SplitMix64(FNV-1a(name) ^ subject)` clears the
/// 1-in-[`SPAN_SAMPLE_RATE`] threshold.
///
/// The hash sees only the span's identity, so whether a given
/// `(name, subject)` is sampled is a property of the work item itself:
/// the same functions, types, pairs, and families appear in every
/// sampled trace of a binary regardless of parallelism — and a span
/// that is dropped costs no clock read and no buffer push.
pub fn span_sampled(name: &str, subject: u64) -> bool {
    splitmix64(fnv1a(name) ^ subject) < u64::MAX / SPAN_SAMPLE_RATE
}

/// SplitMix64 finalizer: a full-avalanche bijection on `u64` (the same
/// mixer the fault-injection plan uses for seed derivation).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the span name, folding the `&'static str` into a seed the
/// subject is mixed against. Hashing bytes (not the pointer) keeps the
/// predicate stable across processes and builds.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;

    #[test]
    fn names_parse_and_roundtrip() {
        for level in TraceLevel::ALL {
            assert_eq!(TraceLevel::parse(level.name()), Some(level));
            assert_eq!(level.to_string(), level.name());
        }
        assert_eq!(TraceLevel::parse("verbose"), None);
        assert_eq!(TraceLevel::default(), TraceLevel::Full);
    }

    #[test]
    fn coarse_spans_survive_every_enabled_level() {
        for name in [
            names::STAGE_ANALYSIS,
            names::STAGE_REPARTITION,
            names::SUPERVISOR_JOB,
            names::SERVE_CONNECTION,
            names::SERVE_REQUEST,
        ] {
            assert!(is_coarse_span(name));
            for subject in [0u64, 7, u64::MAX] {
                assert!(!TraceLevel::Off.admits(name, subject));
                assert!(TraceLevel::Stage.admits(name, subject));
                assert!(TraceLevel::Sampled.admits(name, subject));
                assert!(TraceLevel::Full.admits(name, subject));
            }
        }
    }

    #[test]
    fn per_item_spans_filter_by_level() {
        for name in [names::ANALYSIS_FUNCTION, names::DISTANCES_PAIR, names::REPARTITION_ROOT] {
            assert!(!is_coarse_span(name));
            for subject in 0..256u64 {
                assert!(!TraceLevel::Off.admits(name, subject));
                assert!(!TraceLevel::Stage.admits(name, subject));
                assert_eq!(TraceLevel::Sampled.admits(name, subject), span_sampled(name, subject));
                assert!(TraceLevel::Full.admits(name, subject));
            }
        }
    }

    #[test]
    fn levels_admit_monotonically() {
        // A higher level records a superset of a lower one, for every
        // span the pipeline can emit.
        for name in [names::STAGE_TRAINING, names::TRAINING_TYPE, names::LIFTING_FAMILY] {
            for subject in 0..512u64 {
                for pair in TraceLevel::ALL.windows(2) {
                    assert!(
                        !pair[0].admits(name, subject) || pair[1].admits(name, subject),
                        "{} admits ({name}, {subject}) but {} does not",
                        pair[0],
                        pair[1],
                    );
                }
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_and_near_the_nominal_rate() {
        let kept: Vec<u64> =
            (0..100_000u64).filter(|&s| span_sampled(names::DISTANCES_PAIR, s)).collect();
        let again: Vec<u64> =
            (0..100_000u64).filter(|&s| span_sampled(names::DISTANCES_PAIR, s)).collect();
        assert_eq!(kept, again, "the sampled set is a pure function of (name, subject)");
        // 1-in-16 nominal: allow a generous band around 6.25%.
        let rate = kept.len() as f64 / 100_000.0;
        assert!((0.04..=0.09).contains(&rate), "sample rate {rate} far from 1/16");
        // Different names sample different subject sets (the name seed
        // participates in the hash).
        let other: Vec<u64> =
            (0..100_000u64).filter(|&s| span_sampled(names::TRAINING_TYPE, s)).collect();
        assert_ne!(kept, other);
    }
}
