//! Export formats: Chrome trace events and schema validation.

use crate::json::{parse_json, Json};
use crate::metrics::METRICS_SCHEMA_VERSION;
use crate::tracer::SpanEvent;

/// The deterministic projection of a span: what the determinism suite
/// compares across thread counts and repeated runs (timestamps and lane
/// layout scrubbed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScrubbedSpan {
    /// Span name.
    pub name: &'static str,
    /// Subject id.
    pub subject: u64,
    /// Parent index within the same log.
    pub parent: Option<u32>,
}

/// Scrubs a span log down to its deterministic skeleton, preserving
/// order. Two runs of the same binary must produce equal scrubbed logs
/// whatever the thread count.
pub fn scrubbed(events: &[SpanEvent]) -> Vec<ScrubbedSpan> {
    events
        .iter()
        .map(|e| ScrubbedSpan { name: e.name, subject: e.subject, parent: e.parent })
        .collect()
}

/// Renders a span log as a Chrome trace document (the JSON-array-of-
/// complete-events dialect `chrome://tracing` and Perfetto load).
///
/// Every span becomes one `"ph":"X"` event with microsecond timestamps.
/// All events share `pid` 1; `tid` is a presentation lane — lane 0 holds
/// the serial driver spans, and each merged worker buffer (one span
/// `unit`) is packed onto the lowest lane whose previous occupant ended
/// before it starts, so overlapping parallel items render side by side.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    use std::fmt::Write as _;

    // Interval covered by each unit, in first-appearance order.
    let mut units: Vec<(u32, u64, u64)> = Vec::new(); // (unit, start, end)
    for e in events.iter().filter(|e| e.unit != 0) {
        let end = e.start_ns.saturating_add(e.dur_ns);
        match units.iter_mut().find(|(u, ..)| *u == e.unit) {
            Some((_, s, t)) => {
                *s = (*s).min(e.start_ns);
                *t = (*t).max(end);
            }
            None => units.push((e.unit, e.start_ns, end)),
        }
    }
    // Greedy lane packing; lane 0 is reserved for the serial driver.
    let mut lane_of: Vec<(u32, u64)> = Vec::new(); // per unit: (tid, unit end)
    let mut lanes: Vec<u64> = Vec::new(); // per lane: end of last unit
    for &(unit, start, end) in &units {
        let lane = match lanes.iter().position(|&busy_until| busy_until <= start) {
            Some(i) => i,
            None => {
                lanes.push(0);
                lanes.len() - 1
            }
        };
        lanes[lane] = end;
        lane_of.push((unit, lane as u64 + 1));
    }
    let tid_of = |unit: u32| -> u64 {
        if unit == 0 {
            return 0;
        }
        lane_of.iter().find(|(u, _)| *u == unit).map(|&(_, t)| t).unwrap_or(0)
    };

    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        let cat = e.name.split('.').next().unwrap_or(e.name);
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"subject\":{},\"span\":{},\
             \"parent\":{}}}}}",
            e.name,
            cat,
            tid_of(e.unit),
            e.start_ns / 1_000,
            e.start_ns % 1_000,
            e.dur_ns / 1_000,
            e.dur_ns % 1_000,
            e.subject,
            i,
            match e.parent {
                Some(p) => p as i64,
                None => -1,
            },
        );
    }
    out.push_str("\n]\n");
    out
}

/// Validates an exported metrics document against the schema: versioned,
/// integer counters, histograms with strictly increasing bounds and
/// `bounds + 1` bucket counts summing to `count`. The parser itself
/// rejects NaN/Infinity, so a parse is also a no-NaN proof.
pub fn validate_metrics_doc(text: &str) -> Result<(), String> {
    let doc = parse_json(text).map_err(|e| e.to_string())?;
    let version = doc.get("version").and_then(Json::as_num).ok_or("missing numeric \"version\"")?;
    if version != METRICS_SCHEMA_VERSION as f64 {
        return Err(format!("unsupported metrics schema version {version}"));
    }
    let counters = doc.get("counters").and_then(Json::as_obj).ok_or("missing \"counters\"")?;
    for (name, v) in counters {
        let n = v.as_num().ok_or_else(|| format!("counter {name:?} is not a number"))?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(format!("counter {name:?} is not a non-negative integer"));
        }
    }
    let histograms =
        doc.get("histograms").and_then(Json::as_obj).ok_or("missing \"histograms\"")?;
    for (name, h) in histograms {
        let bounds = h
            .get("bounds")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("histogram {name:?} missing bounds"))?;
        let bounds: Vec<f64> = bounds.iter().filter_map(Json::as_num).collect();
        if bounds.windows(2).any(|w| w[0] >= w[1]) {
            return Err(format!("histogram {name:?} bounds are not strictly increasing"));
        }
        let counts = h
            .get("counts")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("histogram {name:?} missing counts"))?;
        if counts.len() != bounds.len() + 1 {
            return Err(format!(
                "histogram {name:?} has {} buckets for {} bounds",
                counts.len(),
                bounds.len()
            ));
        }
        let total: f64 = counts.iter().filter_map(Json::as_num).sum();
        let count =
            h.get("count").and_then(Json::as_num).ok_or_else(|| format!("{name:?} no count"))?;
        if total != count {
            return Err(format!("histogram {name:?} bucket counts sum {total} != {count}"));
        }
    }
    Ok(())
}

/// Validates a Chrome trace document: an array of complete (`"ph":"X"`)
/// events with the fields the viewer needs and finite timestamps.
pub fn validate_chrome_trace(text: &str) -> Result<(), String> {
    let doc = parse_json(text).map_err(|e| e.to_string())?;
    let events = doc.as_arr().ok_or("trace document must be a JSON array")?;
    for (i, e) in events.iter().enumerate() {
        for key in ["name", "ph", "cat"] {
            if e.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("event {i} missing string field {key:?}"));
            }
        }
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            return Err(format!("event {i} is not a complete (\"X\") event"));
        }
        for key in ["pid", "tid", "ts", "dur"] {
            let Some(n) = e.get(key).and_then(Json::as_num) else {
                return Err(format!("event {i} missing numeric field {key:?}"));
            };
            if n < 0.0 {
                return Err(format!("event {i} field {key:?} is negative"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::tracer::Tracer;

    fn sample_events() -> Vec<SpanEvent> {
        let t = Tracer::new();
        {
            let _stage = t.span("stage.training", 0);
            let mut a = t.local();
            let tok = a.enter("training.type", 0x1000);
            a.exit(tok);
            let mut b = t.local();
            let tok = b.enter("training.type", 0x2000);
            b.exit(tok);
            t.merge(a);
            t.merge(b);
        }
        t.events()
    }

    #[test]
    fn chrome_export_is_loadable_and_validates() {
        let doc = chrome_trace_json(&sample_events());
        validate_chrome_trace(&doc).unwrap();
        let parsed = parse_json(&doc).unwrap();
        let events = parsed.as_arr().unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("tid").unwrap().as_num(), Some(0.0), "driver lane");
        assert_eq!(events[0].get("cat").unwrap().as_str(), Some("stage"));
        // Parent links survive the export in args.
        assert_eq!(events[1].get("args").unwrap().get("parent").unwrap().as_num(), Some(0.0));
        // Empty logs still produce a valid document.
        validate_chrome_trace(&chrome_trace_json(&[])).unwrap();
    }

    #[test]
    fn scrubbed_drops_only_timing() {
        let events = sample_events();
        let s = scrubbed(&events);
        assert_eq!(s.len(), events.len());
        assert_eq!(s[0], ScrubbedSpan { name: "stage.training", subject: 0, parent: None });
        assert_eq!(s[1].parent, Some(0));
    }

    #[test]
    fn metrics_validation_accepts_real_docs_and_rejects_drift() {
        let mut m = MetricsRegistry::new();
        m.add("a.count", 3);
        m.observe("a.len", 7);
        validate_metrics_doc(&m.to_json()).unwrap();

        assert!(validate_metrics_doc("{}").is_err(), "missing version");
        assert!(
            validate_metrics_doc("{\"version\":99,\"counters\":{},\"histograms\":{}}").is_err(),
            "wrong version"
        );
        assert!(
            validate_metrics_doc("{\"version\":1,\"counters\":{\"x\":1.5},\"histograms\":{}}")
                .is_err(),
            "fractional counter"
        );
        let bad_bounds = "{\"version\":1,\"counters\":{},\"histograms\":{\"h\":\
                          {\"bounds\":[4,2],\"counts\":[0,0,0],\"count\":0,\"sum\":0}}}";
        assert!(validate_metrics_doc(bad_bounds).is_err(), "non-monotone bounds");
        let bad_len = "{\"version\":1,\"counters\":{},\"histograms\":{\"h\":\
                       {\"bounds\":[1,2],\"counts\":[0,0],\"count\":0,\"sum\":0}}}";
        assert!(validate_metrics_doc(bad_len).is_err(), "bucket arity");
    }

    #[test]
    fn parallel_units_get_distinct_lanes_when_overlapping() {
        // Two units with overlapping intervals must land on different
        // lanes; a third starting after both can reuse lane 1.
        let ev = |unit, start_ns, dur_ns| SpanEvent {
            name: "training.type",
            subject: unit as u64,
            start_ns,
            dur_ns,
            parent: None,
            unit,
        };
        let events = vec![ev(1, 0, 100), ev(2, 50, 100), ev(3, 500, 10)];
        let doc = chrome_trace_json(&events);
        let parsed = parse_json(&doc).unwrap();
        let tids: Vec<f64> = parsed
            .as_arr()
            .unwrap()
            .iter()
            .map(|e| e.get("tid").unwrap().as_num().unwrap())
            .collect();
        assert_eq!(tids, vec![1.0, 2.0, 1.0]);
    }
}
