//! A minimal JSON reader for schema validation (no external deps).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
///
/// Numbers are kept as `f64`; the exported documents only contain
/// integers small enough to round-trip exactly. Object keys are sorted —
/// duplicate keys keep the last value, like most JSON readers.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus a short message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (trailing whitespace allowed).
///
/// Strict where it matters for validation: rejects `NaN`/`Infinity`
/// tokens (they are not JSON), trailing garbage, and unterminated
/// structures.
pub fn parse_json(text: &str) -> Result<Json, ParseError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { at: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not expected in our exports;
                            // map unpairable ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        let n: f64 = text.parse().map_err(|_| self.err("malformed number"))?;
        if !n.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#" {"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}} "#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1 2", "NaN", "Infinity", "\"\\q\""] {
            assert!(parse_json(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse_json(r#""\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
