//! MiniCpp: a miniature object-oriented source language and compiler.
//!
//! The Rock paper (ASPLOS'18) evaluates on real C++ programs compiled by
//! MSVC, optimized and stripped. Those binaries (and their ground truth) are
//! not available here, so this crate provides the closest synthetic
//! equivalent: a small class-based language with virtual dispatch, single
//! and multiple inheritance, constructors/destructors and fields, plus a
//! compiler that lowers programs to [`rock_binary::BinaryImage`]s with all
//! the artifacts Rock's analyses consume —
//!
//! * vtables in rodata whose slots point at method implementations
//!   (shared with ancestors unless overridden),
//! * constructors that store vtable pointers into objects and call parent
//!   constructors,
//! * virtual calls lowered to vptr loads + indirect calls,
//! * field accesses at fixed object offsets.
//!
//! The compiler also reproduces the *noise* the paper attributes its errors
//! to (§6.4): parent-ctor **inlining** (with dead-store elimination of the
//! overwritten parent vtable pointer), **abstract-root elimination** (whole
//! classes optimized out of the binary) and **COMDAT folding** (identical
//! function bodies merged, linking unrelated vtables).
//!
//! # Example
//!
//! ```
//! use rock_minicpp::{ProgramBuilder, CompileOptions, compile};
//!
//! let mut p = ProgramBuilder::new();
//! p.class("Base").method("m0", |b| { b.ret(); });
//! p.class("Derived").base("Base").method("m1", |b| { b.ret(); });
//! p.func("driver", |f| {
//!     f.new_obj("d", "Derived");
//!     f.vcall("d", "m0", vec![]);
//!     f.vcall("d", "m1", vec![]);
//!     f.ret();
//! });
//! let program = p.finish();
//! let compiled = compile(&program, &CompileOptions::default())?;
//! assert_eq!(compiled.vtables().len(), 2);
//! assert_eq!(compiled.ground_truth().parent_of("Derived"), Some("Base"));
//! # Ok::<(), rock_minicpp::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod ast;
mod codegen;
mod fold;
mod hierarchy;
mod layout;
mod options;
mod printer;
mod program_builder;
mod validate;

pub use asm::{assemble, AFunction, AInstr, AProgram, ARtti, AVtable, Assembled};
pub use ast::{CallArg, ClassDef, Expr, FunctionDef, MethodDef, Param, Program, Stmt};
pub use codegen::{compile, CompileError, Compiled};
pub use hierarchy::GroundTruth;
pub use layout::{ClassLayout, ProgramLayout};
pub use options::CompileOptions;
pub use printer::to_source;
pub use program_builder::{BodyBuilder, ClassBuilder, FuncBuilder, ProgramBuilder};
pub use validate::ValidateError;
