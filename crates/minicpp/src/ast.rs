//! Abstract syntax of MiniCpp programs.
//!
//! Names are plain strings; [`crate::validate`] checks that every reference
//! resolves before compilation.

use std::fmt;

use rock_binary::BinOp;

/// An expression evaluating to a machine word.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A constant.
    Const(u64),
    /// The value of a local variable.
    Var(String),
    /// The value of the `i`-th function/method parameter (0-based, not
    /// counting `this`).
    Param(usize),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Variables mentioned anywhere in the expression.
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Const(_) | Expr::Param(_) => {}
            Expr::Var(v) => out.push(v),
            Expr::Bin(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Param(i) => write!(f, "arg{i}"),
            Expr::Bin(op, l, r) => write!(f, "({l} {op} {r})"),
        }
    }
}

/// An argument of a call to a free function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallArg {
    /// A plain value.
    Value(Expr),
    /// An object passed by pointer (produces `Arg(i)` events in the paper's
    /// event alphabet).
    Obj(String),
}

/// A statement in a method or function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `let var = value;`
    Let {
        /// Variable being defined.
        var: String,
        /// Initial value.
        value: Expr,
    },
    /// `var = new Class();` — allocates and runs the constructor. With
    /// `on_stack` the object lives in the current frame instead.
    New {
        /// Variable receiving the object pointer.
        var: String,
        /// Class to instantiate.
        class: String,
        /// Stack allocation instead of heap.
        on_stack: bool,
    },
    /// `delete var;` — runs the destructor.
    Delete {
        /// The object variable.
        var: String,
    },
    /// `[dst =] obj->method(args);` — virtual dispatch through the vtable.
    VCall {
        /// Variable receiving the return value, if used.
        dst: Option<String>,
        /// Receiver object variable (`"this"` inside methods).
        obj: String,
        /// Method name, resolved against the receiver's static type.
        method: String,
        /// Value arguments.
        args: Vec<Expr>,
    },
    /// `dst = obj.field;`
    ReadField {
        /// Variable receiving the value.
        dst: String,
        /// Object variable.
        obj: String,
        /// Field name, resolved against the receiver's static type.
        field: String,
    },
    /// `obj.field = value;`
    WriteField {
        /// Object variable.
        obj: String,
        /// Field name.
        field: String,
        /// Stored value.
        value: Expr,
    },
    /// `[dst =] func(args);` — direct call to a free function.
    Call {
        /// Variable receiving the return value, if used.
        dst: Option<String>,
        /// Callee name.
        func: String,
        /// Arguments (values or object pointers).
        args: Vec<CallArg>,
    },
    /// `if (cond) { then } else { else }`.
    If {
        /// Condition (non-zero = taken).
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch.
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { body }`.
    While {
        /// Loop condition (non-zero = continue).
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return [value];`
    Return(Option<Expr>),
}

/// A method of a class. All MiniCpp methods are virtual (they occupy vtable
/// slots), mirroring the paper's focus on binary types *as* vtables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodDef {
    /// Method name. A method with the same name as one in an ancestor
    /// overrides it (same slot).
    pub name: String,
    /// Pure virtual: no implementation; the vtable slot points at the
    /// shared `__purecall` trap.
    pub is_pure: bool,
    /// Body statements (ignored when `is_pure`). Inside the body the
    /// variable `this` denotes the receiver.
    pub body: Vec<Stmt>,
}

/// A class definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassDef {
    /// Class name (unique in the program).
    pub name: String,
    /// Base classes, in declaration order. One base = single inheritance;
    /// more = multiple inheritance with concatenated subobjects.
    pub bases: Vec<String>,
    /// Field names, appended after inherited fields in the object layout.
    pub fields: Vec<String>,
    /// Methods (all virtual).
    pub methods: Vec<MethodDef>,
    /// Explicitly abstract: never instantiated, candidate for elimination
    /// by the optimizer. Classes with pure methods are implicitly abstract.
    pub is_abstract: bool,
    /// Force children to inline THIS class's constructor/destructor even
    /// in non-optimized builds (models selective inlining of cheap base
    /// constructors, which removes the ctor-call structural cue for this
    /// link only).
    pub always_inline_ctor: bool,
    /// Extra statements run by the constructor after field zeroing.
    pub ctor_body: Vec<Stmt>,
    /// Extra statements run by the destructor before the parent destructor.
    pub dtor_body: Vec<Stmt>,
}

impl ClassDef {
    /// Returns `true` if the class cannot be instantiated.
    pub fn is_abstract(&self) -> bool {
        self.is_abstract || self.methods.iter().any(|m| m.is_pure)
    }

    /// Finds a method defined (not inherited) by this class.
    pub fn method(&self, name: &str) -> Option<&MethodDef> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// A parameter of a free function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    /// Parameter name; typed parameters are usable as object variables.
    pub name: String,
    /// Static class type if the parameter is an object pointer.
    pub class: Option<String>,
}

impl Param {
    /// A plain value parameter.
    pub fn value(name: impl Into<String>) -> Self {
        Param { name: name.into(), class: None }
    }

    /// An object-pointer parameter with a static class type.
    pub fn object(name: impl Into<String>, class: impl Into<String>) -> Self {
        Param { name: name.into(), class: Some(class.into()) }
    }
}

/// A free function (e.g. the `useX` drivers of the paper's Fig. 3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionDef {
    /// Function name (unique in the program).
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Hint for the optimizer: inline this function into its callers
    /// (models small functions disappearing in optimized builds).
    pub inline_hint: bool,
}

/// A whole MiniCpp program: classes plus free functions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// Class definitions.
    pub classes: Vec<ClassDef>,
    /// Free functions.
    pub functions: Vec<FunctionDef>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Finds a class by name.
    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Finds a free function by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// The first (primary) base of a class, if any — the parent in the
    /// single-inheritance source hierarchy.
    pub fn parent_of(&self, name: &str) -> Option<&str> {
        self.class(name)?.bases.first().map(String::as_str)
    }

    /// All ancestors of `name` along primary bases, nearest first.
    pub fn ancestors_of<'a>(&'a self, name: &str) -> Vec<&'a str> {
        let mut out = Vec::new();
        let mut cur = self.parent_of(name);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent_of(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_program() -> Program {
        Program {
            classes: vec![
                ClassDef {
                    name: "A".into(),
                    bases: vec![],
                    fields: vec!["x".into()],
                    methods: vec![MethodDef { name: "m".into(), is_pure: false, body: vec![] }],
                    is_abstract: false,
                    always_inline_ctor: false,
                    ctor_body: vec![],
                    dtor_body: vec![],
                },
                ClassDef {
                    name: "B".into(),
                    bases: vec!["A".into()],
                    fields: vec![],
                    methods: vec![MethodDef { name: "p".into(), is_pure: true, body: vec![] }],
                    is_abstract: false,
                    always_inline_ctor: false,
                    ctor_body: vec![],
                    dtor_body: vec![],
                },
                ClassDef {
                    name: "C".into(),
                    bases: vec!["B".into()],
                    fields: vec![],
                    methods: vec![],
                    is_abstract: false,
                    always_inline_ctor: false,
                    ctor_body: vec![],
                    dtor_body: vec![],
                },
            ],
            functions: vec![],
        }
    }

    #[test]
    fn lookup() {
        let p = simple_program();
        assert!(p.class("A").is_some());
        assert!(p.class("Z").is_none());
        assert_eq!(p.parent_of("B"), Some("A"));
        assert_eq!(p.parent_of("A"), None);
        assert_eq!(p.ancestors_of("C"), vec!["B", "A"]);
        assert_eq!(p.ancestors_of("A"), Vec::<&str>::new());
    }

    #[test]
    fn abstractness() {
        let p = simple_program();
        assert!(!p.class("A").unwrap().is_abstract());
        assert!(p.class("B").unwrap().is_abstract(), "pure method implies abstract");
    }

    #[test]
    fn expr_vars() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Var("a".into()),
            Expr::bin(BinOp::Mul, Expr::Var("b".into()), Expr::Const(2)),
        );
        assert_eq!(e.vars(), vec!["a", "b"]);
        assert_eq!(e.to_string(), "(a add (b mul 2))");
    }

    #[test]
    fn param_constructors() {
        assert_eq!(Param::value("n").class, None);
        assert_eq!(Param::object("s", "Stream").class.as_deref(), Some("Stream"));
    }
}
