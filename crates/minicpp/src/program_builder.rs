//! Fluent builders for constructing MiniCpp [`Program`]s in code.
//!
//! # Example
//!
//! ```
//! use rock_minicpp::{ProgramBuilder, Expr};
//!
//! let mut p = ProgramBuilder::new();
//! p.class("Shape").pure_method("area").field("tag");
//! p.class("Circle").base("Shape").field("r").method("area", |b| {
//!     b.read("rr", "this", "r");
//!     b.ret_val(Expr::Var("rr".into()));
//! });
//! p.func("driver", |f| {
//!     f.new_obj("c", "Circle");
//!     f.vcall_dst("a", "c", "area", vec![]);
//!     f.ret();
//! });
//! let program = p.finish();
//! assert_eq!(program.classes.len(), 2);
//! ```

use crate::{CallArg, ClassDef, Expr, FunctionDef, MethodDef, Param, Program, Stmt};

/// Builds a [`Program`] incrementally.
#[derive(Clone, Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Adds a class and returns a builder to populate it.
    pub fn class(&mut self, name: impl Into<String>) -> ClassBuilder<'_> {
        self.program.classes.push(ClassDef {
            name: name.into(),
            bases: Vec::new(),
            fields: Vec::new(),
            methods: Vec::new(),
            is_abstract: false,
            always_inline_ctor: false,
            ctor_body: Vec::new(),
            dtor_body: Vec::new(),
        });
        let idx = self.program.classes.len() - 1;
        ClassBuilder { program: &mut self.program, idx }
    }

    /// Adds a free function whose parameters and body are populated by `f`.
    pub fn func(&mut self, name: impl Into<String>, f: impl FnOnce(&mut FuncBuilder)) {
        self.add_function(name, false, f);
    }

    /// Like [`ProgramBuilder::func`], with the inline hint set (optimized
    /// builds fold the function into its callers).
    pub fn func_inline(&mut self, name: impl Into<String>, f: impl FnOnce(&mut FuncBuilder)) {
        self.add_function(name, true, f);
    }

    fn add_function(
        &mut self,
        name: impl Into<String>,
        inline_hint: bool,
        f: impl FnOnce(&mut FuncBuilder),
    ) {
        let mut fb = FuncBuilder { params: Vec::new(), body: BodyBuilder::new() };
        f(&mut fb);
        self.program.functions.push(FunctionDef {
            name: name.into(),
            params: fb.params,
            body: fb.body.stmts,
            inline_hint,
        });
    }

    /// Finalizes the program.
    pub fn finish(self) -> Program {
        self.program
    }
}

/// Populates one class of a [`ProgramBuilder`].
#[derive(Debug)]
pub struct ClassBuilder<'a> {
    program: &'a mut Program,
    idx: usize,
}

impl ClassBuilder<'_> {
    fn class(&mut self) -> &mut ClassDef {
        &mut self.program.classes[self.idx]
    }

    /// Adds a base class (call repeatedly for multiple inheritance).
    pub fn base(&mut self, name: impl Into<String>) -> &mut Self {
        self.class().bases.push(name.into());
        self
    }

    /// Adds a field.
    pub fn field(&mut self, name: impl Into<String>) -> &mut Self {
        self.class().fields.push(name.into());
        self
    }

    /// Marks the class abstract (never instantiated; candidate for
    /// elimination in optimized builds).
    pub fn abstract_class(&mut self) -> &mut Self {
        self.class().is_abstract = true;
        self
    }

    /// Forces children to inline this class's constructor/destructor even
    /// in non-optimized builds (removes the ctor-call cue for this link).
    pub fn inline_ctor(&mut self) -> &mut Self {
        self.class().always_inline_ctor = true;
        self
    }

    /// Adds a virtual method with a body.
    pub fn method(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut BodyBuilder),
    ) -> &mut Self {
        let mut b = BodyBuilder::new();
        f(&mut b);
        self.class().methods.push(MethodDef { name: name.into(), is_pure: false, body: b.stmts });
        self
    }

    /// Adds a pure virtual method (implies the class is abstract).
    pub fn pure_method(&mut self, name: impl Into<String>) -> &mut Self {
        self.class().methods.push(MethodDef { name: name.into(), is_pure: true, body: Vec::new() });
        self
    }

    /// Sets extra constructor-body statements.
    pub fn ctor(&mut self, f: impl FnOnce(&mut BodyBuilder)) -> &mut Self {
        let mut b = BodyBuilder::new();
        f(&mut b);
        self.class().ctor_body = b.stmts;
        self
    }

    /// Sets extra destructor-body statements.
    pub fn dtor(&mut self, f: impl FnOnce(&mut BodyBuilder)) -> &mut Self {
        let mut b = BodyBuilder::new();
        f(&mut b);
        self.class().dtor_body = b.stmts;
        self
    }
}

/// Builds a statement list.
#[derive(Clone, Debug, Default)]
pub struct BodyBuilder {
    stmts: Vec<Stmt>,
}

impl BodyBuilder {
    /// Creates an empty body.
    pub fn new() -> Self {
        BodyBuilder::default()
    }

    /// `let var = value;`
    pub fn let_(&mut self, var: impl Into<String>, value: Expr) -> &mut Self {
        self.stmts.push(Stmt::Let { var: var.into(), value });
        self
    }

    /// `var = new Class();` (heap).
    pub fn new_obj(&mut self, var: impl Into<String>, class: impl Into<String>) -> &mut Self {
        self.stmts.push(Stmt::New { var: var.into(), class: class.into(), on_stack: false });
        self
    }

    /// `Class var;` (stack object).
    pub fn new_stack(&mut self, var: impl Into<String>, class: impl Into<String>) -> &mut Self {
        self.stmts.push(Stmt::New { var: var.into(), class: class.into(), on_stack: true });
        self
    }

    /// `delete var;`
    pub fn delete(&mut self, var: impl Into<String>) -> &mut Self {
        self.stmts.push(Stmt::Delete { var: var.into() });
        self
    }

    /// `obj->method(args);`
    pub fn vcall(
        &mut self,
        obj: impl Into<String>,
        method: impl Into<String>,
        args: Vec<Expr>,
    ) -> &mut Self {
        self.stmts.push(Stmt::VCall { dst: None, obj: obj.into(), method: method.into(), args });
        self
    }

    /// `dst = obj->method(args);`
    pub fn vcall_dst(
        &mut self,
        dst: impl Into<String>,
        obj: impl Into<String>,
        method: impl Into<String>,
        args: Vec<Expr>,
    ) -> &mut Self {
        self.stmts.push(Stmt::VCall {
            dst: Some(dst.into()),
            obj: obj.into(),
            method: method.into(),
            args,
        });
        self
    }

    /// `dst = obj.field;`
    pub fn read(
        &mut self,
        dst: impl Into<String>,
        obj: impl Into<String>,
        field: impl Into<String>,
    ) -> &mut Self {
        self.stmts.push(Stmt::ReadField { dst: dst.into(), obj: obj.into(), field: field.into() });
        self
    }

    /// `obj.field = value;`
    pub fn write(
        &mut self,
        obj: impl Into<String>,
        field: impl Into<String>,
        value: Expr,
    ) -> &mut Self {
        self.stmts.push(Stmt::WriteField { obj: obj.into(), field: field.into(), value });
        self
    }

    /// `func(args);`
    pub fn call(&mut self, func: impl Into<String>, args: Vec<CallArg>) -> &mut Self {
        self.stmts.push(Stmt::Call { dst: None, func: func.into(), args });
        self
    }

    /// `func(obj);` — single object argument convenience.
    pub fn call_obj(&mut self, func: impl Into<String>, obj: impl Into<String>) -> &mut Self {
        self.stmts.push(Stmt::Call {
            dst: None,
            func: func.into(),
            args: vec![CallArg::Obj(obj.into())],
        });
        self
    }

    /// `dst = func(args);`
    pub fn call_dst(
        &mut self,
        dst: impl Into<String>,
        func: impl Into<String>,
        args: Vec<CallArg>,
    ) -> &mut Self {
        self.stmts.push(Stmt::Call { dst: Some(dst.into()), func: func.into(), args });
        self
    }

    /// `if (cond) { then } else { else }`.
    pub fn if_else(
        &mut self,
        cond: Expr,
        then_f: impl FnOnce(&mut BodyBuilder),
        else_f: impl FnOnce(&mut BodyBuilder),
    ) -> &mut Self {
        let mut t = BodyBuilder::new();
        then_f(&mut t);
        let mut e = BodyBuilder::new();
        else_f(&mut e);
        self.stmts.push(Stmt::If { cond, then_body: t.stmts, else_body: e.stmts });
        self
    }

    /// `while (cond) { body }`.
    pub fn while_loop(&mut self, cond: Expr, body_f: impl FnOnce(&mut BodyBuilder)) -> &mut Self {
        let mut b = BodyBuilder::new();
        body_f(&mut b);
        self.stmts.push(Stmt::While { cond, body: b.stmts });
        self
    }

    /// `return;`
    pub fn ret(&mut self) -> &mut Self {
        self.stmts.push(Stmt::Return(None));
        self
    }

    /// `return value;`
    pub fn ret_val(&mut self, value: Expr) -> &mut Self {
        self.stmts.push(Stmt::Return(Some(value)));
        self
    }

    /// The statements built so far.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }
}

/// Builds a free function: parameters plus body.
#[derive(Clone, Debug, Default)]
pub struct FuncBuilder {
    params: Vec<Param>,
    body: BodyBuilder,
}

impl FuncBuilder {
    /// Adds a value parameter.
    pub fn param_val(&mut self, name: impl Into<String>) -> &mut Self {
        self.params.push(Param::value(name));
        self
    }

    /// Adds an object-pointer parameter with a static class type.
    pub fn param_obj(&mut self, name: impl Into<String>, class: impl Into<String>) -> &mut Self {
        self.params.push(Param::object(name, class));
        self
    }

    /// Access to the body builder.
    pub fn body(&mut self) -> &mut BodyBuilder {
        &mut self.body
    }

    // Delegated statement constructors so call sites read naturally.

    /// See [`BodyBuilder::let_`].
    pub fn let_(&mut self, var: impl Into<String>, value: Expr) -> &mut Self {
        self.body.let_(var, value);
        self
    }

    /// See [`BodyBuilder::new_obj`].
    pub fn new_obj(&mut self, var: impl Into<String>, class: impl Into<String>) -> &mut Self {
        self.body.new_obj(var, class);
        self
    }

    /// See [`BodyBuilder::new_stack`].
    pub fn new_stack(&mut self, var: impl Into<String>, class: impl Into<String>) -> &mut Self {
        self.body.new_stack(var, class);
        self
    }

    /// See [`BodyBuilder::delete`].
    pub fn delete(&mut self, var: impl Into<String>) -> &mut Self {
        self.body.delete(var);
        self
    }

    /// See [`BodyBuilder::vcall`].
    pub fn vcall(
        &mut self,
        obj: impl Into<String>,
        method: impl Into<String>,
        args: Vec<Expr>,
    ) -> &mut Self {
        self.body.vcall(obj, method, args);
        self
    }

    /// See [`BodyBuilder::vcall_dst`].
    pub fn vcall_dst(
        &mut self,
        dst: impl Into<String>,
        obj: impl Into<String>,
        method: impl Into<String>,
        args: Vec<Expr>,
    ) -> &mut Self {
        self.body.vcall_dst(dst, obj, method, args);
        self
    }

    /// See [`BodyBuilder::read`].
    pub fn read(
        &mut self,
        dst: impl Into<String>,
        obj: impl Into<String>,
        field: impl Into<String>,
    ) -> &mut Self {
        self.body.read(dst, obj, field);
        self
    }

    /// See [`BodyBuilder::write`].
    pub fn write(
        &mut self,
        obj: impl Into<String>,
        field: impl Into<String>,
        value: Expr,
    ) -> &mut Self {
        self.body.write(obj, field, value);
        self
    }

    /// See [`BodyBuilder::call`].
    pub fn call(&mut self, func: impl Into<String>, args: Vec<CallArg>) -> &mut Self {
        self.body.call(func, args);
        self
    }

    /// See [`BodyBuilder::call_obj`].
    pub fn call_obj(&mut self, func: impl Into<String>, obj: impl Into<String>) -> &mut Self {
        self.body.call_obj(func, obj);
        self
    }

    /// See [`BodyBuilder::call_dst`].
    pub fn call_dst(
        &mut self,
        dst: impl Into<String>,
        func: impl Into<String>,
        args: Vec<CallArg>,
    ) -> &mut Self {
        self.body.call_dst(dst, func, args);
        self
    }

    /// See [`BodyBuilder::if_else`].
    pub fn if_else(
        &mut self,
        cond: Expr,
        then_f: impl FnOnce(&mut BodyBuilder),
        else_f: impl FnOnce(&mut BodyBuilder),
    ) -> &mut Self {
        self.body.if_else(cond, then_f, else_f);
        self
    }

    /// See [`BodyBuilder::while_loop`].
    pub fn while_loop(&mut self, cond: Expr, body_f: impl FnOnce(&mut BodyBuilder)) -> &mut Self {
        self.body.while_loop(cond, body_f);
        self
    }

    /// See [`BodyBuilder::ret`].
    pub fn ret(&mut self) -> &mut Self {
        self.body.ret();
        self
    }

    /// See [`BodyBuilder::ret_val`].
    pub fn ret_val(&mut self, value: Expr) -> &mut Self {
        self.body.ret_val(value);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builds_valid_program() {
        let mut p = ProgramBuilder::new();
        p.class("A").field("x").method("m", |b| {
            b.write("this", "x", Expr::Const(1));
            b.ret();
        });
        p.class("B").base("A").method("n", |b| {
            b.vcall("this", "m", vec![]);
            b.ret();
        });
        p.func("drive", |f| {
            f.param_val("count");
            f.new_obj("b", "B");
            f.vcall("b", "n", vec![]);
            f.if_else(
                Expr::Param(0),
                |t| {
                    t.vcall("b", "m", vec![]);
                },
                |e| {
                    e.delete("b");
                },
            );
            f.ret();
        });
        let program = p.finish();
        assert_eq!(validate(&program), Ok(()));
        assert_eq!(program.classes.len(), 2);
        assert_eq!(program.functions.len(), 1);
    }

    #[test]
    fn abstract_and_pure() {
        let mut p = ProgramBuilder::new();
        p.class("I").pure_method("run");
        p.class("J").abstract_class().method("helper", |b| {
            b.ret();
        });
        let program = p.finish();
        assert!(program.class("I").unwrap().is_abstract());
        assert!(program.class("J").unwrap().is_abstract());
    }

    #[test]
    fn ctor_dtor_bodies() {
        let mut p = ProgramBuilder::new();
        p.class("R")
            .field("f")
            .ctor(|b| {
                b.write("this", "f", Expr::Const(7));
            })
            .dtor(|b| {
                b.read("v", "this", "f");
            });
        let program = p.finish();
        let r = program.class("R").unwrap();
        assert_eq!(r.ctor_body.len(), 1);
        assert_eq!(r.dtor_body.len(), 1);
        assert_eq!(validate(&program), Ok(()));
    }

    #[test]
    fn inline_hint_flag() {
        let mut p = ProgramBuilder::new();
        p.func_inline("h", |f| {
            f.ret();
        });
        p.func("g", |f| {
            f.ret();
        });
        let program = p.finish();
        assert!(program.function("h").unwrap().inline_hint);
        assert!(!program.function("g").unwrap().inline_hint);
    }
}
