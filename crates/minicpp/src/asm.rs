//! Name-based assembly representation used between code generation and
//! final image assembly.
//!
//! Code generation emits [`AFunction`]s whose cross-references are by
//! *name* (function names, vtable names, local label indices). This level
//! is where COMDAT folding operates — two functions with identical
//! [`AInstr`] streams merge — before everything is resolved into a
//! [`rock_binary::BinaryImage`].

use std::collections::BTreeMap;

use rock_binary::{Addr, BinaryImage, FunctionHandle, ImageBuilder, Instr, Reg, VtableHandle};

/// An instruction with possibly-symbolic operands.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AInstr {
    /// A concrete instruction with no relocation.
    I(Instr),
    /// Direct call to a named function.
    CallNamed(String),
    /// Materialize the address of a named function into a register.
    MovFnAddr(Reg, String),
    /// Materialize the address of a named vtable into a register.
    MovVtAddr(Reg, String),
    /// Jump to a local label.
    Jmp(usize),
    /// Branch to a local label when `Reg` is non-zero.
    Branch(Reg, usize),
    /// Pseudo-instruction binding a local label here (emits nothing).
    Bind(usize),
}

/// A function in name-based assembly form.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AFunction {
    /// Function name (unique per program).
    pub name: String,
    /// Body instructions.
    pub instrs: Vec<AInstr>,
}

impl AFunction {
    /// Creates a function.
    pub fn new(name: impl Into<String>, instrs: Vec<AInstr>) -> Self {
        AFunction { name: name.into(), instrs }
    }

    /// The body with the name erased — equal bodies fold under COMDAT.
    pub fn body_key(&self) -> &[AInstr] {
        &self.instrs
    }
}

/// A vtable in name-based form: slot i names the implementing function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AVtable {
    /// Symbol-style vtable name (`vtable for C`).
    pub name: String,
    /// Slot contents: function names.
    pub slots: Vec<String>,
}

/// An RTTI record in name-based form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ARtti {
    /// Vtable name the record describes.
    pub vtable: String,
    /// Class name.
    pub class_name: String,
    /// Ancestor vtable names, immediate parent first.
    pub ancestors: Vec<String>,
}

/// A whole program in name-based assembly form, ready to assemble.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AProgram {
    /// All functions.
    pub functions: Vec<AFunction>,
    /// All vtables.
    pub vtables: Vec<AVtable>,
    /// RTTI records (dropped if the image is later stripped).
    pub rtti: Vec<ARtti>,
    /// Raw rodata noise blobs interleaved before the i-th vtable.
    pub rodata_blobs: Vec<(usize, Vec<u8>)>,
}

/// Result of assembling an [`AProgram`].
#[derive(Clone, Debug)]
pub struct Assembled {
    /// The final image (with symbols and RTTI still present).
    pub image: BinaryImage,
    /// Address of each function by name.
    pub function_addrs: BTreeMap<String, Addr>,
    /// Address of each vtable by name.
    pub vtable_addrs: BTreeMap<String, Addr>,
}

/// Assembles an [`AProgram`] into a binary image.
///
/// # Panics
///
/// Panics if a named reference does not resolve (indicates a codegen bug).
pub fn assemble(program: &AProgram) -> Assembled {
    let mut builder = ImageBuilder::new();

    let fn_handles: BTreeMap<&str, FunctionHandle> = program
        .functions
        .iter()
        .map(|f| (f.name.as_str(), builder.declare_function(f.name.clone())))
        .collect();
    let vt_handles: BTreeMap<&str, VtableHandle> = program
        .vtables
        .iter()
        .map(|vt| {
            let slots = vt
                .slots
                .iter()
                .map(|s| {
                    *fn_handles
                        .get(s.as_str())
                        .unwrap_or_else(|| panic!("vtable {} references unknown fn {s}", vt.name))
                })
                .collect();
            (vt.name.as_str(), builder.add_vtable(vt.name.clone(), slots))
        })
        .collect();

    for (before, bytes) in &program.rodata_blobs {
        builder.add_rodata_blob(*before, bytes.clone());
    }

    for r in &program.rtti {
        let vt = vt_handles[r.vtable.as_str()];
        let ancestors = r.ancestors.iter().map(|a| vt_handles[a.as_str()]).collect();
        builder.add_rtti(vt, r.class_name.clone(), ancestors);
    }

    for f in &program.functions {
        builder.begin_declared(fn_handles[f.name.as_str()]);
        // Local labels: map label index -> builder label lazily.
        let mut labels = BTreeMap::new();
        let mut label_of = |builder: &mut ImageBuilder, idx: usize| {
            *labels.entry(idx).or_insert_with(|| builder.new_label())
        };
        for instr in &f.instrs {
            match instr {
                AInstr::I(i) => builder.push(*i),
                AInstr::CallNamed(name) => {
                    let h = *fn_handles
                        .get(name.as_str())
                        .unwrap_or_else(|| panic!("{}: call to unknown fn {name}", f.name));
                    builder.push_call(h);
                }
                AInstr::MovFnAddr(r, name) => {
                    let h = *fn_handles
                        .get(name.as_str())
                        .unwrap_or_else(|| panic!("{}: address of unknown fn {name}", f.name));
                    builder.push_mov_fn_addr(*r, h);
                }
                AInstr::MovVtAddr(r, name) => {
                    let h = *vt_handles
                        .get(name.as_str())
                        .unwrap_or_else(|| panic!("{}: unknown vtable {name}", f.name));
                    builder.push_mov_vtable_addr(*r, h);
                }
                AInstr::Jmp(idx) => {
                    let l = label_of(&mut builder, *idx);
                    builder.push_jmp(l);
                }
                AInstr::Branch(r, idx) => {
                    let l = label_of(&mut builder, *idx);
                    builder.push_branch(*r, l);
                }
                AInstr::Bind(idx) => {
                    let l = label_of(&mut builder, *idx);
                    builder.bind_label(l);
                }
            }
        }
        builder.end_function();
    }

    let (image, layout) = builder.finish_with_layout();
    let function_addrs = program
        .functions
        .iter()
        .map(|f| (f.name.clone(), layout.function(fn_handles[f.name.as_str()])))
        .collect();
    let vtable_addrs = program
        .vtables
        .iter()
        .map(|vt| (vt.name.clone(), layout.vtable(vt_handles[vt.name.as_str()])))
        .collect();
    Assembled { image, function_addrs, vtable_addrs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_binary::SectionKind;

    fn ret_fn(name: &str) -> AFunction {
        AFunction::new(name, vec![AInstr::I(Instr::Enter { frame: 0 }), AInstr::I(Instr::Ret)])
    }

    #[test]
    fn assembles_forward_references() {
        let program = AProgram {
            functions: vec![
                AFunction::new(
                    "caller",
                    vec![
                        AInstr::I(Instr::Enter { frame: 0 }),
                        AInstr::CallNamed("callee".into()),
                        AInstr::I(Instr::Ret),
                    ],
                ),
                ret_fn("callee"),
            ],
            vtables: vec![],
            rtti: vec![],
            rodata_blobs: vec![],
        };
        let out = assemble(&program);
        assert!(out.function_addrs["caller"] < out.function_addrs["callee"]);
    }

    #[test]
    fn vtable_and_rtti_resolution() {
        let program = AProgram {
            functions: vec![ret_fn("A::m"), ret_fn("B::n")],
            vtables: vec![
                AVtable { name: "vtable for A".into(), slots: vec!["A::m".into()] },
                AVtable { name: "vtable for B".into(), slots: vec!["A::m".into(), "B::n".into()] },
            ],
            rtti: vec![ARtti {
                vtable: "vtable for B".into(),
                class_name: "B".into(),
                ancestors: vec!["vtable for A".into()],
            }],
            rodata_blobs: vec![],
        };
        let out = assemble(&program);
        let vt_b = out.vtable_addrs["vtable for B"];
        assert_eq!(out.image.read_word(vt_b), Some(out.function_addrs["A::m"].value()));
        assert_eq!(out.image.read_word(vt_b + 8), Some(out.function_addrs["B::n"].value()));
        let rec = out.image.rtti_for(vt_b).unwrap();
        assert_eq!(rec.class_name, "B");
        assert_eq!(rec.parent(), Some(out.vtable_addrs["vtable for A"]));
    }

    #[test]
    fn labels_lower_to_branches() {
        let program = AProgram {
            functions: vec![AFunction::new(
                "f",
                vec![
                    AInstr::I(Instr::Enter { frame: 0 }),
                    AInstr::Branch(Reg::R1, 0),
                    AInstr::I(Instr::Nop),
                    AInstr::Bind(0),
                    AInstr::I(Instr::Ret),
                ],
            )],
            vtables: vec![],
            rtti: vec![],
            rodata_blobs: vec![],
        };
        let out = assemble(&program);
        let text = out.image.section(SectionKind::Text).unwrap();
        let mut pos = 0;
        let mut branch_target = None;
        let mut addrs = Vec::new();
        while pos < text.len() {
            let at = text.base() + pos as u64;
            let (i, n) = rock_binary::decode_instr(&text.bytes()[pos..], at).unwrap();
            addrs.push(at);
            if let Instr::Branch { target, .. } = i {
                branch_target = Some(target);
            }
            pos += n;
        }
        // Branch skips the nop and lands on the ret (4th instruction).
        assert_eq!(branch_target, Some(addrs[3]));
    }

    #[test]
    #[should_panic(expected = "unknown fn")]
    fn unknown_callee_panics() {
        let program = AProgram {
            functions: vec![AFunction::new(
                "f",
                vec![AInstr::CallNamed("ghost".into()), AInstr::I(Instr::Ret)],
            )],
            vtables: vec![],
            rtti: vec![],
            rodata_blobs: vec![],
        };
        assemble(&program);
    }
}
