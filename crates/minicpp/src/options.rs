//! Compilation options controlling the optimizer passes.

/// Options for [`compile`](crate::compile).
///
/// Each flag models a real compiler behaviour the paper identifies as a
/// source of lost structural information (§1, §4.1, §6.4):
///
/// * [`inline_parent_ctors`](Self::inline_parent_ctors) — removes the
///   ctor-call structural cue (Phase II rule 3);
/// * [`eliminate_abstract`](Self::eliminate_abstract) — whole classes
///   vanish from the binary, splitting inheritance trees;
/// * [`comdat_fold`](Self::comdat_fold) — identical function bodies merge,
///   spuriously linking unrelated vtables (error source 1);
/// * [`emit_rtti`](Self::emit_rtti) — RTTI records, used by the ground
///   truth only (stripping removes them).
///
/// # Example
///
/// ```
/// use rock_minicpp::CompileOptions;
/// let release = CompileOptions::optimized();
/// assert!(release.inline_parent_ctors);
/// let debug = CompileOptions::default();
/// assert!(!debug.inline_parent_ctors);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileOptions {
    /// Inline parent constructor/destructor bodies into children
    /// (with dead-store elimination of the overwritten parent vtable
    /// pointer).
    pub inline_parent_ctors: bool,
    /// Do not emit vtables, constructors, or RTTI for abstract classes
    /// that are never instantiated; children lose the structural link.
    pub eliminate_abstract: bool,
    /// Merge functions with identical bodies (COMDAT folding).
    pub comdat_fold: bool,
    /// Emit RTTI records (consumed only by ground-truth extraction).
    pub emit_rtti: bool,
    /// Inline free functions marked with `inline_hint` into their callers.
    pub inline_hinted_functions: bool,
    /// Bytes of string-literal-style noise interleaved into rodata, to keep
    /// vtable discovery honest. `0` disables.
    pub rodata_noise: usize,
}

impl Default for CompileOptions {
    /// Debug-style build: no optimizations, RTTI on.
    fn default() -> Self {
        CompileOptions {
            inline_parent_ctors: false,
            eliminate_abstract: false,
            comdat_fold: false,
            emit_rtti: true,
            inline_hinted_functions: false,
            rodata_noise: 0,
        }
    }
}

impl CompileOptions {
    /// Release-style build: every optimization on, RTTI still emitted so
    /// ground truth can be harvested before stripping.
    pub fn optimized() -> Self {
        CompileOptions {
            inline_parent_ctors: true,
            eliminate_abstract: true,
            comdat_fold: true,
            emit_rtti: true,
            inline_hinted_functions: true,
            rodata_noise: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_debug_like() {
        let o = CompileOptions::default();
        assert!(!o.inline_parent_ctors);
        assert!(!o.eliminate_abstract);
        assert!(!o.comdat_fold);
        assert!(o.emit_rtti);
    }

    #[test]
    fn optimized_enables_all() {
        let o = CompileOptions::optimized();
        assert!(o.inline_parent_ctors);
        assert!(o.eliminate_abstract);
        assert!(o.comdat_fold);
        assert!(o.inline_hinted_functions);
        assert!(o.rodata_noise > 0);
    }
}
