//! Object and vtable layout computation.
//!
//! Mirrors a simplified MSVC-style ABI (the compiler the paper targets):
//!
//! * the vtable pointer lives at object offset 0;
//! * inherited fields keep their offsets; own fields are appended;
//! * with multiple inheritance, base subobjects are concatenated in
//!   declaration order, each with its own vtable pointer (paper §5.3);
//! * a derived class reuses its primary base's vtable slots, substituting
//!   overridden entries in place and appending new methods at the end —
//!   the slot-sharing that Phase I of the structural analysis exploits.

use std::collections::BTreeMap;

use crate::{Program, ValidateError};
use rock_binary::WORD_SIZE;

/// Where a vtable slot's implementation comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotInfo {
    /// Method name occupying the slot.
    pub method: String,
    /// Class providing the implementation, or `None` for a pure slot
    /// (points at the shared `__purecall` trap in the binary).
    pub impl_class: Option<String>,
}

/// One vtable emitted for a class (primary, plus one secondary per extra
/// base under multiple inheritance).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VtableLayout {
    /// The class this vtable belongs to.
    pub owner: String,
    /// `None` for the primary vtable; `Some(base)` for the secondary vtable
    /// covering the `base` subobject.
    pub for_base: Option<String>,
    /// Byte offset of the covered subobject inside the full object.
    pub subobject_offset: i32,
    /// Slot contents, in slot order.
    pub slots: Vec<SlotInfo>,
}

impl VtableLayout {
    /// Symbol-style name: `vtable for C` / `vtable for C in B`.
    pub fn symbol_name(&self) -> String {
        match &self.for_base {
            None => format!("vtable for {}", self.owner),
            Some(b) => format!("vtable for {} in {}", self.owner, b),
        }
    }
}

/// Complete layout of one class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassLayout {
    /// Class name.
    pub name: String,
    /// Object size in bytes (vptr(s) + all fields).
    pub size: u32,
    /// Byte offset of every accessible field (inherited included).
    pub field_offsets: BTreeMap<String, i32>,
    /// Emitted vtables; index 0 is the primary vtable.
    pub vtables: Vec<VtableLayout>,
}

impl ClassLayout {
    /// The primary vtable.
    pub fn primary(&self) -> &VtableLayout {
        &self.vtables[0]
    }

    /// Resolves a virtual call on this static type: returns
    /// `(subobject_offset, slot_index)`.
    pub fn slot_of(&self, method: &str) -> Option<(i32, usize)> {
        for vt in &self.vtables {
            if let Some(i) = vt.slots.iter().position(|s| s.method == method) {
                return Some((vt.subobject_offset, i));
            }
        }
        None
    }

    /// The vtable-pointer stores a constructor of this class performs:
    /// `(object offset, vtable index in self.vtables)`.
    pub fn vptr_stores(&self) -> Vec<(i32, usize)> {
        self.vtables.iter().enumerate().map(|(i, vt)| (vt.subobject_offset, i)).collect()
    }
}

/// Layouts for every class of a program, in base-before-derived order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgramLayout {
    classes: BTreeMap<String, ClassLayout>,
    order: Vec<String>,
}

impl ProgramLayout {
    /// Computes layouts for all classes of a validated program.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ValidateError`] if the program is
    /// ill-formed (unknown base, inheritance cycle, field shadowing, …).
    pub fn compute(program: &Program) -> Result<ProgramLayout, ValidateError> {
        crate::validate::validate(program)?;
        let mut out = ProgramLayout::default();
        // Topological order: bases before derived (validation guarantees
        // acyclicity and that bases are defined).
        let mut remaining: Vec<&str> = program.classes.iter().map(|c| c.name.as_str()).collect();
        while !remaining.is_empty() {
            let before = remaining.len();
            remaining.retain(|name| {
                let class = program.class(name).expect("validated");
                let ready = class.bases.iter().all(|b| out.classes.contains_key(b.as_str()));
                if ready {
                    let layout = compute_class(program, name, &out.classes);
                    out.order.push((*name).to_string());
                    out.classes.insert((*name).to_string(), layout);
                }
                !ready
            });
            assert!(remaining.len() < before, "validated programs are acyclic");
        }
        Ok(out)
    }

    /// The layout of a class.
    pub fn class(&self, name: &str) -> Option<&ClassLayout> {
        self.classes.get(name)
    }

    /// Class names in base-before-derived order.
    pub fn order(&self) -> &[String] {
        &self.order
    }

    /// Iterates over all layouts in base-before-derived order.
    pub fn iter(&self) -> impl Iterator<Item = &ClassLayout> {
        self.order.iter().map(|n| &self.classes[n])
    }
}

fn compute_class(
    program: &Program,
    name: &str,
    done: &BTreeMap<String, ClassLayout>,
) -> ClassLayout {
    let class = program.class(name).expect("validated");
    let mut field_offsets = BTreeMap::new();
    let mut vtables = Vec::new();
    let mut size: u32;

    if class.bases.is_empty() {
        size = WORD_SIZE as u32; // vptr
        vtables.push(VtableLayout {
            owner: name.to_string(),
            for_base: None,
            subobject_offset: 0,
            slots: class
                .methods
                .iter()
                .map(|m| SlotInfo {
                    method: m.name.clone(),
                    impl_class: if m.is_pure { None } else { Some(name.to_string()) },
                })
                .collect(),
        });
    } else {
        // Primary base at offset 0.
        let primary = &done[&class.bases[0]];
        size = primary.size;
        field_offsets.extend(primary.field_offsets.clone());

        let mut primary_slots = primary.primary().slots.clone();
        override_slots(&mut primary_slots, class, name);
        vtables.push(VtableLayout {
            owner: name.to_string(),
            for_base: None,
            subobject_offset: 0,
            slots: primary_slots,
        });

        // Extra bases: concatenated subobjects with secondary vtables.
        for base in &class.bases[1..] {
            let bl = &done[base];
            let sub_off = size as i32;
            for (f, off) in &bl.field_offsets {
                field_offsets.insert(f.clone(), off + sub_off);
            }
            let mut slots = bl.primary().slots.clone();
            override_slots(&mut slots, class, name);
            vtables.push(VtableLayout {
                owner: name.to_string(),
                for_base: Some(base.clone()),
                subobject_offset: sub_off,
                slots,
            });
            size += bl.size;
        }

        // New methods (not overriding anything in any base) extend the
        // primary vtable.
        let inherited: Vec<String> =
            vtables.iter().flat_map(|vt| vt.slots.iter().map(|s| s.method.clone())).collect();
        for m in &class.methods {
            if !inherited.iter().any(|n| n == &m.name) {
                vtables[0].slots.push(SlotInfo {
                    method: m.name.clone(),
                    impl_class: if m.is_pure { None } else { Some(name.to_string()) },
                });
            }
        }
    }

    // Own fields appended after all base subobjects.
    for f in &class.fields {
        field_offsets.insert(f.clone(), size as i32);
        size += WORD_SIZE as u32;
    }

    ClassLayout { name: name.to_string(), size, field_offsets, vtables }
}

/// Substitutes `class`'s overriding methods into inherited slots.
fn override_slots(slots: &mut [SlotInfo], class: &crate::ClassDef, name: &str) {
    for slot in slots.iter_mut() {
        if let Some(m) = class.method(&slot.method) {
            slot.impl_class = if m.is_pure { None } else { Some(name.to_string()) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassDef, MethodDef};

    fn class(name: &str, bases: &[&str], fields: &[&str], methods: &[(&str, bool)]) -> ClassDef {
        ClassDef {
            name: name.into(),
            bases: bases.iter().map(|s| s.to_string()).collect(),
            fields: fields.iter().map(|s| s.to_string()).collect(),
            methods: methods
                .iter()
                .map(|(n, pure)| MethodDef { name: n.to_string(), is_pure: *pure, body: vec![] })
                .collect(),
            is_abstract: false,
            always_inline_ctor: false,
            ctor_body: vec![],
            dtor_body: vec![],
        }
    }

    fn streams_program() -> Program {
        // The paper's Fig. 3 classes.
        Program {
            classes: vec![
                class("Stream", &[], &[], &[("send", false)]),
                class("ConfirmableStream", &["Stream"], &[], &[("confirm", false)]),
                class("FlushableStream", &["Stream"], &[], &[("flush", false), ("close", false)]),
            ],
            functions: vec![],
        }
    }

    #[test]
    fn root_layout() {
        let l = ProgramLayout::compute(&streams_program()).unwrap();
        let s = l.class("Stream").unwrap();
        assert_eq!(s.size, 8);
        assert_eq!(s.primary().slots.len(), 1);
        assert_eq!(s.primary().slots[0].method, "send");
        assert_eq!(s.primary().slots[0].impl_class.as_deref(), Some("Stream"));
        assert_eq!(s.slot_of("send"), Some((0, 0)));
    }

    #[test]
    fn derived_extends_parent_slots() {
        let l = ProgramLayout::compute(&streams_program()).unwrap();
        let c = l.class("ConfirmableStream").unwrap();
        assert_eq!(c.primary().slots.len(), 2);
        // send inherited, still implemented by Stream (shared pointer!)
        assert_eq!(c.primary().slots[0].impl_class.as_deref(), Some("Stream"));
        assert_eq!(c.primary().slots[1].method, "confirm");
        let f = l.class("FlushableStream").unwrap();
        assert_eq!(f.primary().slots.len(), 3);
        assert_eq!(f.slot_of("close"), Some((0, 2)));
    }

    #[test]
    fn override_replaces_impl_in_place() {
        let p = Program {
            classes: vec![
                class("A", &[], &[], &[("m", false), ("n", false)]),
                class("B", &["A"], &[], &[("m", false)]),
            ],
            functions: vec![],
        };
        let l = ProgramLayout::compute(&p).unwrap();
        let b = l.class("B").unwrap();
        assert_eq!(b.primary().slots[0].impl_class.as_deref(), Some("B"));
        assert_eq!(b.primary().slots[1].impl_class.as_deref(), Some("A"));
        assert_eq!(b.primary().slots.len(), 2, "override adds no slot");
    }

    #[test]
    fn pure_slot_has_no_impl() {
        let p = Program {
            classes: vec![
                class("Shape", &[], &[], &[("area", true)]),
                class("Circle", &["Shape"], &["r"], &[("area", false)]),
            ],
            functions: vec![],
        };
        let l = ProgramLayout::compute(&p).unwrap();
        assert_eq!(l.class("Shape").unwrap().primary().slots[0].impl_class, None);
        assert_eq!(
            l.class("Circle").unwrap().primary().slots[0].impl_class.as_deref(),
            Some("Circle")
        );
    }

    #[test]
    fn field_offsets_chain() {
        let p = Program {
            classes: vec![
                class("A", &[], &["x", "y"], &[("m", false)]),
                class("B", &["A"], &["z"], &[]),
            ],
            functions: vec![],
        };
        let l = ProgramLayout::compute(&p).unwrap();
        let a = l.class("A").unwrap();
        assert_eq!(a.field_offsets["x"], 8);
        assert_eq!(a.field_offsets["y"], 16);
        assert_eq!(a.size, 24);
        let b = l.class("B").unwrap();
        assert_eq!(b.field_offsets["x"], 8);
        assert_eq!(b.field_offsets["z"], 24);
        assert_eq!(b.size, 32);
    }

    #[test]
    fn multiple_inheritance_layout() {
        let p = Program {
            classes: vec![
                class("L", &[], &["a"], &[("lm", false)]),
                class("R", &[], &["b"], &[("rm", false)]),
                class("C", &["L", "R"], &["c"], &[("cm", false), ("rm", false)]),
            ],
            functions: vec![],
        };
        let l = ProgramLayout::compute(&p).unwrap();
        let c = l.class("C").unwrap();
        // [L: vptr@0, a@8][R: vptr@16, b@24][c@32]
        assert_eq!(c.size, 40);
        assert_eq!(c.field_offsets["a"], 8);
        assert_eq!(c.field_offsets["b"], 24);
        assert_eq!(c.field_offsets["c"], 32);
        assert_eq!(c.vtables.len(), 2);
        assert_eq!(c.vtables[1].subobject_offset, 16);
        assert_eq!(c.vtables[1].for_base.as_deref(), Some("R"));
        // rm overridden by C in the secondary vtable.
        assert_eq!(c.vtables[1].slots[0].impl_class.as_deref(), Some("C"));
        // cm appended to the primary vtable.
        assert_eq!(c.primary().slots.last().unwrap().method, "cm");
        // Two vptr stores in the ctor (paper §5.3: X stores => X parents).
        assert_eq!(c.vptr_stores(), vec![(0, 0), (16, 1)]);
        assert_eq!(c.slot_of("rm"), Some((16, 0)));
        assert_eq!(c.vtables[1].symbol_name(), "vtable for C in R");
    }

    #[test]
    fn order_is_base_first() {
        let p = streams_program();
        let l = ProgramLayout::compute(&p).unwrap();
        let order = l.order();
        let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
        assert!(pos("Stream") < pos("ConfirmableStream"));
        assert!(pos("Stream") < pos("FlushableStream"));
        assert_eq!(l.iter().count(), 3);
    }
}
