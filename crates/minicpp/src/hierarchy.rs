//! Ground-truth hierarchies extracted at compile time.
//!
//! The paper (§6.2) builds its ground truth from RTTI records and debug
//! symbols: the **induced binary type hierarchy** — the source hierarchy
//! restricted to classes that still exist in the (optimized) binary, with
//! parents redirected past optimized-out ancestors. [`GroundTruth`] is that
//! structure.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The induced binary type hierarchy of a compiled program.
///
/// Maps every *emitted* class to its parent among emitted classes (the
/// nearest non-eliminated ancestor), mirroring what the paper reads out of
/// RTTI records.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GroundTruth {
    parent: BTreeMap<String, Option<String>>,
    extra_parents: BTreeMap<String, Vec<String>>,
}

impl GroundTruth {
    /// Builds a ground truth from `(class, parent)` pairs.
    pub fn from_parents<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, Option<S>)>,
        S: Into<String>,
    {
        let parent = pairs.into_iter().map(|(c, p)| (c.into(), p.map(Into::into))).collect();
        GroundTruth { parent, extra_parents: BTreeMap::new() }
    }

    /// Registers an additional (multiple-inheritance) parent.
    pub fn add_extra_parent(&mut self, class: &str, parent: &str) {
        self.extra_parents.entry(class.to_string()).or_default().push(parent.to_string());
    }

    /// All classes present in the binary, sorted.
    pub fn classes(&self) -> impl Iterator<Item = &str> {
        self.parent.keys().map(String::as_str)
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the hierarchy is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The (primary) parent of `class`, or `None` for roots or unknown
    /// classes.
    pub fn parent_of(&self, class: &str) -> Option<&str> {
        self.parent.get(class)?.as_deref()
    }

    /// All parents including multiple-inheritance extras.
    pub fn parents_of(&self, class: &str) -> Vec<&str> {
        let mut out = Vec::new();
        if let Some(p) = self.parent_of(class) {
            out.push(p);
        }
        if let Some(extra) = self.extra_parents.get(class) {
            out.extend(extra.iter().map(String::as_str));
        }
        out
    }

    /// Returns `true` if `class` is known to the ground truth.
    pub fn contains(&self, class: &str) -> bool {
        self.parent.contains_key(class)
    }

    /// Root classes (no parent), sorted.
    pub fn roots(&self) -> Vec<&str> {
        self.parent.iter().filter(|(_, p)| p.is_none()).map(|(c, _)| c.as_str()).collect()
    }

    /// Direct children of `class` (primary parent relation only), sorted.
    pub fn children_of(&self, class: &str) -> Vec<&str> {
        self.parent
            .iter()
            .filter(|(_, p)| p.as_deref() == Some(class))
            .map(|(c, _)| c.as_str())
            .collect()
    }

    /// All transitive descendants of `class` — the paper's
    /// `successors_GT(t)` (§6.3).
    pub fn successors(&self, class: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut stack = vec![class.to_string()];
        while let Some(c) = stack.pop() {
            for child in self.children_of(&c) {
                if out.insert(child.to_string()) {
                    stack.push(child.to_string());
                }
            }
        }
        out
    }

    /// Ancestor chain of `class` (primary parents), nearest first.
    pub fn ancestors(&self, class: &str) -> Vec<&str> {
        let mut out = Vec::new();
        let mut cur = self.parent_of(class);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent_of(p);
        }
        out
    }
}

impl fmt::Display for GroundTruth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (c, p) in &self.parent {
            match p {
                Some(p) => writeln!(f, "{c} : {p}")?,
                None => writeln!(f, "{c} (root)")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gt() -> GroundTruth {
        GroundTruth::from_parents(vec![
            ("Stream", None),
            ("ConfirmableStream", Some("Stream")),
            ("FlushableStream", Some("Stream")),
            ("BufferedFlushable", Some("FlushableStream")),
        ])
    }

    #[test]
    fn parent_queries() {
        let g = gt();
        assert_eq!(g.parent_of("Stream"), None);
        assert_eq!(g.parent_of("FlushableStream"), Some("Stream"));
        assert_eq!(g.parent_of("Nope"), None);
        assert!(g.contains("Stream"));
        assert!(!g.contains("Nope"));
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
    }

    #[test]
    fn roots_and_children() {
        let g = gt();
        assert_eq!(g.roots(), vec!["Stream"]);
        assert_eq!(g.children_of("Stream"), vec!["ConfirmableStream", "FlushableStream"]);
        assert_eq!(g.children_of("BufferedFlushable"), Vec::<&str>::new());
    }

    #[test]
    fn successors_are_transitive() {
        let g = gt();
        let s = g.successors("Stream");
        assert_eq!(s.len(), 3);
        assert!(s.contains("BufferedFlushable"));
        assert!(g.successors("BufferedFlushable").is_empty());
    }

    #[test]
    fn ancestors_chain() {
        let g = gt();
        assert_eq!(g.ancestors("BufferedFlushable"), vec!["FlushableStream", "Stream"]);
        assert_eq!(g.ancestors("Stream"), Vec::<&str>::new());
    }

    #[test]
    fn extra_parents() {
        let mut g = gt();
        g.add_extra_parent("BufferedFlushable", "ConfirmableStream");
        assert_eq!(g.parents_of("BufferedFlushable"), vec!["FlushableStream", "ConfirmableStream"]);
        // Primary relation untouched.
        assert_eq!(g.parent_of("BufferedFlushable"), Some("FlushableStream"));
    }

    #[test]
    fn display_lists_all() {
        let text = gt().to_string();
        assert!(text.contains("Stream (root)"));
        assert!(text.contains("FlushableStream : Stream"));
    }
}
