//! C++-flavoured pretty-printing of MiniCpp programs (the paper's Fig. 3
//! view — the *source* the reverse engineer never gets to see).

use std::fmt::Write as _;

use crate::{CallArg, ClassDef, Expr, FunctionDef, Program, Stmt};

/// Renders a whole program as C++-flavoured source text.
///
/// # Example
///
/// ```
/// use rock_minicpp::{ProgramBuilder, to_source};
/// let mut p = ProgramBuilder::new();
/// p.class("Base").method("m", |b| { b.ret(); });
/// p.class("Derived").base("Base").field("x");
/// let src = to_source(&p.finish());
/// assert!(src.contains("class Derived : public Base {"));
/// ```
pub fn to_source(program: &Program) -> String {
    let mut out = String::new();
    for c in &program.classes {
        class_source(c, &mut out);
        out.push('\n');
    }
    for f in &program.functions {
        function_source(f, &mut out);
        out.push('\n');
    }
    out
}

fn class_source(c: &ClassDef, out: &mut String) {
    let bases = if c.bases.is_empty() {
        String::new()
    } else {
        let list: Vec<String> = c.bases.iter().map(|b| format!("public {b}")).collect();
        format!(" : {}", list.join(", "))
    };
    let _ = writeln!(out, "class {}{bases} {{", c.name);
    for f in &c.fields {
        let _ = writeln!(out, "    long {f};");
    }
    if !c.ctor_body.is_empty() {
        let _ = writeln!(out, "    {}() {{", c.name);
        body_source(&c.ctor_body, 2, out);
        let _ = writeln!(out, "    }}");
    }
    if !c.dtor_body.is_empty() {
        let _ = writeln!(out, "    ~{}() {{", c.name);
        body_source(&c.dtor_body, 2, out);
        let _ = writeln!(out, "    }}");
    }
    for m in &c.methods {
        if m.is_pure {
            let _ = writeln!(out, "    virtual void {}() = 0;", m.name);
        } else {
            let _ = writeln!(out, "    virtual void {}() {{", m.name);
            body_source(&m.body, 2, out);
            let _ = writeln!(out, "    }}");
        }
    }
    let _ = writeln!(out, "}};");
}

fn function_source(f: &FunctionDef, out: &mut String) {
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| match &p.class {
            Some(c) => format!("{c}* {}", p.name),
            None => format!("long {}", p.name),
        })
        .collect();
    let inline = if f.inline_hint { "inline " } else { "" };
    let _ = writeln!(out, "{inline}long {}({}) {{", f.name, params.join(", "));
    body_source(&f.body, 1, out);
    let _ = writeln!(out, "}}");
}

fn body_source(body: &[Stmt], depth: usize, out: &mut String) {
    let pad = "    ".repeat(depth);
    for s in body {
        match s {
            Stmt::Let { var, value } => {
                let _ = writeln!(out, "{pad}long {var} = {};", expr(value));
            }
            Stmt::New { var, class, on_stack } => {
                if *on_stack {
                    let _ = writeln!(
                        out,
                        "{pad}{class} {var}_storage; {class}* {var} = &{var}_storage;"
                    );
                } else {
                    let _ = writeln!(out, "{pad}{class}* {var} = new {class}();");
                }
            }
            Stmt::Delete { var } => {
                let _ = writeln!(out, "{pad}delete {var};");
            }
            Stmt::VCall { dst, obj, method, args } => {
                let a: Vec<String> = args.iter().map(expr).collect();
                let lhs = dst.as_ref().map(|d| format!("long {d} = ")).unwrap_or_default();
                let _ = writeln!(out, "{pad}{lhs}{obj}->{method}({});", a.join(", "));
            }
            Stmt::ReadField { dst, obj, field } => {
                let _ = writeln!(out, "{pad}long {dst} = {obj}->{field};");
            }
            Stmt::WriteField { obj, field, value } => {
                let _ = writeln!(out, "{pad}{obj}->{field} = {};", expr(value));
            }
            Stmt::Call { dst, func, args } => {
                let a: Vec<String> = args
                    .iter()
                    .map(|arg| match arg {
                        CallArg::Value(e) => expr(e),
                        CallArg::Obj(v) => v.clone(),
                    })
                    .collect();
                let lhs = dst.as_ref().map(|d| format!("long {d} = ")).unwrap_or_default();
                let _ = writeln!(out, "{pad}{lhs}{func}({});", a.join(", "));
            }
            Stmt::If { cond, then_body, else_body } => {
                let _ = writeln!(out, "{pad}if ({}) {{", expr(cond));
                body_source(then_body, depth + 1, out);
                if else_body.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    body_source(else_body, depth + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            Stmt::While { cond, body } => {
                let _ = writeln!(out, "{pad}while ({}) {{", expr(cond));
                body_source(body, depth + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::Return(value) => match value {
                Some(v) => {
                    let _ = writeln!(out, "{pad}return {};", expr(v));
                }
                None => {
                    let _ = writeln!(out, "{pad}return;");
                }
            },
        }
    }
}

fn expr(e: &Expr) -> String {
    match e {
        Expr::Const(c) => c.to_string(),
        Expr::Var(v) => v.clone(),
        Expr::Param(i) => format!("arg{i}"),
        Expr::Bin(op, l, r) => format!("({} {op} {})", expr(l), expr(r)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn renders_fig3_style_source() {
        let mut p = ProgramBuilder::new();
        p.class("Stream").method("send", |b| {
            b.ret();
        });
        p.class("ConfirmableStream").base("Stream").method("confirm", |b| {
            b.ret();
        });
        p.func("useStream", |f| {
            f.param_obj("stream", "Stream");
            f.vcall("stream", "send", vec![Expr::Const(0)]);
            f.ret();
        });
        let src = to_source(&p.finish());
        assert!(src.contains("class Stream {"));
        assert!(src.contains("class ConfirmableStream : public Stream {"));
        assert!(src.contains("virtual void send() {"));
        assert!(src.contains("long useStream(Stream* stream) {"));
        assert!(src.contains("stream->send(0);"));
    }

    #[test]
    fn renders_all_statement_forms() {
        let mut p = ProgramBuilder::new();
        p.class("A")
            .field("x")
            .pure_method("abstract_m")
            .ctor(|b| {
                b.write("this", "x", Expr::Const(1));
            })
            .dtor(|b| {
                b.read("v", "this", "x");
            });
        p.class("B").base("A").method("abstract_m", |b| {
            b.ret();
        });
        p.func_inline("helper", |f| {
            f.param_val("n");
            f.ret_val(Expr::Param(0));
        });
        p.func("main_like", |f| {
            f.new_obj("b", "B");
            f.new_stack("s", "B");
            f.let_("t", Expr::bin(rock_binary::BinOp::Add, Expr::Const(1), Expr::Const(2)));
            f.call_dst("r", "helper", vec![crate::CallArg::Value(Expr::Var("t".into()))]);
            f.if_else(
                Expr::Var("r".into()),
                |tb| {
                    tb.vcall_dst("q", "b", "abstract_m", vec![]);
                },
                |eb| {
                    eb.delete("b");
                },
            );
            f.write("s", "x", Expr::Const(5));
            f.ret();
        });
        let src = to_source(&p.finish());
        for needle in [
            "virtual void abstract_m() = 0;",
            "A() {",
            "~A() {",
            "inline long helper(long n) {",
            "B* b = new B();",
            "B s_storage; B* s = &s_storage;",
            "long t = (1 add 2);",
            "long r = helper(t);",
            "if (r) {",
            "} else {",
            "delete b;",
            "s->x = 5;",
            "return arg0;",
        ] {
            assert!(src.contains(needle), "missing {needle:?} in:\n{src}");
        }
    }
}
