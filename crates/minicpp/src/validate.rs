//! Static validation of MiniCpp programs.
//!
//! Compilation only accepts well-formed programs; every name reference must
//! resolve and the inheritance graph must be a DAG free of field shadowing.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use crate::{CallArg, Expr, Program, Stmt};

/// An error found while validating a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// Two classes share a name.
    DuplicateClass(String),
    /// Two free functions share a name.
    DuplicateFunction(String),
    /// A base class reference does not resolve.
    UnknownBase {
        /// The class declaring the base.
        class: String,
        /// The unresolved base name.
        base: String,
    },
    /// The inheritance graph has a cycle through this class.
    InheritanceCycle(String),
    /// A field is redeclared along an inheritance chain.
    FieldShadowed {
        /// The class redeclaring the field.
        class: String,
        /// The shadowed field name.
        field: String,
    },
    /// A class declares the same method twice.
    DuplicateMethod {
        /// The class.
        class: String,
        /// The method name.
        method: String,
    },
    /// A statement uses a variable that is not defined.
    UndefinedVar {
        /// Enclosing function or method.
        context: String,
        /// The unresolved variable.
        var: String,
    },
    /// A virtual call's receiver has no static class type.
    UntypedReceiver {
        /// Enclosing function or method.
        context: String,
        /// The receiver variable.
        var: String,
    },
    /// A method call does not resolve in the receiver's static type.
    UnknownMethod {
        /// Enclosing function or method.
        context: String,
        /// Receiver's static class.
        class: String,
        /// The method name.
        method: String,
    },
    /// A field access does not resolve in the receiver's static type.
    UnknownField {
        /// Enclosing function or method.
        context: String,
        /// Receiver's static class.
        class: String,
        /// The field name.
        field: String,
    },
    /// A call to an unknown free function.
    UnknownFunction {
        /// Enclosing function or method.
        context: String,
        /// The callee name.
        func: String,
    },
    /// `new` of a class that cannot be instantiated.
    AbstractInstantiation {
        /// Enclosing function or method.
        context: String,
        /// The abstract class.
        class: String,
    },
    /// `new` of an unknown class.
    UnknownClass {
        /// Enclosing function or method.
        context: String,
        /// The class name.
        class: String,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::DuplicateClass(c) => write!(f, "duplicate class {c}"),
            ValidateError::DuplicateFunction(func) => write!(f, "duplicate function {func}"),
            ValidateError::UnknownBase { class, base } => {
                write!(f, "class {class}: unknown base {base}")
            }
            ValidateError::InheritanceCycle(c) => {
                write!(f, "inheritance cycle through {c}")
            }
            ValidateError::FieldShadowed { class, field } => {
                write!(f, "class {class}: field {field} shadows an inherited field")
            }
            ValidateError::DuplicateMethod { class, method } => {
                write!(f, "class {class}: duplicate method {method}")
            }
            ValidateError::UndefinedVar { context, var } => {
                write!(f, "{context}: undefined variable {var}")
            }
            ValidateError::UntypedReceiver { context, var } => {
                write!(f, "{context}: receiver {var} has no class type")
            }
            ValidateError::UnknownMethod { context, class, method } => {
                write!(f, "{context}: no method {method} in class {class}")
            }
            ValidateError::UnknownField { context, class, field } => {
                write!(f, "{context}: no field {field} in class {class}")
            }
            ValidateError::UnknownFunction { context, func } => {
                write!(f, "{context}: unknown function {func}")
            }
            ValidateError::AbstractInstantiation { context, class } => {
                write!(f, "{context}: cannot instantiate abstract class {class}")
            }
            ValidateError::UnknownClass { context, class } => {
                write!(f, "{context}: unknown class {class}")
            }
        }
    }
}

impl Error for ValidateError {}

/// Methods visible on `class`, own and inherited (primary and secondary
/// bases alike).
fn visible_methods<'a>(program: &'a Program, class: &str, out: &mut BTreeSet<&'a str>) {
    if let Some(c) = program.class(class) {
        for m in &c.methods {
            out.insert(&m.name);
        }
        for b in &c.bases {
            visible_methods(program, b, out);
        }
    }
}

fn visible_fields<'a>(program: &'a Program, class: &str, out: &mut BTreeSet<&'a str>) {
    if let Some(c) = program.class(class) {
        for fl in &c.fields {
            out.insert(fl);
        }
        for b in &c.bases {
            visible_fields(program, b, out);
        }
    }
}

/// Validates a whole program.
///
/// # Errors
///
/// Returns the first [`ValidateError`] found.
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    let mut class_names = BTreeSet::new();
    for c in &program.classes {
        if !class_names.insert(c.name.as_str()) {
            return Err(ValidateError::DuplicateClass(c.name.clone()));
        }
    }
    let mut fn_names = BTreeSet::new();
    for func in &program.functions {
        if !fn_names.insert(func.name.as_str()) {
            return Err(ValidateError::DuplicateFunction(func.name.clone()));
        }
    }

    for c in &program.classes {
        for b in &c.bases {
            if !class_names.contains(b.as_str()) {
                return Err(ValidateError::UnknownBase { class: c.name.clone(), base: b.clone() });
            }
        }
        let mut methods = BTreeSet::new();
        for m in &c.methods {
            if !methods.insert(m.name.as_str()) {
                return Err(ValidateError::DuplicateMethod {
                    class: c.name.clone(),
                    method: m.name.clone(),
                });
            }
        }
    }

    check_acyclic(program)?;

    // Field shadowing: own field that already exists in an ancestor.
    for c in &program.classes {
        let mut inherited = BTreeSet::new();
        for b in &c.bases {
            visible_fields(program, b, &mut inherited);
        }
        for fld in &c.fields {
            if inherited.contains(fld.as_str()) {
                return Err(ValidateError::FieldShadowed {
                    class: c.name.clone(),
                    field: fld.clone(),
                });
            }
        }
    }

    // Bodies.
    for c in &program.classes {
        for m in &c.methods {
            let ctx = format!("{}::{}", c.name, m.name);
            let mut scope = Scope::new(program, &ctx);
            scope.define("this", Some(c.name.clone()));
            scope.check_body(&m.body)?;
        }
        let ctx = format!("{}::ctor", c.name);
        let mut scope = Scope::new(program, &ctx);
        scope.define("this", Some(c.name.clone()));
        scope.check_body(&c.ctor_body)?;
        let ctx = format!("{}::dtor", c.name);
        let mut scope = Scope::new(program, &ctx);
        scope.define("this", Some(c.name.clone()));
        scope.check_body(&c.dtor_body)?;
    }
    for func in &program.functions {
        let mut scope = Scope::new(program, &func.name);
        for p in &func.params {
            if let Some(cl) = &p.class {
                if !class_names.contains(cl.as_str()) {
                    return Err(ValidateError::UnknownClass {
                        context: func.name.clone(),
                        class: cl.clone(),
                    });
                }
            }
            scope.define(&p.name, p.class.clone());
        }
        scope.check_body(&func.body)?;
    }
    Ok(())
}

fn check_acyclic(program: &Program) -> Result<(), ValidateError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: BTreeMap<&str, Mark> =
        program.classes.iter().map(|c| (c.name.as_str(), Mark::White)).collect();

    fn visit<'a>(
        program: &'a Program,
        name: &'a str,
        marks: &mut BTreeMap<&'a str, Mark>,
    ) -> Result<(), ValidateError> {
        match marks[name] {
            Mark::Black => return Ok(()),
            Mark::Grey => return Err(ValidateError::InheritanceCycle(name.to_string())),
            Mark::White => {}
        }
        marks.insert(name, Mark::Grey);
        if let Some(c) = program.class(name) {
            for b in &c.bases {
                visit(program, b, marks)?;
            }
        }
        marks.insert(name, Mark::Black);
        Ok(())
    }

    for c in &program.classes {
        visit(program, &c.name, &mut marks)?;
    }
    Ok(())
}

/// Tracks variables and their static class types in one body.
struct Scope<'a> {
    program: &'a Program,
    context: String,
    vars: BTreeMap<String, Option<String>>,
}

impl<'a> Scope<'a> {
    fn new(program: &'a Program, context: &str) -> Self {
        Scope { program, context: context.to_string(), vars: BTreeMap::new() }
    }

    fn define(&mut self, var: &str, class: Option<String>) {
        self.vars.insert(var.to_string(), class);
    }

    fn class_of(&self, var: &str) -> Result<&str, ValidateError> {
        match self.vars.get(var) {
            None => Err(ValidateError::UndefinedVar {
                context: self.context.clone(),
                var: var.to_string(),
            }),
            Some(None) => Err(ValidateError::UntypedReceiver {
                context: self.context.clone(),
                var: var.to_string(),
            }),
            Some(Some(c)) => Ok(c),
        }
    }

    fn check_expr(&self, e: &Expr) -> Result<(), ValidateError> {
        for v in e.vars() {
            if !self.vars.contains_key(v) {
                return Err(ValidateError::UndefinedVar {
                    context: self.context.clone(),
                    var: v.to_string(),
                });
            }
        }
        Ok(())
    }

    fn check_body(&mut self, body: &[Stmt]) -> Result<(), ValidateError> {
        for s in body {
            self.check_stmt(s)?;
        }
        Ok(())
    }

    fn check_stmt(&mut self, s: &Stmt) -> Result<(), ValidateError> {
        match s {
            Stmt::Let { var, value } => {
                self.check_expr(value)?;
                self.define(var, None);
            }
            Stmt::New { var, class, .. } => {
                let Some(c) = self.program.class(class) else {
                    return Err(ValidateError::UnknownClass {
                        context: self.context.clone(),
                        class: class.clone(),
                    });
                };
                if c.is_abstract() {
                    return Err(ValidateError::AbstractInstantiation {
                        context: self.context.clone(),
                        class: class.clone(),
                    });
                }
                self.define(var, Some(class.clone()));
            }
            Stmt::Delete { var } => {
                self.class_of(var)?;
            }
            Stmt::VCall { dst, obj, method, args } => {
                let class = self.class_of(obj)?.to_string();
                let mut visible = BTreeSet::new();
                visible_methods(self.program, &class, &mut visible);
                if !visible.contains(method.as_str()) {
                    return Err(ValidateError::UnknownMethod {
                        context: self.context.clone(),
                        class,
                        method: method.clone(),
                    });
                }
                for a in args {
                    self.check_expr(a)?;
                }
                if let Some(d) = dst {
                    self.define(d, None);
                }
            }
            Stmt::ReadField { dst, obj, field } => {
                let class = self.class_of(obj)?.to_string();
                self.check_field(&class, field)?;
                self.define(dst, None);
            }
            Stmt::WriteField { obj, field, value } => {
                let class = self.class_of(obj)?.to_string();
                self.check_field(&class, field)?;
                self.check_expr(value)?;
            }
            Stmt::Call { dst, func, args } => {
                if self.program.function(func).is_none() {
                    return Err(ValidateError::UnknownFunction {
                        context: self.context.clone(),
                        func: func.clone(),
                    });
                }
                for a in args {
                    match a {
                        CallArg::Value(e) => self.check_expr(e)?,
                        CallArg::Obj(v) => {
                            self.class_of(v)?;
                        }
                    }
                }
                if let Some(d) = dst {
                    self.define(d, None);
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                self.check_expr(cond)?;
                // Conservative: both branches share the outer scope;
                // definitions inside branches stay visible (MiniCpp has
                // function-level scoping, like pre-C99 C).
                self.check_body(then_body)?;
                self.check_body(else_body)?;
            }
            Stmt::While { cond, body } => {
                self.check_expr(cond)?;
                self.check_body(body)?;
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    self.check_expr(e)?;
                }
            }
        }
        Ok(())
    }

    fn check_field(&self, class: &str, field: &str) -> Result<(), ValidateError> {
        let mut visible = BTreeSet::new();
        visible_fields(self.program, class, &mut visible);
        if !visible.contains(field) {
            return Err(ValidateError::UnknownField {
                context: self.context.clone(),
                class: class.to_string(),
                field: field.to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassDef, FunctionDef, MethodDef, Param};

    fn class(name: &str, bases: &[&str]) -> ClassDef {
        ClassDef {
            name: name.into(),
            bases: bases.iter().map(|s| s.to_string()).collect(),
            fields: vec![],
            methods: vec![MethodDef { name: "m".into(), is_pure: false, body: vec![] }],
            is_abstract: false,
            always_inline_ctor: false,
            ctor_body: vec![],
            dtor_body: vec![],
        }
    }

    #[test]
    fn accepts_valid_program() {
        let p = Program {
            classes: vec![class("A", &[]), class("B", &["A"])],
            functions: vec![FunctionDef {
                name: "f".into(),
                params: vec![],
                body: vec![
                    Stmt::New { var: "b".into(), class: "B".into(), on_stack: false },
                    Stmt::VCall { dst: None, obj: "b".into(), method: "m".into(), args: vec![] },
                    Stmt::Return(None),
                ],
                inline_hint: false,
            }],
        };
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn rejects_duplicate_class() {
        let p = Program { classes: vec![class("A", &[]), class("A", &[])], functions: vec![] };
        assert_eq!(validate(&p), Err(ValidateError::DuplicateClass("A".into())));
    }

    #[test]
    fn rejects_unknown_base() {
        let p = Program { classes: vec![class("B", &["Nope"])], functions: vec![] };
        assert!(matches!(validate(&p), Err(ValidateError::UnknownBase { .. })));
    }

    #[test]
    fn rejects_cycle() {
        let mut a = class("A", &["B"]);
        let b = class("B", &["A"]);
        a.methods.clear();
        let p = Program { classes: vec![a, b], functions: vec![] };
        assert!(matches!(validate(&p), Err(ValidateError::InheritanceCycle(_))));
    }

    #[test]
    fn rejects_self_inheritance() {
        let p = Program { classes: vec![class("A", &["A"])], functions: vec![] };
        assert!(matches!(validate(&p), Err(ValidateError::InheritanceCycle(_))));
    }

    #[test]
    fn rejects_field_shadowing() {
        let mut a = class("A", &[]);
        a.fields.push("x".into());
        let mut b = class("B", &["A"]);
        b.methods.clear();
        b.fields.push("x".into());
        let p = Program { classes: vec![a, b], functions: vec![] };
        assert!(matches!(validate(&p), Err(ValidateError::FieldShadowed { .. })));
    }

    #[test]
    fn rejects_undefined_var_and_unknown_method() {
        let p = Program {
            classes: vec![class("A", &[])],
            functions: vec![FunctionDef {
                name: "f".into(),
                params: vec![],
                body: vec![Stmt::VCall {
                    dst: None,
                    obj: "ghost".into(),
                    method: "m".into(),
                    args: vec![],
                }],
                inline_hint: false,
            }],
        };
        assert!(matches!(validate(&p), Err(ValidateError::UndefinedVar { .. })));

        let p2 = Program {
            classes: vec![class("A", &[])],
            functions: vec![FunctionDef {
                name: "f".into(),
                params: vec![Param::object("a", "A")],
                body: vec![Stmt::VCall {
                    dst: None,
                    obj: "a".into(),
                    method: "nope".into(),
                    args: vec![],
                }],
                inline_hint: false,
            }],
        };
        assert!(matches!(validate(&p2), Err(ValidateError::UnknownMethod { .. })));
    }

    #[test]
    fn rejects_abstract_instantiation() {
        let mut a = class("A", &[]);
        a.methods[0].is_pure = true;
        let p = Program {
            classes: vec![a],
            functions: vec![FunctionDef {
                name: "f".into(),
                params: vec![],
                body: vec![Stmt::New { var: "a".into(), class: "A".into(), on_stack: false }],
                inline_hint: false,
            }],
        };
        assert!(matches!(validate(&p), Err(ValidateError::AbstractInstantiation { .. })));
    }

    #[test]
    fn methods_see_inherited_members_via_this() {
        let mut a = class("A", &[]);
        a.fields.push("x".into());
        let mut b = class("B", &["A"]);
        b.methods = vec![MethodDef {
            name: "use_x".into(),
            is_pure: false,
            body: vec![Stmt::ReadField { dst: "v".into(), obj: "this".into(), field: "x".into() }],
        }];
        let p = Program { classes: vec![a, b], functions: vec![] };
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn error_messages_render() {
        let e = ValidateError::UnknownMethod {
            context: "f".into(),
            class: "A".into(),
            method: "m".into(),
        };
        assert_eq!(e.to_string(), "f: no method m in class A");
    }
}
