//! COMDAT folding: merging functions with identical bodies.
//!
//! Linkers fold identical COMDAT sections to save space; the paper (§6.4,
//! error source 1) identifies this as the main cause of *unrelated* vtables
//! sharing a function pointer and hence being clustered into one type
//! family. This pass reproduces that behaviour faithfully: after folding,
//! every reference (vtable slot, direct call, address materialization) to a
//! folded function points at the surviving representative.

use std::collections::{BTreeMap, HashMap};

use crate::asm::{AInstr, AProgram};

/// Folds identical function bodies in place and returns the replacement
/// map `folded name -> surviving name`.
///
/// The first function (in emission order) with a given body survives;
/// later duplicates are removed and all references rewritten.
pub fn comdat_fold(program: &mut AProgram) -> BTreeMap<String, String> {
    let mut canonical: HashMap<Vec<AInstr>, String> = HashMap::new();
    let mut replacement: BTreeMap<String, String> = BTreeMap::new();

    program.functions.retain(|f| match canonical.get(f.body_key()) {
        Some(survivor) => {
            replacement.insert(f.name.clone(), survivor.clone());
            false
        }
        None => {
            canonical.insert(f.instrs.clone(), f.name.clone());
            true
        }
    });

    if replacement.is_empty() {
        return replacement;
    }

    let fix = |name: &mut String| {
        if let Some(r) = replacement.get(name.as_str()) {
            *name = r.clone();
        }
    };
    for f in &mut program.functions {
        for instr in &mut f.instrs {
            match instr {
                AInstr::CallNamed(n) | AInstr::MovFnAddr(_, n) => fix(n),
                _ => {}
            }
        }
    }
    for vt in &mut program.vtables {
        for slot in &mut vt.slots {
            fix(slot);
        }
    }
    replacement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{AFunction, AVtable};
    use rock_binary::{Instr, Reg};

    fn body_a() -> Vec<AInstr> {
        vec![
            AInstr::I(Instr::Enter { frame: 0 }),
            AInstr::I(Instr::Load { dst: Reg::R0, base: Reg::R0, offset: 8 }),
            AInstr::I(Instr::Ret),
        ]
    }

    fn body_b() -> Vec<AInstr> {
        vec![AInstr::I(Instr::Enter { frame: 0 }), AInstr::I(Instr::Ret)]
    }

    #[test]
    fn folds_identical_bodies() {
        let mut p = AProgram {
            functions: vec![
                AFunction::new("X::get", body_a()),
                AFunction::new("Y::get", body_a()),
                AFunction::new("Z::other", body_b()),
            ],
            vtables: vec![
                AVtable { name: "vtable for X".into(), slots: vec!["X::get".into()] },
                AVtable { name: "vtable for Y".into(), slots: vec!["Y::get".into()] },
            ],
            rtti: vec![],
            rodata_blobs: vec![],
        };
        let map = comdat_fold(&mut p);
        assert_eq!(map.len(), 1);
        assert_eq!(map["Y::get"], "X::get");
        assert_eq!(p.functions.len(), 2);
        // Both vtables now share the same implementation pointer — the
        // false "DNA match" the paper's error source 1 describes.
        assert_eq!(p.vtables[0].slots[0], "X::get");
        assert_eq!(p.vtables[1].slots[0], "X::get");
    }

    #[test]
    fn rewrites_calls_and_addresses() {
        let mut p = AProgram {
            functions: vec![
                AFunction::new("a", body_a()),
                AFunction::new("b", body_a()),
                AFunction::new(
                    "caller",
                    vec![
                        AInstr::I(Instr::Enter { frame: 0 }),
                        AInstr::CallNamed("b".into()),
                        AInstr::MovFnAddr(Reg::R1, "b".into()),
                        AInstr::I(Instr::Ret),
                    ],
                ),
            ],
            vtables: vec![],
            rtti: vec![],
            rodata_blobs: vec![],
        };
        comdat_fold(&mut p);
        let caller = p.functions.iter().find(|f| f.name == "caller").unwrap();
        assert!(caller.instrs.contains(&AInstr::CallNamed("a".into())));
        assert!(caller.instrs.contains(&AInstr::MovFnAddr(Reg::R1, "a".into())));
    }

    #[test]
    fn no_fold_when_bodies_differ() {
        let mut p = AProgram {
            functions: vec![AFunction::new("a", body_a()), AFunction::new("b", body_b())],
            vtables: vec![],
            rtti: vec![],
            rodata_blobs: vec![],
        };
        let map = comdat_fold(&mut p);
        assert!(map.is_empty());
        assert_eq!(p.functions.len(), 2);
    }

    #[test]
    fn first_function_survives() {
        let mut p = AProgram {
            functions: vec![
                AFunction::new("first", body_b()),
                AFunction::new("second", body_b()),
                AFunction::new("third", body_b()),
            ],
            vtables: vec![],
            rtti: vec![],
            rodata_blobs: vec![],
        };
        let map = comdat_fold(&mut p);
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "first");
        assert_eq!(map["second"], "first");
        assert_eq!(map["third"], "first");
    }
}
