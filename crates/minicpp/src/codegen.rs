//! Lowering MiniCpp programs to binary images.
//!
//! The lowering follows a simplified MSVC-style recipe:
//!
//! * every local variable lives in a stack slot `[sp + 8k]`;
//! * a virtual call loads the vptr, loads the slot, moves the receiver into
//!   `r0` and performs an indirect call;
//! * constructors run base constructors first (or inline them), then store
//!   the vtable pointer(s), then zero own fields, then run the user body;
//! * destructors re-store the vtable pointer(s), run the user body, then
//!   run base destructors;
//! * `new` calls the `__alloc` runtime, `delete` runs the destructor and
//!   `__free`.
//!
//! Optimizations (driven by [`CompileOptions`]): parent ctor/dtor inlining
//! with dead-store elimination of overwritten vtable pointers, elimination
//! of never-instantiated abstract classes, inlining of hinted free
//! functions, and COMDAT folding (see [`crate::fold`]).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use rock_binary::{Addr, BinaryImage, Instr, Reg, WORD_SIZE};

use crate::asm::{assemble, AFunction, AInstr, AProgram, ARtti, AVtable};
use crate::fold::comdat_fold;
use crate::{
    CallArg, ClassLayout, CompileOptions, Expr, GroundTruth, Program, ProgramLayout, Stmt,
    ValidateError,
};

/// Name of the allocator runtime function.
pub const ALLOC_FN: &str = "__alloc";
/// Name of the deallocator runtime function.
pub const FREE_FN: &str = "__free";
/// Name of the pure-virtual-call trap.
pub const PURECALL_FN: &str = "__purecall";

/// An error produced by [`compile`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The program failed validation.
    Invalid(ValidateError),
    /// Inlining recursion exceeded the depth limit.
    InlineRecursion {
        /// The function being inlined when the limit was hit.
        function: String,
    },
    /// Too many call arguments for the register-passing convention.
    TooManyArgs {
        /// The offending call context.
        context: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Invalid(e) => write!(f, "invalid program: {e}"),
            CompileError::InlineRecursion { function } => {
                write!(f, "inline recursion while expanding {function}")
            }
            CompileError::TooManyArgs { context } => {
                write!(f, "{context}: too many call arguments")
            }
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateError> for CompileError {
    fn from(e: ValidateError) -> Self {
        CompileError::Invalid(e)
    }
}

/// The output of [`compile`]: an (unstripped) image plus everything the
/// evaluation harness needs.
#[derive(Clone, Debug)]
pub struct Compiled {
    image: BinaryImage,
    vtables: BTreeMap<String, Addr>,
    ground_truth: GroundTruth,
    folded: BTreeMap<String, String>,
}

impl Compiled {
    /// The compiled image, with symbols and RTTI still present.
    pub fn image(&self) -> &BinaryImage {
        &self.image
    }

    /// A stripped copy of the image — the Rock pipeline's input.
    pub fn stripped_image(&self) -> BinaryImage {
        let mut img = self.image.clone();
        img.strip();
        img
    }

    /// Primary vtable address of every emitted class.
    pub fn vtables(&self) -> &BTreeMap<String, Addr> {
        &self.vtables
    }

    /// Primary vtable address of one class.
    pub fn vtable_of(&self, class: &str) -> Option<Addr> {
        self.vtables.get(class).copied()
    }

    /// Reverse lookup: class name for a primary vtable address.
    pub fn class_of(&self, vtable: Addr) -> Option<&str> {
        self.vtables.iter().find(|(_, a)| **a == vtable).map(|(c, _)| c.as_str())
    }

    /// The induced binary type hierarchy (ground truth, paper §6.2).
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.ground_truth
    }

    /// COMDAT replacements performed (`folded name -> survivor`).
    pub fn folded_functions(&self) -> &BTreeMap<String, String> {
        &self.folded
    }
}

/// Compiles a program into a binary image.
///
/// # Errors
///
/// Returns [`CompileError::Invalid`] for ill-formed programs, or an
/// inlining/lowering error.
pub fn compile(program: &Program, options: &CompileOptions) -> Result<Compiled, CompileError> {
    let layout = ProgramLayout::compute(program)?;
    let mut cg = Codegen { program, layout: &layout, options, out: AProgram::default() };
    cg.run()?;

    if options.comdat_fold {
        let folded = comdat_fold(&mut cg.out);
        finish(program, &layout, options, cg.out, folded)
    } else {
        finish(program, &layout, options, cg.out, BTreeMap::new())
    }
}

fn finish(
    program: &Program,
    layout: &ProgramLayout,
    options: &CompileOptions,
    mut aprog: AProgram,
    folded: BTreeMap<String, String>,
) -> Result<Compiled, CompileError> {
    if options.rodata_noise > 0 {
        // Deterministic high-byte noise: 8-byte words far above the text
        // section so scanners never mistake them for code pointers.
        let mut state = 0x9e37_79b9_u64;
        let mut blob = Vec::with_capacity(options.rodata_noise);
        while blob.len() < options.rodata_noise {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            blob.extend_from_slice(&(state | 0xff00_0000_0000_0000).to_le_bytes());
        }
        blob.truncate(options.rodata_noise);
        aprog.rodata_blobs.push((0, blob.clone()));
        aprog.rodata_blobs.push((usize::MAX, blob));
    }
    if !options.emit_rtti {
        aprog.rtti.clear();
    }

    let assembled = assemble(&aprog);

    let emitted = |c: &str| -> bool {
        !(options.eliminate_abstract
            && program.class(c).map(crate::ClassDef::is_abstract).unwrap_or(false))
    };
    let mut gt = GroundTruth::from_parents(
        program
            .classes
            .iter()
            .filter(|c| emitted(&c.name))
            .map(|c| {
                let parent =
                    nearest_emitted(program, c.bases.first().map(String::as_str), &emitted);
                (c.name.clone(), parent)
            })
            .collect::<Vec<_>>(),
    );
    for c in &program.classes {
        if emitted(&c.name) {
            for b in c.bases.iter().skip(1) {
                if let Some(p) = nearest_emitted(program, Some(b), &emitted) {
                    gt.add_extra_parent(&c.name, &p);
                }
            }
        }
    }

    let vtables = layout
        .iter()
        .filter(|cl| emitted(&cl.name))
        .map(|cl| {
            let sym = cl.primary().symbol_name();
            (cl.name.clone(), assembled.vtable_addrs[&sym])
        })
        .collect();

    Ok(Compiled { image: assembled.image, vtables, ground_truth: gt, folded })
}

fn nearest_emitted<'p>(
    program: &'p Program,
    mut cur: Option<&'p str>,
    emitted: &dyn Fn(&str) -> bool,
) -> Option<String> {
    while let Some(c) = cur {
        if emitted(c) {
            return Some(c.to_string());
        }
        cur = program.parent_of(c);
    }
    None
}

const MAX_INLINE_DEPTH: usize = 8;
/// Provisional sp-relative watermark for stack objects; rebased onto the
/// end of the slot area once the slot count is known.
const OBJ_AREA_BASE: i32 = 1 << 20;
const SCRATCH: [Reg; 6] = [Reg::R8, Reg::R9, Reg::R10, Reg::R11, Reg::R12, Reg::R13];
const OBJ_REG: Reg = Reg::R6;
const VPTR_REG: Reg = Reg::R7;

struct Codegen<'a> {
    program: &'a Program,
    layout: &'a ProgramLayout,
    options: &'a CompileOptions,
    out: AProgram,
}

/// Per-function lowering context.
struct FnCtx {
    name: String,
    instrs: Vec<AInstr>,
    slots: BTreeMap<String, usize>,
    types: BTreeMap<String, Option<String>>,
    /// Allocation kind per object variable (true = heap).
    heap: BTreeMap<String, bool>,
    next_slot: usize,
    next_obj_off: i32,
    next_label: usize,
    uniq: usize,
}

impl FnCtx {
    fn new(name: &str) -> Self {
        FnCtx {
            name: name.to_string(),
            instrs: Vec::new(),
            slots: BTreeMap::new(),
            types: BTreeMap::new(),
            heap: BTreeMap::new(),
            next_slot: 0,
            next_obj_off: 0,
            next_label: 0,
            uniq: 0,
        }
    }

    fn slot(&mut self, var: &str) -> usize {
        if let Some(s) = self.slots.get(var) {
            return *s;
        }
        let s = self.next_slot;
        self.next_slot += 1;
        self.slots.insert(var.to_string(), s);
        s
    }

    fn slot_off(&mut self, var: &str) -> i32 {
        (self.slot(var) * WORD_SIZE as usize) as i32
    }

    fn define(&mut self, var: &str, class: Option<String>) {
        self.slot(var);
        self.types.insert(var.to_string(), class);
    }

    fn class_of(&self, var: &str) -> &str {
        self.types
            .get(var)
            .and_then(|c| c.as_deref())
            .unwrap_or_else(|| panic!("{}: {} has no class (validated?)", self.name, var))
    }

    fn label(&mut self) -> usize {
        let l = self.next_label;
        self.next_label += 1;
        l
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.uniq += 1;
        format!("__{prefix}{}", self.uniq)
    }

    fn emit(&mut self, i: Instr) {
        self.instrs.push(AInstr::I(i));
    }
}

impl<'a> Codegen<'a> {
    fn run(&mut self) -> Result<(), CompileError> {
        let mut need_alloc = false;
        let mut need_free = false;
        let mut need_purecall = false;

        // Vtables for emitted classes.
        for cl in self.layout.iter() {
            if self.eliminated(&cl.name) {
                continue;
            }
            for vt in &cl.vtables {
                let slots = vt
                    .slots
                    .iter()
                    .map(|s| match &s.impl_class {
                        None => {
                            need_purecall = true;
                            PURECALL_FN.to_string()
                        }
                        Some(c) => method_fn_name(c, &s.method),
                    })
                    .collect();
                self.out.vtables.push(AVtable { name: vt.symbol_name(), slots });
            }
            // RTTI: ancestors restricted to emitted classes.
            let mut ancestors = Vec::new();
            let mut cur = self.program.parent_of(&cl.name);
            while let Some(p) = cur {
                if !self.eliminated(p) {
                    ancestors.push(format!("vtable for {p}"));
                }
                cur = self.program.parent_of(p);
            }
            self.out.rtti.push(ARtti {
                vtable: cl.primary().symbol_name(),
                class_name: cl.name.clone(),
                ancestors,
            });
        }

        // Method implementations. A method impl is emitted when some
        // emitted vtable references it (covers impls owned by eliminated
        // abstract classes that children still inherit).
        let mut needed_impls: Vec<(String, String)> = Vec::new();
        for cl in self.layout.iter() {
            if self.eliminated(&cl.name) {
                continue;
            }
            for vt in &cl.vtables {
                for s in &vt.slots {
                    if let Some(c) = &s.impl_class {
                        let key = (c.clone(), s.method.clone());
                        if !needed_impls.contains(&key) {
                            needed_impls.push(key);
                        }
                    }
                }
            }
        }
        for (class, method) in &needed_impls {
            self.lower_method(class, method)?;
        }

        // Constructors and destructors for emitted classes.
        for cl in self.layout.iter() {
            if self.eliminated(&cl.name) {
                continue;
            }
            self.lower_ctor(&cl.name)?;
            self.lower_dtor(&cl.name)?;
        }

        // Free functions (hinted ones vanish when inlining is on).
        for f in &self.program.functions {
            if self.options.inline_hinted_functions && f.inline_hint {
                continue;
            }
            self.lower_free_function(&f.name)?;
        }

        // Does anything allocate / free?
        for f in &self.out.functions {
            for i in &f.instrs {
                if let AInstr::CallNamed(n) = i {
                    need_alloc |= n == ALLOC_FN;
                    need_free |= n == FREE_FN;
                }
            }
        }
        if need_alloc {
            self.out.functions.push(AFunction::new(
                ALLOC_FN,
                vec![AInstr::I(Instr::Enter { frame: 0 }), AInstr::I(Instr::Ret)],
            ));
        }
        if need_free {
            self.out.functions.push(AFunction::new(
                FREE_FN,
                vec![AInstr::I(Instr::Enter { frame: 0 }), AInstr::I(Instr::Ret)],
            ));
        }
        if need_purecall {
            self.out.functions.push(AFunction::new(
                PURECALL_FN,
                vec![AInstr::I(Instr::Enter { frame: 0 }), AInstr::I(Instr::Halt)],
            ));
        }
        Ok(())
    }

    fn eliminated(&self, class: &str) -> bool {
        self.options.eliminate_abstract
            && self.program.class(class).map(crate::ClassDef::is_abstract).unwrap_or(false)
    }

    fn class_layout(&self, class: &str) -> &ClassLayout {
        self.layout.class(class).expect("validated class")
    }

    // --- function shells -------------------------------------------------

    fn lower_method(&mut self, class: &str, method: &str) -> Result<(), CompileError> {
        let def = self
            .program
            .class(class)
            .and_then(|c| c.method(method))
            .unwrap_or_else(|| panic!("impl {class}::{method} missing"))
            .clone();
        assert!(!def.is_pure, "pure methods have no impl");
        let mut ctx = FnCtx::new(&method_fn_name(class, method));
        // Spill `this`.
        ctx.define("this", Some(class.to_string()));
        let this_off = ctx.slot_off("this");
        ctx.emit(Instr::Store { base: Reg::SP, offset: this_off, src: Reg::R0 });
        self.lower_body(&mut ctx, &def.body, &BTreeMap::new(), 0)?;
        self.finish_function(ctx);
        Ok(())
    }

    fn lower_ctor(&mut self, class: &str) -> Result<(), CompileError> {
        let mut ctx = FnCtx::new(&ctor_fn_name(class));
        ctx.define("this", Some(class.to_string()));
        let this_off = ctx.slot_off("this");
        ctx.emit(Instr::Store { base: Reg::SP, offset: this_off, src: Reg::R0 });
        ctx.emit(Instr::MovReg { dst: OBJ_REG, src: Reg::R0 });
        self.ctor_content(&mut ctx, class, 0, true, 0)?;
        self.finish_function(ctx);
        Ok(())
    }

    fn lower_dtor(&mut self, class: &str) -> Result<(), CompileError> {
        let mut ctx = FnCtx::new(&dtor_fn_name(class));
        ctx.define("this", Some(class.to_string()));
        let this_off = ctx.slot_off("this");
        ctx.emit(Instr::Store { base: Reg::SP, offset: this_off, src: Reg::R0 });
        ctx.emit(Instr::MovReg { dst: OBJ_REG, src: Reg::R0 });
        self.dtor_content(&mut ctx, class, 0, true, 0)?;
        self.finish_function(ctx);
        Ok(())
    }

    fn lower_free_function(&mut self, name: &str) -> Result<(), CompileError> {
        let def = self.program.function(name).expect("validated").clone();
        let mut ctx = FnCtx::new(name);
        let mut renames = BTreeMap::new();
        for (i, p) in def.params.iter().enumerate() {
            let reg = Reg::arg(i)
                .ok_or_else(|| CompileError::TooManyArgs { context: name.to_string() })?;
            ctx.define(&p.name, p.class.clone());
            let off = ctx.slot_off(&p.name);
            ctx.emit(Instr::Store { base: Reg::SP, offset: off, src: reg });
            // `Expr::Param(i)` resolves through this alias.
            renames.insert(format!("__param{i}"), p.name.clone());
        }
        self.lower_body(&mut ctx, &def.body, &renames, 0)?;
        self.finish_function(ctx);
        Ok(())
    }

    /// Prepends `Enter` with the final frame size, rebases provisional
    /// stack-object offsets onto the end of the slot area, and appends a
    /// trailing `Ret` if the body can fall through.
    fn finish_function(&mut self, ctx: FnCtx) {
        let slot_area = (ctx.next_slot * WORD_SIZE as usize) as i32;
        let frame = slot_area + ctx.next_obj_off;
        let mut instrs = Vec::with_capacity(ctx.instrs.len() + 2);
        instrs.push(AInstr::I(Instr::Enter { frame: frame.clamp(0, u16::MAX as i32) as u16 }));
        instrs.extend(ctx.instrs.into_iter().map(|i| match i {
            AInstr::I(Instr::Lea { dst, base, offset })
                if base == Reg::SP && offset >= OBJ_AREA_BASE =>
            {
                AInstr::I(Instr::Lea { dst, base, offset: slot_area + (offset - OBJ_AREA_BASE) })
            }
            other => other,
        }));
        let needs_ret = !matches!(instrs.last(), Some(AInstr::I(i)) if !i.falls_through());
        if needs_ret {
            instrs.push(AInstr::I(Instr::Ret));
        }
        self.out.functions.push(AFunction::new(ctx.name, instrs));
    }

    // --- ctor / dtor content ---------------------------------------------

    /// Emits constructor content for `class`, relative to the object base
    /// in `OBJ_REG` plus `this_off`. `store_vtables` is false when the
    /// content is inlined into a derived ctor (dead-store elimination).
    fn ctor_content(
        &mut self,
        ctx: &mut FnCtx,
        class: &str,
        this_off: i32,
        store_vtables: bool,
        depth: usize,
    ) -> Result<(), CompileError> {
        if depth > MAX_INLINE_DEPTH {
            return Err(CompileError::InlineRecursion { function: ctor_fn_name(class) });
        }
        let def = self.program.class(class).expect("validated").clone();
        let cl = self.class_layout(class).clone();

        // Base constructors, primary first.
        for (bi, base) in def.bases.iter().enumerate() {
            let base_off = if bi == 0 {
                0
            } else {
                cl.vtables
                    .iter()
                    .find(|vt| vt.for_base.as_deref() == Some(base.as_str()))
                    .map(|vt| vt.subobject_offset)
                    .expect("secondary base has a vtable")
            };
            let base_always_inline =
                self.program.class(base).map(|c| c.always_inline_ctor).unwrap_or(false);
            if self.options.inline_parent_ctors || self.eliminated(base) || base_always_inline {
                self.ctor_content(ctx, base, this_off + base_off, false, depth + 1)?;
            } else {
                ctx.emit(Instr::Lea { dst: Reg::R0, base: OBJ_REG, offset: this_off + base_off });
                ctx.instrs.push(AInstr::CallNamed(ctor_fn_name(base)));
            }
        }

        // Own vtable pointer stores.
        if store_vtables {
            for (off, idx) in cl.vptr_stores() {
                ctx.instrs.push(AInstr::MovVtAddr(VPTR_REG, cl.vtables[idx].symbol_name()));
                ctx.emit(Instr::Store { base: OBJ_REG, offset: this_off + off, src: VPTR_REG });
            }
        }

        // Zero own fields.
        for f in &def.fields {
            let off = cl.field_offsets[f];
            ctx.emit(Instr::MovImm { dst: SCRATCH[0], imm: 0 });
            ctx.emit(Instr::Store { base: OBJ_REG, offset: this_off + off, src: SCRATCH[0] });
        }

        // User body with `this` bound to the (adjusted) object pointer.
        if !def.ctor_body.is_empty() {
            self.lower_inlined_this_body(ctx, class, this_off, &def.ctor_body, depth)?;
        }
        Ok(())
    }

    /// Emits destructor content: re-store vtables, user body, base dtors.
    fn dtor_content(
        &mut self,
        ctx: &mut FnCtx,
        class: &str,
        this_off: i32,
        store_vtables: bool,
        depth: usize,
    ) -> Result<(), CompileError> {
        if depth > MAX_INLINE_DEPTH {
            return Err(CompileError::InlineRecursion { function: dtor_fn_name(class) });
        }
        let def = self.program.class(class).expect("validated").clone();
        let cl = self.class_layout(class).clone();

        if store_vtables {
            for (off, idx) in cl.vptr_stores() {
                ctx.instrs.push(AInstr::MovVtAddr(VPTR_REG, cl.vtables[idx].symbol_name()));
                ctx.emit(Instr::Store { base: OBJ_REG, offset: this_off + off, src: VPTR_REG });
            }
        }

        if !def.dtor_body.is_empty() {
            self.lower_inlined_this_body(ctx, class, this_off, &def.dtor_body, depth)?;
        }

        for (bi, base) in def.bases.iter().enumerate().rev() {
            let base_off = if bi == 0 {
                0
            } else {
                cl.vtables
                    .iter()
                    .find(|vt| vt.for_base.as_deref() == Some(base.as_str()))
                    .map(|vt| vt.subobject_offset)
                    .expect("secondary base has a vtable")
            };
            let base_always_inline =
                self.program.class(base).map(|c| c.always_inline_ctor).unwrap_or(false);
            if self.options.inline_parent_ctors || self.eliminated(base) || base_always_inline {
                self.dtor_content(ctx, base, this_off + base_off, false, depth + 1)?;
            } else {
                ctx.emit(Instr::Lea { dst: Reg::R0, base: OBJ_REG, offset: this_off + base_off });
                ctx.instrs.push(AInstr::CallNamed(dtor_fn_name(base)));
            }
        }
        Ok(())
    }

    /// Lowers a ctor/dtor user body whose `this` is `OBJ_REG + this_off`.
    fn lower_inlined_this_body(
        &mut self,
        ctx: &mut FnCtx,
        class: &str,
        this_off: i32,
        body: &[Stmt],
        depth: usize,
    ) -> Result<(), CompileError> {
        let this_var = ctx.fresh("this");
        ctx.define(&this_var, Some(class.to_string()));
        let slot = ctx.slot_off(&this_var);
        ctx.emit(Instr::Lea { dst: SCRATCH[0], base: OBJ_REG, offset: this_off });
        ctx.emit(Instr::Store { base: Reg::SP, offset: slot, src: SCRATCH[0] });
        let renames: BTreeMap<String, String> =
            [("this".to_string(), this_var)].into_iter().collect();
        self.lower_body(ctx, body, &renames, depth)
    }

    // --- statements -------------------------------------------------------

    fn lower_body(
        &mut self,
        ctx: &mut FnCtx,
        body: &[Stmt],
        renames: &BTreeMap<String, String>,
        depth: usize,
    ) -> Result<(), CompileError> {
        for s in body {
            self.lower_stmt(ctx, s, renames, depth)?;
        }
        Ok(())
    }

    fn resolve<'v>(&self, renames: &'v BTreeMap<String, String>, var: &'v str) -> &'v str {
        renames.get(var).map(String::as_str).unwrap_or(var)
    }

    fn lower_stmt(
        &mut self,
        ctx: &mut FnCtx,
        stmt: &Stmt,
        renames: &BTreeMap<String, String>,
        depth: usize,
    ) -> Result<(), CompileError> {
        match stmt {
            Stmt::Let { var, value } => {
                let var = self.resolve(renames, var).to_string();
                self.eval_expr(ctx, value, SCRATCH[0], 1, renames);
                ctx.define(&var, None);
                let off = ctx.slot_off(&var);
                ctx.emit(Instr::Store { base: Reg::SP, offset: off, src: SCRATCH[0] });
            }
            Stmt::New { var, class, on_stack } => {
                let var = self.resolve(renames, var).to_string();
                ctx.define(&var, Some(class.clone()));
                ctx.heap.insert(var.clone(), !on_stack);
                let off = ctx.slot_off(&var);
                let size = self.class_layout(class).size;
                if *on_stack {
                    // Object lives in the frame, after all local slots.
                    // The slot-area size is unknown until the function is
                    // finished, so emit a provisional offset from the
                    // OBJ_AREA_BASE watermark; `finish_function` rebases
                    // it onto the real end of the slot area so the whole
                    // frame is self-contained (the VM depends on this).
                    let obj_off = OBJ_AREA_BASE + ctx.next_obj_off;
                    ctx.next_obj_off += size as i32;
                    ctx.emit(Instr::Lea { dst: Reg::R0, base: Reg::SP, offset: obj_off });
                } else {
                    ctx.emit(Instr::MovImm { dst: Reg::R0, imm: size as u64 });
                    ctx.instrs.push(AInstr::CallNamed(ALLOC_FN.to_string()));
                }
                ctx.emit(Instr::Store { base: Reg::SP, offset: off, src: Reg::R0 });
                // r0 already holds the object; run the constructor.
                ctx.instrs.push(AInstr::CallNamed(ctor_fn_name(class)));
            }
            Stmt::Delete { var } => {
                let var = self.resolve(renames, var).to_string();
                let class = ctx.class_of(&var).to_string();
                let off = ctx.slot_off(&var);
                ctx.emit(Instr::Load { dst: Reg::R0, base: Reg::SP, offset: off });
                ctx.instrs.push(AInstr::CallNamed(dtor_fn_name(&class)));
                if ctx.heap.get(&var).copied().unwrap_or(true) {
                    ctx.emit(Instr::Load { dst: Reg::R0, base: Reg::SP, offset: off });
                    ctx.instrs.push(AInstr::CallNamed(FREE_FN.to_string()));
                }
            }
            Stmt::VCall { dst, obj, method, args } => {
                let obj = self.resolve(renames, obj).to_string();
                let class = ctx.class_of(&obj).to_string();
                let (sub_off, slot) = self
                    .class_layout(&class)
                    .slot_of(method)
                    .unwrap_or_else(|| panic!("validated method {class}::{method}"));
                if args.len() + 1 > Reg::ARG_COUNT {
                    return Err(CompileError::TooManyArgs { context: ctx.name.clone() });
                }
                // Arguments first (they may use scratch registers).
                for (i, a) in args.iter().enumerate() {
                    let reg = Reg::arg(i + 1).expect("checked above");
                    self.eval_expr(ctx, a, reg, 0, renames);
                }
                let ooff = ctx.slot_off(&obj);
                ctx.emit(Instr::Load { dst: OBJ_REG, base: Reg::SP, offset: ooff });
                if sub_off != 0 {
                    ctx.emit(Instr::Lea { dst: OBJ_REG, base: OBJ_REG, offset: sub_off });
                }
                ctx.emit(Instr::Load { dst: VPTR_REG, base: OBJ_REG, offset: 0 });
                ctx.emit(Instr::Load {
                    dst: VPTR_REG,
                    base: VPTR_REG,
                    offset: (slot as i32) * WORD_SIZE as i32,
                });
                ctx.emit(Instr::MovReg { dst: Reg::R0, src: OBJ_REG });
                ctx.instrs.push(AInstr::I(Instr::CallReg { target: VPTR_REG }));
                if let Some(d) = dst {
                    let d = self.resolve(renames, d).to_string();
                    ctx.define(&d, None);
                    let doff = ctx.slot_off(&d);
                    ctx.emit(Instr::Store { base: Reg::SP, offset: doff, src: Reg::R0 });
                }
            }
            Stmt::ReadField { dst, obj, field } => {
                let obj = self.resolve(renames, obj).to_string();
                let dst = self.resolve(renames, dst).to_string();
                let class = ctx.class_of(&obj).to_string();
                let foff = self.class_layout(&class).field_offsets[field];
                let ooff = ctx.slot_off(&obj);
                ctx.emit(Instr::Load { dst: OBJ_REG, base: Reg::SP, offset: ooff });
                ctx.emit(Instr::Load { dst: SCRATCH[0], base: OBJ_REG, offset: foff });
                ctx.define(&dst, None);
                let doff = ctx.slot_off(&dst);
                ctx.emit(Instr::Store { base: Reg::SP, offset: doff, src: SCRATCH[0] });
            }
            Stmt::WriteField { obj, field, value } => {
                let obj = self.resolve(renames, obj).to_string();
                let class = ctx.class_of(&obj).to_string();
                let foff = self.class_layout(&class).field_offsets[field];
                self.eval_expr(ctx, value, SCRATCH[0], 1, renames);
                let ooff = ctx.slot_off(&obj);
                ctx.emit(Instr::Load { dst: OBJ_REG, base: Reg::SP, offset: ooff });
                ctx.emit(Instr::Store { base: OBJ_REG, offset: foff, src: SCRATCH[0] });
            }
            Stmt::Call { dst, func, args } => {
                self.lower_call(ctx, dst.as_deref(), func, args, renames, depth)?;
            }
            Stmt::If { cond, then_body, else_body } => {
                self.eval_expr(ctx, cond, SCRATCH[0], 1, renames);
                let l_then = ctx.label();
                let l_end = ctx.label();
                ctx.instrs.push(AInstr::Branch(SCRATCH[0], l_then));
                self.lower_body(ctx, else_body, renames, depth)?;
                ctx.instrs.push(AInstr::Jmp(l_end));
                ctx.instrs.push(AInstr::Bind(l_then));
                self.lower_body(ctx, then_body, renames, depth)?;
                ctx.instrs.push(AInstr::Bind(l_end));
            }
            Stmt::While { cond, body } => {
                let l_top = ctx.label();
                let l_body = ctx.label();
                let l_end = ctx.label();
                ctx.instrs.push(AInstr::Bind(l_top));
                self.eval_expr(ctx, cond, SCRATCH[0], 1, renames);
                ctx.instrs.push(AInstr::Branch(SCRATCH[0], l_body));
                ctx.instrs.push(AInstr::Jmp(l_end));
                ctx.instrs.push(AInstr::Bind(l_body));
                self.lower_body(ctx, body, renames, depth)?;
                ctx.instrs.push(AInstr::Jmp(l_top));
                ctx.instrs.push(AInstr::Bind(l_end));
            }
            Stmt::Return(value) => {
                if let Some(v) = value {
                    self.eval_expr(ctx, v, Reg::R0, 0, renames);
                }
                ctx.emit(Instr::Ret);
            }
        }
        Ok(())
    }

    fn lower_call(
        &mut self,
        ctx: &mut FnCtx,
        dst: Option<&str>,
        func: &str,
        args: &[CallArg],
        renames: &BTreeMap<String, String>,
        depth: usize,
    ) -> Result<(), CompileError> {
        let def = self.program.function(func).expect("validated").clone();
        if args.len() > Reg::ARG_COUNT {
            return Err(CompileError::TooManyArgs { context: ctx.name.clone() });
        }
        let inline = self.options.inline_hinted_functions && def.inline_hint;
        if inline {
            if depth >= MAX_INLINE_DEPTH {
                return Err(CompileError::InlineRecursion { function: func.to_string() });
            }
            // Bind parameters: object params alias the caller's variable;
            // value params are evaluated into fresh slots.
            let mut inner_renames: BTreeMap<String, String> = BTreeMap::new();
            for (i, (p, a)) in def.params.iter().zip(args).enumerate() {
                let bound = match a {
                    CallArg::Obj(v) => self.resolve(renames, v).to_string(),
                    CallArg::Value(e) => {
                        let tmp = ctx.fresh("arg");
                        self.eval_expr(ctx, e, SCRATCH[0], 1, renames);
                        ctx.define(&tmp, p.class.clone());
                        let off = ctx.slot_off(&tmp);
                        ctx.emit(Instr::Store { base: Reg::SP, offset: off, src: SCRATCH[0] });
                        tmp
                    }
                };
                inner_renames.insert(p.name.clone(), bound.clone());
                inner_renames.insert(format!("__param{i}"), bound);
            }
            // Rename callee locals so they do not collide with the caller.
            let prefix = ctx.fresh("inl");
            let body = rename_return_free_body(&def.body, &prefix, &mut inner_renames);
            self.lower_body(ctx, &body, &inner_renames, depth + 1)?;
            if let Some(d) = dst {
                let d = self.resolve(renames, d).to_string();
                ctx.define(&d, None);
                let off = ctx.slot_off(&d);
                ctx.emit(Instr::Store { base: Reg::SP, offset: off, src: Reg::R0 });
            }
        } else {
            for (i, a) in args.iter().enumerate() {
                let reg = Reg::arg(i).expect("checked above");
                match a {
                    CallArg::Value(e) => self.eval_expr(ctx, e, reg, 0, renames),
                    CallArg::Obj(v) => {
                        let v = self.resolve(renames, v).to_string();
                        let off = ctx.slot_off(&v);
                        ctx.emit(Instr::Load { dst: reg, base: Reg::SP, offset: off });
                    }
                }
            }
            ctx.instrs.push(AInstr::CallNamed(func.to_string()));
            if let Some(d) = dst {
                let d = self.resolve(renames, d).to_string();
                ctx.define(&d, None);
                let off = ctx.slot_off(&d);
                ctx.emit(Instr::Store { base: Reg::SP, offset: off, src: Reg::R0 });
            }
        }
        Ok(())
    }

    // --- expressions -------------------------------------------------------

    /// Evaluates `e` into `target`, using scratch registers from
    /// `SCRATCH[scratch_from..]` for sub-expressions.
    fn eval_expr(
        &self,
        ctx: &mut FnCtx,
        e: &Expr,
        target: Reg,
        scratch_from: usize,
        renames: &BTreeMap<String, String>,
    ) {
        match e {
            Expr::Const(c) => ctx.emit(Instr::MovImm { dst: target, imm: *c }),
            Expr::Var(v) => {
                let v = self.resolve(renames, v).to_string();
                let off = ctx.slot_off(&v);
                ctx.emit(Instr::Load { dst: target, base: Reg::SP, offset: off });
            }
            Expr::Param(i) => {
                // Parameters are spilled to slots named after themselves.
                // Within an inlined body, renames point at caller temps.
                let name = format!("__param{i}");
                let v = self.resolve(renames, &name).to_string();
                let off = ctx.slot_off(&v);
                ctx.emit(Instr::Load { dst: target, base: Reg::SP, offset: off });
            }
            Expr::Bin(op, l, r) => {
                assert!(scratch_from < SCRATCH.len(), "expression too deep");
                let tmp = SCRATCH[scratch_from];
                self.eval_expr(ctx, l, target, scratch_from + 1, renames);
                self.eval_expr(ctx, r, tmp, scratch_from + 1, renames);
                ctx.emit(Instr::BinOp { op: *op, dst: target, lhs: target, rhs: tmp });
            }
        }
    }
}

/// Renames every variable defined in a body with `prefix` so inlined
/// bodies cannot capture caller locals; `Return`s become value moves (the
/// caller stores `r0` right after).
fn rename_return_free_body(
    body: &[Stmt],
    prefix: &str,
    renames: &mut BTreeMap<String, String>,
) -> Vec<Stmt> {
    // Collect defined variables.
    fn collect(body: &[Stmt], out: &mut Vec<String>) {
        for s in body {
            match s {
                Stmt::Let { var, .. } | Stmt::New { var, .. } => out.push(var.clone()),
                Stmt::VCall { dst, .. } | Stmt::Call { dst, .. } => {
                    if let Some(d) = dst {
                        out.push(d.clone());
                    }
                }
                Stmt::ReadField { dst, .. } => out.push(dst.clone()),
                Stmt::If { then_body, else_body, .. } => {
                    collect(then_body, out);
                    collect(else_body, out);
                }
                Stmt::While { body, .. } => collect(body, out),
                _ => {}
            }
        }
    }
    let mut defined = Vec::new();
    collect(body, &mut defined);
    for d in defined {
        renames.entry(d.clone()).or_insert_with(|| format!("{prefix}::{d}"));
    }
    body.to_vec()
}

/// Emitted function name for a method implementation.
pub fn method_fn_name(class: &str, method: &str) -> String {
    format!("{class}::{method}")
}

/// Emitted function name for a constructor.
pub fn ctor_fn_name(class: &str) -> String {
    format!("{class}::{class}")
}

/// Emitted function name for a destructor.
pub fn dtor_fn_name(class: &str) -> String {
    format!("{class}::~{class}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;
    use rock_binary::SectionKind;

    fn streams() -> Program {
        let mut p = ProgramBuilder::new();
        p.class("Stream").method("send", |b| {
            b.ret();
        });
        p.class("ConfirmableStream").base("Stream").method("confirm", |b| {
            b.ret();
        });
        p.class("FlushableStream")
            .base("Stream")
            .method("flush", |b| {
                b.ret();
            })
            .method("close", |b| {
                b.ret();
            });
        p.func("useStream", |f| {
            f.new_obj("s", "Stream");
            f.vcall("s", "send", vec![Expr::Const(0)]);
            f.vcall("s", "send", vec![Expr::Const(1)]);
            f.ret();
        });
        p.finish()
    }

    #[test]
    fn compiles_streams_debug() {
        let c = compile(&streams(), &CompileOptions::default()).unwrap();
        assert_eq!(c.vtables().len(), 3);
        assert!(c.vtable_of("Stream").is_some());
        assert_eq!(c.ground_truth().parent_of("FlushableStream"), Some("Stream"));
        assert_eq!(c.ground_truth().parent_of("Stream"), None);
        // Shared implementation: slot 0 of all three vtables is the same
        // address (none overrides send).
        let img = c.image();
        let s0 = img.read_word(c.vtable_of("Stream").unwrap()).unwrap();
        let c0 = img.read_word(c.vtable_of("ConfirmableStream").unwrap()).unwrap();
        let f0 = img.read_word(c.vtable_of("FlushableStream").unwrap()).unwrap();
        assert_eq!(s0, c0);
        assert_eq!(s0, f0);
    }

    #[test]
    fn stripped_image_has_no_debug_info() {
        let c = compile(&streams(), &CompileOptions::default()).unwrap();
        assert!(!c.image().is_stripped());
        assert!(c.stripped_image().is_stripped());
    }

    #[test]
    fn ctor_calls_parent_ctor_by_default() {
        let c = compile(&streams(), &CompileOptions::default()).unwrap();
        // Find ConfirmableStream's ctor and check it calls Stream's ctor.
        let sym = c.image().symbols().by_name("ConfirmableStream::ConfirmableStream").unwrap();
        let parent = c.image().symbols().by_name("Stream::Stream").unwrap();
        let text = c.image().section(SectionKind::Text).unwrap();
        let mut pos = sym.addr.offset_from(text.base()) as usize;
        let mut found = false;
        loop {
            let at = text.base() + pos as u64;
            let (i, n) = rock_binary::decode_instr(&text.bytes()[pos..], at).unwrap();
            if let Instr::Call { target } = i {
                if target == parent.addr {
                    found = true;
                }
            }
            pos += n;
            if i == Instr::Ret {
                break;
            }
        }
        assert!(found, "child ctor should call parent ctor in debug builds");
    }

    #[test]
    fn inlined_ctor_has_no_parent_call() {
        let mut opts = CompileOptions::default();
        opts.inline_parent_ctors = true;
        let c = compile(&streams(), &opts).unwrap();
        let sym = c.image().symbols().by_name("ConfirmableStream::ConfirmableStream").unwrap();
        let parent_ctor = c.image().symbols().by_name("Stream::Stream").unwrap();
        let parent_vt = c.vtable_of("Stream").unwrap();
        let own_vt = c.vtable_of("ConfirmableStream").unwrap();
        let text = c.image().section(SectionKind::Text).unwrap();
        let mut pos = sym.addr.offset_from(text.base()) as usize;
        let mut calls_parent = false;
        let mut stores_parent_vt = false;
        let mut stores_own_vt = false;
        loop {
            let at = text.base() + pos as u64;
            let (i, n) = rock_binary::decode_instr(&text.bytes()[pos..], at).unwrap();
            match i {
                Instr::Call { target } if target == parent_ctor.addr => calls_parent = true,
                Instr::MovImm { imm, .. } if imm == parent_vt.value() => stores_parent_vt = true,
                Instr::MovImm { imm, .. } if imm == own_vt.value() => stores_own_vt = true,
                _ => {}
            }
            pos += n;
            if i == Instr::Ret {
                break;
            }
        }
        assert!(!calls_parent, "inlining removes the parent ctor call");
        assert!(!stores_parent_vt, "DSE removes the overwritten parent vtable store");
        assert!(stores_own_vt);
    }

    #[test]
    fn abstract_elimination_drops_vtable_and_reparents() {
        let mut p = ProgramBuilder::new();
        p.class("Root").abstract_class().method("m", |b| {
            b.ret();
        });
        p.class("Mid").base("Root").method("n", |b| {
            b.ret();
        });
        p.class("Leaf").base("Mid").method("o", |b| {
            b.ret();
        });
        let program = p.finish();

        let mut opts = CompileOptions::default();
        opts.eliminate_abstract = true;
        let c = compile(&program, &opts).unwrap();
        assert!(c.vtable_of("Root").is_none());
        assert_eq!(c.ground_truth().parent_of("Mid"), None, "Mid becomes a root");
        assert_eq!(c.ground_truth().parent_of("Leaf"), Some("Mid"));
        // Root's method impl is still emitted: Mid's vtable needs it.
        assert!(c.image().symbols().by_name("Root::m").is_some());
        assert!(c.image().symbols().by_name("vtable for Root").is_none());
    }

    #[test]
    fn pure_slots_point_to_purecall() {
        let mut p = ProgramBuilder::new();
        p.class("Shape").pure_method("area").method("name", |b| {
            b.ret();
        });
        p.class("Circle").base("Shape").method("area", |b| {
            b.ret();
        });
        let program = p.finish();
        let c = compile(&program, &CompileOptions::default()).unwrap();
        let purecall = c.image().symbols().by_name(PURECALL_FN).unwrap().addr;
        let shape_slot0 = c.image().read_word(c.vtable_of("Shape").unwrap()).unwrap();
        assert_eq!(shape_slot0, purecall.value());
        let circle_slot0 = c.image().read_word(c.vtable_of("Circle").unwrap()).unwrap();
        assert_ne!(circle_slot0, purecall.value());
    }

    #[test]
    fn comdat_folding_shares_identical_getters() {
        let mut p = ProgramBuilder::new();
        // Two unrelated classes with byte-identical methods.
        p.class("X").field("v").method("get", |b| {
            b.read("r", "this", "v");
            b.ret();
        });
        p.class("Y").field("v").method("get", |b| {
            b.read("r", "this", "v");
            b.ret();
        });
        let program = p.finish();
        let mut opts = CompileOptions::default();
        opts.comdat_fold = true;
        let c = compile(&program, &opts).unwrap();
        assert!(!c.folded_functions().is_empty());
        let x0 = c.image().read_word(c.vtable_of("X").unwrap()).unwrap();
        let y0 = c.image().read_word(c.vtable_of("Y").unwrap()).unwrap();
        assert_eq!(x0, y0, "folded implementations share one address");
    }

    #[test]
    fn multiple_inheritance_two_vptr_stores() {
        let mut p = ProgramBuilder::new();
        p.class("L").method("lm", |b| {
            b.ret();
        });
        p.class("R").method("rm", |b| {
            b.ret();
        });
        p.class("C").base("L").base("R").method("cm", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("c", "C");
            f.vcall("c", "lm", vec![]);
            f.vcall("c", "rm", vec![]);
            f.ret();
        });
        let program = p.finish();
        let c = compile(&program, &CompileOptions::default()).unwrap();
        // Secondary vtable emitted.
        assert!(c.image().symbols().by_name("vtable for C in R").is_some());
        assert_eq!(c.ground_truth().parents_of("C"), vec!["L", "R"]);
    }

    #[test]
    fn inline_hinted_function_disappears() {
        let mut p = ProgramBuilder::new();
        p.class("A").method("m", |b| {
            b.ret();
        });
        p.func_inline("helper", |f| {
            f.param_obj("a", "A");
            f.vcall("a", "m", vec![]);
            f.ret();
        });
        p.func("driver", |f| {
            f.new_obj("a", "A");
            f.call_obj("helper", "a");
            f.ret();
        });
        let program = p.finish();
        let mut opts = CompileOptions::default();
        opts.inline_hinted_functions = true;
        let c = compile(&program, &opts).unwrap();
        assert!(c.image().symbols().by_name("helper").is_none());
        // Debug build keeps it.
        let c2 = compile(&program, &CompileOptions::default()).unwrap();
        assert!(c2.image().symbols().by_name("helper").is_some());
    }

    #[test]
    fn rodata_noise_does_not_break_vtables() {
        let mut opts = CompileOptions::default();
        opts.rodata_noise = 128;
        let c = compile(&streams(), &opts).unwrap();
        for class in ["Stream", "ConfirmableStream", "FlushableStream"] {
            let vt = c.vtable_of(class).unwrap();
            let slot0 = Addr::new(c.image().read_word(vt).unwrap());
            assert!(c.image().in_section(slot0, SectionKind::Text));
        }
    }

    #[test]
    fn error_types_render() {
        let e = CompileError::TooManyArgs { context: "f".into() };
        assert_eq!(e.to_string(), "f: too many call arguments");
        let v: CompileError = ValidateError::DuplicateClass("A".into()).into();
        assert!(v.to_string().contains("duplicate class"));
    }
}
