//! Property-based tests of the class-layout and compilation invariants
//! over randomly generated single-inheritance hierarchies.

use proptest::prelude::*;
use rock_minicpp::{compile, CompileOptions, Expr, Program, ProgramBuilder, ProgramLayout};

#[derive(Clone, Debug)]
struct Spec {
    parents: Vec<Option<usize>>,
    fields: Vec<usize>,
    methods: Vec<usize>,
    overrides: Vec<usize>,
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    (2usize..8).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<Option<usize>>> = (0..n)
            .map(|i| {
                if i == 0 {
                    Just(None).boxed()
                } else {
                    prop_oneof![2 => (0..i).prop_map(Some), 1 => Just(None)].boxed()
                }
            })
            .collect();
        (
            parents,
            prop::collection::vec(0usize..3, n),
            prop::collection::vec(1usize..3, n),
            prop::collection::vec(0usize..2, n),
        )
            .prop_map(|(parents, fields, methods, overrides)| Spec {
                parents,
                fields,
                methods,
                overrides,
            })
    })
}

fn build(spec: &Spec) -> Program {
    let mut p = ProgramBuilder::new();
    // Track slot names per class to drive overrides.
    let mut slot_names: Vec<Vec<String>> = Vec::new();
    for i in 0..spec.parents.len() {
        let mut names = match spec.parents[i] {
            Some(pi) => slot_names[pi].clone(),
            None => Vec::new(),
        };
        let mut cb = p.class(format!("C{i}"));
        if let Some(pi) = spec.parents[i] {
            cb.base(format!("C{pi}"));
        }
        for fj in 0..spec.fields[i] {
            cb.field(format!("f{i}_{fj}"));
        }
        let k = spec.overrides[i].min(names.len());
        for name in names.iter().take(k) {
            cb.method(name.clone(), |b| {
                b.ret();
            });
        }
        for m in 0..spec.methods[i] {
            let name = format!("m{i}_{m}");
            cb.method(name.clone(), |b| {
                b.ret();
            });
            names.push(name);
        }
        slot_names.push(names);
    }
    // One driver instantiating every class.
    p.func("drive", |f| {
        for i in 0..spec.parents.len() {
            f.new_obj(format!("o{i}"), format!("C{i}"));
        }
        f.let_("x", Expr::Const(0));
        f.ret();
    });
    p.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Field offsets are word-aligned, unique, and above the vptr.
    #[test]
    fn field_offsets_are_sound(spec in arb_spec()) {
        let program = build(&spec);
        let layout = ProgramLayout::compute(&program).unwrap();
        for cl in layout.iter() {
            let mut seen = std::collections::BTreeSet::new();
            for off in cl.field_offsets.values() {
                prop_assert!(*off >= 8, "field below the vptr in {}", cl.name);
                prop_assert_eq!(*off % 8, 0);
                prop_assert!(seen.insert(*off), "duplicate offset in {}", cl.name);
                prop_assert!((*off as u32) < cl.size);
            }
        }
    }

    /// A child's primary vtable starts with the parent's slot *names* in
    /// order (overrides replace implementations, never positions).
    #[test]
    fn child_vtable_extends_parent(spec in arb_spec()) {
        let program = build(&spec);
        let layout = ProgramLayout::compute(&program).unwrap();
        for (i, parent) in spec.parents.iter().enumerate() {
            let Some(pi) = parent else { continue };
            let child = layout.class(&format!("C{i}")).unwrap();
            let par = layout.class(&format!("C{pi}")).unwrap();
            prop_assert!(child.primary().slots.len() >= par.primary().slots.len());
            for (cs, ps) in child.primary().slots.iter().zip(&par.primary().slots) {
                prop_assert_eq!(&cs.method, &ps.method, "slot order must be preserved");
            }
        }
    }

    /// Single-inheritance object size = vptr + one word per field along
    /// the chain.
    #[test]
    fn object_sizes_add_up(spec in arb_spec()) {
        let program = build(&spec);
        let layout = ProgramLayout::compute(&program).unwrap();
        for (i, _) in spec.parents.iter().enumerate() {
            let mut total_fields = 0usize;
            let mut cur = Some(i);
            while let Some(c) = cur {
                total_fields += spec.fields[c];
                cur = spec.parents[c];
            }
            let cl = layout.class(&format!("C{i}")).unwrap();
            prop_assert_eq!(cl.size as usize, 8 + 8 * total_fields);
        }
    }

    /// Compilation succeeds at every optimization level and emits one
    /// primary vtable per class.
    #[test]
    fn compiles_at_all_levels(spec in arb_spec(), optimized in any::<bool>()) {
        let program = build(&spec);
        let options = if optimized { CompileOptions::optimized() } else { CompileOptions::default() };
        let compiled = compile(&program, &options).unwrap();
        prop_assert_eq!(compiled.vtables().len(), spec.parents.len());
        // Every image roundtrips through the container format.
        let bytes = rock_binary::image_to_bytes(compiled.image());
        let back = rock_binary::image_from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, compiled.image());
    }

    /// The slot an overridden method occupies never changes between
    /// parent and child (C++ vtable ABI invariant).
    #[test]
    fn override_slots_are_stable(spec in arb_spec()) {
        let program = build(&spec);
        let layout = ProgramLayout::compute(&program).unwrap();
        for (i, parent) in spec.parents.iter().enumerate() {
            let Some(pi) = parent else { continue };
            let child = layout.class(&format!("C{i}")).unwrap();
            let par = layout.class(&format!("C{pi}")).unwrap();
            for (s, ps) in par.primary().slots.iter().enumerate() {
                let (off, slot) = child.slot_of(&ps.method).unwrap();
                prop_assert_eq!(off, 0);
                prop_assert_eq!(slot, s);
            }
        }
    }
}
