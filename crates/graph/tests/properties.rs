//! Property-based tests for the arborescence solver and forests.

use proptest::prelude::*;
use rock_graph::{min_arborescence, min_spanning_forest, DiGraph, Forest};

/// Random small weighted digraphs (no self-loops, weights in 1..100).
fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (2usize..7).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n, 1u32..100), 0..20).prop_map(move |edges| {
            let mut g = DiGraph::new(n);
            for (f, t, w) in edges {
                if f != t {
                    g.add_edge(f, t, w as f64);
                }
            }
            g
        })
    })
}

/// Walks up the parent chain and confirms it terminates at a root.
fn reaches_root(parent: &[Option<usize>], v: usize) -> bool {
    let mut cur = v;
    let mut steps = 0;
    while let Some(p) = parent[cur] {
        cur = p;
        steps += 1;
        if steps > parent.len() {
            return false;
        }
    }
    true
}

proptest! {
    /// The spanning forest is always acyclic and total.
    #[test]
    fn forest_is_acyclic(g in arb_graph()) {
        let r = min_spanning_forest(&g);
        prop_assert_eq!(r.parent.len(), g.node_count());
        for v in 0..g.node_count() {
            prop_assert!(reaches_root(&r.parent, v), "cycle through {}", v);
        }
    }

    /// Heuristic 4.1: a node becomes a root only if it has no incoming
    /// edge at all (no feasible parent).
    #[test]
    fn roots_have_no_feasible_parent_or_break_cycles(g in arb_graph()) {
        let r = min_spanning_forest(&g);
        // Count nodes with incoming edges that ended up as roots: such a
        // root is only legitimate if all its in-neighbours are its own
        // descendants (tree-ness forbids the edge).
        for v in 0..g.node_count() {
            if r.parent[v].is_none() && g.in_edges(v).count() > 0 {
                let succs = descendants(&r.parent, v);
                let all_below = g.in_edges(v).all(|e| succs.contains(&e.from));
                prop_assert!(all_below, "node {} is a root despite a usable parent", v);
            }
        }

        fn descendants(parent: &[Option<usize>], v: usize) -> Vec<usize> {
            let mut out = Vec::new();
            let mut changed = true;
            while changed {
                changed = false;
                for (c, p) in parent.iter().enumerate() {
                    if let Some(p) = p {
                        if (*p == v || out.contains(p)) && !out.contains(&c) {
                            out.push(c);
                            changed = true;
                        }
                    }
                }
            }
            out
        }
    }

    /// Every selected edge exists in the input graph with the same weight.
    #[test]
    fn selected_edges_exist(g in arb_graph()) {
        let r = min_spanning_forest(&g);
        for (v, p) in r.parent.iter().enumerate() {
            if let Some(p) = p {
                prop_assert!(
                    g.edges().iter().any(|e| e.from == *p && e.to == v),
                    "edge {} -> {} not in graph", p, v
                );
            }
        }
    }

    /// Rooted arborescence (when it exists) never weighs more than any
    /// greedy parent assignment that happens to be a tree.
    #[test]
    fn rooted_weight_at_most_greedy(g in arb_graph()) {
        if let Some(r) = min_arborescence(&g, 0) {
            // Greedy: each node takes its min incoming edge; if that
            // happens to be acyclic it is a candidate solution.
            let n = g.node_count();
            let mut greedy_parent: Vec<Option<usize>> = vec![None; n];
            let mut greedy_weight = 0.0;
            let mut feasible = true;
            for (v, slot) in greedy_parent.iter_mut().enumerate().skip(1) {
                match g.in_edges(v).min_by(|a, b| a.weight.total_cmp(&b.weight)) {
                    Some(e) => {
                        *slot = Some(e.from);
                        greedy_weight += e.weight;
                    }
                    None => feasible = false,
                }
            }
            if feasible && (0..n).all(|v| reaches_root(&greedy_parent, v)) {
                prop_assert!(r.total_weight <= greedy_weight + 1e-9);
            }
        }
    }

    /// Forest successors/ancestors are consistent.
    #[test]
    fn forest_queries_consistent(g in arb_graph()) {
        let r = min_spanning_forest(&g);
        let forest: Forest<usize> = (0..g.node_count())
            .map(|v| (v, r.parent[v]))
            .collect();
        prop_assert!(forest.is_acyclic());
        for v in 0..g.node_count() {
            for s in forest.successors(&v) {
                prop_assert!(forest.ancestors(&s).contains(&&v));
            }
        }
    }
}
