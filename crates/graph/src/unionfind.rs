//! Disjoint-set union with path compression and union by rank.

/// A union-find structure over dense indices `0..n`.
///
/// Used by the structural analysis to cluster binary types into families:
/// two vtables sharing a function pointer are unioned (§5.1).
///
/// # Example
///
/// ```
/// use rock_graph::UnionFind;
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.same(0, 1));
/// assert!(!uf.same(1, 2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), rank: vec![0; n], components: n }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The canonical representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Groups all elements by representative, each group sorted.
    pub fn components(&mut self) -> Vec<Vec<usize>> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..self.len() {
            let r = self.find(i);
            map.entry(r).or_default().push(i);
        }
        map.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
        assert_eq!(uf.component_count(), 3);
        assert!(!uf.same(0, 2));
        assert_eq!(uf.find(1), 1);
    }

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already joined");
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
        assert_eq!(uf.component_count(), 3);
    }

    #[test]
    fn components_listing() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 4);
        uf.union(1, 3);
        let comps = uf.components();
        assert_eq!(comps.len(), 3);
        assert!(comps.contains(&vec![0, 4]));
        assert!(comps.contains(&vec![1, 3]));
        assert!(comps.contains(&vec![2]));
    }

    #[test]
    fn transitive_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.same(0, 99));
    }

    #[test]
    fn empty() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.components().len(), 0);
    }
}
