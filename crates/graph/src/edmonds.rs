//! Chu-Liu/Edmonds minimum-weight spanning arborescence, and the
//! minimum-weight **maximal forest** variant the paper actually solves.
//!
//! The paper's Heuristic 4.1 ("it is more plausible for a binary type to
//! be a derived type than a root type") is implemented by
//! [`min_spanning_forest`]: a virtual super-root is connected to every
//! node with a weight larger than the sum of all real edge weights, so the
//! optimal arborescence uses as few virtual edges as possible — every node
//! with *any* feasible parent receives one, and only genuinely
//! unreachable nodes become roots (Remark 4.2).

use crate::DiGraph;

#[derive(Clone, Copy, Debug)]
struct WorkEdge {
    from: usize,
    to: usize,
    weight: f64,
    /// Index into the original edge list (usize::MAX for virtual edges).
    orig: usize,
}

/// The outcome of an arborescence computation.
#[derive(Clone, Debug, PartialEq)]
pub struct ArborescenceResult {
    /// `parent[v]` is `v`'s parent node, or `None` for the root(s).
    pub parent: Vec<Option<usize>>,
    /// Total weight of the selected real edges.
    pub total_weight: f64,
}

impl ArborescenceResult {
    /// Nodes with no parent.
    pub fn roots(&self) -> Vec<usize> {
        self.parent.iter().enumerate().filter(|(_, p)| p.is_none()).map(|(i, _)| i).collect()
    }
}

/// Finds a minimum-weight spanning arborescence of `graph` rooted at
/// `root`, or `None` if some node is unreachable from `root`.
///
/// # Panics
///
/// Panics if `root` is out of range.
///
/// # Example
///
/// ```
/// use rock_graph::{DiGraph, min_arborescence};
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(0, 2, 5.0);
/// g.add_edge(1, 2, 1.0);
/// let r = min_arborescence(&g, 0).unwrap();
/// assert_eq!(r.parent, vec![None, Some(0), Some(1)]);
/// assert_eq!(r.total_weight, 2.0);
/// ```
pub fn min_arborescence(graph: &DiGraph, root: usize) -> Option<ArborescenceResult> {
    assert!(root < graph.node_count(), "root out of range");
    let edges: Vec<WorkEdge> = graph
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| WorkEdge { from: e.from, to: e.to, weight: e.weight, orig: i })
        .collect();
    let chosen = solve(graph.node_count(), edges, root)?;
    let mut parent = vec![None; graph.node_count()];
    let mut total = 0.0;
    for orig in chosen {
        let e = graph.edges()[orig];
        parent[e.to] = Some(e.from);
        total += e.weight;
    }
    Some(ArborescenceResult { parent, total_weight: total })
}

/// Finds a minimum-weight **maximal forest**: every node that has at least
/// one feasible parent gets the best one consistent with global
/// tree-ness; nodes with no feasible parent become roots.
///
/// This is the paper's per-family lifting step (§4.2.2).
///
/// # Example
///
/// ```
/// use rock_graph::{DiGraph, min_spanning_forest};
/// let mut g = DiGraph::new(4);
/// g.add_edge(0, 1, 0.3);
/// g.add_edge(1, 0, 0.9);
/// g.add_edge(0, 2, 0.2);
/// // node 3 has no incoming edges: it stays a root.
/// let r = min_spanning_forest(&g);
/// assert_eq!(r.parent, vec![None, Some(0), Some(0), None]);
/// ```
pub fn min_spanning_forest(graph: &DiGraph) -> ArborescenceResult {
    let n = graph.node_count();
    if n == 0 {
        return ArborescenceResult { parent: vec![], total_weight: 0.0 };
    }
    // Virtual super-root n, connected to every node with a weight so large
    // that minimizing weight first minimizes the number of virtual edges.
    let big: f64 = graph.edges().iter().map(|e| e.weight.abs()).sum::<f64>() + 1.0;
    let mut edges: Vec<WorkEdge> = graph
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| WorkEdge { from: e.from, to: e.to, weight: e.weight, orig: i })
        .collect();
    for v in 0..n {
        edges.push(WorkEdge { from: n, to: v, weight: big, orig: usize::MAX });
    }
    let chosen = solve(n + 1, edges, n).expect("virtual root reaches every node");
    let mut parent = vec![None; n];
    let mut total = 0.0;
    for orig in chosen {
        if orig == usize::MAX {
            continue; // virtual edge: the child stays a root
        }
        let e = graph.edges()[orig];
        parent[e.to] = Some(e.from);
        total += e.weight;
    }
    ArborescenceResult { parent, total_weight: total }
}

/// Core recursive Chu-Liu/Edmonds. Returns the original indices of the
/// selected edges (virtual edges keep `usize::MAX`), or `None` if some
/// node has no incoming edge.
fn solve(n: usize, edges: Vec<WorkEdge>, root: usize) -> Option<Vec<usize>> {
    // 1. Cheapest incoming edge per node (deterministic tie-break: first
    //    minimal edge in insertion order — the paper's multiple-minima
    //    case resolves to a stable choice; see DESIGN.md).
    let mut best: Vec<Option<usize>> = vec![None; n]; // index into `edges`
    for (i, e) in edges.iter().enumerate() {
        if e.to == root || e.from == e.to {
            continue;
        }
        match best[e.to] {
            None => best[e.to] = Some(i),
            Some(j) => {
                if e.weight < edges[j].weight {
                    best[e.to] = Some(i);
                }
            }
        }
    }
    for (v, b) in best.iter().enumerate() {
        if v != root && b.is_none() {
            return None; // unreachable node
        }
    }

    // 2. Detect a cycle among the chosen edges.
    let cycle = find_cycle(n, root, &best, &edges);
    let Some(cycle_nodes) = cycle else {
        // No cycle: the chosen edges form the arborescence.
        return Some(
            best.iter()
                .enumerate()
                .filter(|(v, _)| *v != root)
                .map(|(_, b)| edges[b.expect("checked")].orig)
                .collect(),
        );
    };

    // 3. Contract the cycle into a fresh node: relabel every non-cycle
    // node densely, map all cycle members to one id `c`.
    let in_cycle = |v: usize| cycle_nodes.contains(&v);
    let mut relabel = vec![usize::MAX; n];
    let mut next = 0usize;
    for (v, slot) in relabel.iter_mut().enumerate() {
        if !in_cycle(v) {
            *slot = next;
            next += 1;
        }
    }
    let c = next;
    for &v in &cycle_nodes {
        relabel[v] = c;
    }
    let new_root = relabel[root];

    // Contracted edge list; `orig` now indexes into *this* level's `edges`
    // so the expansion below can recover original identities.
    let mut contracted: Vec<WorkEdge> = Vec::new();
    for (i, e) in edges.iter().enumerate() {
        let (fu, fv) = (in_cycle(e.from), in_cycle(e.to));
        if fu && fv {
            continue;
        }
        let weight = if !fu && fv {
            // Entering the cycle: reduce by the cycle edge it displaces.
            e.weight - edges[best[e.to].expect("cycle node has best")].weight
        } else {
            e.weight
        };
        contracted.push(WorkEdge { from: relabel[e.from], to: relabel[e.to], weight, orig: i });
    }

    let sub = solve(c + 1, contracted, new_root)?;

    // 4. Expand: `sub` holds indices into this level's `edges`. Exactly
    // one selected edge enters the contracted node.
    let mut selected: Vec<usize> = Vec::new(); // indices into `edges`
    let mut entering_cycle: Option<usize> = None;
    for idx in sub {
        if in_cycle(edges[idx].to) {
            entering_cycle = Some(idx);
        }
        selected.push(idx);
    }
    let entering = entering_cycle.expect("an arborescence must enter the contracted node");
    // Add all cycle edges except the one displaced by `entering`.
    let displaced_target = edges[entering].to;
    for &v in &cycle_nodes {
        if v == displaced_target {
            continue;
        }
        selected.push(best[v].expect("cycle node has best"));
    }
    Some(selected.into_iter().map(|i| edges[i].orig).collect())
}

/// Finds one cycle formed by the chosen best-incoming edges, if any.
fn find_cycle(
    n: usize,
    root: usize,
    best: &[Option<usize>],
    edges: &[WorkEdge],
) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Unseen,
        InProgress(u32),
        Done,
    }
    let mut marks = vec![Mark::Unseen; n];
    for start in 0..n {
        if start == root || marks[start] != Mark::Unseen {
            continue;
        }
        let stamp = start as u32;
        let mut v = start;
        loop {
            if v == root {
                break;
            }
            match marks[v] {
                Mark::Done => break,
                Mark::InProgress(s) if s == stamp => {
                    // Found a cycle: walk it again to collect members.
                    let mut cycle = vec![v];
                    let mut u = edges[best[v].expect("has best")].from;
                    while u != v {
                        cycle.push(u);
                        u = edges[best[u].expect("has best")].from;
                    }
                    return Some(cycle);
                }
                Mark::InProgress(_) => break,
                Mark::Unseen => {
                    marks[v] = Mark::InProgress(stamp);
                    v = edges[best[v].expect("has best")].from;
                }
            }
        }
        // Mark the walked path done.
        let mut v = start;
        while v != root && marks[v] == Mark::InProgress(stamp) {
            marks[v] = Mark::Done;
            v = edges[best[v].expect("has best")].from;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node() {
        let g = DiGraph::new(1);
        let r = min_arborescence(&g, 0).unwrap();
        assert_eq!(r.parent, vec![None]);
        assert_eq!(r.total_weight, 0.0);
        let f = min_spanning_forest(&g);
        assert_eq!(f.parent, vec![None]);
    }

    #[test]
    fn unreachable_node_fails_rooted() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1.0);
        assert!(min_arborescence(&g, 0).is_none());
    }

    #[test]
    fn simple_chain() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(0, 2, 10.0);
        let r = min_arborescence(&g, 0).unwrap();
        assert_eq!(r.parent, vec![None, Some(0), Some(1)]);
        assert_eq!(r.total_weight, 3.0);
    }

    #[test]
    fn cycle_contraction() {
        // Classic example requiring contraction: 0 is root; 1 and 2 prefer
        // each other, but the arborescence must break the 1<->2 cycle.
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 10.0);
        g.add_edge(0, 2, 10.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 1, 1.0);
        let r = min_arborescence(&g, 0).unwrap();
        assert_eq!(r.total_weight, 11.0);
        // Either 0->1->2 or 0->2->1.
        let ok =
            r.parent == vec![None, Some(0), Some(1)] || r.parent == vec![None, Some(2), Some(0)];
        assert!(ok, "got {:?}", r.parent);
    }

    #[test]
    fn nested_cycles() {
        // 4 nodes, cycle 1->2->3->1 cheap, root edges expensive.
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 100.0);
        g.add_edge(0, 2, 101.0);
        g.add_edge(0, 3, 102.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 1, 1.0);
        let r = min_arborescence(&g, 0).unwrap();
        // Must pick the cheapest entry (0->1) and two cycle edges.
        assert_eq!(r.total_weight, 102.0);
        assert_eq!(r.parent[1], Some(0));
        assert_eq!(r.parent[2], Some(1));
        assert_eq!(r.parent[3], Some(2));
    }

    #[test]
    fn forest_leaves_unparented_nodes_as_roots() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 0.3);
        g.add_edge(0, 2, 0.2);
        // 3 is isolated.
        let r = min_spanning_forest(&g);
        assert_eq!(r.parent, vec![None, Some(0), Some(0), None]);
        assert_eq!(r.roots(), vec![0, 3]);
        assert!((r.total_weight - 0.5).abs() < 1e-12);
    }

    #[test]
    fn forest_prefers_derived_over_root() {
        // Heuristic 4.1: even an expensive real parent beats becoming a
        // root.
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 1e6);
        let r = min_spanning_forest(&g);
        assert_eq!(r.parent, vec![None, Some(0)]);
    }

    #[test]
    fn forest_breaks_two_cycles_into_two_trees() {
        // Two independent 2-cycles: each must become a 2-node tree.
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 0, 2.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 2, 2.0);
        let r = min_spanning_forest(&g);
        assert_eq!(r.parent, vec![None, Some(0), None, Some(2)]);
        assert_eq!(r.roots(), vec![0, 2]);
        assert_eq!(r.total_weight, 2.0);
    }

    #[test]
    fn asymmetric_weights_pick_the_cheap_direction() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 0.07);
        g.add_edge(1, 0, 0.21);
        let r = min_spanning_forest(&g);
        assert_eq!(r.parent, vec![None, Some(0)]);
        assert!((r.total_weight - 0.07).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(0);
        let r = min_spanning_forest(&g);
        assert!(r.parent.is_empty());
        assert_eq!(r.total_weight, 0.0);
    }

    /// Brute force: enumerate all parent assignments for tiny graphs and
    /// verify optimality of the rooted arborescence.
    #[test]
    fn matches_brute_force_on_small_graphs() {
        use std::collections::HashMap;
        let cases: Vec<Vec<(usize, usize, f64)>> = vec![
            vec![(0, 1, 3.0), (0, 2, 1.0), (1, 2, 0.5), (2, 1, 0.5)],
            vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 2.0), (3, 1, 0.1)],
            vec![(0, 1, 5.0), (0, 2, 5.0), (1, 2, 0.1), (2, 1, 0.1), (0, 3, 1.0), (3, 2, 0.2)],
        ];
        for edges in cases {
            let n = edges.iter().map(|e| e.0.max(e.1)).max().unwrap() + 1;
            let mut g = DiGraph::new(n);
            for (f, t, w) in &edges {
                g.add_edge(*f, *t, *w);
            }
            let got = min_arborescence(&g, 0).map(|r| r.total_weight);
            let want = brute_force(n, &edges);
            match (got, want) {
                (Some(gw), Some(ww)) => {
                    assert!((gw - ww).abs() < 1e-9, "edmonds {gw} vs brute {ww} for {edges:?}")
                }
                (None, None) => {}
                other => panic!("feasibility mismatch {other:?} for {edges:?}"),
            }
        }

        fn brute_force(n: usize, edges: &[(usize, usize, f64)]) -> Option<f64> {
            // Enumerate, for each non-root node, which incoming edge it
            // uses; check acyclicity/reachability.
            let mut best: Option<f64> = None;
            let mut incoming: Vec<Vec<(usize, f64)>> = vec![vec![]; n];
            for (f, t, w) in edges {
                incoming[*t].push((*f, *w));
            }
            let mut choice = vec![0usize; n];
            loop {
                // Evaluate current choice if every node has an option.
                if (1..n).all(|v| !incoming[v].is_empty()) {
                    let mut parent: HashMap<usize, usize> = HashMap::new();
                    let mut weight = 0.0;
                    for v in 1..n {
                        let (p, w) = incoming[v][choice[v]];
                        parent.insert(v, p);
                        weight += w;
                    }
                    // Reachability from 0 following parents upward.
                    let mut ok = true;
                    for v in 1..n {
                        let mut cur = v;
                        let mut steps = 0;
                        while cur != 0 {
                            match parent.get(&cur) {
                                Some(p) => cur = *p,
                                None => break,
                            }
                            steps += 1;
                            if steps > n {
                                ok = false;
                                break;
                            }
                        }
                        if cur != 0 {
                            ok = false;
                        }
                        if !ok {
                            break;
                        }
                    }
                    if ok {
                        best = Some(match best {
                            None => weight,
                            Some(b) => b.min(weight),
                        });
                    }
                } else {
                    return None;
                }
                // Next combination.
                let mut v = 1;
                loop {
                    if v >= n {
                        return best;
                    }
                    choice[v] += 1;
                    if choice[v] < incoming[v].len() {
                        break;
                    }
                    choice[v] = 0;
                    v += 1;
                }
            }
        }
    }
}
