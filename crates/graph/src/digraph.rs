//! A small directed weighted multigraph over dense node indices.

use std::fmt;

/// A weighted directed edge `from → to`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// Source node (the candidate parent, in hierarchy graphs).
    pub from: usize,
    /// Target node (the candidate child).
    pub to: usize,
    /// Edge weight (e.g. a KL divergence); must be finite.
    pub weight: f64,
}

/// A directed weighted multigraph with `n` nodes indexed `0..n`.
///
/// # Example
///
/// ```
/// use rock_graph::DiGraph;
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1, 0.5);
/// g.add_edge(0, 2, 1.5);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.in_edges(1).count(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiGraph {
    node_count: usize,
    edges: Vec<Edge>,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph { node_count: n, edges: Vec::new() }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_count == 0
    }

    /// Adds an edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, the weight is not finite, or
    /// `from == to` (self-loops are meaningless for hierarchies).
    pub fn add_edge(&mut self, from: usize, to: usize, weight: f64) {
        assert!(from < self.node_count, "edge source {from} out of range");
        assert!(to < self.node_count, "edge target {to} out of range");
        assert!(from != to, "self-loop {from} -> {to}");
        assert!(weight.is_finite(), "non-finite weight {weight}");
        self.edges.push(Edge { from, to, weight });
    }

    /// All edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edges entering `node`.
    pub fn in_edges(&self, node: usize) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.to == node)
    }

    /// Edges leaving `node`.
    pub fn out_edges(&self, node: usize) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.from == node)
    }

    /// Removes every edge for which `pred` returns `false`.
    pub fn retain_edges(&mut self, pred: impl FnMut(&Edge) -> bool) {
        self.edges.retain(pred);
    }
}

impl fmt::Display for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "digraph: {} nodes, {} edges", self.node_count, self.edges.len())?;
        for e in &self.edges {
            writeln!(f, "  {} -> {} [{:.4}]", e.from, e.to, e.weight)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_queries() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 2.0);
        g.add_edge(3, 1, 0.5);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.in_edges(1).count(), 2);
        assert_eq!(g.out_edges(0).count(), 2);
        assert_eq!(g.in_edges(3).count(), 0);
    }

    #[test]
    fn retain_edges() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 9.0);
        g.retain_edges(|e| e.weight < 5.0);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edges()[0].to, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = DiGraph::new(2);
        g.add_edge(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_weight_panics() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, f64::NAN);
    }

    #[test]
    fn display() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 0.25);
        let s = g.to_string();
        assert!(s.contains("2 nodes"));
        assert!(s.contains("0 -> 1 [0.2500]"));
    }
}
