//! Node-labelled directed forests (NLD-forests, paper §4.1).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A node-labelled directed forest: every node has at most one parent.
///
/// This is the output shape of hierarchy reconstruction: labels are
/// whatever identifies a binary type (vtable addresses in the pipeline,
/// class names in ground truths).
///
/// # Example
///
/// ```
/// use rock_graph::Forest;
/// let f = Forest::from_parents([("b", Some("a")), ("a", None), ("c", Some("a"))]);
/// assert_eq!(f.roots(), vec![&"a"]);
/// assert_eq!(f.successors(&"a").len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Forest<N: Ord> {
    parent: BTreeMap<N, Option<N>>,
}

impl<N: Ord + Clone> Forest<N> {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Forest { parent: BTreeMap::new() }
    }

    /// Builds a forest from `(node, parent)` pairs.
    pub fn from_parents<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (N, Option<N>)>,
    {
        Forest { parent: pairs.into_iter().collect() }
    }

    /// Inserts or replaces a node with its parent.
    pub fn insert(&mut self, node: N, parent: Option<N>) {
        self.parent.insert(node, parent);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the forest has no nodes.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Returns `true` if `node` is present.
    pub fn contains(&self, node: &N) -> bool {
        self.parent.contains_key(node)
    }

    /// The parent of `node`, if it has one.
    pub fn parent_of(&self, node: &N) -> Option<&N> {
        self.parent.get(node)?.as_ref()
    }

    /// All nodes, sorted.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.parent.keys()
    }

    /// All roots (nodes without a parent), sorted.
    pub fn roots(&self) -> Vec<&N> {
        self.parent.iter().filter(|(_, p)| p.is_none()).map(|(n, _)| n).collect()
    }

    /// Direct children of `node`, sorted.
    pub fn children_of(&self, node: &N) -> Vec<&N> {
        self.parent.iter().filter(|(_, p)| p.as_ref() == Some(node)).map(|(n, _)| n).collect()
    }

    /// All transitive descendants of `node` — `successors_h(t)` in the
    /// paper's application distance (§6.3).
    pub fn successors(&self, node: &N) -> BTreeSet<N> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<&N> = self.children_of(node);
        while let Some(n) = stack.pop() {
            if out.insert(n.clone()) {
                stack.extend(self.children_of(n));
            }
        }
        out
    }

    /// Ancestors of `node`, nearest first. Stops if a cycle is detected
    /// (malformed forests).
    pub fn ancestors(&self, node: &N) -> Vec<&N> {
        let mut out = Vec::new();
        let mut cur = self.parent_of(node);
        while let Some(p) = cur {
            if out.contains(&p) {
                break;
            }
            out.push(p);
            cur = self.parent_of(p);
        }
        out
    }

    /// Depth of `node` (roots have depth 0).
    pub fn depth_of(&self, node: &N) -> usize {
        self.ancestors(node).len()
    }

    /// Applies `f` to every label, producing a relabelled forest.
    pub fn map<M: Ord + Clone>(&self, mut f: impl FnMut(&N) -> M) -> Forest<M> {
        Forest { parent: self.parent.iter().map(|(n, p)| (f(n), p.as_ref().map(&mut f))).collect() }
    }

    /// Verifies the forest is acyclic.
    pub fn is_acyclic(&self) -> bool {
        for node in self.parent.keys() {
            let mut cur = self.parent_of(node);
            let mut steps = 0;
            while let Some(p) = cur {
                steps += 1;
                if steps > self.parent.len() {
                    return false;
                }
                cur = self.parent_of(p);
            }
        }
        true
    }
}

impl<N: Ord + Clone> FromIterator<(N, Option<N>)> for Forest<N> {
    fn from_iter<T: IntoIterator<Item = (N, Option<N>)>>(iter: T) -> Self {
        Forest::from_parents(iter)
    }
}

impl<N: Ord + Clone + fmt::Display> fmt::Display for Forest<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec<N: Ord + Clone + fmt::Display>(
            forest: &Forest<N>,
            node: &N,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            writeln!(f, "{}{}", "  ".repeat(depth), node)?;
            for c in forest.children_of(node) {
                rec(forest, c, depth + 1, f)?;
            }
            Ok(())
        }
        for r in self.roots() {
            rec(self, r, 0, f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Forest<&'static str> {
        Forest::from_parents([
            ("root", None),
            ("a", Some("root")),
            ("b", Some("root")),
            ("aa", Some("a")),
            ("lone", None),
        ])
    }

    #[test]
    fn structure_queries() {
        let f = sample();
        assert_eq!(f.len(), 5);
        assert!(!f.is_empty());
        assert!(f.contains(&"aa"));
        assert!(!f.contains(&"zz"));
        assert_eq!(f.roots(), vec![&"lone", &"root"]);
        assert_eq!(f.parent_of(&"aa"), Some(&"a"));
        assert_eq!(f.parent_of(&"root"), None);
        assert_eq!(f.children_of(&"root"), vec![&"a", &"b"]);
    }

    #[test]
    fn successors_and_ancestors() {
        let f = sample();
        let s = f.successors(&"root");
        assert_eq!(s.len(), 3);
        assert!(s.contains("aa"));
        assert!(f.successors(&"lone").is_empty());
        assert_eq!(f.ancestors(&"aa"), vec![&"a", &"root"]);
        assert_eq!(f.depth_of(&"aa"), 2);
        assert_eq!(f.depth_of(&"root"), 0);
    }

    #[test]
    fn map_relabels() {
        let f = sample();
        let g = f.map(|s| s.to_uppercase());
        assert_eq!(g.parent_of(&"AA".to_string()), Some(&"A".to_string()));
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn acyclicity_check() {
        let mut f = sample();
        assert!(f.is_acyclic());
        f.insert("root", Some("aa")); // create a cycle
        assert!(!f.is_acyclic());
    }

    #[test]
    fn insert_and_collect() {
        let mut f = Forest::new();
        f.insert(1, None);
        f.insert(2, Some(1));
        assert_eq!(f.parent_of(&2), Some(&1));
        let g: Forest<i32> = vec![(1, None), (2, Some(1))].into_iter().collect();
        assert_eq!(f, g);
    }

    #[test]
    fn display_tree() {
        let f = sample();
        let s = f.to_string();
        assert!(s.contains("root"));
        assert!(s.contains("  a"));
        assert!(s.contains("    aa"));
    }
}
