//! Graph algorithms for hierarchy lifting (Rock, ASPLOS'18 §4.2.2).
//!
//! The paper reduces "find the most likely class hierarchy" to finding a
//! **minimum-weight spanning arborescence** in a directed weighted graph
//! whose edge `a → b` (weight `D_KL(SLM(a) ‖ SLM(b))`… historically
//! written child-ward; here weights come from the caller) means *a is a
//! possible parent of b*.
//!
//! This crate provides:
//!
//! * [`DiGraph`] — a small directed weighted multigraph over dense node
//!   indices;
//! * [`min_arborescence`] — Chu-Liu/Edmonds rooted at an explicit root;
//! * [`min_spanning_forest`] — the paper's actual problem: a
//!   minimum-weight **maximal forest** (every node that *can* have a
//!   parent gets one — Heuristic 4.1), implemented with a virtual
//!   super-root;
//! * [`UnionFind`] — used by the structural family clustering (§5.1);
//! * [`Forest`] — a node-labelled directed forest (NLD-forest, §4.1) with
//!   the successor queries the evaluation needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digraph;
mod edmonds;
mod forest;
mod ties;
mod unionfind;

pub use digraph::{DiGraph, Edge};
pub use edmonds::{min_arborescence, min_spanning_forest, ArborescenceResult};
pub use forest::Forest;
pub use ties::{co_optimal_forests, majority_vote, vote_select};
pub use unionfind::UnionFind;
