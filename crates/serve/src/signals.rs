//! Minimal `SIGTERM`/`SIGINT` latching, dependency-free.
//!
//! The daemon's accept loop polls [`termination_requested`] and begins
//! a graceful drain when it flips. The handler is as small as an
//! async-signal-safe handler must be: it stores one relaxed atomic and
//! returns. Registration goes through the C `signal(2)` entry point,
//! which is already linked into every Rust binary via libc — declaring
//! it here adds no dependency.
//!
//! On non-Unix targets installation is a no-op and the flag can only be
//! set programmatically ([`request_termination`], also used by tests).

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION: AtomicBool = AtomicBool::new(false);

/// `true` once a termination signal (or [`request_termination`]) has
/// been seen. Latches; never resets within a process.
pub fn termination_requested() -> bool {
    TERMINATION.load(Ordering::Relaxed)
}

/// Sets the termination flag programmatically — what the signal
/// handler does, callable from tests and embedders.
pub fn request_termination() {
    TERMINATION.store(true, Ordering::Relaxed);
}

/// Installs the latching handler for `SIGTERM` and `SIGINT`. Safe to
/// call more than once. No-op off Unix.
pub fn install_termination_handler() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod unix {
    use super::TERMINATION;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)` from the platform libc (always linked by std).
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: one relaxed store, nothing else.
        TERMINATION.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() {
        // SAFETY: `signal` is the libc prototype; the handler is an
        // `extern "C" fn(i32)` performing only an atomic store, which
        // is async-signal-safe.
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_request_latches() {
        install_termination_handler();
        // The flag is process-global, so another test may already have
        // latched it; only the latch-after-request direction is checked.
        request_termination();
        assert!(termination_requested());
    }
}
