//! The reconstruction daemon: `rock serve`.
//!
//! `rock-supervisor` makes a fleet of reconstructions *operable*
//! (checkpoints, retries, typed exit codes); this crate makes them
//! *servable*: a dependency-free, thread-per-connection TCP daemon that
//! accepts jobs from many tenants over a versioned, length-prefixed
//! binary protocol ([`rock_supervisor::wire`]) and keeps its promises
//! under overload, slow clients, poisoned jobs, and restarts.
//!
//! The core is the robustness layer between `accept` and `execute`:
//!
//! * **Bounded admission** — a fixed-capacity queue with explicit load
//!   shedding. An overflowing submission is answered with a typed
//!   [`wire::Response::Rejected`] (`QueueFull`), never buffered without
//!   bound, never silently dropped.
//! * **Per-client quotas** — token-bucket rates and max-inflight
//!   limits keyed by the `Hello` identity ([`admission`]), so one noisy
//!   tenant degrades into `QuotaExceeded` rejections for itself instead
//!   of latency for everyone.
//! * **Cooperative deadlines** — each request runs under the
//!   supervisor's stage-boundary watchdog and retry ladder; a blown
//!   deadline is a typed `deadline` outcome, not a hung worker.
//! * **Slow-client defense** — write timeouts, an idle read timeout,
//!   and a per-connection send budget. A reader that stops draining its
//!   socket loses its *connection*; its admitted jobs still complete
//!   and stay queryable from any other connection.
//! * **Panic containment** — a worker wraps every job in
//!   `catch_unwind`; a poisoned job (e.g. a hostile
//!   [`rock_core::FaultPlan`]) fails *that request* with a typed error
//!   while the serving loop keeps serving.
//! * **Graceful drain** — `SIGTERM` or a `Drain` frame stops
//!   admission, finishes (or checkpoints) every admitted job, then
//!   exits cleanly. A restarted daemon pointed at the same artifact
//!   store resumes interrupted jobs bit-identically
//!   ([`fingerprint::result_fp`] lets clients prove it over the wire).
//!
//! Jobs execute through the existing [`rock_supervisor::Supervisor`]
//! with one process-wide shared [`rock_core::CorpusCache`] (bounded, so
//! a long-lived daemon cannot grow without limit) and one artifact
//! store, so overlapping submissions from different tenants hit warm
//! stages.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod fingerprint;
pub mod frame;
pub mod server;
pub mod signals;

pub use admission::{QuotaConfig, Quotas};
pub use client::ServeClient;
pub use fingerprint::result_fp;
pub use frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME_BYTES};
pub use rock_supervisor::wire;
pub use server::{DrainSummary, ServeConfig, Server, ServerHandle};
