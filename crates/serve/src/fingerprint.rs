//! Content fingerprints of job results, for over-the-wire bit-identity.
//!
//! A job's JSON report contains wall-clock fields (`elapsed_ms`), so
//! two bit-identical reconstructions do not render byte-identical
//! reports. [`result_fp`] hashes only the *result content* — hierarchy
//! parent edges, raw distance bits, structural pins, coverage — over a
//! canonical serialization, so a client holding two `Done` states can
//! prove (or a test can pin) that an interrupted-and-resumed run
//! produced exactly the bits an uninterrupted run would have, without
//! shipping the artifacts themselves.

use rock_supervisor::wire::{fnv1a, Writer};
use rock_supervisor::JobOutput;

/// The content fingerprint of a job's output. `JobOutput::None`
/// (failed or interrupted jobs) fingerprints to a fixed tag so it can
/// never collide with a real result by accident of emptiness.
pub fn result_fp(output: &JobOutput) -> u64 {
    let mut w = Writer::new();
    match output {
        JobOutput::Full(r) => {
            w.u8(1);
            // Hierarchy: every (node, parent?) edge, in the forest's
            // sorted node order.
            w.len(r.hierarchy.len());
            for node in r.hierarchy.nodes() {
                w.addr(*node);
                match r.hierarchy.parent_of(node) {
                    None => w.u8(0),
                    Some(p) => {
                        w.u8(1);
                        w.addr(*p);
                    }
                }
            }
            // Distances: raw f64 bits per surviving edge (BTreeMap
            // iteration order is canonical).
            w.len(r.distances.len());
            for ((parent, child), d) in &r.distances {
                w.addr(*parent);
                w.addr(*child);
                w.f64_bits(*d);
            }
            // Structural pins.
            w.len(r.structural.pinned().len());
            for (child, parent) in r.structural.pinned() {
                w.addr(*child);
                w.addr(*parent);
            }
            // Coverage, field by field.
            let c = &r.coverage;
            for v in [
                c.functions_total,
                c.functions_analyzed,
                c.functions_skipped,
                c.functions_timed_out,
                c.vtables_parsed,
                c.vtables_rejected,
                c.models_trained,
                c.families_total,
                c.families_lifted,
                c.families_degraded,
            ] {
                w.u64(v as u64);
            }
        }
        JobOutput::StructuralOnly { hierarchy, structural, .. } => {
            w.u8(2);
            w.len(hierarchy.len());
            for node in hierarchy.nodes() {
                w.addr(*node);
                match hierarchy.parent_of(node) {
                    None => w.u8(0),
                    Some(p) => {
                        w.u8(1);
                        w.addr(*p);
                    }
                }
            }
            w.len(structural.pinned().len());
            for (child, parent) in structural.pinned() {
                w.addr(*child);
                w.addr(*parent);
            }
        }
        JobOutput::None => w.u8(0),
    }
    fnv1a(&w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_binary::image_to_bytes;
    use rock_core::suite;
    use rock_supervisor::{ArtifactStore, Supervisor, SupervisorOptions};

    #[test]
    fn identical_runs_fingerprint_identically_and_distinctly_from_none() {
        let bytes =
            image_to_bytes(&suite::streams_example().compile().expect("compiles").stripped_image());
        let dir = std::env::temp_dir().join(format!("rock-fp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let run = |tag: &str| {
            let store = ArtifactStore::open(dir.join(tag)).unwrap();
            let sup = Supervisor::new(
                rock_core::RockConfig::paper(),
                store,
                SupervisorOptions::default(),
            );
            sup.run_job("fp", &bytes)
        };
        let a = run("a");
        let b = run("b");
        let fa = result_fp(&a.output);
        let fb = result_fp(&b.output);
        assert_eq!(fa, fb, "equal results must fingerprint equally");
        assert_ne!(fa, result_fp(&rock_supervisor::JobOutput::None));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
