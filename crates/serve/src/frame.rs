//! Length-prefixed frame transport.
//!
//! On the wire a frame is `u32 LE body length | body`; the body is one
//! encoded [`rock_supervisor::wire::Request`] or
//! [`rock_supervisor::wire::Response`]. This module owns only the
//! transport framing — all body decoding (the part that touches
//! untrusted bytes structurally) lives in the pure, panic-free
//! `wire` codec.
//!
//! The reader enforces a frame-size cap *before* allocating: a hostile
//! length prefix costs four bytes of reading, not an allocation. Every
//! failure is a typed [`FrameError`] the caller can answer with a
//! protocol error or a close — never a panic.

use std::fmt;
use std::io::{self, Read, Write};

/// Default cap on one frame body (largest legal `Submit` plus slack).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 24 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end-of-stream on a frame boundary (peer closed).
    Closed,
    /// The length prefix exceeds the configured cap.
    TooLarge {
        /// The length the prefix claimed.
        claimed: usize,
        /// The cap it violated.
        max: usize,
    },
    /// Transport error (includes truncation mid-frame and timeouts).
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => f.write_str("connection closed"),
            FrameError::TooLarge { claimed, max } => {
                write!(f, "frame of {claimed} bytes exceeds the {max}-byte cap")
            }
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix + body) and flushes. Prefix and
/// body go out as a single `write_all` — two small writes would
/// interact with Nagle's algorithm and delayed ACKs to cost tens of
/// milliseconds per frame on a real socket.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame body exceeds u32"))?;
    let mut wire = Vec::with_capacity(4 + body.len());
    wire.extend_from_slice(&len.to_le_bytes());
    wire.extend_from_slice(body);
    w.write_all(&wire)?;
    w.flush()
}

/// Reads one frame body, enforcing `max` before allocating. Returns
/// [`FrameError::Closed`] only on a clean EOF *between* frames; EOF
/// mid-frame is an [`FrameError::Io`] truncation error.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    match read_full(r, &mut prefix) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(4) => {}
        Ok(_) => {
            return Err(FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream ended inside a frame length prefix",
            )))
        }
        Err(e) => return Err(FrameError::Io(e)),
    }
    let claimed = u32::from_le_bytes(prefix) as usize;
    if claimed > max {
        return Err(FrameError::TooLarge { claimed, max });
    }
    let mut body = vec![0u8; claimed];
    match read_full(r, &mut body) {
        Ok(n) if n == claimed => Ok(body),
        Ok(_) => Err(FrameError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream ended inside a frame body",
        ))),
        Err(e) => Err(FrameError::Io(e)),
    }
}

/// Reads until `buf` is full or EOF; returns bytes read. Retries
/// `Interrupted`; every other error (including timeouts) propagates
/// with partial progress discarded by the caller.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(got)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 64).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 64).unwrap(), b"");
        assert!(matches!(read_frame(&mut r, 64), Err(FrameError::Closed)));
    }

    #[test]
    fn lying_length_is_capped_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut Cursor::new(buf), 1 << 20).unwrap_err();
        assert!(matches!(err, FrameError::TooLarge { .. }), "{err}");
    }

    #[test]
    fn truncation_inside_a_frame_is_io_not_closed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        for cut in 1..buf.len() {
            let err = read_frame(&mut Cursor::new(&buf[..cut]), 64).unwrap_err();
            assert!(matches!(err, FrameError::Io(_)), "cut at {cut}: {err}");
        }
    }
}
