//! Per-client admission quotas: token buckets and inflight limits.
//!
//! Quotas are keyed by the identity a client announces in its `Hello`
//! frame, shared across every connection that identity opens. Two
//! independent limits apply to each submission:
//!
//! * a **token bucket** — `burst` tokens of instant capacity refilled
//!   at `refill_per_sec`, so a tenant's sustained rate is bounded while
//!   short bursts pass. With `refill_per_sec = 0` the bucket never
//!   refills, which makes quota behavior exactly deterministic (the
//!   configuration the tests pin);
//! * a **max-inflight cap** — admitted-but-unfinished jobs (queued or
//!   running) per identity, releasing as jobs reach a terminal state.
//!
//! Bucket arithmetic is integer milli-tokens; no floats, no saturation
//! surprises. Either limit failing is a [`RejectReason::QuotaExceeded`].

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use rock_supervisor::wire::RejectReason;

/// Per-identity limits, fixed at daemon startup.
#[derive(Clone, Copy, Debug)]
pub struct QuotaConfig {
    /// Instant token capacity per identity (0 disables the bucket).
    pub burst: u64,
    /// Tokens returned per second (0: the bucket never refills).
    pub refill_per_sec: u64,
    /// Max admitted-but-unfinished jobs per identity (0 disables).
    pub max_inflight: u64,
}

impl Default for QuotaConfig {
    fn default() -> QuotaConfig {
        QuotaConfig { burst: 32, refill_per_sec: 8, max_inflight: 16 }
    }
}

#[derive(Debug)]
struct ClientState {
    tokens_milli: u64,
    refilled_at: Instant,
    inflight: u64,
}

/// The shared quota table. All methods take `&self`; one mutex guards
/// the table (admission is far off any hot path).
#[derive(Debug)]
pub struct Quotas {
    cfg: QuotaConfig,
    clients: Mutex<BTreeMap<String, ClientState>>,
}

impl Quotas {
    /// An empty table under `cfg`.
    pub fn new(cfg: QuotaConfig) -> Quotas {
        Quotas { cfg, clients: Mutex::new(BTreeMap::new()) }
    }

    /// Tries to admit one submission for `client` now. On success the
    /// identity's inflight count is already incremented — pair every
    /// `Ok` with exactly one later [`Quotas::release`].
    pub fn admit(&self, client: &str) -> Result<(), (RejectReason, String)> {
        self.admit_at(client, Instant::now())
    }

    /// [`Quotas::admit`] at an explicit clock reading (tests).
    pub fn admit_at(&self, client: &str, now: Instant) -> Result<(), (RejectReason, String)> {
        let cfg = self.cfg;
        let mut clients = self.clients.lock().expect("quota table poisoned");
        let state = clients.entry(client.to_string()).or_insert_with(|| ClientState {
            tokens_milli: cfg.burst * 1000,
            refilled_at: now,
            inflight: 0,
        });
        if cfg.max_inflight > 0 && state.inflight >= cfg.max_inflight {
            return Err((
                RejectReason::QuotaExceeded,
                format!("{} jobs already inflight (limit {})", state.inflight, cfg.max_inflight),
            ));
        }
        if cfg.burst > 0 {
            if cfg.refill_per_sec > 0 {
                let elapsed_ms = now.saturating_duration_since(state.refilled_at).as_millis();
                let gained = (elapsed_ms as u64).saturating_mul(cfg.refill_per_sec);
                state.tokens_milli = (state.tokens_milli + gained).min(cfg.burst * 1000);
            }
            state.refilled_at = now;
            if state.tokens_milli < 1000 {
                return Err((
                    RejectReason::QuotaExceeded,
                    format!("token bucket empty (burst {}, {}/s)", cfg.burst, cfg.refill_per_sec),
                ));
            }
            state.tokens_milli -= 1000;
        }
        state.inflight += 1;
        Ok(())
    }

    /// Marks one of `client`'s admitted jobs terminal, freeing its
    /// inflight slot.
    pub fn release(&self, client: &str) {
        let mut clients = self.clients.lock().expect("quota table poisoned");
        if let Some(state) = clients.get_mut(client) {
            state.inflight = state.inflight.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cfg(burst: u64, refill: u64, inflight: u64) -> QuotaConfig {
        QuotaConfig { burst, refill_per_sec: refill, max_inflight: inflight }
    }

    #[test]
    fn burst_exhausts_deterministically_without_refill() {
        let q = Quotas::new(cfg(3, 0, 0));
        let t = Instant::now();
        for i in 0..3 {
            assert!(q.admit_at("a", t).is_ok(), "burst token {i}");
        }
        let (reason, detail) = q.admit_at("a", t).unwrap_err();
        assert_eq!(reason, RejectReason::QuotaExceeded);
        assert!(detail.contains("token bucket"), "{detail}");
        // Releases return inflight slots, never tokens.
        q.release("a");
        assert!(q.admit_at("a", t).is_err(), "no refill means no recovery");
        // Other identities are untouched.
        assert!(q.admit_at("b", t).is_ok());
    }

    #[test]
    fn refill_returns_tokens_over_time() {
        let q = Quotas::new(cfg(2, 4, 0));
        let t0 = Instant::now();
        assert!(q.admit_at("a", t0).is_ok());
        assert!(q.admit_at("a", t0).is_ok());
        assert!(q.admit_at("a", t0).is_err(), "burst spent");
        // 4 tokens/s = 1 token per 250ms.
        let t1 = t0 + Duration::from_millis(250);
        assert!(q.admit_at("a", t1).is_ok(), "one token refilled");
        assert!(q.admit_at("a", t1).is_err(), "only one");
        // Refill caps at burst: a long sleep does not bank extras.
        let t2 = t1 + Duration::from_secs(3600);
        assert!(q.admit_at("a", t2).is_ok());
        assert!(q.admit_at("a", t2).is_ok());
        assert!(q.admit_at("a", t2).is_err(), "capped at burst=2");
    }

    #[test]
    fn inflight_limit_is_independent_of_tokens() {
        let q = Quotas::new(cfg(0, 0, 2));
        let t = Instant::now();
        assert!(q.admit_at("a", t).is_ok());
        assert!(q.admit_at("a", t).is_ok());
        let (reason, detail) = q.admit_at("a", t).unwrap_err();
        assert_eq!(reason, RejectReason::QuotaExceeded);
        assert!(detail.contains("inflight"), "{detail}");
        // A terminal job frees a slot.
        q.release("a");
        assert!(q.admit_at("a", t).is_ok());
    }

    #[test]
    fn zeroed_limits_admit_everything() {
        let q = Quotas::new(cfg(0, 0, 0));
        let t = Instant::now();
        for _ in 0..1000 {
            assert!(q.admit_at("a", t).is_ok());
        }
    }
}
