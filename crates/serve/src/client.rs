//! A blocking loopback client for the serve protocol.
//!
//! [`ServeClient`] performs the `Hello`/`HelloOk` version negotiation
//! on connect and then exposes one method per request. Every method is
//! strictly request→response over the single connection, so responses
//! can never interleave. Wire and framing failures surface as
//! `io::Error` (`InvalidData` for codec violations), keeping the
//! client usable from CLI code without a second error type.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use rock_supervisor::wire::{JobState, Request, Response, SERVE_PROTOCOL_VERSION};

use crate::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME_BYTES};

/// One authenticated (in the `Hello` sense) connection to a daemon.
pub struct ServeClient {
    stream: TcpStream,
    version: u16,
}

impl ServeClient {
    /// Connects, sends `Hello { SERVE_PROTOCOL_VERSION, name }`, and
    /// returns once the daemon answers `HelloOk`.
    pub fn connect(addr: impl ToSocketAddrs, name: &str) -> io::Result<ServeClient> {
        ServeClient::connect_with_version(addr, name, SERVE_PROTOCOL_VERSION)
    }

    /// [`ServeClient::connect`] with a bounded connect retry: a refused
    /// or reset connection (daemon restarting, listener backlog blip)
    /// is retried up to `retries` times on an exponential backoff
    /// (100ms base, 2s cap, real sleeps — this is a live socket, not a
    /// test harness). Any other error, including a protocol-level
    /// handshake rejection, returns immediately.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        name: &str,
        retries: u32,
    ) -> io::Result<ServeClient> {
        let mut attempt = 0u32;
        loop {
            match ServeClient::connect(addr.clone(), name) {
                Ok(client) => return Ok(client),
                Err(e) if attempt < retries && retryable_connect(&e) => {
                    let backoff = 100u64.saturating_mul(1 << attempt.min(16)).min(2_000);
                    std::thread::sleep(Duration::from_millis(backoff));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// [`ServeClient::connect`] announcing an explicit protocol version
    /// (version-negotiation tests).
    pub fn connect_with_version(
        addr: impl ToSocketAddrs,
        name: &str,
        version: u16,
    ) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        // Request/response framing on small messages: Nagle buys
        // nothing and costs delayed-ACK stalls.
        stream.set_nodelay(true)?;
        let mut client = ServeClient { stream, version: 0 };
        let hello = Request::Hello { version, client: name.to_string() };
        match client.request(&hello)? {
            Response::HelloOk { version } => {
                client.version = version;
                Ok(client)
            }
            Response::ProtocolError { message } => {
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, message))
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected handshake response: {other:?}"),
            )),
        }
    }

    /// The version both ends agreed on.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Sends one request frame and reads one response frame. Exposed so
    /// tests and drills can speak arbitrary (well-formed) requests.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        let body = read_frame(&mut self.stream, DEFAULT_MAX_FRAME_BYTES).map_err(io_of)?;
        Response::decode(&body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Submits a job; the daemon answers `Accepted` or `Rejected`.
    /// `deadline_ms == 0` inherits the server default.
    pub fn submit(&mut self, name: &str, deadline_ms: u64, image: &[u8]) -> io::Result<Response> {
        self.request(&Request::Submit {
            name: name.to_string(),
            deadline_ms,
            image: image.to_vec(),
        })
    }

    /// Queries one job's state.
    pub fn status(&mut self, job: u64) -> io::Result<JobState> {
        match self.request(&Request::Status { job })? {
            Response::JobStatus { state, .. } => Ok(state),
            other => Err(unexpected(other)),
        }
    }

    /// Asks to pull a still-queued job back; returns the state after
    /// the attempt (running/done jobs are past cancelling).
    pub fn cancel(&mut self, job: u64) -> io::Result<JobState> {
        match self.request(&Request::Cancel { job })? {
            Response::JobStatus { state, .. } => Ok(state),
            other => Err(unexpected(other)),
        }
    }

    /// Starts a graceful drain; returns (queued, running) at the moment
    /// admission stopped.
    pub fn drain(&mut self) -> io::Result<(u64, u64)> {
        match self.request(&Request::Drain)? {
            Response::DrainStarted { queued, running } => Ok((queued, running)),
            other => Err(unexpected(other)),
        }
    }

    /// Polls `status` every `poll_ms` until the job reaches a terminal
    /// state (`Done` or `Cancelled`) or `timeout_ms` elapses.
    pub fn wait(&mut self, job: u64, poll_ms: u64, timeout_ms: u64) -> io::Result<JobState> {
        let deadline = Instant::now() + Duration::from_millis(timeout_ms);
        loop {
            match self.status(job)? {
                state @ (JobState::Done { .. } | JobState::Cancelled) => return Ok(state),
                JobState::Unknown => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("job {job} is unknown to the daemon"),
                    ))
                }
                JobState::Queued { .. } | JobState::Running => {}
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("job {job} not terminal after {timeout_ms}ms"),
                ));
            }
            std::thread::sleep(Duration::from_millis(poll_ms.max(1)));
        }
    }
}

fn io_of(e: FrameError) -> io::Error {
    match e {
        FrameError::Closed => {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        }
        FrameError::TooLarge { claimed, max } => io::Error::new(
            io::ErrorKind::InvalidData,
            format!("daemon sent a {claimed}-byte frame (cap {max})"),
        ),
        FrameError::Io(e) => e,
    }
}

fn unexpected(response: Response) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("unexpected response: {response:?}"))
}

/// Connect errors worth another attempt: kernel-level refusal or reset,
/// the daemon-not-up-yet shapes. The `raw_os_error` guard keeps the
/// handshake's synthesized `ConnectionRefused` (a deliberate protocol
/// rejection, which retrying cannot fix) out of the retry loop.
fn retryable_connect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
    ) && e.raw_os_error().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_classifier_separates_os_refusal_from_protocol_rejection() {
        let os_refused = io::Error::from_raw_os_error(111); // ECONNREFUSED
        assert_eq!(os_refused.kind(), io::ErrorKind::ConnectionRefused);
        assert!(retryable_connect(&os_refused));
        let handshake = io::Error::new(io::ErrorKind::ConnectionRefused, "version too old");
        assert!(!retryable_connect(&handshake), "protocol rejections must not be retried");
        assert!(!retryable_connect(&io::Error::new(io::ErrorKind::TimedOut, "slow")));
    }

    #[test]
    fn connect_with_retry_reaches_a_late_listener() {
        use std::net::TcpListener;
        // Reserve a port, drop the listener, then re-listen shortly
        // after — the retrying client must bridge the refusal window.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        assert!(
            ServeClient::connect_with_retry(addr, "t", 0).is_err(),
            "no listener and no retries should refuse"
        );
        let server = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            let listener = TcpListener::bind(addr).unwrap();
            let (mut conn, _) = listener.accept().unwrap();
            let body = crate::frame::read_frame(&mut conn, DEFAULT_MAX_FRAME_BYTES).unwrap();
            let request = Request::decode(&body).unwrap();
            assert!(matches!(request, Request::Hello { .. }));
            write_frame(&mut conn, &Response::HelloOk { version: SERVE_PROTOCOL_VERSION }.encode())
                .unwrap();
        });
        let client = ServeClient::connect_with_retry(addr, "t", 5).unwrap();
        assert_eq!(client.version(), SERVE_PROTOCOL_VERSION);
        server.join().unwrap();
    }
}
