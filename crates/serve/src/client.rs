//! A blocking loopback client for the serve protocol.
//!
//! [`ServeClient`] performs the `Hello`/`HelloOk` version negotiation
//! on connect and then exposes one method per request. Every method is
//! strictly request→response over the single connection, so responses
//! can never interleave. Wire and framing failures surface as
//! `io::Error` (`InvalidData` for codec violations), keeping the
//! client usable from CLI code without a second error type.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use rock_supervisor::wire::{JobState, Request, Response, SERVE_PROTOCOL_VERSION};

use crate::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME_BYTES};

/// One authenticated (in the `Hello` sense) connection to a daemon.
pub struct ServeClient {
    stream: TcpStream,
    version: u16,
}

impl ServeClient {
    /// Connects, sends `Hello { SERVE_PROTOCOL_VERSION, name }`, and
    /// returns once the daemon answers `HelloOk`.
    pub fn connect(addr: impl ToSocketAddrs, name: &str) -> io::Result<ServeClient> {
        ServeClient::connect_with_version(addr, name, SERVE_PROTOCOL_VERSION)
    }

    /// [`ServeClient::connect`] announcing an explicit protocol version
    /// (version-negotiation tests).
    pub fn connect_with_version(
        addr: impl ToSocketAddrs,
        name: &str,
        version: u16,
    ) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        // Request/response framing on small messages: Nagle buys
        // nothing and costs delayed-ACK stalls.
        stream.set_nodelay(true)?;
        let mut client = ServeClient { stream, version: 0 };
        let hello = Request::Hello { version, client: name.to_string() };
        match client.request(&hello)? {
            Response::HelloOk { version } => {
                client.version = version;
                Ok(client)
            }
            Response::ProtocolError { message } => {
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, message))
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected handshake response: {other:?}"),
            )),
        }
    }

    /// The version both ends agreed on.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Sends one request frame and reads one response frame. Exposed so
    /// tests and drills can speak arbitrary (well-formed) requests.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        let body = read_frame(&mut self.stream, DEFAULT_MAX_FRAME_BYTES).map_err(io_of)?;
        Response::decode(&body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Submits a job; the daemon answers `Accepted` or `Rejected`.
    /// `deadline_ms == 0` inherits the server default.
    pub fn submit(&mut self, name: &str, deadline_ms: u64, image: &[u8]) -> io::Result<Response> {
        self.request(&Request::Submit {
            name: name.to_string(),
            deadline_ms,
            image: image.to_vec(),
        })
    }

    /// Queries one job's state.
    pub fn status(&mut self, job: u64) -> io::Result<JobState> {
        match self.request(&Request::Status { job })? {
            Response::JobStatus { state, .. } => Ok(state),
            other => Err(unexpected(other)),
        }
    }

    /// Asks to pull a still-queued job back; returns the state after
    /// the attempt (running/done jobs are past cancelling).
    pub fn cancel(&mut self, job: u64) -> io::Result<JobState> {
        match self.request(&Request::Cancel { job })? {
            Response::JobStatus { state, .. } => Ok(state),
            other => Err(unexpected(other)),
        }
    }

    /// Starts a graceful drain; returns (queued, running) at the moment
    /// admission stopped.
    pub fn drain(&mut self) -> io::Result<(u64, u64)> {
        match self.request(&Request::Drain)? {
            Response::DrainStarted { queued, running } => Ok((queued, running)),
            other => Err(unexpected(other)),
        }
    }

    /// Polls `status` every `poll_ms` until the job reaches a terminal
    /// state (`Done` or `Cancelled`) or `timeout_ms` elapses.
    pub fn wait(&mut self, job: u64, poll_ms: u64, timeout_ms: u64) -> io::Result<JobState> {
        let deadline = Instant::now() + Duration::from_millis(timeout_ms);
        loop {
            match self.status(job)? {
                state @ (JobState::Done { .. } | JobState::Cancelled) => return Ok(state),
                JobState::Unknown => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("job {job} is unknown to the daemon"),
                    ))
                }
                JobState::Queued { .. } | JobState::Running => {}
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("job {job} not terminal after {timeout_ms}ms"),
                ));
            }
            std::thread::sleep(Duration::from_millis(poll_ms.max(1)));
        }
    }
}

fn io_of(e: FrameError) -> io::Error {
    match e {
        FrameError::Closed => {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        }
        FrameError::TooLarge { claimed, max } => io::Error::new(
            io::ErrorKind::InvalidData,
            format!("daemon sent a {claimed}-byte frame (cap {max})"),
        ),
        FrameError::Io(e) => e,
    }
}

fn unexpected(response: Response) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("unexpected response: {response:?}"))
}
