//! The daemon: accept loop, admission control, worker pool, drain.
//!
//! Threading model — deliberately boring: one accept loop (the thread
//! that called [`Server::run`]), one detached handler thread per
//! connection, and a fixed pool of worker threads popping a bounded
//! queue. No async runtime, no dependencies; every blocking wait is
//! either a condvar with a timeout or a socket read with a timeout, so
//! every thread notices shutdown within one poll tick.
//!
//! The robustness contract, in order of the admission checks:
//!
//! 1. draining → `Rejected { Draining }` (admitted work still finishes);
//! 2. oversized image → `Rejected { TooLarge }`;
//! 3. per-client inflight/token quota → `Rejected { QuotaExceeded }`;
//! 4. full queue → `Rejected { QueueFull }`.
//!
//! Everything admitted completes to a terminal, queryable state — even
//! if its connection dies, even if the job panics (contained per
//! worker), even across a drain. A drain stops admission, lets the
//! queue empty, joins the workers, and reports a [`DrainSummary`];
//! interrupted-and-checkpointed jobs resume bit-identically when a new
//! daemon is started over the same artifact store.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use rock_core::{CorpusCache, FaultPlan, IncrStats, RockConfig};
use rock_supervisor::wire::{
    JobState, RejectReason, Request, Response, SERVE_MIN_PROTOCOL_VERSION, SERVE_PROTOCOL_VERSION,
};
use rock_supervisor::{exit, ArtifactStore, StdVfs, Supervisor, SupervisorOptions, Vfs};
use rock_trace::{names, MetricsRegistry, TraceCtx, TraceLevel, Tracer};

use crate::admission::{QuotaConfig, Quotas};
use crate::fingerprint::result_fp;
use crate::frame::{write_frame, FrameError, DEFAULT_MAX_FRAME_BYTES};
use crate::signals;

/// Everything the daemon needs to know at startup.
#[derive(Clone)]
pub struct ServeConfig {
    /// Artifact-store root (checkpoints; shared across restarts).
    pub store_dir: PathBuf,
    /// The reconstruction configuration every job runs under.
    pub config: RockConfig,
    /// Supervision policy template. `deadline_ms` is the server default
    /// a `Submit` with `deadline_ms == 0` inherits; `resume` defaults
    /// on so a restarted daemon picks up checkpoints.
    pub options: SupervisorOptions,
    /// Admission-queue capacity (K); submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Per-client token-bucket and inflight limits.
    pub quota: QuotaConfig,
    /// Shared corpus-cache capacity per tier (0: unbounded).
    pub corpus_capacity: usize,
    /// Largest admissible submitted image, in bytes.
    pub max_image_bytes: usize,
    /// Largest tolerated frame body (protocol-level cap).
    pub max_frame_bytes: usize,
    /// Per-connection send budget in bytes (0: unlimited). A
    /// connection that makes the daemon buffer more than this is a slow
    /// reader and is dropped (its jobs keep running).
    pub send_budget_bytes: usize,
    /// Socket write timeout, milliseconds.
    pub write_timeout_ms: u64,
    /// Close a connection after this much read silence, milliseconds.
    pub idle_timeout_ms: u64,
    /// Poll granularity for accept/shutdown/idle checks, milliseconds.
    pub poll_ms: u64,
    /// Span tracer for `serve.*` + per-job spans (optional).
    pub tracer: Option<Arc<Tracer>>,
    /// Level for the attached tracer.
    pub trace_level: TraceLevel,
    /// Storage backend for the shared artifact store (`None`: the real
    /// filesystem). Chaos tests hand a `FaultyVfs` in here.
    pub vfs: Option<Arc<dyn Vfs>>,
    /// Fsync artifacts (and their directory) before a checkpoint
    /// counts as committed. Off by default: durability costs latency.
    pub durable: bool,
}

impl ServeConfig {
    /// Production-shaped defaults over `store_dir`: the paper config
    /// with canonical calls (so tenants share corpus entries), resume
    /// on, a 64-deep queue, 4 workers, and a bounded corpus cache.
    pub fn new(store_dir: impl Into<PathBuf>) -> ServeConfig {
        let mut options = SupervisorOptions::default();
        options.resume = true;
        ServeConfig {
            store_dir: store_dir.into(),
            config: RockConfig::paper().with_canonical_calls(),
            options,
            queue_capacity: 64,
            workers: 4,
            quota: QuotaConfig::default(),
            corpus_capacity: 1 << 16,
            max_image_bytes: 16 << 20,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            send_budget_bytes: 0,
            write_timeout_ms: 2_000,
            idle_timeout_ms: 30_000,
            poll_ms: 10,
            tracer: None,
            trace_level: TraceLevel::default(),
            vfs: None,
            durable: false,
        }
    }
}

/// What the daemon had done by the time it drained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainSummary {
    /// Submissions admitted to the queue.
    pub accepted: u64,
    /// Admitted jobs that reached a terminal state (includes contained
    /// panics and interrupted-but-checkpointed jobs).
    pub completed: u64,
    /// Jobs cancelled while still queued.
    pub cancelled: u64,
    /// Submissions shed with a typed rejection, all reasons.
    pub rejected: u64,
    /// Malformed frames answered with a typed protocol error.
    pub protocol_errors: u64,
    /// Job panics contained by workers.
    pub panics_contained: u64,
}

/// One admitted, not-yet-executed job.
struct QueuedJob {
    id: u64,
    client: String,
    name: String,
    deadline_ms: u64,
    image: Vec<u8>,
}

/// Terminal/transient state of a job in the table.
enum Slot {
    Queued,
    Running,
    Done { exit_code: u8, outcome: String, result_fp: u64, report_json: String },
    Cancelled,
}

struct Inner {
    cfg: ServeConfig,
    store: ArtifactStore,
    corpus: Arc<CorpusCache>,
    quotas: Quotas,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    jobs: Mutex<BTreeMap<u64, Slot>>,
    next_job: AtomicU64,
    queued: AtomicU64,
    running: AtomicU64,
    draining: AtomicBool,
    shutdown: AtomicBool,
    paused: AtomicBool,
    metrics: Mutex<MetricsRegistry>,
    faults: Mutex<BTreeMap<String, Arc<FaultPlan>>>,
    poisoned: Mutex<BTreeSet<String>>,
    incr: Mutex<IncrStats>,
}

impl Inner {
    fn count(&self, name: &'static str, delta: u64) {
        self.metrics.lock().expect("serve metrics poisoned").add(name, delta);
    }

    fn counter(&self, name: &str) -> u64 {
        self.metrics.lock().expect("serve metrics poisoned").counter(name)
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
        self.queue_cv.notify_all();
    }

    /// No admitted work pending. Checked under the queue lock so the
    /// accept loop's drained-and-idle decision serializes against both
    /// `submit`'s locked draining re-check and the workers' locked
    /// queued→running hand-off: every admission is either visible here
    /// or was shed with a typed `Draining` rejection.
    fn idle(&self) -> bool {
        let queue = self.queue.lock().expect("serve queue poisoned");
        queue.is_empty() && self.running.load(Ordering::Relaxed) == 0
    }

    /// The admission pipeline for one `Submit`, checks in documented
    /// order. Returns the response to send.
    fn submit(&self, client: &str, name: String, deadline_ms: u64, image: Vec<u8>) -> Response {
        if self.draining() {
            self.count(names::SERVE_REJECTED_DRAINING, 1);
            return Response::Rejected {
                reason: RejectReason::Draining,
                detail: "daemon is draining; no new work admitted".to_string(),
            };
        }
        if image.len() > self.cfg.max_image_bytes {
            self.count(names::SERVE_REJECTED_TOO_LARGE, 1);
            return Response::Rejected {
                reason: RejectReason::TooLarge,
                detail: format!(
                    "image of {} bytes exceeds the {}-byte cap",
                    image.len(),
                    self.cfg.max_image_bytes
                ),
            };
        }
        if let Err((reason, detail)) = self.quotas.admit(client) {
            self.count(names::SERVE_REJECTED_QUOTA, 1);
            return Response::Rejected { reason, detail };
        }
        // Lock discipline: `jobs` and `queue` are never held together
        // (the same rule `status` and the workers follow). The slot
        // enters the table before the job is queued — workers cannot
        // see it until the push — and a rejection takes it back out.
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        self.jobs.lock().expect("serve job table poisoned").insert(id, Slot::Queued);
        let mut queue = self.queue.lock().expect("serve queue poisoned");
        // Re-check under the queue lock: the accept loop decides
        // "draining and idle" while holding this lock, so a submission
        // racing that decision is either visible in the queue before
        // the loop breaks or shed here — never admitted into a daemon
        // whose workers are already gone.
        if self.draining() {
            drop(queue);
            return self.unsubmit(
                id,
                client,
                RejectReason::Draining,
                names::SERVE_REJECTED_DRAINING,
            );
        }
        if queue.len() >= self.cfg.queue_capacity.max(1) {
            drop(queue);
            return self.unsubmit(
                id,
                client,
                RejectReason::QueueFull,
                names::SERVE_REJECTED_QUEUE_FULL,
            );
        }
        queue.push_back(QueuedJob { id, client: client.to_string(), name, deadline_ms, image });
        self.queued.fetch_add(1, Ordering::Relaxed);
        drop(queue);
        self.queue_cv.notify_one();
        self.count(names::SERVE_ACCEPTED, 1);
        Response::Accepted { job: id }
    }

    /// Backs a provisional job slot out of the table and builds the
    /// rejection for a `Submit` that failed a check under the queue
    /// lock (which the caller has already released).
    fn unsubmit(
        &self,
        id: u64,
        client: &str,
        reason: RejectReason,
        metric: &'static str,
    ) -> Response {
        self.jobs.lock().expect("serve job table poisoned").remove(&id);
        self.quotas.release(client);
        self.count(metric, 1);
        let detail = match reason {
            RejectReason::Draining => "daemon is draining; no new work admitted".to_string(),
            _ => format!("admission queue at capacity {}", self.cfg.queue_capacity),
        };
        Response::Rejected { reason, detail }
    }

    /// The wire-visible state of `job` right now. The queue position
    /// of a Queued slot is looked up after the `jobs` lock is released
    /// (locks are never nested), so a worker can pop the job between
    /// the two reads — a Queued slot absent from the queue is on its
    /// way to Running, never "first in line".
    fn status(&self, job: u64) -> JobState {
        if let Some(state) = self.settled_state(job) {
            return state;
        }
        let position = {
            let queue = self.queue.lock().expect("serve queue poisoned");
            queue.iter().position(|q| q.id == job)
        };
        match position {
            Some(p) => JobState::Queued { position: p as u64 },
            None => self.settled_state(job).unwrap_or(JobState::Running),
        }
    }

    /// The slot's state when it can be answered from the job table
    /// alone; `None` means the slot is Queued and needs a queue lookup.
    fn settled_state(&self, job: u64) -> Option<JobState> {
        let jobs = self.jobs.lock().expect("serve job table poisoned");
        match jobs.get(&job) {
            None => Some(JobState::Unknown),
            Some(Slot::Queued) => None,
            Some(Slot::Running) => Some(JobState::Running),
            Some(Slot::Cancelled) => Some(JobState::Cancelled),
            Some(Slot::Done { exit_code, outcome, result_fp, report_json }) => {
                Some(JobState::Done {
                    exit_code: *exit_code,
                    outcome: outcome.clone(),
                    result_fp: *result_fp,
                    report_json: report_json.clone(),
                })
            }
        }
    }

    /// Best-effort cancel: only a still-queued job can be pulled back.
    /// Returns the job's state after the attempt.
    fn cancel(&self, job: u64) -> JobState {
        let mut queue = self.queue.lock().expect("serve queue poisoned");
        if let Some(pos) = queue.iter().position(|q| q.id == job) {
            let pulled = queue.remove(pos).expect("position just found");
            drop(queue);
            self.queued.fetch_sub(1, Ordering::Relaxed);
            self.quotas.release(&pulled.client);
            self.jobs.lock().expect("serve job table poisoned").insert(job, Slot::Cancelled);
            self.count(names::SERVE_CANCELLED, 1);
            return JobState::Cancelled;
        }
        drop(queue);
        self.status(job)
    }

    /// Runs one job through a per-job [`Supervisor`] over the shared
    /// store and corpus. Any error is folded into a typed terminal
    /// state — this function's caller additionally contains panics.
    fn execute(&self, job: &QueuedJob) -> Slot {
        if self.poisoned.lock().expect("serve poison set poisoned").contains(&job.name) {
            panic!("poisoned job {:?} (injected)", job.name);
        }
        // The store is opened once at bind and cloned per job: every
        // clone shares the same Vfs handle and stats cell, so injected
        // faults and `store.*` counters are daemon-wide, not per-job.
        let store = self.store.clone();
        let mut options = self.cfg.options.clone();
        if job.deadline_ms > 0 {
            options.deadline_ms = Some(job.deadline_ms);
        }
        let mut sup =
            Supervisor::new(self.cfg.config, store, options).with_corpus(Arc::clone(&self.corpus));
        if let Some(plan) = self.faults.lock().expect("serve fault map poisoned").get(&job.name) {
            sup = sup.with_fault_plan(Arc::clone(plan));
        }
        if let Some(tracer) = &self.cfg.tracer {
            sup = sup.with_tracer(Arc::clone(tracer)).with_trace_level(self.cfg.trace_level);
        }
        let result = sup.run_job(&job.name, &job.image);
        // Persist the job's new sub-artifacts immediately (write-only-
        // new, so repeat flushes are cheap): a crashed daemon then loses
        // at most the in-flight job's work, and a restarted one preloads
        // everything every earlier tenant computed.
        if self.cfg.options.incremental {
            let delta = sup.flush_incremental();
            self.incr.lock().expect("serve incr stats poisoned").add(&delta);
        }
        Slot::Done {
            exit_code: result.report.exit_code(),
            outcome: result.report.outcome.name().to_string(),
            result_fp: result_fp(&result.output),
            report_json: result.report.to_json(),
        }
    }

    fn summary(&self) -> DrainSummary {
        DrainSummary {
            accepted: self.counter(names::SERVE_ACCEPTED),
            completed: self.counter(names::SERVE_COMPLETED),
            cancelled: self.counter(names::SERVE_CANCELLED),
            rejected: self.counter(names::SERVE_REJECTED_QUEUE_FULL)
                + self.counter(names::SERVE_REJECTED_QUOTA)
                + self.counter(names::SERVE_REJECTED_DRAINING)
                + self.counter(names::SERVE_REJECTED_TOO_LARGE),
            protocol_errors: self.counter(names::SERVE_PROTOCOL_ERRORS),
            panics_contained: self.counter(names::SERVE_PANICS_CONTAINED),
        }
    }
}

/// A cloneable remote control for a bound [`Server`]: drain triggers,
/// counters, and the test-only fault hooks.
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// Stops admission and lets the daemon finish admitted work.
    pub fn drain(&self) {
        self.inner.begin_drain();
    }

    /// Whether admission has stopped.
    pub fn is_draining(&self) -> bool {
        self.inner.draining()
    }

    /// Jobs waiting + executing right now.
    pub fn load(&self) -> (u64, u64) {
        (self.inner.queued.load(Ordering::Relaxed), self.inner.running.load(Ordering::Relaxed))
    }

    /// One `serve.*` counter by name.
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.counter(name)
    }

    /// The daemon-lifetime summary so far.
    pub fn summary(&self) -> DrainSummary {
        self.inner.summary()
    }

    /// Process-lifetime fault counters of the shared artifact store
    /// (retries, losses, corruption, swept tmp files).
    pub fn store_stats(&self) -> rock_core::StoreStats {
        self.inner.store.stats()
    }

    /// Cumulative sub-artifact preload/flush accounting (only moves
    /// when [`SupervisorOptions::incremental`] is on).
    pub fn incr_stats(&self) -> IncrStats {
        *self.inner.incr.lock().expect("serve incr stats poisoned")
    }

    /// Attaches a [`FaultPlan`] to every future job submitted under
    /// `job_name` (fault-injection hook for tests and drills).
    pub fn set_fault_plan(&self, job_name: &str, plan: Arc<FaultPlan>) {
        self.inner
            .faults
            .lock()
            .expect("serve fault map poisoned")
            .insert(job_name.to_string(), plan);
    }

    /// Test seam: while paused, workers stop popping the queue (so a
    /// test can fill it deterministically). Admission is unaffected.
    /// Un-pause before draining, or the drain never finishes.
    pub fn pause_workers(&self, paused: bool) {
        self.inner.paused.store(paused, Ordering::Relaxed);
        self.inner.queue_cv.notify_all();
    }

    /// Makes every future job submitted under `job_name` panic inside
    /// the worker, *outside* the supervisor's own containment — the
    /// harshest poisoned-job drill the daemon must survive.
    pub fn poison_job(&self, job_name: &str) {
        self.inner.poisoned.lock().expect("serve poison set poisoned").insert(job_name.to_string());
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    inner: Arc<Inner>,
    listener: TcpListener,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and prepares shared state,
    /// including the artifact store (opened once; a store root that
    /// cannot even be created fails the bind instead of every job).
    /// No thread starts until [`Server::run`].
    pub fn bind(cfg: ServeConfig, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let vfs = cfg.vfs.clone().unwrap_or_else(StdVfs::arc);
        let store =
            ArtifactStore::open_with(&cfg.store_dir, vfs, cfg.durable)?.with_sleep_backoff(true);
        let corpus = Arc::new(if cfg.corpus_capacity > 0 {
            CorpusCache::bounded(cfg.corpus_capacity)
        } else {
            CorpusCache::new()
        });
        let quotas = Quotas::new(cfg.quota);
        // Warm the shared corpus from the persisted sub-artifact store
        // before any tenant connects: a resubmitted (or patched) image
        // then reuses every function/type/pair/family artifact an
        // earlier daemon over this store already computed.
        let incr = if cfg.options.incremental {
            rock_supervisor::preload_subartifacts(&store, &corpus)
        } else {
            IncrStats::default()
        };
        let inner = Arc::new(Inner {
            cfg,
            store,
            corpus,
            quotas,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(BTreeMap::new()),
            next_job: AtomicU64::new(1),
            queued: AtomicU64::new(0),
            running: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            metrics: Mutex::new(MetricsRegistry::new()),
            faults: Mutex::new(BTreeMap::new()),
            poisoned: Mutex::new(BTreeSet::new()),
            incr: Mutex::new(incr),
        });
        Ok(Server { inner, listener })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A remote control valid before, during, and after [`Server::run`].
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { inner: Arc::clone(&self.inner) }
    }

    /// Serves until drained (by a `Drain` frame, [`ServerHandle::drain`],
    /// or `SIGTERM`), then finishes admitted work, joins the workers,
    /// and reports. The accept loop keeps accepting *connections* while
    /// draining — tenants poll in-flight jobs to completion — but
    /// admission of new work stops the moment the drain begins.
    pub fn run(self) -> io::Result<DrainSummary> {
        let inner = self.inner;
        let listener = self.listener;
        listener.set_nonblocking(true)?;
        let poll = Duration::from_millis(inner.cfg.poll_ms.max(1));
        let workers: Vec<_> = (0..inner.cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        let mut conn_id = 0u64;
        loop {
            if signals::termination_requested() {
                inner.begin_drain();
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    conn_id += 1;
                    inner.count(names::SERVE_CONNECTIONS, 1);
                    let inner = Arc::clone(&inner);
                    thread::Builder::new()
                        .name(format!("serve-conn-{conn_id}"))
                        .spawn(move || handle_connection(&inner, stream, conn_id))
                        .map(|_| ())
                        .unwrap_or(());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if inner.draining() && inner.idle() {
                        break;
                    }
                    thread::sleep(poll);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Admission is closed and the last admitted job has finished:
        // release the workers and hand the final tallies back.
        inner.shutdown.store(true, Ordering::Relaxed);
        inner.queue_cv.notify_all();
        for w in workers {
            let _ = w.join();
        }
        // Defense in depth: `submit`'s locked draining re-check makes
        // post-idle stragglers impossible, but if one ever appears it
        // must still reach a terminal, queryable state rather than sit
        // Queued in a daemon with no workers.
        let stragglers: Vec<QueuedJob> =
            inner.queue.lock().expect("serve queue poisoned").drain(..).collect();
        for job in stragglers {
            inner.queued.fetch_sub(1, Ordering::Relaxed);
            inner.quotas.release(&job.client);
            inner.jobs.lock().expect("serve job table poisoned").insert(job.id, Slot::Cancelled);
            inner.count(names::SERVE_CANCELLED, 1);
        }
        // Final flush after the workers are gone: per-job flushes make
        // this mostly `unchanged`, but it catches anything a worker
        // computed after its own flush (shared-cache cross-talk).
        if inner.cfg.options.incremental {
            let delta = rock_supervisor::flush_subartifacts(&inner.store, &inner.corpus);
            inner.incr.lock().expect("serve incr stats poisoned").add(&delta);
        }
        Ok(inner.summary())
    }
}

/// One worker: pop, execute under containment, record the terminal
/// state, release the quota slot. A panic in a job poisons nothing —
/// the worker records a typed failure and keeps popping.
fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().expect("serve queue poisoned");
            loop {
                if !inner.paused.load(Ordering::Relaxed) {
                    if let Some(job) = queue.pop_front() {
                        // Still under the queue lock: the queued →
                        // running hand-off must be invisible to the
                        // accept loop's idle check, or a drain could
                        // conclude "idle" while this job is between
                        // pop and execute.
                        inner.queued.fetch_sub(1, Ordering::Relaxed);
                        inner.running.fetch_add(1, Ordering::Relaxed);
                        break job;
                    }
                }
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                queue = inner
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .expect("serve queue poisoned")
                    .0;
            }
        };
        inner.jobs.lock().expect("serve job table poisoned").insert(job.id, Slot::Running);
        let ctx = match &inner.cfg.tracer {
            Some(t) => TraceCtx::with_level(t, inner.cfg.trace_level),
            None => TraceCtx::disabled(),
        };
        let span = ctx.span(names::SERVE_REQUEST, job.id);
        let slot = match catch_unwind(AssertUnwindSafe(|| inner.execute(&job))) {
            Ok(slot) => slot,
            Err(panic) => {
                inner.count(names::SERVE_PANICS_CONTAINED, 1);
                Slot::Done {
                    exit_code: exit::FAILED,
                    outcome: "failed".to_string(),
                    result_fp: result_fp(&rock_supervisor::JobOutput::None),
                    report_json: format!(
                        "{{\"name\":\"{}\",\"outcome\":\"failed\",\"reason\":\"panicked: {}\"}}",
                        escape(&job.name),
                        escape(&panic_text(&panic))
                    ),
                }
            }
        };
        drop(span);
        inner.jobs.lock().expect("serve job table poisoned").insert(job.id, slot);
        inner.quotas.release(&job.client);
        inner.running.fetch_sub(1, Ordering::Relaxed);
        inner.count(names::SERVE_COMPLETED, 1);
    }
}

/// Per-connection protocol driver. Reads are buffered and polled so a
/// trickling writer cannot desynchronize framing and a dead one is
/// reaped by the idle timeout; writes run under the socket write
/// timeout and the per-connection send budget.
fn handle_connection(inner: &Arc<Inner>, stream: TcpStream, conn_id: u64) {
    let ctx = match &inner.cfg.tracer {
        Some(t) => TraceCtx::with_level(t, inner.cfg.trace_level),
        None => TraceCtx::disabled(),
    };
    let _span = ctx.span(names::SERVE_CONNECTION, conn_id);
    let mut conn = Conn::new(inner, stream);
    if conn.configure().is_err() {
        return;
    }
    let mut hello: Option<(u16, String)> = None;
    loop {
        let body = match conn.next_frame() {
            Ok(Some(body)) => body,
            Ok(None) => return, // closed, idle-reaped, or shutdown
            Err(FrameError::TooLarge { claimed, max }) => {
                inner.count(names::SERVE_PROTOCOL_ERRORS, 1);
                let _ = conn.send(&Response::ProtocolError {
                    message: format!("frame of {claimed} bytes exceeds the {max}-byte cap"),
                });
                return;
            }
            Err(_) => return,
        };
        inner.count(names::SERVE_REQUESTS, 1);
        let request = match Request::decode(&body) {
            Ok(request) => request,
            Err(e) => {
                inner.count(names::SERVE_PROTOCOL_ERRORS, 1);
                let _ = conn.send(&Response::ProtocolError { message: e.to_string() });
                return;
            }
        };
        let response = match (&request, &hello) {
            (Request::Hello { version, client }, _) => {
                if *version < SERVE_MIN_PROTOCOL_VERSION {
                    inner.count(names::SERVE_PROTOCOL_ERRORS, 1);
                    let _ = conn.send(&Response::ProtocolError {
                        message: format!(
                            "protocol version {version} below the supported minimum \
                             {SERVE_MIN_PROTOCOL_VERSION}"
                        ),
                    });
                    return;
                }
                let negotiated = (*version).min(SERVE_PROTOCOL_VERSION);
                hello = Some((negotiated, client.clone()));
                Response::HelloOk { version: negotiated }
            }
            (_, None) => {
                inner.count(names::SERVE_PROTOCOL_ERRORS, 1);
                let _ = conn.send(&Response::ProtocolError {
                    message: "first frame must be Hello".to_string(),
                });
                return;
            }
            (Request::Submit { name, deadline_ms, image }, Some((_, client))) => {
                inner.submit(client, name.clone(), *deadline_ms, image.clone())
            }
            (Request::Status { job }, Some(_)) => {
                Response::JobStatus { job: *job, state: inner.status(*job) }
            }
            (Request::Cancel { job }, Some(_)) => {
                Response::JobStatus { job: *job, state: inner.cancel(*job) }
            }
            (Request::Drain, Some(_)) => {
                inner.begin_drain();
                Response::DrainStarted {
                    queued: inner.queued.load(Ordering::Relaxed),
                    running: inner.running.load(Ordering::Relaxed),
                }
            }
        };
        if conn.send(&response).is_err() {
            return;
        }
    }
}

/// One connection's transport state: the buffered reader, the send
/// budget, and the idle clock.
struct Conn<'a> {
    inner: &'a Arc<Inner>,
    stream: TcpStream,
    buf: Vec<u8>,
    sent_bytes: usize,
    last_activity: Instant,
}

impl<'a> Conn<'a> {
    fn new(inner: &'a Arc<Inner>, stream: TcpStream) -> Conn<'a> {
        Conn { inner, stream, buf: Vec::new(), sent_bytes: 0, last_activity: Instant::now() }
    }

    fn configure(&mut self) -> io::Result<()> {
        let cfg = &self.inner.cfg;
        self.stream.set_nodelay(true)?;
        self.stream.set_read_timeout(Some(Duration::from_millis(cfg.poll_ms.max(1))))?;
        self.stream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms.max(1))))?;
        Ok(())
    }

    /// The next complete frame body. `Ok(None)`: the connection ended
    /// (peer close, idle reap, or daemon shutdown) and the handler
    /// should return quietly.
    fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let max = self.inner.cfg.max_frame_bytes;
        let idle = Duration::from_millis(self.inner.cfg.idle_timeout_ms.max(1));
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(body) = extract_frame(&mut self.buf, max)? {
                self.last_activity = Instant::now();
                return Ok(Some(body));
            }
            if self.inner.shutdown.load(Ordering::Relaxed) {
                return Ok(None);
            }
            if self.last_activity.elapsed() > idle {
                return Ok(None);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(None),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }

    /// Sends one response under the write timeout and the send budget.
    fn send(&mut self, response: &Response) -> io::Result<()> {
        let body = response.encode();
        let budget = self.inner.cfg.send_budget_bytes;
        if budget > 0 {
            self.sent_bytes = self.sent_bytes.saturating_add(4 + body.len());
            if self.sent_bytes > budget {
                self.inner.count(names::SERVE_SLOW_CLIENT_DROPS, 1);
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "per-connection send budget exhausted",
                ));
            }
        }
        write_frame(&mut self.stream, &body).inspect_err(|e| {
            if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut {
                self.inner.count(names::SERVE_SLOW_CLIENT_DROPS, 1);
            }
        })
    }
}

/// Pops one complete frame off the front of `buf`, if present. The cap
/// is checked against the *claimed* length, before any body bytes are
/// waited for.
fn extract_frame(buf: &mut Vec<u8>, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let claimed = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if claimed > max {
        return Err(FrameError::TooLarge { claimed, max });
    }
    if buf.len() < 4 + claimed {
        return Ok(None);
    }
    let body = buf[4..4 + claimed].to_vec();
    buf.drain(..4 + claimed);
    Ok(Some(body))
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Minimal JSON string escaping for the synthetic failure reports.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_frame_handles_partials_and_caps() {
        let mut buf = Vec::new();
        assert!(extract_frame(&mut buf, 64).unwrap().is_none());
        buf.extend_from_slice(&5u32.to_le_bytes());
        assert!(extract_frame(&mut buf, 64).unwrap().is_none(), "body not here yet");
        buf.extend_from_slice(b"abc");
        assert!(extract_frame(&mut buf, 64).unwrap().is_none(), "still short");
        buf.extend_from_slice(b"de");
        assert_eq!(extract_frame(&mut buf, 64).unwrap().unwrap(), b"abcde");
        assert!(buf.is_empty());
        // A hostile length trips the cap before any body arrives.
        buf.extend_from_slice(&(1u32 << 30).to_le_bytes());
        assert!(matches!(extract_frame(&mut buf, 64), Err(FrameError::TooLarge { .. })));
    }

    #[test]
    fn escape_covers_the_control_plane() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
