//! Shared execution budgets for every bounded loop in the workspace.
//!
//! Two subsystems historically carried their own step-limit machinery:
//! the reference interpreter (`rock-vm`, a per-run instruction budget
//! guarding against runaway loops) and the symbolic executor
//! (`rock-analysis`, per-function path enumeration bounds). This crate
//! unifies them behind one vocabulary so the CLI and the fault-isolation
//! layer can expose a single consistent knob:
//!
//! * [`Budget`] — an immutable, `Copy` *configuration* value: how many
//!   abstract steps a piece of work may spend. Lives in config structs.
//! * [`Meter`] — the *runtime* counter spun off a budget with
//!   [`Budget::meter`]; each hot loop calls [`Meter::spend`] and reacts
//!   to [`Exhausted`].
//! * [`Deadline`] — an optional wall-clock bound, for callers that want
//!   "give up after N milliseconds" semantics on top of (or instead of)
//!   step counting. Wall-clock bounds are inherently nondeterministic, so
//!   deterministic pipelines keep them off by default.
//!
//! The paper's scalability story (§3.2: "extract fewer and/or shorter
//! tracelets from each procedure") treats analysis exhaustion as a
//! *per-item degradation*, not a failure — [`Exhausted`] is therefore a
//! plain value an isolation layer can record and move past, not a panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// An abstract step allowance (configuration side).
///
/// `Budget` is deliberately `Copy` + `Eq` so it can sit inside the
/// workspace's `Copy` config structs (`AnalysisConfig`, `DynamicOptions`).
/// Spend tracking happens on a [`Meter`] derived from it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Budget {
    limit: u64,
}

impl Budget {
    /// A budget of exactly `limit` steps (`0` means "always exhausted").
    pub const fn steps(limit: u64) -> Self {
        Budget { limit }
    }

    /// An effectively unlimited budget (`u64::MAX` steps).
    pub const fn unlimited() -> Self {
        Budget { limit: u64::MAX }
    }

    /// The configured step limit.
    pub const fn limit(self) -> u64 {
        self.limit
    }

    /// Returns `true` if this is the [`Budget::unlimited`] sentinel.
    pub const fn is_unlimited(self) -> bool {
        self.limit == u64::MAX
    }

    /// Starts a fresh runtime counter over this budget.
    pub const fn meter(self) -> Meter {
        Meter { limit: self.limit, spent: 0 }
    }
}

impl Default for Budget {
    /// Unlimited — budgets are opt-in bounds.
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unlimited() {
            write!(f, "unlimited")
        } else {
            write!(f, "{} steps", self.limit)
        }
    }
}

/// The single "budget ran out" error shared by every metered loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Exhausted {
    /// The limit that was hit.
    pub limit: u64,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step budget of {} exhausted", self.limit)
    }
}

impl Error for Exhausted {}

/// The runtime side of a [`Budget`]: a monotone spend counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Meter {
    limit: u64,
    spent: u64,
}

impl Meter {
    /// Spends `n` steps; fails with [`Exhausted`] once the budget is gone.
    ///
    /// The meter saturates: after the first `Err`, further calls keep
    /// failing with the same error (callers may poll it in loops).
    pub fn spend(&mut self, n: u64) -> Result<(), Exhausted> {
        self.spent = self.spent.saturating_add(n);
        if self.spent > self.limit {
            Err(Exhausted { limit: self.limit })
        } else {
            Ok(())
        }
    }

    /// Steps spent so far (may exceed the limit by the final overdraft).
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Steps left before exhaustion.
    pub fn remaining(&self) -> u64 {
        self.limit.saturating_sub(self.spent)
    }

    /// Returns `true` once [`Meter::spend`] has failed.
    pub fn is_exhausted(&self) -> bool {
        self.spent > self.limit
    }
}

/// An optional wall-clock bound.
///
/// [`Deadline::none`] never expires and costs one branch per check, so it
/// is safe to thread unconditionally.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    expires_at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires.
    pub const fn none() -> Self {
        Deadline { expires_at: None }
    }

    /// A deadline `ms` milliseconds from now.
    pub fn after_ms(ms: u64) -> Self {
        Deadline { expires_at: Instant::now().checked_add(Duration::from_millis(ms)) }
    }

    /// Builds from the `Option<u64>` millisecond knob used by configs.
    pub fn from_config(deadline_ms: Option<u64>) -> Self {
        match deadline_ms {
            Some(ms) => Deadline::after_ms(ms),
            None => Deadline::none(),
        }
    }

    /// Returns `true` once the wall clock has passed the bound.
    pub fn expired(&self) -> bool {
        matches!(self.expires_at, Some(t) if Instant::now() >= t)
    }
}

/// A deterministic retry schedule with exponential backoff.
///
/// The schedule is a pure function of the policy — no wall clock, no
/// jitter — so supervisors can be tested against the exact delays they
/// will sleep (`attempt` is 0-based: the delay *before* retry `n`).
/// Whether to *sleep* the returned delay is the caller's business; the
/// policy only does the arithmetic, which keeps retry logic clock-free
/// in tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RetryPolicy {
    max_retries: u32,
    base_backoff_ms: u64,
    max_backoff_ms: u64,
}

impl RetryPolicy {
    /// Up to `max_retries` retries, backing off from 100 ms doubling to
    /// a 10 s cap.
    pub const fn new(max_retries: u32) -> Self {
        RetryPolicy { max_retries, base_backoff_ms: 100, max_backoff_ms: 10_000 }
    }

    /// No retries at all: fail (or degrade) on the first fault.
    pub const fn none() -> Self {
        RetryPolicy::new(0)
    }

    /// Overrides the backoff curve: start at `base_ms`, double each
    /// attempt, never exceed `cap_ms`.
    pub const fn with_backoff(mut self, base_ms: u64, cap_ms: u64) -> Self {
        self.base_backoff_ms = base_ms;
        self.max_backoff_ms = cap_ms;
        self
    }

    /// The maximum number of retries (attempts beyond the first try).
    pub const fn max_retries(self) -> u32 {
        self.max_retries
    }

    /// The delay in milliseconds before 0-based retry `attempt`:
    /// `min(base * 2^attempt, cap)`, saturating instead of overflowing.
    pub const fn backoff_ms(self, attempt: u32) -> u64 {
        let doubled = if attempt >= 64 {
            u64::MAX
        } else {
            // checked_mul, not checked_shl: shifting only rejects shift
            // amounts >= 64, it silently drops overflowing value bits.
            match self.base_backoff_ms.checked_mul(1u64 << attempt) {
                Some(v) => v,
                None => u64::MAX,
            }
        };
        if doubled > self.max_backoff_ms {
            self.max_backoff_ms
        } else {
            doubled
        }
    }

    /// Whether 0-based `attempt` is still within the policy.
    pub const fn allows(self, attempt: u32) -> bool {
        attempt < self.max_retries
    }

    /// The full backoff schedule, one delay per permitted retry.
    pub fn schedule(self) -> Vec<u64> {
        (0..self.max_retries).map(|a| self.backoff_ms(a)).collect()
    }
}

impl Default for RetryPolicy {
    /// Three retries on the default 100 ms → 10 s curve.
    fn default() -> Self {
        RetryPolicy::new(3)
    }
}

impl fmt::Display for RetryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} retries, backoff {}ms..{}ms",
            self.max_retries, self.base_backoff_ms, self.max_backoff_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_schedule_is_deterministic_and_capped() {
        let p = RetryPolicy::new(5).with_backoff(100, 1000);
        assert_eq!(p.schedule(), vec![100, 200, 400, 800, 1000]);
        assert_eq!(p.schedule(), p.schedule(), "pure function of the policy");
        assert_eq!(p.max_retries(), 5);
        assert!(p.allows(4));
        assert!(!p.allows(5));
        // Saturation: huge attempts cap rather than overflow.
        assert_eq!(p.backoff_ms(63), 1000);
        assert_eq!(p.backoff_ms(64), 1000);
        assert_eq!(p.backoff_ms(u32::MAX), 1000);
    }

    #[test]
    fn retry_policy_edges() {
        let none = RetryPolicy::none();
        assert_eq!(none.max_retries(), 0);
        assert!(none.schedule().is_empty());
        assert!(!none.allows(0));
        let d = RetryPolicy::default();
        assert_eq!(d.max_retries(), 3);
        assert_eq!(d.schedule(), vec![100, 200, 400]);
        assert_eq!(d.to_string(), "3 retries, backoff 100ms..10000ms");
    }

    #[test]
    fn budgets_and_meters() {
        let b = Budget::steps(3);
        assert_eq!(b.limit(), 3);
        assert!(!b.is_unlimited());
        let mut m = b.meter();
        assert!(m.spend(1).is_ok());
        assert!(m.spend(2).is_ok());
        assert!(!m.is_exhausted());
        assert_eq!(m.remaining(), 0);
        let err = m.spend(1).unwrap_err();
        assert_eq!(err, Exhausted { limit: 3 });
        assert!(m.is_exhausted());
        // Saturates: keeps failing.
        assert!(m.spend(1).is_err());
        assert_eq!(m.spent(), 5);
    }

    #[test]
    fn zero_budget_fails_immediately() {
        let mut m = Budget::steps(0).meter();
        assert!(m.spend(1).is_err());
    }

    #[test]
    fn unlimited_never_exhausts() {
        assert!(Budget::default().is_unlimited());
        let mut m = Budget::unlimited().meter();
        assert!(m.spend(u64::MAX).is_ok());
        assert!(m.spend(u64::MAX).is_ok(), "saturating add cannot wrap");
        assert_eq!(m.remaining(), 0);
        assert!(!m.is_exhausted());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Budget::steps(7).to_string(), "7 steps");
        assert_eq!(Budget::unlimited().to_string(), "unlimited");
        assert_eq!(Exhausted { limit: 7 }.to_string(), "step budget of 7 exhausted");
    }

    #[test]
    fn deadlines() {
        assert!(!Deadline::none().expired());
        assert!(!Deadline::from_config(None).expired());
        let d = Deadline::after_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(d.expired());
        assert!(Deadline::from_config(Some(0)).expires_at.is_some());
        // A far-future deadline is live but unexpired.
        assert!(!Deadline::after_ms(1_000_000).expired());
    }
}
