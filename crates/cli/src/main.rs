//! `rock` — command-line class-hierarchy reconstructor.
//!
//! ```text
//! rock list                          list suite benchmarks
//! rock gen <bench> <out.rkb>         compile a benchmark to an image file
//!          [--keep-debug]            keep symbols + RTTI (default: strip)
//! rock info <file.rkb>               sections / functions / vtables summary
//! rock disasm <file.rkb>             full disassembly listing
//! rock vtables <file.rkb>            discovered vtables and their slots
//! rock families <file.rkb>           structural analysis (families + candidates)
//! rock reconstruct <file.rkb>        reconstruct the class hierarchy
//!          [--metric kl|js|jsd]      distance criterion (default kl)
//!          [--threads <n>]           worker threads (0 = auto, default)
//!          [--fuel <steps>]          per-function symbolic-execution budget
//!          [--timings]               print per-stage wall-clock + counters
//!                                    (incl. SLM arena nodes/edges/bytes and
//!                                    unique-vs-total training words)
//!          [--diagnostics]           print coverage + contained faults
//!          [--strict]                fail fast instead of degrading
//!                                    (strict load + abort on first error)
//!          [--dot]                   emit graphviz instead of a tree
//! rock eval <bench>                  Table 2 row for one benchmark
//! rock table2                        the whole Table 2
//! ```

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rock: {e}");
            ExitCode::FAILURE
        }
    }
}
