//! `rock` — command-line class-hierarchy reconstructor.
//!
//! ```text
//! rock list                          list suite benchmarks
//! rock gen <bench> <out.rkb>         compile a benchmark to an image file
//!          [--keep-debug]            keep symbols + RTTI (default: strip)
//! rock info <file.rkb>               sections / functions / vtables summary
//! rock disasm <file.rkb>             full disassembly listing
//! rock vtables <file.rkb>            discovered vtables and their slots
//! rock families <file.rkb>           structural analysis (families + candidates)
//! rock reconstruct <file.rkb>        reconstruct the class hierarchy
//!          [--metric kl|js|jsd]      distance criterion (default kl)
//!          [--threads <n>]           worker threads (0 = auto, default)
//!          [--fuel <steps>]          per-function symbolic-execution budget
//!          [--timings]               print per-stage wall-clock + counters
//!                                    (incl. SLM arena nodes/edges/bytes and
//!                                    unique-vs-total training words)
//!          [--diagnostics]           print coverage + contained faults
//!          [--strict]                fail fast instead of degrading
//!                                    (strict load + abort on first error)
//!          [--dot]                   emit graphviz instead of a tree
//! rock eval <bench>                  Table 2 row for one benchmark
//! rock table2                        the whole Table 2
//! rock batch <file.rkb ...>          supervised batch reconstruction
//!          [--jobs <list>]           read job paths (one per line) from a file
//!          [--store <dir>]           artifact store root (default .rock-store)
//!          [--resume]                restore checkpointed stages
//!          [--max-retries <n>]       retry ladder depth (default 3)
//!          [--deadline <ms>]         per-job watchdog deadline
//!          [--max-errors <n>]        abort batch after n hard failures
//!          [--report <path>]         write the batch report JSON to a file
//!          [--sleep-backoff]         actually sleep retry backoff delays
//!          [--timings]               batch throughput + resume summary
//! rock serve                         multi-tenant reconstruction daemon
//!          [--addr host:port]        bind address (default 127.0.0.1:0)
//!          [--store <dir>]           artifact store root (default .rock-store)
//!          [--port-file <path>]      write the bound address for scripts
//!          [--queue <n>]             admission-queue capacity (default 64)
//!          [--workers <n>]           worker threads (default 4)
//!          [--quota-burst <n>]       per-client token burst (default 32)
//!          [--quota-refill <n>]      tokens per second (0 = never refill)
//!          [--max-inflight <n>]      per-client inflight cap (default 16)
//!          [--deadline <ms>]         default per-job deadline
//!          [--corpus-cap <n>]        corpus-cache entries per tier
//!          [--send-budget <n>]       per-connection send budget, bytes
//!          serves until drained (Drain frame or SIGTERM), then exits 0
//! rock client <addr> <verb>          loopback client for a running daemon
//!          submit <file.rkb> [--wait] | status <job> | cancel <job> | drain
//!          hammer [--clients n] [--jobs n] [--over-quota n] [--burst n] [--slow]
//! ```
//!
//! Exit codes: `0` success; `1` usage / interrupted job; `2` a job
//! degraded (retry ladder or contained faults); `3` a job failed
//! (unloadable image or strict mode); `4` a job blew its deadline;
//! `5` resume found corrupt artifacts. A batch exits with the largest
//! per-job code.

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("rock: {e}");
            ExitCode::FAILURE
        }
    }
}
