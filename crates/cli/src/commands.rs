//! Command implementations for the `rock` CLI.

use std::error::Error;
use std::fmt::Write as _;
use std::fs;
use std::sync::Arc;

use rock_binary::{image_from_bytes, image_to_bytes, Addr, BinaryImage};
use rock_budget::RetryPolicy;
use rock_core::suite::{all_benchmarks, benchmark};
use rock_core::{evaluate, render_table2, Parallelism, Rock, RockConfig, Table2Row};
use rock_loader::LoadedBinary;
use rock_slm::Metric;
use rock_supervisor::{ArtifactStore, StdVfs, Supervisor, SupervisorOptions};
use rock_trace::{
    chrome_trace_json, validate_chrome_trace, validate_metrics_doc, TraceLevel, Tracer,
};

type CliResult = Result<(), Box<dyn Error>>;

/// How `--timings[=json]` renders (shared by `reconstruct` and `batch`;
/// see [`emit_timings`]).
#[derive(Clone, Copy, PartialEq, Eq)]
enum TimingsFormat {
    Text,
    Json,
}

/// Parses a `--timings` / `--timings=json` flag occurrence.
fn parse_timings_flag(arg: &str) -> Result<TimingsFormat, Box<dyn Error>> {
    match arg {
        "--timings" => Ok(TimingsFormat::Text),
        "--timings=json" => Ok(TimingsFormat::Json),
        other => {
            Err(format!("bad timings flag {other:?} (use --timings or --timings=json)").into())
        }
    }
}

/// The one timings formatter: `reconstruct` and `batch` both go through
/// here, so the two surfaces can never drift apart again. `label` tags
/// batch per-job lines; empty for single reconstructions.
fn emit_timings(label: &str, timings: &rock_core::StageTimings, format: TimingsFormat) {
    match format {
        TimingsFormat::Text => {
            if !label.is_empty() {
                println!("[{label}]");
            }
            println!("{timings}");
        }
        TimingsFormat::Json if label.is_empty() => println!("{}", timings.to_json()),
        TimingsFormat::Json => {
            println!("{{\"job\":\"{label}\",\"timings\":{}}}", timings.to_json());
        }
    }
}

/// Parses a `--trace-level` value (`off|stage|sampled|full`).
fn parse_trace_level(v: &str) -> Result<TraceLevel, String> {
    TraceLevel::parse(v)
        .ok_or_else(|| format!("unknown trace level {v:?} (off|stage|sampled|full)"))
}

/// Writes a validated Chrome-trace document for `tracer` to `path`.
fn write_trace(path: &str, tracer: &Tracer) -> CliResult {
    let doc = chrome_trace_json(&tracer.events());
    validate_chrome_trace(&doc).map_err(|e| format!("internal: invalid trace export: {e}"))?;
    fs::write(path, &doc).map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!(
        "wrote {path}: chrome trace, {} events (load via chrome://tracing)",
        tracer.events().len()
    );
    Ok(())
}

const USAGE: &str = "usage: rock <list|gen|info|disasm|vtables|families|reconstruct|pseudo|run|stats|eval|table2|batch|serve|client|store> ...
run `rock help` for details";

/// Dispatches one CLI invocation; `Ok` carries the process exit code
/// (always `0` except for `batch`, whose typed codes surface degraded,
/// failed, deadline-blown, and corrupt-resume jobs — see the README).
pub fn dispatch(args: &[String]) -> Result<u8, Box<dyn Error>> {
    let ok = |r: CliResult| r.map(|()| 0u8);
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            Ok(0)
        }
        Some("list") => ok(cmd_list()),
        Some("gen") => ok(cmd_gen(&args[1..])),
        Some("info") => ok(cmd_info(&args[1..])),
        Some("disasm") => ok(cmd_disasm(&args[1..])),
        Some("vtables") => ok(cmd_vtables(&args[1..])),
        Some("families") => ok(cmd_families(&args[1..])),
        Some("reconstruct") => ok(cmd_reconstruct(&args[1..])),
        Some("pseudo") => ok(cmd_pseudo(&args[1..])),
        Some("run") => ok(cmd_run(&args[1..])),
        Some("stats") => ok(cmd_stats(&args[1..])),
        Some("eval") => ok(cmd_eval(&args[1..])),
        Some("table2") => ok(cmd_table2(&args[1..])),
        Some("batch") => cmd_batch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}").into()),
    }
}

fn load_file(path: &str) -> Result<LoadedBinary, Box<dyn Error>> {
    let data = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let image = image_from_bytes(&data)?;
    Ok(LoadedBinary::load(image)?)
}

/// Best-effort load: malformed sections degrade to recorded issues on a
/// partial binary instead of an error (used by `reconstruct` unless
/// `--strict`).
fn load_file_lenient(path: &str) -> Result<LoadedBinary, Box<dyn Error>> {
    let data = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let image = image_from_bytes(&data)?;
    Ok(LoadedBinary::load_lenient(image))
}

fn cmd_list() -> CliResult {
    println!("{:<18} {:>5}  structurally resolvable", "benchmark", "types");
    for b in all_benchmarks() {
        println!(
            "{:<18} {:>5}  {}",
            b.name,
            b.paper.types,
            if b.structurally_resolvable { "yes" } else { "no" }
        );
    }
    println!("(plus examples: streams, datasource)");
    Ok(())
}

fn find_benchmark(name: &str) -> Result<rock_core::suite::Benchmark, Box<dyn Error>> {
    match name {
        "streams" => Ok(rock_core::suite::streams_example()),
        "datasource" => Ok(rock_core::suite::datasource_example()),
        _ => benchmark(name)
            .ok_or_else(|| format!("unknown benchmark {name:?}; run `rock list`").into()),
    }
}

fn cmd_gen(args: &[String]) -> CliResult {
    let mut keep_debug = false;
    let mut positional = Vec::new();
    for a in args {
        match a.as_str() {
            "--keep-debug" => keep_debug = true,
            other if other.starts_with("--") => {
                return Err(format!("gen: unknown flag {other}").into())
            }
            other => positional.push(other),
        }
    }
    let [name, out] = positional[..] else {
        return Err("usage: rock gen <benchmark> <out.rkb> [--keep-debug]".into());
    };
    let bench = find_benchmark(name)?;
    let compiled = bench.compile()?;
    let image: BinaryImage =
        if keep_debug { compiled.image().clone() } else { compiled.stripped_image() };
    fs::write(out, image_to_bytes(&image))?;
    println!(
        "wrote {out}: {} bytes, {} ({})",
        image.size(),
        bench.name,
        if keep_debug { "with debug info" } else { "stripped" }
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> CliResult {
    let [path] = args else { return Err("usage: rock info <file.rkb>".into()) };
    let loaded = load_file(path)?;
    print!("{}", loaded.image());
    println!("functions: {}", loaded.functions().len());
    println!("vtables (binary types): {}", loaded.vtables().len());
    if !loaded.image().is_stripped() {
        println!("NOTE: image carries debug info ({} RTTI records)", loaded.image().rtti().len());
    }
    Ok(())
}

fn cmd_disasm(args: &[String]) -> CliResult {
    let [path] = args else { return Err("usage: rock disasm <file.rkb>".into()) };
    let loaded = load_file(path)?;
    for f in loaded.functions() {
        let name = loaded
            .image()
            .symbols()
            .at(f.entry())
            .map(|s| format!(" <{}>", s.name))
            .unwrap_or_default();
        println!("fn @{}{name}:", f.entry());
        for d in f.instrs() {
            println!("  {d}");
        }
    }
    Ok(())
}

fn cmd_vtables(args: &[String]) -> CliResult {
    let [path] = args else { return Err("usage: rock vtables <file.rkb>".into()) };
    let loaded = load_file(path)?;
    for vt in loaded.vtables() {
        let name = loaded
            .image()
            .symbols()
            .at(vt.addr())
            .map(|s| format!(" <{}>", s.name))
            .unwrap_or_default();
        println!("vtable @{}{name} ({} slots)", vt.addr(), vt.len());
        for (i, slot) in vt.slots().iter().enumerate() {
            println!("  [{i}] -> {slot}");
        }
    }
    Ok(())
}

fn cmd_families(args: &[String]) -> CliResult {
    let [path] = args else { return Err("usage: rock families <file.rkb>".into()) };
    let loaded = load_file(path)?;
    let config = RockConfig::paper();
    let ctors = rock_analysis::recognize_ctors(&loaded, &config.analysis);
    let s = rock_structural::analyze(&loaded, &ctors, &config.analysis);
    print!("{s}");
    println!("phase II eliminations: {}", s.stats());
    println!("ctor-like functions: {}", ctors.len());
    println!("pinned parents: {}", s.pinned().len());
    println!(
        "structurally resolved: {} ({} candidate hierarchies)",
        s.is_structurally_resolved(),
        s.candidate_hierarchies()
    );
    for fam in s.families() {
        for &vt in fam {
            let candidates = s.possible_parents().of(vt);
            if candidates.len() > 1 {
                let list: Vec<String> = candidates.iter().map(ToString::to_string).collect();
                println!("  ambiguous: {vt} <- {{{}}}", list.join(", "));
            }
        }
    }
    Ok(())
}

/// `rock stats <file.rkb>` — behavioral-analysis statistics per type.
fn cmd_stats(args: &[String]) -> CliResult {
    let [path] = args else { return Err("usage: rock stats <file.rkb>".into()) };
    let loaded = load_file(path)?;
    let config = RockConfig::paper();
    let analysis = rock_analysis::extract_tracelets(&loaded, &config.analysis);
    for vt in loaded.vtables() {
        let name = loaded
            .image()
            .symbols()
            .at(vt.addr())
            .map(|s| s.name.clone())
            .unwrap_or_else(|| vt.addr().to_string());
        println!("{name}: {}", analysis.tracelets().stats_of(vt.addr()));
    }
    println!(
        "total: {} tracelets over {} types; {} ctor-like functions",
        analysis.tracelets().total(),
        analysis.tracelets().types().count(),
        analysis.ctors().len()
    );
    Ok(())
}

/// `rock run <file.rkb> <function> [word args...]` — execute a function
/// in the reference interpreter. Needs an unstripped image (the VM
/// locates the allocator via symbols).
fn cmd_run(args: &[String]) -> CliResult {
    let [path, func, rest @ ..] = args else {
        return Err("usage: rock run <file.rkb> <function> [args...]".into());
    };
    let loaded = load_file(path)?;
    let entry = loaded
        .image()
        .symbols()
        .by_name(func)
        .map(|s| s.addr)
        .ok_or_else(|| format!("no symbol {func:?} (stripped image? use gen --keep-debug)"))?;
    let vm_args: Vec<u64> = rest
        .iter()
        .map(|a| a.parse::<u64>().map_err(|e| format!("bad argument {a:?}: {e}")))
        .collect::<Result<_, _>>()?;
    let mut vm = rock_vm::Machine::new(loaded.image().clone())?;
    let outcome = vm.run(entry, &vm_args)?;
    println!(
        "{func} returned {} after {} steps{}",
        outcome.return_value,
        outcome.steps,
        if outcome.halted { " (halted)" } else { "" }
    );
    println!("trace ({} events):", vm.trace().len());
    for e in vm.trace().events() {
        println!("  {e}");
    }
    Ok(())
}

fn cmd_pseudo(args: &[String]) -> CliResult {
    let [path] = args else { return Err("usage: rock pseudo <file.rkb>".into()) };
    let loaded = load_file(path)?;
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    print!("{}", rock_core::pseudo_source(&loaded, &recon));
    Ok(())
}

fn parse_metric(s: &str) -> Result<Metric, Box<dyn Error>> {
    match s {
        "kl" => Ok(Metric::KlDivergence),
        "js" => Ok(Metric::JsDivergence),
        "jsd" => Ok(Metric::JsDistance),
        other => Err(format!("unknown metric {other:?} (kl|js|jsd)").into()),
    }
}

fn cmd_reconstruct(args: &[String]) -> CliResult {
    let mut dot = false;
    let mut timings: Option<TimingsFormat> = None;
    let mut diagnostics = false;
    let mut strict = false;
    let mut fuel = None;
    let mut metric = Metric::KlDivergence;
    let mut parallelism = Parallelism::Auto;
    let mut trace_path: Option<String> = None;
    // Production default: deterministic 1-in-16 span sampling. Use
    // `--trace-level full` for complete trees (golden/determinism runs).
    let mut trace_level = TraceLevel::Sampled;
    // None: off; Some(None): stdout; Some(Some(p)): write to file p.
    let mut metrics_out: Option<Option<String>> = None;
    let mut path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dot" => dot = true,
            "--timings" | "--timings=json" => timings = Some(parse_timings_flag(a)?),
            "--trace" => {
                trace_path = Some(it.next().ok_or("--trace needs an output path")?.clone());
            }
            "--trace-level" => {
                let v = it.next().ok_or("--trace-level needs a value (off|stage|sampled|full)")?;
                trace_level = parse_trace_level(v)?;
            }
            "--metrics" => metrics_out = Some(None),
            "--diagnostics" => diagnostics = true,
            "--strict" => strict = true,
            "--metric" => {
                let v = it.next().ok_or("--metric needs a value")?;
                metric = parse_metric(v)?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value (count, or 0 for auto)")?;
                let n: usize = v.parse().map_err(|e| format!("bad thread count {v:?}: {e}"))?;
                parallelism = if n == 0 { Parallelism::Auto } else { Parallelism::Threads(n) };
            }
            "--fuel" => {
                let v = it.next().ok_or("--fuel needs a value (steps per function)")?;
                let n: u64 = v.parse().map_err(|e| format!("bad fuel {v:?}: {e}"))?;
                fuel = Some(rock_analysis::Budget::steps(n));
            }
            other if other.starts_with("--metrics=") => {
                metrics_out = Some(Some(other["--metrics=".len()..].to_string()));
            }
            other if other.starts_with("--") => {
                return Err(format!("reconstruct: unknown flag {other}").into())
            }
            other => path = Some(other.to_string()),
        }
    }
    let path = path.ok_or(
        "usage: rock reconstruct <file.rkb> [--metric kl|js|jsd] [--threads n] [--fuel steps] \
         [--timings[=json]] [--trace <out.json>] [--trace-level off|stage|sampled|full] \
         [--metrics[=path]] [--diagnostics] [--strict] [--dot]",
    )?;
    // Lenient by default: a damaged image degrades to a partial binary
    // with recorded issues; --strict restores the old fail-fast load.
    let loaded = if strict { load_file(&path)? } else { load_file_lenient(&path)? };
    let mut config = RockConfig::with_metric(metric).with_parallelism(parallelism);
    if strict {
        config = config.with_strict();
    }
    if let Some(budget) = fuel {
        config.analysis.fuel = budget;
    }
    let tracer = trace_path.as_ref().map(|_| Arc::new(Tracer::new()));
    let mut rock = Rock::new(config).with_trace_level(trace_level);
    if let Some(t) = &tracer {
        rock = rock.with_tracer(t.clone());
    }
    let recon = rock.try_reconstruct(&loaded)?;
    // Label with symbols when available (unstripped input), else addresses.
    let label = |a: Addr| -> String {
        loaded.image().symbols().at(a).map(|s| s.name.clone()).unwrap_or_else(|| a.to_string())
    };
    if dot {
        println!("{}", hierarchy_dot(&recon, &label));
    } else {
        let named = recon.hierarchy.map(|a| label(*a));
        print!("{named}");
        println!("({} types, metric {metric})", recon.hierarchy.len());
    }
    if let Some(format) = timings {
        emit_timings("", &recon.timings, format);
    }
    if let (Some(path), Some(tracer)) = (&trace_path, &tracer) {
        write_trace(path, tracer)?;
    }
    if let Some(dest) = metrics_out {
        let doc = recon.metrics.to_json();
        validate_metrics_doc(&doc).map_err(|e| format!("internal: invalid metrics doc: {e}"))?;
        match dest {
            None => println!("{doc}"),
            Some(path) => {
                fs::write(&path, &doc).map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("wrote {path}: metrics schema v1, {} bytes", doc.len());
            }
        }
    }
    if diagnostics {
        println!("{}", recon.coverage);
        if recon.diagnostics.is_empty() {
            println!("diagnostics: none");
        } else {
            println!("diagnostics ({}):", recon.diagnostics.len());
            for e in &recon.diagnostics {
                println!("  {e}");
            }
        }
    }
    Ok(())
}

/// Graphviz rendering of a reconstructed hierarchy.
fn hierarchy_dot(recon: &rock_core::Reconstruction, label: &dyn Fn(Addr) -> String) -> String {
    let mut out = String::from("digraph hierarchy {\n  rankdir=BT;\n");
    for node in recon.hierarchy.nodes() {
        let _ = writeln!(out, "  \"{}\";", label(*node));
        if let Some(p) = recon.hierarchy.parent_of(node) {
            let _ = writeln!(out, "  \"{}\" -> \"{}\";", label(*node), label(*p));
        }
    }
    out.push('}');
    out
}

fn cmd_eval(args: &[String]) -> CliResult {
    let [name] = args else { return Err("usage: rock eval <benchmark>".into()) };
    let bench = find_benchmark(name)?;
    let compiled = bench.compile()?;
    let loaded = LoadedBinary::load(compiled.stripped_image())?;
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    let eval = evaluate(&compiled, &recon);
    println!("{}", bench.name);
    print!("{eval}");
    println!(
        "paper: without {:.2}/{:.2}, with {:.2}/{:.2}",
        bench.paper.without.0, bench.paper.without.1, bench.paper.with.0, bench.paper.with.1
    );
    Ok(())
}

fn cmd_table2(args: &[String]) -> CliResult {
    let markdown = match args {
        [] => false,
        [flag] if flag == "--markdown" => true,
        _ => return Err("usage: rock table2 [--markdown]".into()),
    };
    let mut rows = Vec::new();
    for bench in all_benchmarks() {
        let compiled = bench.compile()?;
        let loaded = LoadedBinary::load(compiled.stripped_image())?;
        let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
        let eval = evaluate(&compiled, &recon);
        rows.push(Table2Row::new(&bench, &eval));
    }
    if markdown {
        println!("{}", rock_core::render_table2_markdown(&rows));
    } else {
        println!("{}", render_table2(&rows));
    }
    Ok(())
}

/// `rock batch` — supervised batch reconstruction with checkpoints,
/// watchdog deadlines, and the retry/degradation ladder. Returns the
/// batch's typed exit code (largest per-job code).
fn cmd_batch(args: &[String]) -> Result<u8, Box<dyn Error>> {
    let mut store_dir = String::from(".rock-store");
    let mut resume = false;
    let mut max_retries: u32 = 3;
    let mut deadline_ms = None;
    let mut max_failures = None;
    let mut metric = Metric::KlDivergence;
    let mut parallelism = Parallelism::Auto;
    let mut strict = false;
    let mut sleep_backoff = false;
    let mut durable = false;
    let mut report_path: Option<String> = None;
    let mut timings: Option<TimingsFormat> = None;
    let mut trace_path: Option<String> = None;
    let mut trace_level = TraceLevel::Sampled;
    let mut metrics = false;
    let mut fuel = None;
    let mut corpus_manifest: Option<String> = None;
    let mut incremental = false;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--resume" => resume = true,
            "--incremental" => incremental = true,
            "--strict" => strict = true,
            "--sleep-backoff" => sleep_backoff = true,
            "--durable" => durable = true,
            "--timings" | "--timings=json" => timings = Some(parse_timings_flag(a)?),
            "--metrics" => metrics = true,
            "--trace" => {
                trace_path = Some(it.next().ok_or("--trace needs an output path")?.clone());
            }
            "--trace-level" => {
                let v = it.next().ok_or("--trace-level needs a value (off|stage|sampled|full)")?;
                trace_level = parse_trace_level(v)?;
            }
            "--store" => store_dir = it.next().ok_or("--store needs a directory")?.clone(),
            "--report" => report_path = Some(it.next().ok_or("--report needs a path")?.clone()),
            "--jobs" => {
                let list = it.next().ok_or("--jobs needs a file (one image path per line)")?;
                let text =
                    fs::read_to_string(list).map_err(|e| format!("cannot read {list}: {e}"))?;
                paths.extend(
                    text.lines().map(str::trim).filter(|l| !l.is_empty()).map(String::from),
                );
            }
            "--corpus" => {
                let list =
                    it.next().ok_or("--corpus needs a manifest (one image path per line)")?;
                let text =
                    fs::read_to_string(list).map_err(|e| format!("cannot read {list}: {e}"))?;
                paths.extend(
                    text.lines().map(str::trim).filter(|l| !l.is_empty()).map(String::from),
                );
                corpus_manifest = Some(list.clone());
            }
            "--max-retries" => {
                let v = it.next().ok_or("--max-retries needs a count")?;
                max_retries = v.parse().map_err(|e| format!("bad retry count {v:?}: {e}"))?;
            }
            "--deadline" => {
                let v = it.next().ok_or("--deadline needs milliseconds")?;
                deadline_ms =
                    Some(v.parse::<u64>().map_err(|e| format!("bad deadline {v:?}: {e}"))?);
            }
            "--max-errors" => {
                let v = it.next().ok_or("--max-errors needs a count")?;
                max_failures =
                    Some(v.parse::<usize>().map_err(|e| format!("bad error cap {v:?}: {e}"))?);
            }
            "--metric" => metric = parse_metric(it.next().ok_or("--metric needs a value")?)?,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value (count, or 0 for auto)")?;
                let n: usize = v.parse().map_err(|e| format!("bad thread count {v:?}: {e}"))?;
                parallelism = if n == 0 { Parallelism::Auto } else { Parallelism::Threads(n) };
            }
            "--fuel" => {
                let v = it.next().ok_or("--fuel needs a value (steps per function)")?;
                let n: u64 = v.parse().map_err(|e| format!("bad fuel {v:?}: {e}"))?;
                fuel = Some(rock_analysis::Budget::steps(n));
            }
            other if other.starts_with("--") => {
                return Err(format!("batch: unknown flag {other}").into())
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() {
        return Err("usage: rock batch <file.rkb ...> [--jobs <list>] [--corpus <manifest>] \
                    [--store <dir>] [--resume] [--incremental] [--durable] \
                    [--max-retries n] [--deadline ms] [--max-errors n] [--metric kl|js|jsd] \
                    [--threads n] [--strict] [--report <path>] [--sleep-backoff] \
                    [--timings[=json]] [--trace <out.json>] \
                    [--trace-level off|stage|sampled|full] [--metrics]"
            .into());
    }
    let mut jobs: Vec<(String, Vec<u8>)> = Vec::with_capacity(paths.len());
    for path in &paths {
        let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let name = std::path::Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        jobs.push((name, bytes));
    }
    let mut config = RockConfig::with_metric(metric).with_parallelism(parallelism);
    if strict {
        config = config.with_strict();
    }
    if let Some(budget) = fuel {
        config.analysis.fuel = budget;
    }
    // Corpus and incremental modes canonicalize call targets so SLM
    // training inputs are position-independent and shareable across
    // every binary in the fleet — and across edits of one binary.
    if corpus_manifest.is_some() || incremental {
        config = config.with_canonical_calls();
    }
    let options = SupervisorOptions {
        retry: RetryPolicy::new(max_retries),
        deadline_ms,
        resume,
        sleep_backoff,
        max_failures,
        collect_metrics: metrics,
        incremental,
    };
    // `--durable` trades latency for crash safety: each checkpoint is
    // fsynced (file + directory) before its commit rename counts.
    // `--sleep-backoff` also makes *store* retries sleep their curve.
    let store = ArtifactStore::open_with(&store_dir, StdVfs::arc(), durable)?
        .with_sleep_backoff(sleep_backoff);
    let tracer = trace_path.as_ref().map(|_| Arc::new(Tracer::new()));
    let mut supervisor = Supervisor::new(config, store, options).with_trace_level(trace_level);
    if let Some(t) = &tracer {
        supervisor = supervisor.with_tracer(t.clone());
    }
    // `--incremental` needs a corpus cache even without a manifest: it
    // is the in-memory face of the persisted sub-artifact store.
    let corpus =
        (corpus_manifest.is_some() || incremental).then(|| Arc::new(rock_core::CorpusCache::new()));
    if let Some(c) = &corpus {
        supervisor = supervisor.with_corpus(c.clone());
    }
    let start = std::time::Instant::now();
    let batch = supervisor.run_batch(&jobs);
    let elapsed = start.elapsed();
    for job in &batch.jobs {
        println!("{}", job.report.to_json());
    }
    if let Some(n) = batch.aborted_after {
        eprintln!("batch aborted after {n}/{} jobs (--max-errors reached)", jobs.len());
    }
    if let Some(path) = report_path {
        let mut out = String::from("{\"jobs\":[");
        for (i, job) in batch.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&job.report.to_json());
        }
        let _ = write!(
            out,
            "],\"exit_code\":{},\"elapsed_ms\":{}}}",
            batch.exit_code,
            elapsed.as_millis()
        );
        fs::write(&path, out).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let (Some(path), Some(tracer)) = (&trace_path, &tracer) {
        write_trace(path, tracer)?;
    }
    if let Some(corpus) = &corpus {
        let s = corpus.stats();
        println!(
            "corpus: tracelets {}/{} hit, slms {}/{} hit, distances {}/{} hit, \
             liftings {}/{} hit ({:.1}% overall), \
             {} bytes stored, {} corrupt entries dropped, {} evicted",
            s.tracelet_hits,
            s.tracelet_hits + s.tracelet_misses,
            s.slm_hits,
            s.slm_hits + s.slm_misses,
            s.distance_hits,
            s.distance_hits + s.distance_misses,
            s.lifting_hits,
            s.lifting_hits + s.lifting_misses,
            s.hit_rate() * 100.0,
            s.bytes_stored,
            s.corrupt_dropped,
            s.evicted,
        );
    }
    if let Some(incr) = &batch.incr {
        println!(
            "incr: {} preloaded, {} flushed, {} unchanged, {} corrupt skipped, {} io errors",
            incr.preloaded, incr.flushed, incr.unchanged, incr.corrupt_skipped, incr.io_errors,
        );
    }
    if let Some(format) = timings {
        for job in &batch.jobs {
            if let rock_supervisor::JobOutput::Full(recon) = &job.output {
                emit_timings(&job.report.name, &recon.timings, format);
            }
        }
        let restored: usize = batch.jobs.iter().map(|j| j.report.restored.len()).sum();
        let run = batch.jobs.len();
        let ms = elapsed.as_millis().max(1);
        let incr_text = batch
            .incr
            .map(|i| format!(", incr {} preloaded / {} flushed", i.preloaded, i.flushed))
            .unwrap_or_default();
        let incr_json = batch
            .incr
            .map(|i| {
                format!(
                    ",\"incr_preloaded\":{},\"incr_flushed\":{},\"incr_unchanged\":{},\
                     \"incr_corrupt_skipped\":{},\"incr_io_errors\":{}",
                    i.preloaded, i.flushed, i.unchanged, i.corrupt_skipped, i.io_errors
                )
            })
            .unwrap_or_default();
        match format {
            TimingsFormat::Text => println!(
                "batch: {run} jobs in {ms} ms ({:.1} jobs/s), {restored} stages restored from \
                 checkpoints{incr_text}, exit code {}",
                run as f64 * 1000.0 / ms as f64,
                batch.exit_code
            ),
            TimingsFormat::Json => println!(
                "{{\"batch\":{{\"jobs\":{run},\"elapsed_ms\":{ms},\"stages_restored\":\
                 {restored}{incr_json},\"exit_code\":{}}}}}",
                batch.exit_code
            ),
        }
    }
    Ok(batch.exit_code)
}

/// `rock serve`: run the multi-tenant reconstruction daemon until it is
/// drained (Drain frame or SIGTERM), then exit 0.
fn cmd_serve(args: &[String]) -> Result<u8, Box<dyn Error>> {
    let mut addr = String::from("127.0.0.1:0");
    let mut cfg = rock_serve::ServeConfig::new(".rock-store");
    let mut port_file: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |flag: &str, unit: &str| -> Result<u64, Box<dyn Error>> {
            let v = it.next().ok_or_else(|| format!("{flag} needs {unit}"))?;
            Ok(v.parse::<u64>().map_err(|e| format!("bad {flag} value {v:?}: {e}"))?)
        };
        match a.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs host:port")?.clone(),
            "--store" => cfg.store_dir = it.next().ok_or("--store needs a directory")?.into(),
            "--port-file" => {
                port_file = Some(it.next().ok_or("--port-file needs a path")?.clone());
            }
            "--queue" => cfg.queue_capacity = num("--queue", "a capacity")? as usize,
            "--workers" => cfg.workers = num("--workers", "a thread count")? as usize,
            "--quota-burst" => cfg.quota.burst = num("--quota-burst", "a token count")?,
            "--quota-refill" => {
                cfg.quota.refill_per_sec = num("--quota-refill", "tokens per second")?;
            }
            "--max-inflight" => {
                cfg.quota.max_inflight = num("--max-inflight", "a job count")?;
            }
            "--deadline" => {
                cfg.options.deadline_ms = Some(num("--deadline", "milliseconds")?);
            }
            "--corpus-cap" => {
                cfg.corpus_capacity =
                    num("--corpus-cap", "entries per tier (0=unbounded)")? as usize;
            }
            "--max-image-bytes" => {
                cfg.max_image_bytes = num("--max-image-bytes", "a byte count")? as usize;
            }
            "--send-budget" => {
                cfg.send_budget_bytes =
                    num("--send-budget", "bytes per connection (0=unlimited)")? as usize;
            }
            "--idle-timeout" => cfg.idle_timeout_ms = num("--idle-timeout", "milliseconds")?,
            "--durable" => cfg.durable = true,
            "--incremental" => cfg.options.incremental = true,
            "--trace" => {
                trace_path = Some(it.next().ok_or("--trace needs an output path")?.clone());
            }
            "--trace-level" => {
                let v = it.next().ok_or("--trace-level needs a value (off|stage|sampled|full)")?;
                cfg.trace_level = parse_trace_level(v)?;
            }
            other => {
                return Err(format!(
                    "serve: unknown argument {other}\nusage: rock serve [--addr host:port] \
                     [--store <dir>] [--port-file <path>] [--queue n] [--workers n] \
                     [--quota-burst n] [--quota-refill n/s] [--max-inflight n] [--deadline ms] \
                     [--corpus-cap n] [--max-image-bytes n] [--send-budget n] \
                     [--idle-timeout ms] [--durable] [--incremental] [--trace <out.json>] \
                     [--trace-level off|stage|sampled|full]"
                )
                .into())
            }
        }
    }
    let tracer = trace_path.as_ref().map(|_| Arc::new(Tracer::new()));
    cfg.tracer = tracer.clone();
    let incremental = cfg.options.incremental;
    rock_serve::signals::install_termination_handler();
    let server = rock_serve::Server::bind(cfg, &addr)?;
    let handle = server.handle();
    let bound = server.local_addr()?;
    if let Some(path) = &port_file {
        fs::write(path, bound.to_string()).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    eprintln!("rock serve: listening on {bound}");
    let summary = server.run()?;
    if let (Some(path), Some(tracer)) = (&trace_path, &tracer) {
        write_trace(path, tracer)?;
    }
    println!(
        "rock serve: drained cleanly — accepted={} completed={} cancelled={} rejected={} \
         protocol_errors={} panics_contained={}",
        summary.accepted,
        summary.completed,
        summary.cancelled,
        summary.rejected,
        summary.protocol_errors,
        summary.panics_contained,
    );
    if incremental {
        let incr = handle.incr_stats();
        println!(
            "incr: {} preloaded, {} flushed, {} unchanged, {} corrupt skipped, {} io errors",
            incr.preloaded, incr.flushed, incr.unchanged, incr.corrupt_skipped, incr.io_errors,
        );
    }
    Ok(0)
}

/// `rock client <addr> <verb>`: loopback client for a running daemon.
fn cmd_client(args: &[String]) -> Result<u8, Box<dyn Error>> {
    const CLIENT_USAGE: &str = "usage: rock client <addr> <verb> ...
  submit <file.rkb> [--name n] [--deadline ms] [--client id] [--connect-retries n] [--wait]
  status <job>      [--client id] [--connect-retries n]
  cancel <job>      [--client id] [--connect-retries n]
  drain             [--client id] [--connect-retries n]
  hammer [--clients n] [--jobs n] [--over-quota n] [--bench name] [--slow] [--wait-ms ms]";
    let addr = args.first().ok_or(CLIENT_USAGE)?.clone();
    let verb = args.get(1).ok_or(CLIENT_USAGE)?.as_str();
    let rest = &args[2..];
    match verb {
        "submit" => client_submit(&addr, rest),
        "status" | "cancel" => client_job_query(&addr, verb, rest),
        "drain" => {
            let mut identity = String::from("rock-cli");
            let mut retries = 0u32;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--client" => {
                        identity = it.next().ok_or("--client needs an identity")?.clone();
                    }
                    "--connect-retries" => retries = parse_connect_retries(&mut it)?,
                    other => return Err(format!("client drain: unknown flag {other}").into()),
                }
            }
            let mut c = rock_serve::ServeClient::connect_with_retry(&addr, &identity, retries)?;
            let (queued, running) = c.drain()?;
            println!("drain started: {queued} queued, {running} running");
            Ok(0)
        }
        "hammer" => client_hammer(&addr, rest),
        other => Err(format!("client: unknown verb {other:?}\n{CLIENT_USAGE}").into()),
    }
}

/// Parses the value of a `--connect-retries` flag occurrence.
fn parse_connect_retries<'a>(
    it: &mut impl Iterator<Item = &'a String>,
) -> Result<u32, Box<dyn Error>> {
    let v = it.next().ok_or("--connect-retries needs a count")?;
    Ok(v.parse().map_err(|e| format!("bad retry count {v:?}: {e}"))?)
}

fn client_submit(addr: &str, args: &[String]) -> Result<u8, Box<dyn Error>> {
    let mut name: Option<String> = None;
    let mut identity = String::from("rock-cli");
    let mut deadline_ms = 0u64;
    let mut retries = 0u32;
    let mut wait = false;
    let mut path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--name" => name = Some(it.next().ok_or("--name needs a value")?.clone()),
            "--client" => identity = it.next().ok_or("--client needs an identity")?.clone(),
            "--deadline" => {
                let v = it.next().ok_or("--deadline needs milliseconds")?;
                deadline_ms = v.parse().map_err(|e| format!("bad deadline {v:?}: {e}"))?;
            }
            "--connect-retries" => retries = parse_connect_retries(&mut it)?,
            "--wait" => wait = true,
            other if other.starts_with("--") => {
                return Err(format!("client submit: unknown flag {other}").into())
            }
            other => path = Some(other.to_string()),
        }
    }
    let path = path.ok_or("client submit: needs an image file")?;
    let image = fs::read(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let name = name.unwrap_or_else(|| {
        std::path::Path::new(&path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone())
    });
    let mut c = rock_serve::ServeClient::connect_with_retry(addr, &identity, retries)?;
    match c.submit(&name, deadline_ms, &image)? {
        rock_serve::wire::Response::Accepted { job } => {
            println!("accepted: job {job}");
            if wait {
                let state = c.wait(job, 50, 600_000)?;
                print_job_state(job, &state);
                if let rock_serve::wire::JobState::Done { exit_code, .. } = state {
                    return Ok(exit_code);
                }
            }
            Ok(0)
        }
        rock_serve::wire::Response::Rejected { reason, detail } => {
            eprintln!("rejected ({reason}): {detail}");
            Ok(1)
        }
        other => Err(format!("unexpected response: {other:?}").into()),
    }
}

fn client_job_query(addr: &str, verb: &str, args: &[String]) -> Result<u8, Box<dyn Error>> {
    let mut identity = String::from("rock-cli");
    let mut retries = 0u32;
    let mut job: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--client" => identity = it.next().ok_or("--client needs an identity")?.clone(),
            "--connect-retries" => retries = parse_connect_retries(&mut it)?,
            other => job = Some(other.parse().map_err(|e| format!("bad job id {other:?}: {e}"))?),
        }
    }
    let job = job.ok_or_else(|| format!("client {verb}: needs a job id"))?;
    let mut c = rock_serve::ServeClient::connect_with_retry(addr, &identity, retries)?;
    let state = if verb == "cancel" { c.cancel(job)? } else { c.status(job)? };
    print_job_state(job, &state);
    Ok(0)
}

fn print_job_state(job: u64, state: &rock_serve::wire::JobState) {
    match state {
        rock_serve::wire::JobState::Done { exit_code, outcome, result_fp, report_json } => {
            println!("job {job}: done outcome={outcome} exit={exit_code} fp={result_fp:016x}");
            println!("{report_json}");
        }
        rock_serve::wire::JobState::Queued { position } => {
            println!("job {job}: queued at position {position}");
        }
        other => println!("job {job}: {}", other.name()),
    }
}

/// `rock client <addr> hammer`: the overload drill the CI smoke job
/// runs — N well-behaved tenants, one over-quota tenant, one trickling
/// slow client, all concurrent. Exits 0 iff every admitted job reached
/// a terminal `Done` state and every shed request carried a typed
/// rejection.
fn client_hammer(addr: &str, args: &[String]) -> Result<u8, Box<dyn Error>> {
    use rock_serve::wire::{JobState, RejectReason};
    let mut clients = 4usize;
    let mut jobs_per_client = 3usize;
    let mut over_quota = 8usize;
    // The daemon's per-client token burst (`--quota-burst` on `rock
    // serve`): with refill 0, everything the greedy tenant submits
    // beyond it must be quota-shed. Default matches the daemon default.
    let mut burst = 32usize;
    let mut bench = String::from("streams");
    let mut slow = false;
    let mut wait_ms = 300_000u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> Result<u64, Box<dyn Error>> {
            let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
            Ok(v.parse::<u64>().map_err(|e| format!("bad {flag} value {v:?}: {e}"))?)
        };
        match a.as_str() {
            "--clients" => clients = num("--clients")? as usize,
            "--jobs" => jobs_per_client = num("--jobs")? as usize,
            "--over-quota" => over_quota = num("--over-quota")? as usize,
            "--burst" => burst = num("--burst")? as usize,
            "--wait-ms" => wait_ms = num("--wait-ms")?,
            "--slow" => slow = true,
            "--bench" => bench = it.next().ok_or("--bench needs a name")?.clone(),
            other => return Err(format!("client hammer: unknown flag {other}").into()),
        }
    }
    let image = image_to_bytes(&find_benchmark(&bench)?.compile()?.stripped_image());
    let mut threads = Vec::new();
    // Well-behaved tenants: distinct identities, rapid-fire submissions.
    for t in 0..clients {
        let addr = addr.to_string();
        let image = image.clone();
        threads.push(std::thread::spawn(move || -> HammerTally {
            let mut tally = HammerTally::default();
            let Ok(mut c) = rock_serve::ServeClient::connect(&addr, &format!("tenant-{t}")) else {
                tally.errors += 1;
                return tally;
            };
            for j in 0..jobs_per_client {
                tally.note(c.submit(&format!("tenant-{t}-job-{j}"), 0, &image));
            }
            tally
        }));
    }
    // One tenant deliberately over its token budget: with refill 0 and
    // burst < over_quota, the tail is guaranteed QuotaExceeded.
    {
        let addr = addr.to_string();
        let image = image.clone();
        threads.push(std::thread::spawn(move || -> HammerTally {
            let mut tally = HammerTally::default();
            let Ok(mut c) = rock_serve::ServeClient::connect(&addr, "greedy") else {
                tally.errors += 1;
                return tally;
            };
            for j in 0..over_quota {
                tally.note(c.submit(&format!("greedy-job-{j}"), 0, &image));
            }
            tally
        }));
    }
    // One slow client trickling its submit frame byte-by-byte across
    // poll-tick boundaries: the daemon's buffered reader must stay in
    // sync and still admit (or shed) the request normally.
    if slow {
        let addr = addr.to_string();
        let image = image.clone();
        threads.push(std::thread::spawn(move || -> HammerTally {
            let mut tally = HammerTally::default();
            match hammer_trickle(&addr, &image) {
                Ok(response) => tally.note(Ok(response)),
                Err(_) => tally.errors += 1,
            }
            tally
        }));
    }
    let mut tally = HammerTally::default();
    for t in threads {
        tally.merge(t.join().map_err(|_| "hammer thread panicked")?);
    }
    // Every admitted job must reach a terminal state.
    let mut done = 0usize;
    let mut failed = 0usize;
    let mut watcher = rock_serve::ServeClient::connect(addr, "hammer-watch")?;
    for job in &tally.accepted {
        match watcher.wait(*job, 50, wait_ms)? {
            JobState::Done { outcome, .. } if outcome == "ok" => done += 1,
            JobState::Done { .. } | JobState::Cancelled => failed += 1,
            _ => failed += 1,
        }
    }
    let quota = tally.rejections.get(RejectReason::QuotaExceeded.name()).copied().unwrap_or(0);
    println!(
        "hammer: submitted={} accepted={} done={done} failed={failed} rejected={} \
         (queue_full={} quota_exceeded={quota} draining={} too_large={}) errors={}",
        tally.submitted,
        tally.accepted.len(),
        tally.rejected(),
        tally.rejections.get(RejectReason::QueueFull.name()).copied().unwrap_or(0),
        tally.rejections.get(RejectReason::Draining.name()).copied().unwrap_or(0),
        tally.rejections.get(RejectReason::TooLarge.name()).copied().unwrap_or(0),
        tally.errors,
    );
    // The greedy tenant's submissions beyond the daemon's token burst
    // (passed via --burst) must all have been quota-shed; when
    // over_quota exceeds the burst, this floor is necessarily > 0.
    let quota_floor = over_quota.saturating_sub(burst);
    let healthy = failed == 0
        && tally.errors == 0
        && done == tally.accepted.len()
        && tally.submitted == tally.accepted.len() + tally.rejected() as usize
        && quota as usize >= quota_floor;
    Ok(if healthy { 0 } else { 1 })
}

#[derive(Default)]
struct HammerTally {
    submitted: usize,
    accepted: Vec<u64>,
    rejections: std::collections::BTreeMap<&'static str, u64>,
    errors: usize,
}

impl HammerTally {
    fn note(&mut self, response: std::io::Result<rock_serve::wire::Response>) {
        use rock_serve::wire::Response;
        self.submitted += 1;
        match response {
            Ok(Response::Accepted { job }) => self.accepted.push(job),
            Ok(Response::Rejected { reason, .. }) => {
                *self.rejections.entry(reason.name()).or_insert(0) += 1;
            }
            Ok(_) | Err(_) => self.errors += 1,
        }
    }

    fn merge(&mut self, other: HammerTally) {
        self.submitted += other.submitted;
        self.accepted.extend(other.accepted);
        for (k, v) in other.rejections {
            *self.rejections.entry(k).or_insert(0) += v;
        }
        self.errors += other.errors;
    }

    fn rejected(&self) -> u64 {
        self.rejections.values().sum()
    }
}

/// Handshakes normally, then writes one `Submit` frame in small chunks
/// with pauses longer than the daemon's poll tick, and finally reads
/// the response. Exercises the server's partial-frame buffering.
fn hammer_trickle(addr: &str, image: &[u8]) -> Result<rock_serve::wire::Response, Box<dyn Error>> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr)?;
    let hello = rock_serve::wire::Request::Hello {
        version: rock_serve::wire::SERVE_PROTOCOL_VERSION,
        client: "trickle".to_string(),
    }
    .encode();
    stream.write_all(&(hello.len() as u32).to_le_bytes())?;
    stream.write_all(&hello)?;
    let frame = |s: &mut std::net::TcpStream| -> Result<Vec<u8>, Box<dyn Error>> {
        let mut prefix = [0u8; 4];
        s.read_exact(&mut prefix)?;
        let mut body = vec![0u8; u32::from_le_bytes(prefix) as usize];
        s.read_exact(&mut body)?;
        Ok(body)
    };
    rock_serve::wire::Response::decode(&frame(&mut stream)?)?; // HelloOk
    let submit = rock_serve::wire::Request::Submit {
        name: "trickle-job".to_string(),
        deadline_ms: 0,
        image: image.to_vec(),
    }
    .encode();
    let mut wire_bytes = (submit.len() as u32).to_le_bytes().to_vec();
    wire_bytes.extend_from_slice(&submit);
    // Length prefix byte-by-byte, then the body in three chunks, each
    // gap long enough to guarantee the daemon polls in between.
    for chunk in [&wire_bytes[..1], &wire_bytes[1..2], &wire_bytes[2..4]] {
        stream.write_all(chunk)?;
        std::thread::sleep(std::time::Duration::from_millis(40));
    }
    let body = &wire_bytes[4..];
    let third = body.len().div_ceil(3).max(1);
    for chunk in body.chunks(third) {
        stream.write_all(chunk)?;
        std::thread::sleep(std::time::Duration::from_millis(40));
    }
    Ok(rock_serve::wire::Response::decode(&frame(&mut stream)?)?)
}

/// `rock store scrub`: offline self-healing pass over an artifact
/// store. Verifies every artifact frame's checksum, sweeps orphaned
/// `.art.tmp` files, and quarantines corrupt or unknown entries under
/// `<store>/.quarantine/`. Exit code 0 unless the scrub itself hit
/// i/o errors it could not work around.
fn cmd_store(args: &[String]) -> Result<u8, Box<dyn Error>> {
    const STORE_USAGE: &str = "usage: rock store scrub [--store <dir>] [--dry-run] [--json]";
    let Some((verb, rest)) = args.split_first() else {
        return Err(STORE_USAGE.into());
    };
    if verb != "scrub" {
        return Err(format!("store: unknown verb {verb:?}\n{STORE_USAGE}").into());
    }
    let mut store_dir = String::from(".rock-store");
    let mut dry_run = false;
    let mut json = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => store_dir = it.next().ok_or("--store needs a directory")?.clone(),
            "--dry-run" => dry_run = true,
            "--json" => json = true,
            other => return Err(format!("store scrub: unknown flag {other}\n{STORE_USAGE}").into()),
        }
    }
    // Open without the usual open-time tmp sweep: scrub's own report
    // must account for every stale tmp, and `--dry-run` must not have
    // side effects (not even the mkdir of a mistyped store path).
    let store = ArtifactStore::open_unswept(&store_dir)?;
    let report = store.scrub(dry_run);
    if json {
        println!("{}", report.to_json());
    } else {
        for line in &report.details {
            println!("{}{line}", if dry_run { "would fix: " } else { "" });
        }
        println!(
            "scrub{}: {} job dirs, {} artifacts ok, {} corrupt quarantined, {} tmp swept, \
             {} unknown quarantined, {} io errors{}",
            if dry_run { " (dry run)" } else { "" },
            report.jobs_scanned,
            report.artifacts_ok,
            report.corrupt_quarantined,
            report.tmp_swept,
            report.unknown_quarantined,
            report.io_errors,
            if report.is_clean() { " — clean" } else { "" },
        );
    }
    Ok(if report.io_errors == 0 { 0 } else { 1 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_unknown() {
        assert!(dispatch(&[]).is_ok());
        assert!(dispatch(&["help".into()]).is_ok());
        assert!(dispatch(&["frobnicate".into()]).is_err());
    }

    #[test]
    fn list_runs() {
        assert!(cmd_list().is_ok());
    }

    #[test]
    fn metric_parsing() {
        assert_eq!(parse_metric("kl").unwrap(), Metric::KlDivergence);
        assert_eq!(parse_metric("js").unwrap(), Metric::JsDivergence);
        assert_eq!(parse_metric("jsd").unwrap(), Metric::JsDistance);
        assert!(parse_metric("euclid").is_err());
    }

    #[test]
    fn gen_info_reconstruct_roundtrip() {
        let dir = std::env::temp_dir().join("rock-cli-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("streams.rkb");
        let path_str = path.to_str().unwrap().to_string();
        dispatch(&["gen".into(), "streams".into(), path_str.clone()]).unwrap();
        dispatch(&["info".into(), path_str.clone()]).unwrap();
        dispatch(&["vtables".into(), path_str.clone()]).unwrap();
        dispatch(&["families".into(), path_str.clone()]).unwrap();
        dispatch(&["reconstruct".into(), path_str.clone()]).unwrap();
        dispatch(&["pseudo".into(), path_str.clone()]).unwrap();
        dispatch(&["stats".into(), path_str.clone()]).unwrap();
        dispatch(&["disasm".into(), path_str.clone()]).unwrap();
        dispatch(&["reconstruct".into(), path_str.clone(), "--dot".into()]).unwrap();
        dispatch(&["reconstruct".into(), path_str.clone(), "--metric".into(), "js".into()])
            .unwrap();
        dispatch(&[
            "reconstruct".into(),
            path_str.clone(),
            "--timings".into(),
            "--threads".into(),
            "2".into(),
        ])
        .unwrap();
        dispatch(&[
            "reconstruct".into(),
            path_str.clone(),
            "--diagnostics".into(),
            "--strict".into(),
        ])
        .unwrap();
        dispatch(&["reconstruct".into(), path_str.clone(), "--fuel".into(), "100000".into()])
            .unwrap();
        // A starved fuel budget degrades coverage but still succeeds
        // (non-strict), and is reported by --diagnostics.
        dispatch(&[
            "reconstruct".into(),
            path_str.clone(),
            "--fuel".into(),
            "1".into(),
            "--diagnostics".into(),
            "--timings".into(),
        ])
        .unwrap();
        assert!(dispatch(&["reconstruct".into(), path_str.clone(), "--fuel".into(), "x".into()])
            .is_err());
        // 0 means auto; garbage errors cleanly.
        dispatch(&["reconstruct".into(), path_str.clone(), "--threads".into(), "0".into()])
            .unwrap();
        assert!(dispatch(&[
            "reconstruct".into(),
            path_str.clone(),
            "--threads".into(),
            "lots".into(),
        ])
        .is_err());
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn trace_and_metrics_exports_validate() {
        let dir = std::env::temp_dir().join("rock-cli-trace");
        fs::create_dir_all(&dir).unwrap();
        let bin = dir.join("streams.rkb").to_str().unwrap().to_string();
        let trace = dir.join("trace.json").to_str().unwrap().to_string();
        let metrics = dir.join("metrics.json").to_str().unwrap().to_string();
        dispatch(&["gen".into(), "streams".into(), bin.clone()]).unwrap();
        dispatch(&[
            "reconstruct".into(),
            bin.clone(),
            "--trace".into(),
            trace.clone(),
            "--trace-level".into(),
            "full".into(),
            format!("--metrics={metrics}"),
            "--timings=json".into(),
            "--threads".into(),
            "2".into(),
        ])
        .unwrap();
        // At `full` (the CLI default is `sampled`), the exported trace
        // loads in chrome://tracing and carries per-item spans for all
        // four pipeline stages.
        let doc = fs::read_to_string(&trace).unwrap();
        validate_chrome_trace(&doc).unwrap();
        for span in ["analysis.function", "training.type", "distances.pair", "lifting.family"] {
            assert!(doc.contains(span), "trace missing per-item {span:?} spans");
        }
        // The production default still yields a valid export with the
        // coarse stage spans present.
        let strace = dir.join("trace-sampled.json").to_str().unwrap().to_string();
        dispatch(&["reconstruct".into(), bin.clone(), "--trace".into(), strace.clone()]).unwrap();
        let sdoc = fs::read_to_string(&strace).unwrap();
        validate_chrome_trace(&sdoc).unwrap();
        assert!(sdoc.contains("stage.analysis"), "sampled trace missing stage spans");
        // Unknown levels error out cleanly.
        assert!(dispatch(&[
            "reconstruct".into(),
            bin.clone(),
            "--trace".into(),
            trace.clone(),
            "--trace-level".into(),
            "verbose".into(),
        ])
        .is_err());
        let mdoc = fs::read_to_string(&metrics).unwrap();
        validate_metrics_doc(&mdoc).unwrap();
        // --metrics without a path prints to stdout instead of a file.
        dispatch(&["reconstruct".into(), bin.clone(), "--metrics".into()]).unwrap();

        // Batch: tracer covers supervisor spans; metrics embed in reports.
        let store = dir.join("store").to_str().unwrap().to_string();
        let btrace = dir.join("batch-trace.json").to_str().unwrap().to_string();
        let code = dispatch(&[
            "batch".into(),
            bin.clone(),
            "--store".into(),
            store,
            "--metrics".into(),
            "--trace".into(),
            btrace.clone(),
            "--timings=json".into(),
        ])
        .unwrap();
        assert_eq!(code, 0);
        let bdoc = fs::read_to_string(&btrace).unwrap();
        validate_chrome_trace(&bdoc).unwrap();
        assert!(bdoc.contains("supervisor.job"), "batch trace missing supervisor spans");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_corpus_mode_shares_work_across_jobs() {
        let dir = std::env::temp_dir().join("rock-cli-corpus");
        fs::create_dir_all(&dir).unwrap();
        let a = dir.join("streams-a.rkb").to_str().unwrap().to_string();
        let b = dir.join("streams-b.rkb").to_str().unwrap().to_string();
        dispatch(&["gen".into(), "streams".into(), a.clone()]).unwrap();
        fs::copy(&a, &b).unwrap();
        let manifest = dir.join("corpus.txt").to_str().unwrap().to_string();
        fs::write(&manifest, format!("{a}\n{b}\n")).unwrap();
        let store = dir.join("store").to_str().unwrap().to_string();
        let code = dispatch(&[
            "batch".into(),
            "--corpus".into(),
            manifest.clone(),
            "--store".into(),
            store,
            "--timings".into(),
        ])
        .unwrap();
        assert_eq!(code, 0);
        // A missing manifest errors cleanly.
        assert!(
            dispatch(&["batch".into(), "--corpus".into(), "/nonexistent/m.txt".into()]).is_err()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_command_executes_drivers() {
        let dir = std::env::temp_dir().join("rock-cli-test3");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("streams-run.rkb");
        let path_str = path.to_str().unwrap().to_string();
        dispatch(&["gen".into(), "streams".into(), path_str.clone(), "--keep-debug".into()])
            .unwrap();
        dispatch(&["run".into(), path_str.clone(), "useStream".into()]).unwrap();
        // Unknown symbol errors cleanly.
        assert!(dispatch(&["run".into(), path_str.clone(), "nope".into()]).is_err());
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn gen_keep_debug_labels_reconstruction() {
        let dir = std::env::temp_dir().join("rock-cli-test2");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("streams-debug.rkb");
        let path_str = path.to_str().unwrap().to_string();
        dispatch(&["gen".into(), "streams".into(), path_str.clone(), "--keep-debug".into()])
            .unwrap();
        let loaded = load_file(&path_str).unwrap();
        assert!(!loaded.image().is_stripped());
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn eval_runs_on_a_small_benchmark() {
        dispatch(&["eval".into(), "pop3".into()]).unwrap();
        assert!(dispatch(&["eval".into(), "nope".into()]).is_err());
    }

    #[test]
    fn missing_files_error_cleanly() {
        assert!(dispatch(&["info".into(), "/nonexistent/x.rkb".into()]).is_err());
        assert!(dispatch(&["gen".into()]).is_err());
        assert!(dispatch(&["reconstruct".into(), "--metric".into()]).is_err());
    }
}
