//! The typed exit codes of `rock batch`, asserted against the real
//! binary (the contract documented in the README).
//!
//! | code | meaning                                        |
//! |------|------------------------------------------------|
//! | 0    | every job ok at full strength                  |
//! | 1    | usage error / interrupted job                  |
//! | 2    | a job degraded (retry ladder, contained fault) |
//! | 3    | a job failed (unloadable image, strict mode)   |
//! | 4    | a job blew its watchdog deadline               |
//! | 5    | resume found corrupt artifacts                 |

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn rock(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rock")).args(args).output().expect("spawn rock")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A scratch dir with a generated benchmark image inside.
struct Scratch {
    dir: PathBuf,
    image: String,
    store: String,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("rock-exit-codes-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let image = dir.join("streams.rkb").to_str().unwrap().to_string();
        let out = rock(&["gen", "streams", &image]);
        assert_eq!(code(&out), 0, "gen must succeed: {:?}", out);
        let store = dir.join("store").to_str().unwrap().to_string();
        Scratch { dir, image, store }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn clean_batch_exits_zero_with_a_json_report_per_job() {
    let s = Scratch::new("ok");
    let out = rock(&["batch", &s.image, "--store", &s.store]);
    assert_eq!(code(&out), 0, "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let json = stdout(&out);
    assert!(json.contains("\"outcome\":\"ok\""), "got: {json}");
    assert!(json.contains("\"exit_code\":0"));
    assert!(json.contains("\"name\":\"streams\""));
}

#[test]
fn usage_errors_exit_one() {
    let out = rock(&["batch"]);
    assert_eq!(code(&out), 1, "no jobs is a usage error");
    let out = rock(&["batch", "--bogus-flag"]);
    assert_eq!(code(&out), 1);
}

#[test]
fn a_degraded_job_exits_two() {
    let s = Scratch::new("degraded");
    // One step of fuel starves the behavioral analysis: the run
    // completes with error-severity diagnostics and incomplete
    // coverage, which is the "degraded" outcome.
    let out = rock(&["batch", &s.image, "--store", &s.store, "--fuel", "1"]);
    assert_eq!(code(&out), 2, "stdout: {}", stdout(&out));
    let json = stdout(&out);
    assert!(json.contains("\"outcome\":\"degraded\""), "got: {json}");
    assert!(json.contains("\"exit_code\":2"));
}

#[test]
fn an_unloadable_image_exits_three_without_stopping_healthy_jobs() {
    let s = Scratch::new("failed");
    let bad = s.dir.join("bad.rkb").to_str().unwrap().to_string();
    fs::write(&bad, b"this is not an image").unwrap();
    let out = rock(&["batch", &s.image, &bad, "--store", &s.store]);
    assert_eq!(code(&out), 3, "stdout: {}", stdout(&out));
    let json = stdout(&out);
    assert!(json.contains("\"outcome\":\"ok\""), "healthy job still ran: {json}");
    assert!(json.contains("\"outcome\":\"failed\""));
    assert!(json.contains("unloadable image"));
}

#[test]
fn a_blown_deadline_exits_four_but_still_emits_a_hierarchy() {
    let s = Scratch::new("deadline");
    let out = rock(&["batch", &s.image, "--store", &s.store, "--deadline", "0"]);
    assert_eq!(code(&out), 4, "stdout: {}", stdout(&out));
    let json = stdout(&out);
    assert!(json.contains("\"outcome\":\"deadline\""), "got: {json}");
    // The structural-only fallback ran: the report counts its types.
    let types = json
        .split("\"types\":")
        .nth(1)
        .and_then(|rest| rest.split([',', '}']).next())
        .and_then(|n| n.parse::<usize>().ok())
        .expect("types field");
    assert!(types > 0, "fallback hierarchy must be non-empty: {json}");
}

#[test]
fn corrupt_resume_artifacts_exit_five_and_recompute() {
    let s = Scratch::new("corrupt");
    // First run populates the store.
    let out = rock(&["batch", &s.image, "--store", &s.store, "--resume"]);
    assert_eq!(code(&out), 0, "stdout: {}", stdout(&out));
    // Damage every analysis artifact in the store.
    let mut damaged = 0;
    for job_dir in fs::read_dir(&s.store).unwrap() {
        let art = job_dir.unwrap().path().join("analysis.art");
        if art.exists() {
            fs::write(&art, b"garbage").unwrap();
            damaged += 1;
        }
    }
    assert!(damaged > 0, "first run must have checkpointed");
    let out = rock(&["batch", &s.image, "--store", &s.store, "--resume"]);
    assert_eq!(code(&out), 5, "stdout: {}", stdout(&out));
    let json = stdout(&out);
    assert!(json.contains("\"resume_corrupt\":true"), "got: {json}");
    // The job itself still recomputed successfully.
    assert!(json.contains("\"outcome\":\"ok\""), "got: {json}");
}

#[test]
fn resume_restores_checkpointed_stages() {
    let s = Scratch::new("resume");
    let out = rock(&["batch", &s.image, "--store", &s.store, "--resume", "--timings"]);
    assert_eq!(code(&out), 0);
    assert!(stdout(&out).contains("\"restored\":[]"), "first run restores nothing");
    let out = rock(&["batch", &s.image, "--store", &s.store, "--resume", "--timings"]);
    assert_eq!(code(&out), 0);
    let json = stdout(&out);
    assert!(
        json.contains("\"restored\":[\"analysis\",\"training\",\"distances\",\"lifting\"]"),
        "second run restores every stage: {json}"
    );
    assert!(json.contains("4 stages restored"), "timings summary: {json}");
}

#[test]
fn report_file_collects_the_whole_batch() {
    let s = Scratch::new("report");
    let report = s.dir.join("report.json").to_str().unwrap().to_string();
    let out = rock(&["batch", &s.image, "--store", &s.store, "--report", &report]);
    assert_eq!(code(&out), 0);
    let body = fs::read_to_string(&report).unwrap();
    assert!(body.starts_with("{\"jobs\":["), "got: {body}");
    assert!(body.contains("\"exit_code\":0"));
    assert!(body.contains("\"elapsed_ms\":"));
}
