//! Structural analysis: pruning infeasible class hierarchies (Rock,
//! ASPLOS'18 §5).
//!
//! Works in two phases on the vtables of a loaded binary:
//!
//! * **Phase I — clustering into type families** (§5.1): two vtables that
//!   share a virtual-function pointer ("DNA fingerprint") belong to the
//!   same family; families are the connected components of that sharing
//!   relation. Constructor-call evidence (rule 3) also joins families.
//! * **Phase II — eliminating impossible parents** (§5.2):
//!   1. a parent's vtable cannot be longer than its child's;
//!   2. a child with a *pure* slot (pointing at the `__purecall` trap)
//!      at position `i` cannot descend from a parent whose slot `i` is
//!      concrete;
//!   3. a constructor that calls another type's constructor on its own
//!      `this` **pins** that type as the parent.
//!
//! The result — families plus a `possibleParent` relation — feeds the
//! behavioral lifting of `rock-core`, and is also a complete hierarchy
//! reconstructor on its own for structurally-resolvable binaries
//! (the paper's Table 2 top half).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzestruct;
mod purecall;

pub use analyzestruct::{analyze, EliminationStats, PossibleParents, Structural};
pub use purecall::purecall_candidates;
