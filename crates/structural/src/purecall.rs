//! Recognition of the pure-virtual-call trap.

use std::collections::BTreeSet;

use rock_binary::{Addr, Instr};
use rock_loader::LoadedBinary;

/// Finds functions that look like the `__purecall` trap: a bare prologue
/// followed immediately by `halt` (the runtime abort every pure-virtual
/// slot points at).
///
/// A vtable slot pointing at such a function is a *pure* slot — "a virtual
/// function which does not have an implementation" in the words of §5.2
/// rule 2.
pub fn purecall_candidates(loaded: &LoadedBinary) -> BTreeSet<Addr> {
    loaded
        .functions()
        .iter()
        .filter(|f| {
            let instrs = f.instrs();
            instrs.len() == 2
                && matches!(instrs[0].instr, Instr::Enter { .. })
                && matches!(instrs[1].instr, Instr::Halt)
        })
        .map(|f| f.entry())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_binary::{ImageBuilder, Reg};

    #[test]
    fn detects_trap_shape() {
        let mut b = ImageBuilder::new();
        b.begin_function("__purecall");
        b.push(Instr::Enter { frame: 0 });
        b.push(Instr::Halt);
        b.end_function();
        b.begin_function("normal");
        b.push(Instr::Enter { frame: 0 });
        b.push(Instr::MovImm { dst: Reg::R0, imm: 1 });
        b.push(Instr::Ret);
        b.end_function();
        b.begin_function("tiny_but_returns");
        b.push(Instr::Enter { frame: 0 });
        b.push(Instr::Ret);
        b.end_function();
        let mut image = b.finish();
        image.strip();
        let loaded = LoadedBinary::load(image).unwrap();
        let traps = purecall_candidates(&loaded);
        assert_eq!(traps.len(), 1);
        assert!(traps.contains(&loaded.functions()[0].entry()));
    }

    #[test]
    fn compiled_purecall_is_detected() {
        use rock_minicpp::{compile, CompileOptions, ProgramBuilder};
        let mut p = ProgramBuilder::new();
        p.class("I").pure_method("run");
        p.class("Impl").base("I").method("run", |b| {
            b.ret();
        });
        let c = compile(&p.finish(), &CompileOptions::default()).unwrap();
        let loaded = LoadedBinary::load(c.stripped_image()).unwrap();
        let traps = purecall_candidates(&loaded);
        assert_eq!(traps.len(), 1);
        // The pure slot of I's vtable points at the trap.
        let vt_i = loaded.vtable_at(c.vtable_of("I").unwrap()).unwrap();
        assert!(traps.contains(&vt_i.slots()[0]));
        let vt_impl = loaded.vtable_at(c.vtable_of("Impl").unwrap()).unwrap();
        assert!(!traps.contains(&vt_impl.slots()[0]));
    }
}
