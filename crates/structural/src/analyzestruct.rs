//! The two-phase structural analysis.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rock_analysis::{execute_function, AnalysisConfig, CtorMap, Event, ObjId};
use rock_binary::Addr;
use rock_graph::UnionFind;
use rock_loader::LoadedBinary;

use crate::purecall_candidates;

/// The `possibleParent` relation restricted to each child's family.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PossibleParents {
    allowed: BTreeMap<Addr, BTreeSet<Addr>>,
}

impl PossibleParents {
    /// The candidate parents of `child`, sorted.
    pub fn of(&self, child: Addr) -> Vec<Addr> {
        self.allowed.get(&child).map(|s| s.iter().copied().collect()).unwrap_or_default()
    }

    /// Returns `true` if `parent` may be `child`'s parent.
    pub fn is_possible(&self, parent: Addr, child: Addr) -> bool {
        self.allowed.get(&child).is_some_and(|s| s.contains(&parent))
    }

    fn remove(&mut self, parent: Addr, child: Addr) {
        if let Some(s) = self.allowed.get_mut(&child) {
            s.remove(&parent);
        }
    }

    fn restrict_to(&mut self, child: Addr, only: Addr) {
        if let Some(s) = self.allowed.get_mut(&child) {
            s.retain(|p| *p == only);
        }
    }
}

/// How many candidate child-parent pairs each Phase II rule eliminated —
/// diagnostics for the §5.2 discussion ("in certain simple benchmarks …
/// the structural analysis is precise enough").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EliminationStats {
    /// Pairs eliminated by rule 1 (parent longer than child).
    pub rule1_slot_count: usize,
    /// Pairs eliminated by rule 2 (pure slot vs concrete slot).
    pub rule2_pure_slot: usize,
    /// Pairs eliminated by rule 3 pinning (ctor-call evidence).
    pub rule3_pinning: usize,
    /// Candidate pairs remaining after all rules.
    pub remaining: usize,
}

impl fmt::Display for EliminationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rule1: {}, rule2: {}, rule3: {}, remaining: {}",
            self.rule1_slot_count, self.rule2_pure_slot, self.rule3_pinning, self.remaining
        )
    }
}

/// The output of the structural analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Structural {
    families: Vec<Vec<Addr>>,
    possible: PossibleParents,
    pinned: BTreeMap<Addr, Addr>,
    vptr_store_counts: BTreeMap<Addr, usize>,
    stats: EliminationStats,
}

impl Structural {
    /// The type families (each sorted; families sorted by first member).
    pub fn families(&self) -> &[Vec<Addr>] {
        &self.families
    }

    /// The family containing `vtable`, if any.
    pub fn family_of(&self, vtable: Addr) -> Option<&[Addr]> {
        self.families.iter().find(|f| f.contains(&vtable)).map(Vec::as_slice)
    }

    /// The possible-parent relation.
    pub fn possible_parents(&self) -> &PossibleParents {
        &self.possible
    }

    /// Parents pinned by constructor-call evidence (rule 3).
    pub fn pinned(&self) -> &BTreeMap<Addr, Addr> {
        &self.pinned
    }

    /// How many vtable-pointer stores each type's constructor performs —
    /// under multiple inheritance, X stores mean X parents (§5.3).
    pub fn vptr_store_counts(&self) -> &BTreeMap<Addr, usize> {
        &self.vptr_store_counts
    }

    /// Per-rule elimination counts.
    pub fn stats(&self) -> EliminationStats {
        self.stats
    }

    /// Returns `true` if every type has at most one possible parent —
    /// the hierarchy is determined without any behavioral analysis
    /// (the paper's "structurally resolvable" benchmarks).
    pub fn is_structurally_resolved(&self) -> bool {
        self.families.iter().flatten().all(|vt| self.possible.of(*vt).len() <= 1)
    }

    /// Total number of candidate hierarchies left (product over types of
    /// `max(1, #candidates)`, before tree constraints), saturating.
    /// For echoparams — four types with three candidate parents each —
    /// this reports 3⁴ = 81; the paper quotes "64 equally likely possible
    /// hierarchies" under its own counting of tree-consistent choices.
    pub fn candidate_hierarchies(&self) -> u64 {
        let mut n: u64 = 1;
        for vt in self.families.iter().flatten() {
            let c = self.possible.of(*vt).len().max(1) as u64;
            n = n.saturating_mul(c);
        }
        n
    }
}

impl fmt::Display for Structural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} families", self.families.len())?;
        for (i, fam) in self.families.iter().enumerate() {
            write!(f, "  family {i}:")?;
            for vt in fam {
                write!(f, " {vt}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Runs the structural analysis over a loaded binary.
///
/// `ctors` must come from
/// [`recognize_ctors`](rock_analysis::recognize_ctors) on the same binary.
pub fn analyze(loaded: &LoadedBinary, ctors: &CtorMap, config: &AnalysisConfig) -> Structural {
    let vtables = loaded.vtables();
    let n = vtables.len();
    let index: BTreeMap<Addr, usize> =
        vtables.iter().enumerate().map(|(i, v)| (v.addr(), i)).collect();

    // --- Rule 3 evidence: ctor of child calls ctor of parent on `this`.
    let pinned = find_pinned_parents(loaded, ctors, config);

    // --- Phase I: families = connected components of slot sharing,
    //     joined further by ctor-call evidence.
    let mut uf = UnionFind::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if vtables[i].shares_function_with(&vtables[j]) {
                uf.union(i, j);
            }
        }
    }
    for (child, parent) in &pinned {
        if let (Some(&ci), Some(&pi)) = (index.get(child), index.get(parent)) {
            uf.union(ci, pi);
        }
    }
    let families: Vec<Vec<Addr>> = uf
        .components()
        .into_iter()
        .map(|c| c.into_iter().map(|i| vtables[i].addr()).collect())
        .collect();

    // --- Phase II: initialize possibleParent within families, eliminate.
    let pure = purecall_candidates(loaded);
    let mut allowed: BTreeMap<Addr, BTreeSet<Addr>> = BTreeMap::new();
    for fam in &families {
        for &child in fam {
            let entry = allowed.entry(child).or_default();
            for &parent in fam {
                if parent != child {
                    entry.insert(parent);
                }
            }
        }
    }
    let mut possible = PossibleParents { allowed };

    let mut stats = EliminationStats::default();
    for fam in &families {
        for &child in fam {
            let cvt = loaded.vtable_at(child).expect("family member exists");
            for &parent in fam {
                if parent == child {
                    continue;
                }
                let pvt = loaded.vtable_at(parent).expect("family member exists");
                // Rule 1: a parent cannot have more virtual functions.
                if pvt.len() > cvt.len() {
                    possible.remove(parent, child);
                    stats.rule1_slot_count += 1;
                    continue;
                }
                // Rule 2: pure slot in the child where the parent is
                // concrete.
                let contradiction = cvt
                    .slots()
                    .iter()
                    .zip(pvt.slots())
                    .any(|(cs, ps)| pure.contains(cs) && !pure.contains(ps));
                if contradiction {
                    possible.remove(parent, child);
                    stats.rule2_pure_slot += 1;
                }
            }
        }
    }
    // Rule 3: pinning overrides everything else.
    for (&child, &parent) in &pinned {
        let before = possible.of(child).len();
        possible.restrict_to(child, parent);
        stats.rule3_pinning += before.saturating_sub(possible.of(child).len());
        // Ensure the pinned parent survived (it may have been eliminated
        // by an over-eager rule; ctor evidence is authoritative).
        possible.allowed.entry(child).or_default().insert(parent);
    }
    stats.remaining = possible.allowed.values().map(BTreeSet::len).sum();

    let vptr_store_counts = ctors
        .functions()
        .filter_map(|f| {
            let stores = ctors.stores_of(f)?;
            let primary = stores.iter().find(|(off, _)| *off == 0)?.1;
            Some((primary, stores.len()))
        })
        .collect();

    Structural { families, possible, pinned, vptr_store_counts, stats }
}

/// Scans ctor-like functions for direct calls to *other* ctor-like
/// functions on their own `this` (offset 0) — parent-constructor calls.
fn find_pinned_parents(
    loaded: &LoadedBinary,
    ctors: &CtorMap,
    config: &AnalysisConfig,
) -> BTreeMap<Addr, Addr> {
    let mut pinned = BTreeMap::new();
    for f in loaded.functions() {
        let Some(own_vt) = ctors.primary_vtable_of(f.entry()) else {
            continue;
        };
        for path in execute_function(f, loaded, ctors, config) {
            for sub in &path.subobjects {
                // Parent ctor runs on the primary view of `this`.
                if sub.view.obj != ObjId::ENTRY || sub.view.base != 0 {
                    continue;
                }
                for ev in &sub.events {
                    if let Event::Call(g) = ev {
                        if let Some(parent_vt) = ctors.primary_vtable_of(*g) {
                            if parent_vt != own_vt {
                                pinned.insert(own_vt, parent_vt);
                            }
                        }
                    }
                }
            }
        }
    }
    pinned
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_analysis::recognize_ctors;
    use rock_minicpp::{compile, CompileOptions, Compiled, ProgramBuilder};

    fn setup(p: ProgramBuilder, opts: &CompileOptions) -> (LoadedBinary, Compiled, Structural) {
        let compiled = compile(&p.finish(), opts).unwrap();
        let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
        let config = AnalysisConfig::default();
        let ctors = recognize_ctors(&loaded, &config);
        let s = analyze(&loaded, &ctors, &config);
        (loaded, compiled, s)
    }

    fn streams() -> ProgramBuilder {
        let mut p = ProgramBuilder::new();
        p.class("Stream").method("send", |b| {
            b.ret();
        });
        p.class("ConfirmableStream").base("Stream").method("confirm", |b| {
            b.ret();
        });
        p.class("FlushableStream")
            .base("Stream")
            .method("flush", |b| {
                b.ret();
            })
            .method("close", |b| {
                b.ret();
            });
        p.func("drive", |f| {
            f.new_obj("s", "Stream");
            f.new_obj("c", "ConfirmableStream");
            f.new_obj("fl", "FlushableStream");
            f.vcall("s", "send", vec![]);
            f.vcall("c", "confirm", vec![]);
            f.vcall("fl", "flush", vec![]);
            f.ret();
        });
        p
    }

    #[test]
    fn one_family_for_one_hierarchy() {
        let (_, compiled, s) = setup(streams(), &CompileOptions::default());
        assert_eq!(s.families().len(), 1);
        let fam = s.family_of(compiled.vtable_of("Stream").unwrap()).unwrap();
        assert_eq!(fam.len(), 3);
    }

    #[test]
    fn rule1_eliminates_longer_parents() {
        let (_, compiled, s) = setup(streams(), &CompileOptions::default());
        let stream = compiled.vtable_of("Stream").unwrap();
        let confirmable = compiled.vtable_of("ConfirmableStream").unwrap();
        let flushable = compiled.vtable_of("FlushableStream").unwrap();
        // Stream (1 slot) cannot descend from 2- or 3-slot tables.
        assert!(!s.possible_parents().is_possible(confirmable, stream));
        assert!(!s.possible_parents().is_possible(flushable, stream));
        // Flushable (3 slots) could structurally descend from either.
        // But ctor pinning resolves it to Stream.
        assert!(s.possible_parents().is_possible(stream, flushable));
    }

    #[test]
    fn ctor_calls_pin_parents_in_debug_builds() {
        let (_, compiled, s) = setup(streams(), &CompileOptions::default());
        let stream = compiled.vtable_of("Stream").unwrap();
        let confirmable = compiled.vtable_of("ConfirmableStream").unwrap();
        assert_eq!(s.pinned().get(&confirmable), Some(&stream));
        assert_eq!(s.possible_parents().of(confirmable), vec![stream]);
        assert!(s.is_structurally_resolved());
        assert_eq!(s.candidate_hierarchies(), 1);
    }

    #[test]
    fn inlining_removes_pinning() {
        let mut opts = CompileOptions::default();
        opts.inline_parent_ctors = true;
        let (_, compiled, s) = setup(streams(), &opts);
        assert!(s.pinned().is_empty(), "inlined ctors leave no call evidence");
        // Now FlushableStream has 2 possible parents (Stream and
        // ConfirmableStream) — exactly the paper's Fig. 6 ambiguity.
        let flushable = compiled.vtable_of("FlushableStream").unwrap();
        assert_eq!(s.possible_parents().of(flushable).len(), 2);
        assert!(!s.is_structurally_resolved());
        assert!(s.candidate_hierarchies() > 1);
    }

    #[test]
    fn unrelated_hierarchies_form_separate_families() {
        let mut p = ProgramBuilder::new();
        p.class("A").method("am", |b| {
            b.ret();
        });
        p.class("B").base("A").method("bm", |b| {
            b.ret();
        });
        p.class("X").method("xm", |b| {
            b.ret();
        });
        p.class("Y").base("X").method("ym", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("b", "B");
            f.new_obj("y", "Y");
            f.vcall("b", "bm", vec![]);
            f.vcall("y", "ym", vec![]);
            f.ret();
        });
        let (_, compiled, s) = setup(p, &CompileOptions::default());
        assert_eq!(s.families().len(), 2);
        let a = compiled.vtable_of("A").unwrap();
        let x = compiled.vtable_of("X").unwrap();
        assert_ne!(s.family_of(a).unwrap(), s.family_of(x).unwrap());
        // Cross-family parenthood is impossible.
        assert!(!s.possible_parents().is_possible(a, compiled.vtable_of("Y").unwrap()));
    }

    #[test]
    fn rule2_pure_slots_block_concrete_parents() {
        // Child has a pure slot where parent is concrete: impossible.
        let mut p = ProgramBuilder::new();
        p.class("Concrete").method("m", |b| {
            b.ret();
        });
        // AbstractChild overrides m as pure — contrived but legal, and
        // exactly the §5.2-rule-2 shape. It shares no impl with Concrete,
        // so give both a second, genuinely shared method through a common
        // driver call to keep them in one family via another route:
        // simpler: they share nothing, so force same family via ctor...
        // Instead craft it directly: Base defines m + n; child overrides m
        // as pure (keeps n shared).
        p.class("Base")
            .method("bm", |b| {
                b.ret();
            })
            .method("bn", |b| {
                b.ret();
            });
        p.class("PureChild").base("Base").pure_method("bm");
        p.class("Leaf").base("PureChild").method("bm", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("b", "Base");
            f.new_obj("l", "Leaf");
            f.vcall("b", "bm", vec![]);
            f.vcall("l", "bm", vec![]);
            f.ret();
        });
        let (_, compiled, s) = setup(p, &CompileOptions::default());
        let base = compiled.vtable_of("Base").unwrap();
        let pure_child = compiled.vtable_of("PureChild").unwrap();
        // PureChild's slot 0 is pure; Base's slot 0 is concrete: Base
        // cannot be... it IS the parent in truth, but rule 2 forbids the
        // *reverse*: PureChild (concrete at 0? no, pure) —
        // rule: child=PureChild (pure at 0), parent=Base (concrete at 0)
        // => eliminated by rule 2. However the ctor pinning re-adds it
        // (ctor evidence is authoritative in debug builds).
        let pp = s.possible_parents();
        assert!(pp.is_possible(base, pure_child), "pinning keeps the true parent");
        // And Leaf (concrete at 0) cannot be a parent of PureChild by
        // rule 2 + rule 1.
        assert!(!pp.is_possible(compiled.vtable_of("Leaf").unwrap(), pure_child));
    }

    #[test]
    fn vptr_store_counts_single_inheritance() {
        let (_, compiled, s) = setup(streams(), &CompileOptions::default());
        let stream = compiled.vtable_of("Stream").unwrap();
        assert_eq!(s.vptr_store_counts().get(&stream), Some(&1));
    }

    #[test]
    fn display_lists_families() {
        let (_, _, s) = setup(streams(), &CompileOptions::default());
        assert!(s.to_string().contains("1 families"));
    }

    #[test]
    fn elimination_stats_account_for_the_rules() {
        // Debug build: rule 1 fires (Stream cannot descend from longer
        // tables) and rule 3 pins the two children.
        let (_, _, s) = setup(streams(), &CompileOptions::default());
        let st = s.stats();
        assert!(st.rule1_slot_count >= 2, "{st}");
        assert!(st.rule3_pinning >= 1, "{st}");
        assert_eq!(st.remaining, 2, "one pinned parent per child: {st}");
        // Optimized build: no pins; remaining candidates grow.
        let mut opts = CompileOptions::default();
        opts.inline_parent_ctors = true;
        let (_, _, s2) = setup(streams(), &opts);
        assert_eq!(s2.stats().rule3_pinning, 0);
        assert!(s2.stats().remaining > st.remaining);
        assert!(s2.stats().to_string().contains("rule1:"));
    }
}
