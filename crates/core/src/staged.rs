//! The reconstruction pipeline as explicit, checkpointable stages.
//!
//! [`crate::Rock::try_reconstruct`] is a thin loop over a [`StagedRun`]:
//! `begin` records the load boundary, each [`StagedRun::advance`] call
//! runs exactly one [`StageId`] to completion, and [`StagedRun::finish`]
//! assembles the [`crate::Reconstruction`]. A supervisor (the
//! `rock-supervisor` crate) drives the same loop but snapshots every
//! completed stage to an on-disk artifact store, and on resume feeds the
//! artifacts back through the `restore_*` methods so completed stages are
//! **skipped, not re-run** — the restored state is bit-identical to what
//! the live stage would have produced, because every stage is a
//! deterministic function of its restored inputs.
//!
//! Restores must follow stage order (analysis, then training, then
//! distances, then lifting); a restore against the wrong cursor position
//! is rejected with [`RestoreError`] rather than silently corrupting the
//! run.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use rock_analysis::{
    extract_tracelets_canonical, extract_tracelets_instrumented, Analysis, AnalysisHooks,
    ContentLabels, Event, ExecCache, NoHooks,
};
use rock_binary::Addr;
use rock_graph::{min_spanning_forest, DiGraph, Forest};
use rock_loader::{LoadIssue, LoadedBinary};
use rock_slm::{ModelKey, Slm};
use rock_structural::{analyze, Structural};
use rock_trace::{names, MetricsRegistry};

use crate::corpus::pool_key;
use crate::diagnostics::{
    Coverage, DiagnosticSink, FaultKind, Severity, Stage, StageError, Subject,
};
use crate::pipeline::{
    assemble_reconstruction, child_candidate_edges, incident_error, load_issue_error, Rock,
};
use crate::{Reconstruction, StageTimings};

/// One checkpointable pipeline stage.
///
/// The variants are ordered: a [`StagedRun`] executes them front to back,
/// and a resumed run restores a *prefix* of them from artifacts before
/// executing the rest live. (Structural analysis is deliberately not a
/// checkpoint boundary: it is cheap, deterministic, and re-derived on
/// demand from the loaded binary plus the analysis artifact.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageId {
    /// Behavioral analysis: tracelet extraction + ctor recognition.
    Analysis,
    /// Per-vtable SLM training.
    Training,
    /// Candidate-edge distance scoring.
    Distances,
    /// Per-family arborescence lifting.
    Lifting,
}

impl StageId {
    /// All stages, in execution order.
    pub const ALL: [StageId; 4] =
        [StageId::Analysis, StageId::Training, StageId::Distances, StageId::Lifting];

    /// Stable lowercase name (artifact file stems, reports).
    pub fn name(self) -> &'static str {
        match self {
            StageId::Analysis => "analysis",
            StageId::Training => "training",
            StageId::Distances => "distances",
            StageId::Lifting => "lifting",
        }
    }

    /// The stage after this one, if any.
    pub fn next(self) -> Option<StageId> {
        match self {
            StageId::Analysis => Some(StageId::Training),
            StageId::Training => Some(StageId::Distances),
            StageId::Distances => Some(StageId::Lifting),
            StageId::Lifting => None,
        }
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The serial span opened around one stage's `advance` body.
fn stage_span_name(stage: StageId) -> &'static str {
    match stage {
        StageId::Analysis => names::STAGE_ANALYSIS,
        StageId::Training => names::STAGE_TRAINING,
        StageId::Distances => names::STAGE_DISTANCES,
        StageId::Lifting => names::STAGE_LIFTING,
    }
}

/// A restore was attempted against the wrong cursor position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestoreError {
    /// The stage the caller tried to restore.
    pub restoring: StageId,
    /// The stage the run actually expects next (`None` when complete).
    pub expected: Option<StageId>,
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.expected {
            Some(e) => write!(f, "cannot restore {}: run expects {e} next", self.restoring),
            None => write!(f, "cannot restore {}: run already complete", self.restoring),
        }
    }
}

impl std::error::Error for RestoreError {}

/// One in-flight reconstruction, advanced stage by stage.
///
/// Obtained from [`Rock::begin`]; see the module docs for the contract.
pub struct StagedRun<'a> {
    rock: &'a Rock,
    loaded: &'a LoadedBinary,
    run_start: Instant,
    timings: StageTimings,
    metrics: MetricsRegistry,
    sink: DiagnosticSink,
    coverage: Coverage,
    cache_hits0: u64,
    cache_misses0: u64,
    analysis: Option<Analysis>,
    structural: Option<Structural>,
    models: Option<BTreeMap<Addr, Arc<Slm<Event>>>>,
    model_keys: BTreeMap<Addr, ModelKey>,
    distances: Option<BTreeMap<(Addr, Addr), f64>>,
    graphs: Option<Vec<DiGraph>>,
    hierarchy: Option<Forest<Addr>>,
    cursor: Option<StageId>,
}

impl Rock {
    /// Starts a staged reconstruction: records the load boundary (issues
    /// + initial coverage) and positions the cursor at [`StageId::Analysis`].
    pub fn begin<'a>(&'a self, loaded: &'a LoadedBinary) -> StagedRun<'a> {
        let sink = DiagnosticSink::default();
        let mut coverage = Coverage {
            functions_total: loaded.functions().len(),
            vtables_parsed: loaded.vtables().len(),
            ..Coverage::default()
        };
        // Whatever the (possibly lenient) load degraded on becomes part
        // of this run's diagnostics, so one report covers the whole path.
        for issue in loaded.issues() {
            sink.record(load_issue_error(issue));
            if matches!(issue, LoadIssue::RejectedVtableCandidate { .. }) {
                coverage.vtables_rejected += 1;
            }
        }
        StagedRun {
            rock: self,
            loaded,
            run_start: Instant::now(),
            timings: StageTimings {
                threads: self.config().parallelism.thread_count(),
                ..StageTimings::default()
            },
            metrics: MetricsRegistry::new(),
            sink,
            coverage,
            cache_hits0: self.cache().hits(),
            cache_misses0: self.cache().misses(),
            analysis: None,
            structural: None,
            models: None,
            model_keys: BTreeMap::new(),
            distances: None,
            graphs: None,
            hierarchy: None,
            cursor: Some(StageId::Analysis),
        }
    }
}

impl<'a> StagedRun<'a> {
    /// The next stage `advance` would run (`None` once all stages ran).
    pub fn pending(&self) -> Option<StageId> {
        self.cursor
    }

    /// Returns `true` once every stage has run or been restored.
    pub fn is_done(&self) -> bool {
        self.cursor.is_none()
    }

    /// The binary this run reconstructs.
    pub fn loaded(&self) -> &'a LoadedBinary {
        self.loaded
    }

    /// The behavioral analysis, once its stage completed.
    pub fn analysis(&self) -> Option<&Analysis> {
        self.analysis.as_ref()
    }

    /// The trained models, once the training stage completed. Models are
    /// `Arc`-shared: corpus runs alias one model across every type whose
    /// pool hashes to the same content key.
    pub fn models(&self) -> Option<&BTreeMap<Addr, Arc<Slm<Event>>>> {
        self.models.as_ref()
    }

    /// The scored candidate edges, once the distance stage completed.
    pub fn distances(&self) -> Option<&BTreeMap<(Addr, Addr), f64>> {
        self.distances.as_ref()
    }

    /// The lifted hierarchy, once the lifting stage completed.
    pub fn hierarchy(&self) -> Option<&Forest<Addr>> {
        self.hierarchy.as_ref()
    }

    /// Every diagnostic recorded so far, in record order (a checkpoint
    /// snapshots this alongside the stage output so a resumed run
    /// reports exactly what the original would have).
    pub fn diagnostics_snapshot(&self) -> Vec<StageError> {
        self.sink.iter().cloned().collect()
    }

    /// Coverage accumulated so far.
    pub fn coverage(&self) -> Coverage {
        self.coverage
    }

    /// The metrics recorded so far (work counts only — no wall-clock
    /// values — so the registry is deterministic per binary + config).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The first error-severity diagnostic, under strict mode only.
    fn strict_failure(&self) -> Option<StageError> {
        if !self.rock.config().strict {
            return None;
        }
        self.sink.iter().find(|e| e.severity == Severity::Error).cloned()
    }

    /// Stage-level panic injection (function-level faults go through the
    /// `AnalysisHooks` implementation on the plan instead).
    fn inject(&self, stage: Stage, key: u64) {
        if self.rock.fault_plan().is_some_and(|p| p.should_panic_in(stage, key)) {
            panic!("injected fault: {stage} of item {key:#x}");
        }
    }

    /// Runs the next pending stage to completion.
    ///
    /// Returns the stage that just completed, or `None` if the run was
    /// already done. With [`crate::RockConfig::strict`], the first
    /// error-severity diagnostic aborts the run instead — including one
    /// recorded at the load boundary, which fails the first `advance`
    /// before any analysis happens.
    pub fn advance(&mut self) -> Result<Option<StageId>, StageError> {
        if let Some(e) = self.strict_failure() {
            return Err(e);
        }
        let Some(stage) = self.cursor else { return Ok(None) };
        {
            // Copy the `&'a Rock` out so the span guard borrows the rock,
            // not `self`, which the stage bodies need mutably.
            let rock = self.rock;
            let _stage_span = rock.trace_ctx().span(stage_span_name(stage), 0);
            match stage {
                StageId::Analysis => self.run_analysis(),
                StageId::Training => self.run_training(),
                StageId::Distances => self.run_distances(),
                StageId::Lifting => self.run_lifting(),
            }
        }
        self.cursor = stage.next();
        if let Some(e) = self.strict_failure() {
            return Err(e);
        }
        Ok(Some(stage))
    }

    /// Re-derives the structural analysis if it is not present yet.
    ///
    /// Structural analysis is not a checkpoint boundary: it is a cheap
    /// deterministic function of the loaded binary and the recognized
    /// ctors, so live and resumed runs alike compute it on first use.
    fn ensure_structural(&mut self) {
        if self.structural.is_some() {
            return;
        }
        let analysis = self.analysis.as_ref().expect("structural analysis needs ctors");
        let stage = Instant::now();
        let rock = self.rock;
        let _span = rock.trace_ctx().span(names::STAGE_STRUCTURAL, 0);
        let structural = analyze(self.loaded, analysis.ctors(), &rock.config().analysis);
        let stats = structural.stats();
        self.metrics.set(names::STRUCTURAL_RULE1_ELIMINATED, stats.rule1_slot_count as u64);
        self.metrics.set(names::STRUCTURAL_RULE2_ELIMINATED, stats.rule2_pure_slot as u64);
        self.metrics.set(names::STRUCTURAL_RULE3_ELIMINATED, stats.rule3_pinning as u64);
        self.metrics.set(names::STRUCTURAL_REMAINING, stats.remaining as u64);
        self.structural = Some(structural);
        self.timings.structural = stage.elapsed();
    }

    /// Behavioral analysis (also recognizes ctor-like functions). Each
    /// function runs inside `catch_unwind` with a fuel/deadline budget; a
    /// faulted function is excluded wholesale and recorded.
    ///
    /// With [`crate::RockConfig::canonical_calls`] the extraction rewrites
    /// call events to position-independent content labels, and — when a
    /// corpus cache is attached — answers whole per-function executions
    /// from the fleet-wide tracelet tier instead of re-running them.
    fn run_analysis(&mut self) {
        let stage = Instant::now();
        let rock = self.rock;
        let hooks: &dyn AnalysisHooks = match rock.fault_plan() {
            Some(plan) => plan,
            None => &NoHooks,
        };
        let ctx = rock.trace_ctx();
        let mut spans = ctx.local();
        let analysis = if rock.config().canonical_calls {
            let labels = ContentLabels::compute(self.loaded);
            let exec_cache = rock.corpus_cache().map(|c| c.exec_cache(&rock.config().analysis));
            extract_tracelets_canonical(
                self.loaded,
                &rock.config().analysis,
                hooks,
                &mut spans,
                &mut self.metrics,
                &labels,
                exec_cache.as_ref().map(|c| c as &dyn ExecCache),
            )
        } else {
            extract_tracelets_instrumented(
                self.loaded,
                &rock.config().analysis,
                hooks,
                &mut spans,
                &mut self.metrics,
            )
        };
        ctx.merge(spans);
        self.record_analysis_incidents(&analysis);
        self.record_analysis_metrics(&analysis);
        self.analysis = Some(analysis);
        self.timings.analysis = stage.elapsed();
    }

    /// Folds the deterministic shape of an analysis into the registry
    /// (shared by the live stage and the restore path, so resumed runs
    /// report the same pool counters the original would have).
    fn record_analysis_metrics(&mut self, analysis: &Analysis) {
        use rock_analysis::IncidentKind;
        let mut tracelets = 0u64;
        let mut events = 0u64;
        for vt in analysis.tracelets().types() {
            for t in analysis.tracelets().of_type(vt) {
                tracelets += 1;
                events += t.len() as u64;
                self.metrics.observe(names::HIST_TRACELET_LEN, t.len() as u64);
            }
        }
        self.metrics.set(names::ANALYSIS_TRACELETS, tracelets);
        self.metrics.set(names::ANALYSIS_EVENTS, events);
        let fuel_starved = analysis
            .incidents()
            .iter()
            .filter(|(_, k)| matches!(k, IncidentKind::FuelExhausted))
            .count();
        self.metrics.set(names::ANALYSIS_FUEL_EXHAUSTED, fuel_starved as u64);
    }

    /// Folds an analysis' incident list into diagnostics + coverage
    /// (shared by the live stage and the restore path).
    fn record_analysis_incidents(&mut self, analysis: &Analysis) {
        use rock_analysis::IncidentKind;
        for (entry, incident) in analysis.incidents() {
            match incident {
                IncidentKind::FuelExhausted => {
                    self.coverage.functions_timed_out += 1;
                }
                IncidentKind::DeadlineExceeded => self.coverage.functions_timed_out += 1,
                IncidentKind::Panicked(_) | IncidentKind::Skipped => {
                    self.coverage.functions_skipped += 1;
                }
            }
            self.sink.record(incident_error(*entry, incident));
        }
        self.coverage.functions_analyzed = self.coverage.functions_total
            - self.coverage.functions_skipped
            - self.coverage.functions_timed_out;
    }

    /// Computes the content key of every type's tracelet pool (trained
    /// and faulted types alike); distance-cache and corpus lookups key on
    /// these instead of per-binary vtable addresses.
    fn compute_model_keys(&mut self) {
        let analysis = self.analysis.as_ref().expect("model keys follow analysis");
        let depth = self.rock.config().analysis.slm_depth;
        self.model_keys = self
            .loaded
            .vtables()
            .iter()
            .map(|vt| (vt.addr(), pool_key(depth, analysis.tracelets().of_type(vt.addr()))))
            .collect();
    }

    /// One SLM per binary type, trained independently per vtable. A
    /// training fault drops that type's model; edges touching it are
    /// skipped later and the type degrades to a hierarchy root.
    ///
    /// With a corpus cache attached, types are grouped by pool content
    /// key first: each distinct pool is answered by (or published to) the
    /// fleet-wide model tier exactly once per run, and every alias shares
    /// the same `Arc`'d model. Fault-targeted types train solo so an
    /// injected panic still lands on exactly the type the per-type loop
    /// would have lost.
    fn run_training(&mut self) {
        self.ensure_structural();
        self.compute_model_keys();
        let stage = Instant::now();
        let rock = self.rock;
        let analysis = self.analysis.as_ref().expect("training follows analysis");
        let config = rock.config();
        let ctx = rock.trace_ctx();
        let addrs: Vec<Addr> = self.loaded.vtables().iter().map(|vt| vt.addr()).collect();

        if let Some(corpus) = rock.corpus_cache() {
            let mut groups: BTreeMap<ModelKey, Vec<Addr>> = BTreeMap::new();
            let mut solo: Vec<Vec<Addr>> = Vec::new();
            for &addr in &addrs {
                let targeted = rock
                    .fault_plan()
                    .is_some_and(|p| p.should_panic_in(Stage::Training, addr.value()));
                if targeted {
                    solo.push(vec![addr]);
                } else {
                    groups.entry(self.model_keys[&addr]).or_default().push(addr);
                }
            }
            // Work in first-member (= lowest-address) order so spans and
            // fault diagnostics come out deterministically.
            let mut work: Vec<Vec<Addr>> = groups.into_values().collect();
            work.extend(solo);
            work.sort_by_key(|g| g[0]);
            let trained = crate::par::par_map_catch(config.parallelism, &work, |group| {
                let rep = group[0];
                let key = self.model_keys[&rep];
                let mut spans = ctx.local();
                let token = spans.enter(names::TRAINING_TYPE, rep.value());
                self.inject(Stage::Training, rep.value());
                let model = match corpus.load_model(key) {
                    Some(m) => m,
                    None => {
                        let pool = analysis.tracelets().of_type(rep);
                        let mut m = Slm::new(config.analysis.slm_depth);
                        for t in pool {
                            m.train(t);
                        }
                        m.finalize();
                        let m = Arc::new(m);
                        corpus.store_model(key, Arc::clone(&m));
                        m
                    }
                };
                spans.exit(token);
                (model, spans)
            });
            let mut models: BTreeMap<Addr, Arc<Slm<Event>>> = BTreeMap::new();
            let mut buffers = Vec::new();
            for (group, outcome) in work.iter().zip(trained) {
                match outcome {
                    Ok((m, spans)) => {
                        if !spans.is_empty() {
                            buffers.push(spans);
                        }
                        for &addr in group {
                            models.insert(addr, Arc::clone(&m));
                        }
                    }
                    Err(msg) => {
                        // Pools hash equal => training panics equal: the
                        // whole group records what each member's solo
                        // training would have.
                        for &addr in group {
                            self.sink.record(StageError {
                                stage: Stage::Training,
                                subject: Subject::Vtable(addr),
                                kind: FaultKind::Panicked(msg.clone()),
                                severity: Severity::Error,
                            });
                        }
                    }
                }
            }
            ctx.merge_many(buffers);
            self.set_models(models);
            self.timings.training = stage.elapsed();
            return;
        }

        let trained = crate::par::par_map_catch(config.parallelism, &addrs, |&addr| {
            let mut spans = ctx.local();
            let token = spans.enter(names::TRAINING_TYPE, addr.value());
            self.inject(Stage::Training, addr.value());
            let mut m = Slm::new(config.analysis.slm_depth);
            for t in analysis.tracelets().of_type(addr) {
                m.train(t);
            }
            // Build the interned symbol table + arena trie here, so the
            // cost lands in the (parallel) training stage instead of the
            // first divergence query.
            m.finalize();
            spans.exit(token);
            (m, spans)
        });
        let mut models: BTreeMap<Addr, Arc<Slm<Event>>> = BTreeMap::new();
        let mut buffers = Vec::new();
        for (addr, outcome) in addrs.into_iter().zip(trained) {
            match outcome {
                Ok((m, spans)) => {
                    if !spans.is_empty() {
                        buffers.push(spans);
                    }
                    models.insert(addr, Arc::new(m));
                }
                Err(msg) => self.sink.record(StageError {
                    stage: Stage::Training,
                    subject: Subject::Vtable(addr),
                    kind: FaultKind::Panicked(msg),
                    severity: Severity::Error,
                }),
            }
        }
        // One lock for the whole stage's worker buffers (input order).
        ctx.merge_many(buffers);
        self.set_models(models);
        self.timings.training = stage.elapsed();
    }

    /// Installs trained models and their derived counters (shared by the
    /// live stage and the restore path).
    fn set_models(&mut self, models: BTreeMap<Addr, Arc<Slm<Event>>>) {
        self.coverage.models_trained = models.len();
        self.metrics.set(names::SLM_MODELS_TRAINED, models.len() as u64);
        let mut nodes = 0u64;
        let mut edges = 0u64;
        let mut bytes = 0u64;
        let mut unique = 0u64;
        let mut total = 0u64;
        for m in models.values() {
            nodes += m.node_count() as u64;
            edges += m.edge_count() as u64;
            bytes += m.approx_trie_bytes() as u64;
            unique += m.unique_training_len() as u64;
            total += m.training_total();
            self.metrics.observe(names::HIST_NODES_PER_MODEL, m.node_count() as u64);
        }
        self.metrics.set(names::SLM_ARENA_NODES, nodes);
        self.metrics.set(names::SLM_ARENA_EDGES, edges);
        self.metrics.set(names::SLM_ARENA_BYTES, bytes);
        self.metrics.set(names::SLM_WORDS_UNIQUE, unique);
        self.metrics.set(names::SLM_WORDS_TOTAL, total);
        self.models = Some(models);
    }

    /// Weighted digraph per family over surviving candidate edges.
    /// Every edge weight is an independent pair divergence, so the
    /// scoring work is flattened to one item per (family, child) —
    /// a binary with few families still fans out across all workers.
    /// The graphs are then assembled serially in family order, which
    /// replays the exact edge-insertion order of the serial loop.
    fn run_distances(&mut self) {
        self.ensure_structural();
        let stage = Instant::now();
        let rock = self.rock;
        let structural = self.structural.as_ref().expect("distances follow structural");
        let models = self.models.as_ref().expect("distances follow training");
        let model_keys = &self.model_keys;
        let config = rock.config();
        let ctx = rock.trace_ctx();
        let families = structural.families();
        let indices: Vec<BTreeMap<Addr, usize>> =
            families.iter().map(|f| f.iter().enumerate().map(|(i, a)| (*a, i)).collect()).collect();
        let children: Vec<(usize, Addr)> = families
            .iter()
            .enumerate()
            .flat_map(|(fi, f)| f.iter().map(move |&child| (fi, child)))
            .collect();
        let scored = crate::par::par_map_catch(config.parallelism, &children, |&(fi, child)| {
            let mut spans = ctx.local();
            let token = spans.enter(names::DISTANCES_CHILD, child.value());
            self.inject(Stage::Distances, child.value());
            let edges = child_candidate_edges(
                &indices[fi],
                child,
                |c| structural.possible_parents().of(c),
                |parent, child| {
                    let pair = spans.enter(names::DISTANCES_PAIR, parent.value());
                    let d = match (models.get(&parent), models.get(&child)) {
                        (Some(pm), Some(cm)) => Some(rock.cache().distance_via(
                            config.metric,
                            (&model_keys[&parent], &**pm),
                            (&model_keys[&child], &**cm),
                            rock.global_distances(),
                        )),
                        _ => None,
                    };
                    spans.exit(pair);
                    d
                },
            );
            spans.exit(token);
            (edges, spans)
        });
        let mut distances = BTreeMap::new();
        let mut graphs: Vec<DiGraph> = families.iter().map(|f| DiGraph::new(f.len())).collect();
        let mut buffers = Vec::new();
        for (&(fi, child), outcome) in children.iter().zip(scored) {
            let edges = match outcome {
                Ok((edges, spans)) => {
                    if !spans.is_empty() {
                        buffers.push(spans);
                    }
                    edges
                }
                Err(msg) => {
                    // The child keeps no incoming edges and becomes a
                    // root of its family's arborescence.
                    self.sink.record(StageError {
                        stage: Stage::Distances,
                        subject: Subject::Vtable(child),
                        kind: FaultKind::Panicked(msg),
                        severity: Severity::Error,
                    });
                    continue;
                }
            };
            let candidates = edges.accepted.len() + edges.unmodeled.len() + edges.foreign;
            self.metrics.observe(names::HIST_CANDIDATES_PER_CHILD, candidates as u64);
            self.metrics.add(
                names::DISTANCES_PAIRS_SCORED,
                (edges.accepted.len() + edges.unmodeled.len()) as u64,
            );
            self.metrics.add(names::DISTANCES_EDGES, edges.accepted.len() as u64);
            self.metrics.add(names::DISTANCES_FOREIGN_CANDIDATES, edges.foreign as u64);
            self.metrics.add(names::DISTANCES_UNMODELED, edges.unmodeled.len() as u64);
            for &(parent, child) in &edges.unmodeled {
                self.sink.record(StageError {
                    stage: Stage::Distances,
                    subject: Subject::Edge(parent, child),
                    kind: FaultKind::MissingModel,
                    severity: Severity::Warning,
                });
            }
            for &(parent, child, d) in &edges.accepted {
                graphs[fi].add_edge(indices[fi][&parent], indices[fi][&child], d);
                distances.insert((parent, child), d);
            }
        }
        ctx.merge_many(buffers);
        self.distances = Some(distances);
        self.graphs = Some(graphs);
        self.timings.distances = stage.elapsed();
    }

    /// Per family: minimum-weight maximal forest (§4.2.2), with the
    /// majority-vote tie heuristic when enabled. Results are merged in
    /// family order, so the union is deterministic. A faulted family
    /// degrades to all-roots instead of aborting the run.
    fn run_lifting(&mut self) {
        let stage = Instant::now();
        let rock = self.rock;
        let structural = self.structural.as_ref().expect("lifting follows structural");
        let graphs = self.graphs.as_ref().expect("lifting follows distances");
        let config = rock.config();
        let ctx = rock.trace_ctx();
        let families = structural.families();
        self.coverage.families_total = families.len();
        let graph_items: Vec<(usize, &DiGraph)> = graphs.iter().enumerate().collect();
        let corpus = rock.corpus_cache();
        let model_keys = &self.model_keys;
        let lifted = crate::par::par_map_catch(config.parallelism, &graph_items, |&(fi, graph)| {
            let mut spans = ctx.local();
            let token = spans.enter(names::LIFTING_FAMILY, fi as u64);
            // Fault injection fires before any cache consultation, so a
            // plan that panics this family does so warm or cold alike.
            self.inject(Stage::Lifting, fi as u64);
            // With a corpus cache attached, key the family's lifting by
            // everything the computation below sees: the tie config, the
            // member model keys in family order, and the weighted edges
            // in graph insertion order (assembled deterministically by
            // the distances stage). A hit replays the stored forest and
            // tie count bit-for-bit; anything changed misses.
            let key = corpus.map(|_| {
                let members: Vec<ModelKey> = families[fi].iter().map(|a| model_keys[a]).collect();
                let edges: Vec<(u32, u32, u64)> = graph
                    .edges()
                    .iter()
                    .map(|e| (e.from as u32, e.to as u32, e.weight.to_bits()))
                    .collect();
                crate::corpus::lift_key(
                    config.resolve_ties,
                    config.tie_epsilon,
                    config.max_tie_variants,
                    &members,
                    &edges,
                )
            });
            let cached = corpus.zip(key).and_then(|(c, k)| c.load_lifting(k));
            let (parent, tie_variants) = match cached {
                Some((parent, tie_variants)) => (parent, tie_variants as usize),
                None => {
                    let (parent, tie_variants) = if config.resolve_ties {
                        // §4.2.2: several arborescences may share the minimal
                        // weight; resolve with the majority-vote heuristic.
                        let variants = rock_graph::co_optimal_forests(
                            graph,
                            config.tie_epsilon,
                            config.max_tie_variants,
                        );
                        (rock_graph::vote_select(&variants).parent.clone(), variants.len())
                    } else {
                        (min_spanning_forest(graph).parent, 1)
                    };
                    if let (Some(c), Some(k)) = (corpus, key) {
                        c.store_lifting(k, &parent, tie_variants as u64);
                    }
                    (parent, tie_variants)
                }
            };
            spans.exit(token);
            (parent, tie_variants, spans)
        });
        let mut hierarchy: Forest<Addr> = Forest::new();
        let mut buffers = Vec::new();
        for ((fi, family), outcome) in families.iter().enumerate().zip(lifted) {
            let parent = match outcome {
                Ok((parent, tie_variants, spans)) => {
                    if !spans.is_empty() {
                        buffers.push(spans);
                    }
                    self.metrics.add(names::LIFTING_TIE_VARIANTS, tie_variants as u64);
                    self.metrics.observe(names::HIST_FAMILY_SIZE, family.len() as u64);
                    parent
                }
                Err(msg) => {
                    self.sink.record(StageError {
                        stage: Stage::Lifting,
                        subject: Subject::Family(fi),
                        kind: FaultKind::Panicked(msg),
                        severity: Severity::Error,
                    });
                    self.coverage.families_degraded += 1;
                    vec![None; family.len()]
                }
            };
            for (i, p) in parent.iter().enumerate() {
                hierarchy.insert(family[i], p.map(|pi| family[pi]));
            }
        }
        ctx.merge_many(buffers);
        self.coverage.families_lifted =
            self.coverage.families_total - self.coverage.families_degraded;
        self.hierarchy = Some(hierarchy);
        self.timings.lifting = stage.elapsed();
    }

    /// Replaces the diagnostic sink and coverage with a checkpoint
    /// snapshot (the cumulative state at the restored stage's boundary).
    fn restore_observability(&mut self, diagnostics: Vec<StageError>, coverage: Coverage) {
        let sink = DiagnosticSink::default();
        for e in diagnostics {
            sink.record(e);
        }
        self.sink = sink;
        self.coverage = coverage;
    }

    /// Checks that `stage` is the one the cursor expects, then moves the
    /// cursor past it.
    fn accept_restore(&mut self, stage: StageId) -> Result<(), RestoreError> {
        if self.cursor != Some(stage) {
            return Err(RestoreError { restoring: stage, expected: self.cursor });
        }
        self.cursor = stage.next();
        Ok(())
    }

    /// Restores the behavioral-analysis stage from a checkpoint.
    ///
    /// The incidents carried by `analysis` are *not* re-folded into
    /// coverage — the snapshot already accounts for them.
    pub fn restore_analysis(
        &mut self,
        analysis: Analysis,
        diagnostics: Vec<StageError>,
        coverage: Coverage,
    ) -> Result<(), RestoreError> {
        self.accept_restore(StageId::Analysis)?;
        self.restore_observability(diagnostics, coverage);
        // Pool-shape metrics are re-derived from the artifact; only
        // `analysis.fuel_spent` is unrecoverable (it never leaves the
        // live stage) and stays zero on resumed runs.
        self.record_analysis_metrics(&analysis);
        self.analysis = Some(analysis);
        Ok(())
    }

    /// Restores the training stage from a checkpoint: re-derives each
    /// listed model from the (already restored) analysis artifact.
    ///
    /// SLM parameters are a deterministic function of the type's tracelet
    /// pool and the configured depth (symbol ids are assigned in `Ord`
    /// order, trie counts are additive), so retraining reproduces the
    /// original models bit for bit — the checkpoint only has to pin
    /// *which* types trained successfully. Crucially, no fault is
    /// injected here: a plan that would panic the live training stage
    /// cannot touch a restored one.
    pub fn restore_models(
        &mut self,
        trained: &[Addr],
        diagnostics: Vec<StageError>,
        coverage: Coverage,
    ) -> Result<(), RestoreError> {
        self.accept_restore(StageId::Training)?;
        self.compute_model_keys();
        let analysis = self.analysis.as_ref().expect("restore order guarantees analysis");
        let config = self.rock.config();
        let retrained = crate::par::par_map(config.parallelism, trained, |&addr| {
            let mut m = Slm::new(config.analysis.slm_depth);
            for t in analysis.tracelets().of_type(addr) {
                m.train(t);
            }
            m.finalize();
            Arc::new(m)
        });
        let models: BTreeMap<Addr, Arc<Slm<Event>>> =
            trained.iter().copied().zip(retrained).collect();
        self.ensure_structural();
        self.set_models(models);
        self.restore_observability(diagnostics, coverage);
        Ok(())
    }

    /// Restores the distance stage from a checkpoint: installs the scored
    /// edges and replays the family digraph assembly from them.
    ///
    /// The replay walks families, children, and candidate parents in the
    /// same order as the live stage, inserting exactly the edges the
    /// checkpoint accepted — so the digraphs (and therefore every
    /// downstream tie-break in the arborescence search) are bit-identical
    /// to the uninterrupted run's.
    pub fn restore_distances(
        &mut self,
        distances: BTreeMap<(Addr, Addr), f64>,
        diagnostics: Vec<StageError>,
        coverage: Coverage,
    ) -> Result<(), RestoreError> {
        self.accept_restore(StageId::Distances)?;
        self.ensure_structural();
        let structural = self.structural.as_ref().expect("restore order guarantees structural");
        let families = structural.families();
        let mut graphs: Vec<DiGraph> = families.iter().map(|f| DiGraph::new(f.len())).collect();
        for (fi, family) in families.iter().enumerate() {
            let index: BTreeMap<Addr, usize> =
                family.iter().enumerate().map(|(i, a)| (*a, i)).collect();
            for &child in family {
                for parent in structural.possible_parents().of(child) {
                    if !index.contains_key(&parent) {
                        self.metrics.add(names::DISTANCES_FOREIGN_CANDIDATES, 1);
                        continue;
                    }
                    if let Some(&d) = distances.get(&(parent, child)) {
                        graphs[fi].add_edge(index[&parent], index[&child], d);
                        self.metrics.add(names::DISTANCES_EDGES, 1);
                    }
                }
            }
        }
        self.distances = Some(distances);
        self.graphs = Some(graphs);
        self.restore_observability(diagnostics, coverage);
        Ok(())
    }

    /// Restores the lifting stage from a checkpoint.
    pub fn restore_hierarchy(
        &mut self,
        hierarchy: Forest<Addr>,
        diagnostics: Vec<StageError>,
        coverage: Coverage,
    ) -> Result<(), RestoreError> {
        self.accept_restore(StageId::Lifting)?;
        self.hierarchy = Some(hierarchy);
        self.restore_observability(diagnostics, coverage);
        Ok(())
    }

    /// Completes the run: optional repartitioning, final counters, and
    /// the assembled [`Reconstruction`].
    ///
    /// # Panics
    ///
    /// If stages are still pending ([`StagedRun::is_done`] is `false`).
    pub fn finish(mut self) -> Reconstruction {
        assert!(self.is_done(), "finish() with stage {:?} still pending", self.cursor);
        self.ensure_structural();
        let structural = self.structural.take().expect("structural ensured");
        let analysis = self.analysis.take().expect("analysis ran or was restored");
        let models = self.models.take().expect("training ran or was restored");
        let mut distances = self.distances.take().expect("distances ran or were restored");
        let mut hierarchy = self.hierarchy.take().expect("lifting ran or was restored");
        let config = *self.rock.config();

        if config.repartition_families {
            let stage = Instant::now();
            let rock = self.rock;
            let ctx = rock.trace_ctx();
            let _span = ctx.span(names::STAGE_REPARTITION, 0);
            let adopted = crate::pipeline::repartition(
                &mut hierarchy,
                &mut distances,
                &structural,
                &models,
                &self.model_keys,
                self.loaded,
                config.metric,
                rock.cache(),
                rock.global_distances(),
                config.parallelism,
                ctx,
            );
            self.metrics.set(names::REPARTITION_ADOPTIONS, adopted as u64);
            self.timings.repartition = stage.elapsed();
        }

        // Finalize registry counters that only settle at the run
        // boundary; all of them derive from deterministic state (coverage
        // snapshots, diagnostics, cache deltas), so restored runs report
        // what the uninterrupted run would have.
        let cov = self.coverage;
        self.metrics.set(names::ANALYSIS_FUNCTIONS_TOTAL, cov.functions_total as u64);
        self.metrics.set(names::ANALYSIS_FUNCTIONS_ANALYZED, cov.functions_analyzed as u64);
        self.metrics.set(
            names::ANALYSIS_FUNCTIONS_SKIPPED,
            (cov.functions_skipped + cov.functions_timed_out) as u64,
        );
        self.metrics.set(names::LOAD_VTABLES_PARSED, cov.vtables_parsed as u64);
        self.metrics.set(names::LOAD_VTABLES_REJECTED, cov.vtables_rejected as u64);
        self.metrics.set(names::LIFTING_FAMILIES_TOTAL, cov.families_total as u64);
        self.metrics.set(names::LIFTING_FAMILIES_LIFTED, cov.families_lifted as u64);
        self.metrics.set(names::LIFTING_FAMILIES_DEGRADED, cov.families_degraded as u64);
        self.metrics.set(names::DISTANCES_CACHE_HIT, self.rock.cache().hits() - self.cache_hits0);
        self.metrics
            .set(names::DISTANCES_CACHE_MISS, self.rock.cache().misses() - self.cache_misses0);
        let dropped = self.sink.dropped();
        let diagnostics = self.sink.into_entries();
        let errors = diagnostics.iter().filter(|e| e.severity == Severity::Error).count();
        self.metrics.set(names::DIAGNOSTICS_ERRORS, errors as u64);
        self.metrics.set(names::DIAGNOSTICS_WARNINGS, (diagnostics.len() - errors) as u64);
        self.metrics.set(
            names::DIAGNOSTICS_BYTES,
            diagnostics.iter().map(StageError::approx_bytes).sum::<usize>() as u64,
        );
        if dropped > 0 {
            eprintln!("rock: diagnostic sink overflowed; {dropped} entries dropped");
        }
        // The timings counters are a fixed projection of the registry.
        self.timings.absorb_counters(&self.metrics);
        self.timings.total = self.run_start.elapsed();

        assemble_reconstruction(
            hierarchy,
            structural,
            analysis,
            distances,
            self.timings,
            diagnostics,
            self.coverage,
            self.metrics,
            config.metric,
            models,
            std::mem::take(&mut self.model_keys),
            self.rock.cache().clone(),
            self.rock.corpus_cache().cloned(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RockConfig;
    use rock_minicpp::{compile, CompileOptions, ProgramBuilder};

    fn loaded_sample() -> LoadedBinary {
        let mut p = ProgramBuilder::new();
        p.class("A").method("m0", |b| {
            b.ret();
        });
        p.class("B").base("A").method("m1", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("b", "B");
            f.vcall("b", "m0", vec![]);
            f.vcall("b", "m1", vec![]);
            f.ret();
        });
        let compiled = compile(&p.finish(), &CompileOptions::default()).unwrap();
        LoadedBinary::load(compiled.stripped_image()).unwrap()
    }

    #[test]
    fn stage_order_and_names() {
        assert_eq!(StageId::ALL.len(), 4);
        assert_eq!(StageId::Analysis.next(), Some(StageId::Training));
        assert_eq!(StageId::Lifting.next(), None);
        assert_eq!(StageId::Distances.to_string(), "distances");
    }

    #[test]
    fn staged_run_matches_monolithic_reconstruct() {
        let loaded = loaded_sample();
        let rock = Rock::new(RockConfig::paper());
        let direct = Rock::new(RockConfig::paper()).reconstruct(&loaded);

        let mut run = rock.begin(&loaded);
        let mut order = Vec::new();
        while !run.is_done() {
            order.push(run.advance().expect("non-strict advance cannot fail").unwrap());
        }
        assert_eq!(order, StageId::ALL);
        assert_eq!(run.advance().unwrap(), None, "advancing a done run is a no-op");
        let staged = run.finish();
        assert_eq!(staged.hierarchy, direct.hierarchy);
        assert_eq!(staged.distances, direct.distances);
        assert_eq!(staged.coverage, direct.coverage);
        assert_eq!(staged.diagnostics, direct.diagnostics);
    }

    #[test]
    fn restores_must_follow_cursor_order() {
        let loaded = loaded_sample();
        let rock = Rock::new(RockConfig::paper());
        let mut run = rock.begin(&loaded);
        let err = run
            .restore_models(&[], Vec::new(), Coverage::default())
            .expect_err("training restore before analysis must fail");
        assert_eq!(err.restoring, StageId::Training);
        assert_eq!(err.expected, Some(StageId::Analysis));
        assert!(err.to_string().contains("expects analysis next"));
        // After running everything, no further restore is accepted.
        while !run.is_done() {
            run.advance().unwrap();
        }
        let err = run
            .restore_hierarchy(Forest::new(), Vec::new(), Coverage::default())
            .expect_err("restore after completion must fail");
        assert_eq!(err.expected, None);
        assert!(err.to_string().contains("already complete"));
    }

    #[test]
    fn full_restore_chain_reproduces_the_run() {
        let loaded = loaded_sample();
        let rock = Rock::new(RockConfig::paper());

        // Live run, snapshotting at every boundary.
        let mut live = rock.begin(&loaded);
        let mut snaps = Vec::new();
        while !live.is_done() {
            live.advance().unwrap();
            snaps.push((live.diagnostics_snapshot(), live.coverage()));
        }
        let analysis = live.analysis().unwrap().clone();
        let trained: Vec<Addr> = live.models().unwrap().keys().copied().collect();
        let distances = live.distances().unwrap().clone();
        let hierarchy = live.hierarchy().unwrap().clone();
        let original = live.finish();

        // Resumed run: everything restored, nothing executed.
        let rock2 = Rock::new(RockConfig::paper());
        let mut resumed = rock2.begin(&loaded);
        resumed.restore_analysis(analysis, snaps[0].0.clone(), snaps[0].1).unwrap();
        resumed.restore_models(&trained, snaps[1].0.clone(), snaps[1].1).unwrap();
        resumed.restore_distances(distances, snaps[2].0.clone(), snaps[2].1).unwrap();
        resumed.restore_hierarchy(hierarchy, snaps[3].0.clone(), snaps[3].1).unwrap();
        assert!(resumed.is_done());
        let replayed = resumed.finish();

        assert_eq!(replayed.hierarchy, original.hierarchy);
        assert_eq!(replayed.coverage, original.coverage);
        assert_eq!(replayed.diagnostics, original.diagnostics);
        assert_eq!(replayed.distances.len(), original.distances.len());
        for (k, d) in &original.distances {
            assert_eq!(d.to_bits(), replayed.distances[k].to_bits(), "distance bits for {k:?}");
        }
    }
}
