//! Typed diagnostics for one reconstruction run.
//!
//! The pipeline degrades instead of dying: a function that panics under
//! symbolic execution, a vtable whose model cannot be trained, a family
//! whose arborescence search faults — each becomes a [`StageError`]
//! recorded in a [`DiagnosticSink`] and a gap accounted for by
//! [`Coverage`], while the rest of the binary is still reconstructed.
//! Strict mode ([`crate::RockConfig::strict`]) restores the old
//! fail-fast behavior by turning the first error-severity entry into a
//! hard failure.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use rock_binary::Addr;

/// A pipeline stage, as named in diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Image loading: function recovery + vtable discovery.
    Load,
    /// Behavioral analysis: symbolic execution + tracelet extraction.
    Analysis,
    /// Structural analysis: families + possible parents.
    Structural,
    /// Per-vtable SLM training.
    Training,
    /// Candidate-edge distance computation.
    Distances,
    /// Per-family arborescence search.
    Lifting,
    /// Cross-family repartitioning.
    Repartition,
}

impl Stage {
    /// Stable lowercase name (used in rendered diagnostics).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Load => "load",
            Stage::Analysis => "analysis",
            Stage::Structural => "structural",
            Stage::Training => "training",
            Stage::Distances => "distances",
            Stage::Lifting => "lifting",
            Stage::Repartition => "repartition",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a [`StageError`] is about.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subject {
    /// The image as a whole.
    Image,
    /// A recovered function, by entry address.
    Function(Addr),
    /// A binary type, by vtable address.
    Vtable(Addr),
    /// A structural family, by index.
    Family(usize),
    /// A candidate `(parent, child)` edge.
    Edge(Addr, Addr),
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::Image => write!(f, "image"),
            Subject::Function(a) => write!(f, "function {a}"),
            Subject::Vtable(a) => write!(f, "vtable {a}"),
            Subject::Family(i) => write!(f, "family #{i}"),
            Subject::Edge(p, c) => write!(f, "edge {p} -> {c}"),
        }
    }
}

/// What went wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A contained panic; the payload message is preserved.
    Panicked(String),
    /// A step budget ran out.
    FuelExhausted,
    /// A wall-clock deadline passed.
    DeadlineExceeded,
    /// A hook or plan directed the stage to skip the item.
    Skipped,
    /// The text section could not be decoded past some point.
    TruncatedDecode,
    /// Leading non-prologue instructions were dropped.
    SkippedPrefix,
    /// The image has no text section.
    MissingText,
    /// A vtable candidate failed validation and was dropped.
    RejectedVtable,
    /// A distance needed a model that was never trained.
    MissingModel,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Panicked(msg) => write!(f, "panicked: {msg}"),
            FaultKind::FuelExhausted => write!(f, "fuel exhausted"),
            FaultKind::DeadlineExceeded => write!(f, "deadline exceeded"),
            FaultKind::Skipped => write!(f, "skipped"),
            FaultKind::TruncatedDecode => write!(f, "undecodable bytes truncated"),
            FaultKind::SkippedPrefix => write!(f, "pre-prologue bytes dropped"),
            FaultKind::MissingText => write!(f, "no text section"),
            FaultKind::RejectedVtable => write!(f, "vtable candidate rejected"),
            FaultKind::MissingModel => write!(f, "model missing"),
        }
    }
}

/// How bad a [`StageError`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Expected degradation (a dropped candidate, an explicit skip).
    Warning,
    /// Real loss of coverage (a panic, an exhausted budget, lost code).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One contained fault: which stage, about what, what happened, how bad.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageError {
    /// The pipeline stage that recorded the fault.
    pub stage: Stage,
    /// What the fault is about.
    pub subject: Subject,
    /// What happened.
    pub kind: FaultKind,
    /// How bad it is.
    pub severity: Severity,
}

impl StageError {
    /// Approximate retained size in bytes (for observability counters).
    pub fn approx_bytes(&self) -> usize {
        let payload = match &self.kind {
            FaultKind::Panicked(msg) => msg.len(),
            _ => 0,
        };
        std::mem::size_of::<StageError>() + payload
    }
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}: {}", self.severity, self.stage, self.subject, self.kind)
    }
}

impl std::error::Error for StageError {}

/// A lock-free, append-only collector of [`StageError`]s for one run.
///
/// Workers record concurrently: an atomic counter claims a slot, a
/// `OnceLock` publishes the entry. Entries past the fixed capacity are
/// counted as dropped instead of blocking or reallocating. The pipeline
/// records at serial merge points in input order, so the drained list is
/// deterministic; concurrent recording merely stays safe.
#[derive(Debug)]
pub struct DiagnosticSink {
    slots: Vec<OnceLock<StageError>>,
    claimed: AtomicUsize,
    dropped: AtomicUsize,
}

/// Default capacity of a [`DiagnosticSink`].
pub const DEFAULT_SINK_CAPACITY: usize = 4096;

impl Default for DiagnosticSink {
    fn default() -> Self {
        DiagnosticSink::new(DEFAULT_SINK_CAPACITY)
    }
}

impl DiagnosticSink {
    /// Creates a sink that retains up to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        DiagnosticSink {
            slots: (0..capacity).map(|_| OnceLock::new()).collect(),
            claimed: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
        }
    }

    /// Records one fault. Lock-free; never blocks, never reallocates.
    pub fn record(&self, err: StageError) {
        let i = self.claimed.fetch_add(1, Ordering::Relaxed);
        match self.slots.get(i) {
            // A slot index is claimed exactly once, so the set cannot
            // collide; ignore the impossible error instead of unwrapping.
            Some(slot) => drop(slot.set(err)),
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.claimed.load(Ordering::Acquire).min(self.slots.len())
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.claimed.load(Ordering::Acquire) == 0
    }

    /// Entries that arrived after the sink was full.
    pub fn dropped(&self) -> usize {
        self.dropped.load(Ordering::Acquire)
    }

    /// Iterates over retained entries in recording order.
    pub fn iter(&self) -> impl Iterator<Item = &StageError> {
        self.slots[..self.len()].iter().filter_map(OnceLock::get)
    }

    /// Consumes the sink into the retained entries, in recording order.
    pub fn into_entries(self) -> Vec<StageError> {
        let n = self.len();
        self.slots.into_iter().take(n).filter_map(OnceLock::into_inner).collect()
    }
}

/// What fraction of the binary the run actually covered.
///
/// Every skipped item in these counters has a matching [`StageError`] in
/// the run's diagnostics; `analyzed + skipped` always accounts for the
/// whole input.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Functions recovered by the loader.
    pub functions_total: usize,
    /// Functions whose behavioral analysis completed.
    pub functions_analyzed: usize,
    /// Functions excluded by a skip directive or a contained panic.
    pub functions_skipped: usize,
    /// Functions excluded by fuel or deadline exhaustion.
    pub functions_timed_out: usize,
    /// Vtables accepted by the loader.
    pub vtables_parsed: usize,
    /// Vtable candidates rejected while loading.
    pub vtables_rejected: usize,
    /// Vtables whose SLM trained successfully.
    pub models_trained: usize,
    /// Structural families in the binary.
    pub families_total: usize,
    /// Families whose arborescence was lifted cleanly.
    pub families_lifted: usize,
    /// Families degraded to all-roots by a contained fault.
    pub families_degraded: usize,
}

impl Coverage {
    /// Returns `true` if nothing was skipped, rejected, or degraded.
    pub fn is_complete(&self) -> bool {
        self.functions_analyzed == self.functions_total
            && self.vtables_rejected == 0
            && self.models_trained == self.vtables_parsed
            && self.families_lifted == self.families_total
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "coverage: {}/{} functions analyzed ({} skipped, {} timed out)",
            self.functions_analyzed,
            self.functions_total,
            self.functions_skipped,
            self.functions_timed_out
        )?;
        writeln!(
            f,
            "          {} vtables parsed ({} candidates rejected), {} models trained",
            self.vtables_parsed, self.vtables_rejected, self.models_trained
        )?;
        write!(
            f,
            "          {}/{} families lifted ({} degraded)",
            self.families_lifted, self.families_total, self.families_degraded
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err(i: usize) -> StageError {
        StageError {
            stage: Stage::Training,
            subject: Subject::Vtable(Addr::new(i as u64)),
            kind: FaultKind::Panicked(format!("boom {i}")),
            severity: Severity::Error,
        }
    }

    #[test]
    fn records_in_order() {
        let sink = DiagnosticSink::new(8);
        assert!(sink.is_empty());
        for i in 0..3 {
            sink.record(err(i));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 0);
        let kinds: Vec<String> = sink.iter().map(|e| e.kind.to_string()).collect();
        assert_eq!(kinds, ["panicked: boom 0", "panicked: boom 1", "panicked: boom 2"]);
        assert_eq!(sink.into_entries().len(), 3);
    }

    #[test]
    fn overflow_is_counted_not_fatal() {
        let sink = DiagnosticSink::new(2);
        for i in 0..5 {
            sink.record(err(i));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        assert_eq!(sink.into_entries().len(), 2);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let sink = DiagnosticSink::new(64);
        std::thread::scope(|s| {
            for t in 0..4 {
                let sink = &sink;
                s.spawn(move || {
                    for i in 0..16 {
                        sink.record(err(t * 16 + i));
                    }
                });
            }
        });
        assert_eq!(sink.len(), 64);
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.iter().count(), 64);
    }

    #[test]
    fn display_forms() {
        let e = StageError {
            stage: Stage::Analysis,
            subject: Subject::Function(Addr::new(0x40)),
            kind: FaultKind::FuelExhausted,
            severity: Severity::Error,
        };
        assert_eq!(e.to_string(), "[error] analysis: function 0x40: fuel exhausted");
        assert_eq!(Subject::Edge(Addr::new(1), Addr::new(2)).to_string(), "edge 0x1 -> 0x2");
        assert_eq!(Subject::Family(3).to_string(), "family #3");
        assert_eq!(Subject::Image.to_string(), "image");
        assert_eq!(Stage::Repartition.to_string(), "repartition");
        assert_eq!(Severity::Warning.to_string(), "warning");
        assert!(err(0).approx_bytes() > std::mem::size_of::<StageError>());
    }

    #[test]
    fn coverage_completeness() {
        let mut c = Coverage {
            functions_total: 10,
            functions_analyzed: 10,
            vtables_parsed: 3,
            models_trained: 3,
            families_total: 2,
            families_lifted: 2,
            ..Coverage::default()
        };
        assert!(c.is_complete());
        c.functions_analyzed = 9;
        c.functions_skipped = 1;
        assert!(!c.is_complete());
        let text = c.to_string();
        assert!(text.contains("9/10 functions analyzed (1 skipped, 0 timed out)"));
        assert!(text.contains("3 vtables parsed"));
        assert!(text.contains("2/2 families lifted"));
    }
}
