//! Rock: statistical reconstruction of class hierarchies in stripped
//! binaries (Katz, Rinetzky, Yahav — ASPLOS'18).
//!
//! This crate ties the substrates together into the end-to-end pipeline
//! the paper describes, plus the evaluation machinery of §6:
//!
//! 1. **Load** a stripped [`rock_binary::BinaryImage`]
//!    (`rock-loader`): recover functions, discover vtables (binary types).
//! 2. **Structural analysis** (`rock-structural`, §5): cluster the types
//!    into families, eliminate impossible parents.
//! 3. **Behavioral analysis** (`rock-analysis`, §3): extract object
//!    tracelets per type via intra-procedural symbolic execution.
//! 4. **Statistical modeling** (`rock-slm`, §3.1): train a PPM-C
//!    variable-order Markov model per type; edge weights are
//!    `D_KL(SLM(parent) ‖ SLM(child))`.
//! 5. **Lifting** (`rock-graph`, §4.2.2): per family, find a
//!    minimum-weight maximal forest (Chu-Liu/Edmonds with a virtual
//!    root); the union over families is the reconstructed hierarchy.
//! 6. **Evaluation** (§6.3): the *application distance* — per type,
//!    missing and added successors against a compile-time ground truth —
//!    in both the structural-only ("Without SLMs") and full ("With
//!    SLMs") settings.
//!
//! The [`suite`] module regenerates the paper's 19 benchmarks as
//! synthetic MiniCpp programs with matching type counts and structural
//! character; `rock-bench` turns them into Table 2.
//!
//! # Example
//!
//! ```
//! use rock_core::{Rock, RockConfig, suite};
//!
//! let bench = suite::streams_example();
//! let compiled = bench.compile()?;
//! let loaded = rock_loader::LoadedBinary::load(compiled.stripped_image())?;
//! let recon = Rock::new(RockConfig::default()).reconstruct(&loaded);
//! let eval = rock_core::evaluate(&compiled, &recon);
//! assert_eq!(eval.with_slm.avg_missing, 0.0);
//! assert_eq!(eval.with_slm.avg_added, 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod corpus;
pub mod diagnostics;
mod eval;
pub mod faultplan;
pub mod incrstats;
mod par;
mod pipeline;
mod pseudo;
mod report;
mod staged;
pub mod storestats;
pub mod suite;
mod timings;

pub use config::RockConfig;
pub use corpus::{distance_disk_key, lift_key, pool_key, CorpusCache, CorpusStats, SubTier};
pub use diagnostics::{Coverage, DiagnosticSink, FaultKind, Severity, Stage, StageError, Subject};
pub use eval::{evaluate, evaluate_k_parents, project_hierarchy, AppDistance, Evaluation};
pub use faultplan::FaultPlan;
pub use incrstats::IncrStats;
pub use par::Parallelism;
pub use pipeline::{Reconstruction, Rock};
pub use pseudo::pseudo_source;
pub use report::{render_table2, render_table2_markdown, Table2Row};
pub use rock_trace::TraceLevel;
pub use staged::{RestoreError, StageId, StagedRun};
pub use storestats::StoreStats;
pub use timings::StageTimings;
