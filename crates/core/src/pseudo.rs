//! Pseudo-source rendering: the Fig. 5 view of a stripped binary.
//!
//! The paper's Fig. 5 depicts the stripped binary "in code": classes get
//! generalized names (`Class1`, `Class2`, …) and virtual functions are
//! named solely by their slot position (`f0` is the 1st function, `f1`
//! the 2nd, …), with no guarantee that `f1` of two classes points at the
//! same implementation. [`pseudo_source`] produces exactly that view,
//! annotated with the reconstructed inheritance.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use rock_binary::Addr;
use rock_loader::LoadedBinary;

use crate::Reconstruction;

/// Renders a reconstructed binary as generalized stripped "source code"
/// (paper Fig. 5): one class per vtable, slot-indexed method names, and
/// the reconstructed `: public ClassN` clauses.
pub fn pseudo_source(loaded: &LoadedBinary, recon: &Reconstruction) -> String {
    // Stable generalized names in address order.
    let names: BTreeMap<Addr, String> = loaded
        .vtables()
        .iter()
        .enumerate()
        .map(|(i, vt)| (vt.addr(), format!("Class{}", i + 1)))
        .collect();

    let mut out = String::new();
    for vt in loaded.vtables() {
        let name = &names[&vt.addr()];
        let parent = recon
            .parent_of(vt.addr())
            .and_then(|p| names.get(&p))
            .map(|p| format!(" : public {p}"))
            .unwrap_or_default();
        let _ = writeln!(out, "class {name}{parent} {{");
        // A slot is "inherited" if the reconstructed parent's table holds
        // the same implementation at the same position.
        let parent_table = recon.parent_of(vt.addr()).and_then(|p| loaded.vtable_at(p));
        for (i, slot) in vt.slots().iter().enumerate() {
            let inherited = parent_table.map(|pt| pt.slots().get(i) == Some(slot)).unwrap_or(false);
            if inherited {
                let _ = writeln!(out, "    // f{i} inherited (impl @{slot})");
            } else {
                let _ = writeln!(out, "    virtual void f{i}();   // impl @{slot}");
            }
        }
        let _ = writeln!(out, "}};");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rock, RockConfig};
    use rock_minicpp::{compile, CompileOptions, ProgramBuilder};

    #[test]
    fn fig5_style_rendering() {
        let mut p = ProgramBuilder::new();
        p.class("Stream").method("send", |b| {
            b.ret();
        });
        p.class("FlushableStream")
            .base("Stream")
            .method("flush", |b| {
                b.ret();
            })
            .method("close", |b| {
                b.ret();
            });
        p.func("use", |f| {
            f.new_obj("s", "FlushableStream");
            f.vcall("s", "send", vec![]);
            f.vcall("s", "flush", vec![]);
            f.ret();
        });
        let compiled = compile(&p.finish(), &CompileOptions::default()).unwrap();
        let loaded = rock_loader::LoadedBinary::load(compiled.stripped_image()).unwrap();
        let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
        let src = pseudo_source(&loaded, &recon);
        // Generalized names only; no source identifiers survive.
        assert!(src.contains("class Class1 {"));
        assert!(src.contains("class Class2 : public Class1 {"));
        assert!(!src.contains("Stream"));
        // Slot-position naming, inherited slot annotated.
        assert!(src.contains("virtual void f0();"), "{src}");
        assert!(src.contains("// f0 inherited"), "{src}");
        assert!(src.contains("virtual void f2();"), "{src}");
    }

    #[test]
    fn empty_binary_renders_empty() {
        let mut p = ProgramBuilder::new();
        p.func("noop", |f| {
            f.ret();
        });
        let compiled = compile(&p.finish(), &CompileOptions::default()).unwrap();
        let loaded = rock_loader::LoadedBinary::load(compiled.stripped_image()).unwrap();
        let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
        assert!(pseudo_source(&loaded, &recon).is_empty());
    }
}
