//! Evaluation: the application distance of §6.3.
//!
//! For a reverse engineer resolving virtual-call targets, what matters is
//! `successors(t)` — the set of types derived from `t`. The application
//! distance compares, per type, the reconstructed successor set against
//! the ground truth's:
//!
//! * **missing** = `|successors_GT(t) \ successors_h(t)|` — lost targets
//!   (soundness loss);
//! * **added** = `|successors_h(t) \ successors_GT(t)|` — spurious targets
//!   (extra payload to analyze).
//!
//! Two settings are measured (Table 2): *Without SLMs* — structural
//! analysis only, where a type counts as a successor of **each** of its
//! possible parents (transitively); *With SLMs* — the single-parent
//! hierarchy chosen by the full pipeline.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rock_binary::Addr;
use rock_graph::Forest;
use rock_minicpp::Compiled;

use crate::Reconstruction;

/// Per-type and averaged missing/added counts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AppDistance {
    /// Average number of missing successors per type.
    pub avg_missing: f64,
    /// Average number of added successors per type.
    pub avg_added: f64,
    /// Per-type `(missing, added)` counts.
    pub per_type: BTreeMap<String, (usize, usize)>,
}

impl AppDistance {
    /// Number of types with any error at all.
    pub fn types_with_errors(&self) -> usize {
        self.per_type.values().filter(|(m, a)| *m > 0 || *a > 0).count()
    }
}

impl fmt::Display for AppDistance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "missing {:.2}, added {:.2}", self.avg_missing, self.avg_added)
    }
}

/// The full Table 2 measurement for one benchmark binary.
#[derive(Clone, Debug, PartialEq)]
pub struct Evaluation {
    /// Structural-only setting.
    pub without_slm: AppDistance,
    /// Full-pipeline setting.
    pub with_slm: AppDistance,
    /// Whether the structural phase alone already determined a unique
    /// hierarchy (Table 2's horizontal line).
    pub structurally_resolved: bool,
    /// Number of ground-truth types.
    pub num_types: usize,
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} types (structurally resolved: {})",
            self.num_types, self.structurally_resolved
        )?;
        writeln!(f, "  without SLMs: {}", self.without_slm)?;
        writeln!(f, "  with SLMs:    {}", self.with_slm)
    }
}

/// Projects a vtable-address hierarchy onto ground-truth class names,
/// skipping synthetic types (secondary vtables etc.): unknown nodes are
/// bypassed by walking further up the parent chain (§4.1: "we identify
/// and remove synthetic classes to enable comparison").
pub fn project_hierarchy(hierarchy: &Forest<Addr>, compiled: &Compiled) -> Forest<String> {
    let mut out = Forest::new();
    for node in hierarchy.nodes() {
        let Some(name) = compiled.class_of(*node) else {
            continue;
        };
        // Walk up until a known class or a root.
        let mut parent = hierarchy.parent_of(node);
        let parent_name = loop {
            match parent {
                None => break None,
                Some(p) => match compiled.class_of(*p) {
                    Some(pn) => break Some(pn.to_string()),
                    None => parent = hierarchy.parent_of(p),
                },
            }
        };
        out.insert(name.to_string(), parent_name);
    }
    out
}

/// Successor sets in an arbitrary multi-parent relation: `c` is a
/// successor of `p` if `p` is transitively reachable from `c` through
/// parent links. Used for the Without-SLMs setting (every possible
/// parent) and for the §6.4 k-parents CFI trade-off.
fn closure_successors(parents: &BTreeMap<&str, Vec<&str>>) -> BTreeMap<String, BTreeSet<String>> {
    // successors(p) = all c such that p ∈ ancestors*(c).
    let mut successors: BTreeMap<String, BTreeSet<String>> =
        parents.keys().map(|k| (k.to_string(), BTreeSet::new())).collect();
    for &c in parents.keys() {
        // BFS upward through possible parents.
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack: Vec<&str> = parents[c].clone();
        while let Some(p) = stack.pop() {
            if !seen.insert(p) {
                continue;
            }
            if p != c {
                if let Some(s) = successors.get_mut(p) {
                    s.insert(c.to_string());
                }
            }
            if let Some(next) = parents.get(p) {
                stack.extend(next);
            }
        }
    }
    successors
}

fn distance_from_successors(
    gt_succ: &BTreeMap<String, BTreeSet<String>>,
    got_succ: &BTreeMap<String, BTreeSet<String>>,
) -> AppDistance {
    let mut per_type = BTreeMap::new();
    let empty = BTreeSet::new();
    for (t, gts) in gt_succ {
        let got = got_succ.get(t).unwrap_or(&empty);
        let missing = gts.difference(got).count();
        let added = got.difference(gts).count();
        per_type.insert(t.clone(), (missing, added));
    }
    let n = per_type.len().max(1) as f64;
    let avg_missing = per_type.values().map(|(m, _)| *m).sum::<usize>() as f64 / n;
    let avg_added = per_type.values().map(|(_, a)| *a).sum::<usize>() as f64 / n;
    AppDistance { avg_missing, avg_added, per_type }
}

fn named_parent_relation(
    compiled: &Compiled,
    of: impl Fn(rock_binary::Addr) -> Vec<rock_binary::Addr>,
) -> BTreeMap<&str, Vec<&str>> {
    compiled
        .vtables()
        .iter()
        .map(|(name, vt)| {
            let ps: Vec<&str> = of(*vt).into_iter().filter_map(|p| compiled.class_of(p)).collect();
            (name.as_str(), ps)
        })
        .collect()
}

/// Measures the §6.4 CFI trade-off: application distance when each type
/// is assigned its `k` most likely parents. `k = 1` degenerates to the
/// With-SLMs setting (modulo the closure semantics); larger `k` trades
/// added types (payload) for fewer missing types (soundness).
pub fn evaluate_k_parents(compiled: &Compiled, recon: &Reconstruction, k: usize) -> AppDistance {
    let gt = compiled.ground_truth();
    let gt_succ: BTreeMap<String, BTreeSet<String>> =
        gt.classes().map(|c| (c.to_string(), gt.successors(c))).collect();
    let k_parents = recon.k_most_likely_parents(k);
    let relation =
        named_parent_relation(compiled, |vt| k_parents.get(&vt).cloned().unwrap_or_default());
    let succ = closure_successors(&relation);
    distance_from_successors(&gt_succ, &succ)
}

/// Measures the application distance of a reconstruction against the
/// compile-time ground truth, in both Table 2 settings.
pub fn evaluate(compiled: &Compiled, recon: &Reconstruction) -> Evaluation {
    let gt = compiled.ground_truth();
    let gt_succ: BTreeMap<String, BTreeSet<String>> =
        gt.classes().map(|c| (c.to_string(), gt.successors(c))).collect();

    // With SLMs: single-parent forest successors.
    let projected = project_hierarchy(&recon.hierarchy, compiled);
    let with_succ: BTreeMap<String, BTreeSet<String>> =
        gt.classes().map(|c| (c.to_string(), projected.successors(&c.to_string()))).collect();

    // Without SLMs: every possible parent counts.
    let relation = named_parent_relation(compiled, |vt| recon.structural.possible_parents().of(vt));
    let without_succ = closure_successors(&relation);

    Evaluation {
        without_slm: distance_from_successors(&gt_succ, &without_succ),
        with_slm: distance_from_successors(&gt_succ, &with_succ),
        structurally_resolved: recon.structural.is_structurally_resolved(),
        num_types: gt.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rock, RockConfig};
    use rock_loader::LoadedBinary;
    use rock_minicpp::{compile, CompileOptions, ProgramBuilder};

    fn two_tree_program() -> ProgramBuilder {
        let mut p = ProgramBuilder::new();
        p.class("A").method("am", |b| {
            b.ret();
        });
        p.class("B").base("A").method("bm", |b| {
            b.ret();
        });
        p.class("C").base("B").method("cm", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("a", "A");
            f.vcall("a", "am", vec![]);
            f.new_obj("b", "B");
            f.vcall("b", "am", vec![]);
            f.vcall("b", "bm", vec![]);
            f.new_obj("c", "C");
            f.vcall("c", "am", vec![]);
            f.vcall("c", "bm", vec![]);
            f.vcall("c", "cm", vec![]);
            f.ret();
        });
        p
    }

    #[test]
    fn perfect_reconstruction_scores_zero() {
        let compiled = compile(&two_tree_program().finish(), &CompileOptions::default()).unwrap();
        let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
        let recon = Rock::new(RockConfig::default()).reconstruct(&loaded);
        let eval = evaluate(&compiled, &recon);
        assert_eq!(eval.num_types, 3);
        assert_eq!(eval.with_slm.avg_missing, 0.0);
        assert_eq!(eval.with_slm.avg_added, 0.0);
        assert!(eval.structurally_resolved, "debug build has ctor pins");
        // Structural-only is also perfect here (chain fully pinned).
        assert_eq!(eval.without_slm.avg_missing, 0.0);
        assert_eq!(eval.without_slm.avg_added, 0.0);
        assert_eq!(eval.with_slm.types_with_errors(), 0);
    }

    #[test]
    fn without_slm_counts_every_possible_parent() {
        // Optimized build: no ctor pins; B and C are ambiguous.
        let mut opts = CompileOptions::default();
        opts.inline_parent_ctors = true;
        let compiled = compile(&two_tree_program().finish(), &opts).unwrap();
        let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
        let recon = Rock::new(RockConfig::default()).reconstruct(&loaded);
        let eval = evaluate(&compiled, &recon);
        assert!(!eval.structurally_resolved);
        // Without SLMs the ambiguity inflates added successors.
        assert!(
            eval.without_slm.avg_added >= eval.with_slm.avg_added,
            "without: {}, with: {}",
            eval.without_slm.avg_added,
            eval.with_slm.avg_added
        );
    }

    #[test]
    fn projection_skips_unknown_vtables() {
        let compiled = compile(&two_tree_program().finish(), &CompileOptions::default()).unwrap();
        let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
        let recon = Rock::new(RockConfig::default()).reconstruct(&loaded);
        let projected = project_hierarchy(&recon.hierarchy, &compiled);
        assert_eq!(projected.len(), 3);
        assert_eq!(projected.parent_of(&"B".to_string()), Some(&"A".to_string()));
    }

    #[test]
    fn display_formats() {
        let compiled = compile(&two_tree_program().finish(), &CompileOptions::default()).unwrap();
        let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
        let recon = Rock::new(RockConfig::default()).reconstruct(&loaded);
        let eval = evaluate(&compiled, &recon);
        let text = eval.to_string();
        assert!(text.contains("3 types"));
        assert!(text.contains("with SLMs"));
        assert!(eval.with_slm.to_string().contains("missing 0.00"));
    }
}
