//! Plain counters describing artifact-store activity.
//!
//! The store itself lives in `rock-supervisor`; the counter struct
//! lives here (mirroring [`crate::CorpusStats`]) so that
//! [`crate::StageTimings`] can absorb store deltas without a circular
//! crate dependency. All fields are per-process totals; use
//! [`StoreStats::since`] for per-job deltas.

/// Counters for one artifact store (or a delta between two snapshots).
///
/// Store counters are observability only: they ride in timings,
/// metrics documents, and job reports, but never enter the pipeline's
/// own registry or diagnostics — warm and cold runs stay byte-identical
/// there.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Orphaned `.art.tmp` files removed (open-time sweep or scrub).
    pub tmp_swept: u64,
    /// Checkpoint saves re-attempted after a transient i/o fault.
    pub write_retries: u64,
    /// Checkpoint saves abandoned after retries — resume for that
    /// stage is lost but the job keeps running.
    pub write_failures: u64,
    /// Artifact loads re-attempted after a transient i/o fault.
    pub read_retries: u64,
    /// Artifact loads abandoned after retries — the job recomputes.
    pub read_failures: u64,
    /// Artifacts whose checksum or frame failed verification.
    pub corrupt_detected: u64,
    /// Checkpoint saves skipped after the supervisor degraded a job to
    /// recompute-without-checkpointing (persistent storage fault).
    pub checkpoints_skipped: u64,
    /// Backoff milliseconds scheduled for store retries (recorded even
    /// when the store does not actually sleep).
    pub retry_backoff_ms: u64,
}

impl StoreStats {
    /// Component-wise `self - earlier` (for per-job deltas).
    pub fn since(&self, earlier: &StoreStats) -> StoreStats {
        StoreStats {
            tmp_swept: self.tmp_swept - earlier.tmp_swept,
            write_retries: self.write_retries - earlier.write_retries,
            write_failures: self.write_failures - earlier.write_failures,
            read_retries: self.read_retries - earlier.read_retries,
            read_failures: self.read_failures - earlier.read_failures,
            corrupt_detected: self.corrupt_detected - earlier.corrupt_detected,
            checkpoints_skipped: self.checkpoints_skipped - earlier.checkpoints_skipped,
            retry_backoff_ms: self.retry_backoff_ms - earlier.retry_backoff_ms,
        }
    }

    /// True when any fault-path counter is non-zero (sweeps count:
    /// a swept tmp is evidence of an earlier interrupted commit).
    pub fn has_activity(&self) -> bool {
        *self != StoreStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_is_componentwise() {
        let a = StoreStats {
            tmp_swept: 3,
            write_retries: 5,
            write_failures: 1,
            read_retries: 2,
            read_failures: 1,
            corrupt_detected: 4,
            checkpoints_skipped: 2,
            retry_backoff_ms: 700,
        };
        let b = StoreStats {
            tmp_swept: 1,
            write_retries: 2,
            write_failures: 0,
            read_retries: 1,
            read_failures: 1,
            corrupt_detected: 1,
            checkpoints_skipped: 0,
            retry_backoff_ms: 100,
        };
        let d = a.since(&b);
        assert_eq!(d.tmp_swept, 2);
        assert_eq!(d.write_retries, 3);
        assert_eq!(d.write_failures, 1);
        assert_eq!(d.read_retries, 1);
        assert_eq!(d.read_failures, 0);
        assert_eq!(d.corrupt_detected, 3);
        assert_eq!(d.checkpoints_skipped, 2);
        assert_eq!(d.retry_backoff_ms, 600);
    }

    #[test]
    fn activity_gate() {
        assert!(!StoreStats::default().has_activity());
        assert!(StoreStats { tmp_swept: 1, ..Default::default() }.has_activity());
        assert!(StoreStats { retry_backoff_ms: 50, ..Default::default() }.has_activity());
    }
}
