//! Pipeline configuration.

use rock_analysis::AnalysisConfig;
use rock_slm::Metric;

use crate::Parallelism;

/// Configuration of the full Rock pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RockConfig {
    /// Behavioral-analysis knobs (tracelet length, path bounds, SLM depth).
    pub analysis: AnalysisConfig,
    /// Pairwise distance criterion (the paper uses KL; the symmetric
    /// alternatives exist for the §6.4 ablation).
    pub metric: Metric,
    /// Resolve co-optimal arborescences with the paper's majority-vote
    /// heuristic (§4.2.2 "Handling Multiple Arborescences").
    pub resolve_ties: bool,
    /// Two weights within this tolerance count as tied.
    pub tie_epsilon: f64,
    /// Cap on enumerated co-optimal arborescences per family.
    pub max_tie_variants: usize,
    /// Behavioral family repartitioning (OFF by default — the paper's
    /// §6.4 future-work extension): attach hierarchy roots to the most
    /// similar type of *another* family when the distance is within the
    /// range of already-accepted edges, healing false family splits.
    pub repartition_families: bool,
    /// Worker threads for the hot loops (SLM training, distance
    /// matrices, arborescences). Any setting yields a bit-identical
    /// [`crate::Reconstruction`]; only wall-clock changes.
    pub parallelism: Parallelism,
    /// Fail fast instead of degrading: the first error-severity
    /// [`crate::StageError`] aborts [`crate::Rock::try_reconstruct`]
    /// rather than being recorded and worked around.
    pub strict: bool,
    /// Rewrite direct-call events to the callee's position-independent
    /// content label (OFF by default; corpus mode turns it on). With
    /// canonical calls, tracelet pools — and the models and distances
    /// derived from them — hash identically across binaries that lay
    /// the same code out at different addresses, which is what lets a
    /// shared [`crate::CorpusCache`] dedup work fleet-wide. Changes the
    /// event *alphabet* (call targets become labels), so it is part of
    /// the supervisor's content key.
    pub canonical_calls: bool,
}

impl Default for RockConfig {
    fn default() -> Self {
        RockConfig {
            analysis: AnalysisConfig::default(),
            metric: Metric::default(),
            resolve_ties: true,
            tie_epsilon: 1e-9,
            max_tie_variants: 8,
            repartition_families: false,
            parallelism: Parallelism::Auto,
            strict: false,
            canonical_calls: false,
        }
    }
}

impl RockConfig {
    /// The paper's configuration: KL divergence, depth-2 models,
    /// tracelets up to length 7.
    pub fn paper() -> Self {
        RockConfig::default()
    }

    /// Same pipeline with a different distance metric.
    pub fn with_metric(metric: Metric) -> Self {
        RockConfig { metric, ..RockConfig::default() }
    }

    /// Disables the majority-vote tie resolution (deterministic
    /// first-minimum tie-breaking only).
    pub fn without_tie_resolution(mut self) -> Self {
        self.resolve_ties = false;
        self
    }

    /// Enables behavioral family repartitioning (§6.4 future work).
    pub fn with_repartitioning(mut self) -> Self {
        self.repartition_families = true;
        self
    }

    /// Same pipeline with an explicit [`Parallelism`] setting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Enables strict mode (fail fast on the first error-severity
    /// diagnostic instead of degrading).
    pub fn with_strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Enables position-independent (canonical) call events — the
    /// cross-binary key mode used by corpus runs.
    pub fn with_canonical_calls(mut self) -> Self {
        self.canonical_calls = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = RockConfig::default();
        assert_eq!(c.metric, Metric::KlDivergence);
        assert_eq!(c.analysis.tracelet_len, 7);
        assert_eq!(RockConfig::paper(), c);
        assert_eq!(RockConfig::with_metric(Metric::JsDistance).metric, Metric::JsDistance);
        assert!(c.resolve_ties);
        assert!(!RockConfig::default().without_tie_resolution().resolve_ties);
        assert!(!c.repartition_families, "repartitioning is opt-in");
        assert!(RockConfig::default().with_repartitioning().repartition_families);
        assert_eq!(c.parallelism, Parallelism::Auto);
        assert_eq!(
            RockConfig::default().with_parallelism(Parallelism::Threads(2)).parallelism,
            Parallelism::Threads(2)
        );
        assert!(!c.strict, "strict mode is opt-in");
        assert!(RockConfig::default().with_strict().strict);
        assert!(!c.canonical_calls, "canonical calls are opt-in");
        assert!(RockConfig::default().with_canonical_calls().canonical_calls);
    }
}
