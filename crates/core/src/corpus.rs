//! The corpus cache: cross-binary content-addressed reuse of analysis,
//! training, and distance work.
//!
//! A fleet of binaries built from overlapping sources (COMDAT folding,
//! shared libraries, template instantiation) repeats the same function
//! bodies across images. The per-job pipeline cannot see that overlap:
//! every job re-executes, re-trains and re-scores work an earlier job
//! already did. [`CorpusCache`] is one shared, thread-safe store that a
//! whole batch attaches to ([`crate::Rock::with_corpus_cache`]), with
//! three tiers keyed by **content hash** — never by anything
//! position-dependent:
//!
//! 1. **Executions** — function content label (plus an analysis-config
//!    salt) → the symbolic execution's per-path sub-object summaries
//!    and fuel cost, with typing vtables recorded by content label
//!    (see [`rock_analysis::canon`]).
//! 2. **Models** — tracelet-pool content key (depth + training
//!    multiset, [`pool_key`]) → the trained SLM, shared by `Arc` so a
//!    hit reuses the finalized evaluation tables, not just the counts.
//! 3. **Distances** — `(metric, from-model key, to-model key)` → the
//!    divergence bits, the corpus-wide layer behind each run's local
//!    [`rock_slm::DistanceCache`].
//! 4. **Liftings** — family lifting key ([`lift_key`]: lifting config +
//!    the family's member model keys in family order + its weighted
//!    edge list) → the selected parent forest and tie-variant count.
//!
//! The same four tiers double as the **incremental invalidation**
//! layer: [`CorpusCache::export_entries`] serializes every entry in
//! full (not just its verification image) and
//! [`CorpusCache::import_entry`] restores one, so the supervisor can
//! persist the cache across processes as per-function sub-artifacts
//! (see `rock-supervisor`'s `incr` module). Because both paths share
//! one keyspace, the in-memory corpus tier and the on-disk incremental
//! tier never double-store: a preloaded entry *is* the corpus entry.
//!
//! Every tier stores a compact verification image (a content
//! fingerprint of the entry) plus an FNV-1a checksum, verified on each
//! hit: a corrupted entry is dropped, counted, and recomputed by the
//! requesting job instead of poisoning it — the same self-verifying
//! discipline as the supervisor's artifact store, at O(1) per hit
//! instead of a full re-hash of the serialized result. Because keys
//! hash the *exact inputs* of the computation they memoize, a hit
//! returns bit-for-bit what the job would have computed itself; warm
//! runs differ from cold runs only in wall clock.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rock_analysis::canon::{CachedCtors, CachedExec, ExecCache, Label};
use rock_analysis::{AnalysisConfig, CachedSub, Event};
use rock_binary::Addr;
use rock_slm::{GlobalDistanceStore, Metric, ModelKey, Slm};

use crate::faultplan::FaultPlan;

const SHARDS: usize = 16;

/// Version byte mixed into every key: bump to invalidate all entries
/// when any serialized layout or canonicalization rule changes.
/// v2: dictionary-encoded execution entries (see [`encode_exec`]).
const CORPUS_FORMAT: u8 = 2;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn shard_of(key: u128) -> usize {
    // Mix the halves so structured keys still spread.
    let k = (key as u64) ^ ((key >> 64) as u64).rotate_left(29);
    (k.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 60) as usize % SHARDS
}

/// One self-verifying stored blob.
#[derive(Clone, Debug)]
struct Entry {
    bytes: Vec<u8>,
    checksum: u64,
}

impl Entry {
    fn new(bytes: Vec<u8>) -> Entry {
        let checksum = fnv1a(&bytes);
        Entry { bytes, checksum }
    }

    fn verified(&self) -> Option<&[u8]> {
        (fnv1a(&self.bytes) == self.checksum).then_some(self.bytes.as_slice())
    }
}

/// A model-tier entry: the verification image (format byte + pool
/// fingerprint) plus the shared trained model.
#[derive(Clone, Debug)]
struct ModelEntry {
    entry: Entry,
    model: Arc<Slm<Event>>,
}

/// An execution-tier slot: either a full symbolic-execution result or a
/// ctor-recognition result (disjoint key spaces, see [`CTOR_TAG`]).
///
/// Execution entries keep the decoded result alongside the serialized
/// verification image, so a hit shares the `Arc` instead of
/// deserializing — the same discipline as [`ModelEntry`].
#[derive(Clone, Debug)]
enum ExecSlot {
    Exec { entry: Entry, exec: Arc<CachedExec> },
    Ctors(Entry),
}

/// Tier values whose verification image the shard bookkeeping (byte
/// accounting, eviction, corruption hooks) can reach uniformly.
trait Stored {
    fn image(&self) -> &Entry;
    fn image_mut(&mut self) -> &mut Entry;
}

impl Stored for Entry {
    fn image(&self) -> &Entry {
        self
    }
    fn image_mut(&mut self) -> &mut Entry {
        self
    }
}

impl Stored for ModelEntry {
    fn image(&self) -> &Entry {
        &self.entry
    }
    fn image_mut(&mut self) -> &mut Entry {
        &mut self.entry
    }
}

impl Stored for ExecSlot {
    fn image(&self) -> &Entry {
        match self {
            ExecSlot::Exec { entry, .. } => entry,
            ExecSlot::Ctors(entry) => entry,
        }
    }
    fn image_mut(&mut self) -> &mut Entry {
        match self {
            ExecSlot::Exec { entry, .. } => entry,
            ExecSlot::Ctors(entry) => entry,
        }
    }
}

/// One lock's worth of a tier: the entries plus their insertion order,
/// so a bounded cache can evict deterministically (FIFO per shard,
/// oldest insertion first) regardless of thread interleaving. Keys
/// whose entries were dropped out-of-band (corruption) linger in the
/// order queue and are skipped lazily when eviction reaches them.
#[derive(Debug)]
struct Shard<K, V> {
    map: BTreeMap<K, V>,
    order: VecDeque<K>,
}

impl<K: Ord, V> Default for Shard<K, V> {
    fn default() -> Shard<K, V> {
        Shard { map: BTreeMap::new(), order: VecDeque::new() }
    }
}

impl<K: Ord + Copy, V: Stored> Shard<K, V> {
    /// Inserts `value` if `key` is vacant, evicting oldest-first down
    /// to `cap - 1` live entries beforehand when `cap` is non-zero.
    /// Eviction is invisible to correctness — a future lookup simply
    /// misses and recomputes — so bounding the cache can only change
    /// hit rates, never output bits.
    fn insert_bounded(&mut self, key: K, value: V, cap: usize, counters: &Counters) {
        if self.map.contains_key(&key) {
            return;
        }
        if cap > 0 {
            while self.map.len() >= cap {
                let Some(oldest) = self.order.pop_front() else { break };
                if let Some(gone) = self.map.remove(&oldest) {
                    let freed = gone.image().bytes.len() as u64;
                    counters.bytes_stored.fetch_sub(freed, Ordering::Relaxed);
                    counters.evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        counters.bytes_stored.fetch_add(value.image().bytes.len() as u64, Ordering::Relaxed);
        self.order.push_back(key);
        self.map.insert(key, value);
    }
}

/// Monotonic hit/miss/bytes counters for the three tiers.
///
/// All counters are totals since construction; per-job deltas come from
/// subtracting two [`CorpusStats`] snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CorpusStats {
    /// Execution-tier lookups answered from the cache.
    pub tracelet_hits: u64,
    /// Execution-tier lookups that ran live.
    pub tracelet_misses: u64,
    /// Model-tier lookups answered from the cache.
    pub slm_hits: u64,
    /// Model-tier lookups that trained live.
    pub slm_misses: u64,
    /// Distance-tier lookups answered from the cache.
    pub distance_hits: u64,
    /// Distance-tier lookups that computed live.
    pub distance_misses: u64,
    /// Lifting-tier lookups answered from the cache.
    pub lifting_hits: u64,
    /// Lifting-tier lookups that lifted live.
    pub lifting_misses: u64,
    /// Total serialized bytes currently stored across all tiers.
    pub bytes_stored: u64,
    /// Entries dropped because their checksum failed verification.
    pub corrupt_dropped: u64,
    /// Entries dropped by capacity eviction (bounded caches only).
    pub evicted: u64,
}

impl CorpusStats {
    /// Component-wise `self - earlier` (for per-job deltas).
    pub fn since(&self, earlier: &CorpusStats) -> CorpusStats {
        CorpusStats {
            tracelet_hits: self.tracelet_hits - earlier.tracelet_hits,
            tracelet_misses: self.tracelet_misses - earlier.tracelet_misses,
            slm_hits: self.slm_hits - earlier.slm_hits,
            slm_misses: self.slm_misses - earlier.slm_misses,
            distance_hits: self.distance_hits - earlier.distance_hits,
            distance_misses: self.distance_misses - earlier.distance_misses,
            lifting_hits: self.lifting_hits - earlier.lifting_hits,
            lifting_misses: self.lifting_misses - earlier.lifting_misses,
            bytes_stored: self.bytes_stored.saturating_sub(earlier.bytes_stored),
            corrupt_dropped: self.corrupt_dropped - earlier.corrupt_dropped,
            evicted: self.evicted - earlier.evicted,
        }
    }

    /// Hit rate over all four tiers, in `[0, 1]` (1.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.tracelet_hits + self.slm_hits + self.distance_hits + self.lifting_hits;
        let total = hits
            + self.tracelet_misses
            + self.slm_misses
            + self.distance_misses
            + self.lifting_misses;
        if total == 0 {
            1.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    tracelet_hits: AtomicU64,
    tracelet_misses: AtomicU64,
    slm_hits: AtomicU64,
    slm_misses: AtomicU64,
    distance_hits: AtomicU64,
    distance_misses: AtomicU64,
    lifting_hits: AtomicU64,
    lifting_misses: AtomicU64,
    bytes_stored: AtomicU64,
    corrupt_dropped: AtomicU64,
    evicted: AtomicU64,
}

/// A distance-tier key: the metric plus both pool content keys, in
/// evaluation order (KL divergence is not symmetric).
type DistanceKey = (Metric, ModelKey, ModelKey);

/// The shared cross-job content cache. See the module docs.
///
/// One instance is shared (via `Arc`) by every job of a corpus run;
/// all methods take `&self` and are safe to call concurrently.
#[derive(Debug, Default)]
pub struct CorpusCache {
    execs: [Mutex<Shard<u128, ExecSlot>>; SHARDS],
    models: [Mutex<Shard<ModelKey, ModelEntry>>; SHARDS],
    distances: [Mutex<Shard<DistanceKey, Entry>>; SHARDS],
    liftings: [Mutex<Shard<u128, Entry>>; SHARDS],
    /// Max live entries per shard per tier; 0 = unbounded.
    shard_cap: usize,
    counters: Counters,
}

impl CorpusCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> CorpusCache {
        CorpusCache::default()
    }

    /// Creates an empty cache holding at most (about)
    /// `max_entries_per_tier` entries in each of the three tiers, so a
    /// long-running daemon cannot grow without limit. The bound is
    /// enforced per shard (capacity rounds up to a multiple of the
    /// shard count); when a full shard admits a new entry it evicts its
    /// oldest insertions first, deterministically. Eviction never
    /// changes outputs — an evicted entry is recomputed on the next
    /// miss — it only trades hit rate for memory. `0` means unbounded.
    pub fn bounded(max_entries_per_tier: usize) -> CorpusCache {
        CorpusCache { shard_cap: max_entries_per_tier.div_ceil(SHARDS), ..CorpusCache::default() }
    }

    /// A point-in-time snapshot of the tier counters.
    pub fn stats(&self) -> CorpusStats {
        let c = &self.counters;
        CorpusStats {
            tracelet_hits: c.tracelet_hits.load(Ordering::Relaxed),
            tracelet_misses: c.tracelet_misses.load(Ordering::Relaxed),
            slm_hits: c.slm_hits.load(Ordering::Relaxed),
            slm_misses: c.slm_misses.load(Ordering::Relaxed),
            distance_hits: c.distance_hits.load(Ordering::Relaxed),
            distance_misses: c.distance_misses.load(Ordering::Relaxed),
            lifting_hits: c.lifting_hits.load(Ordering::Relaxed),
            lifting_misses: c.lifting_misses.load(Ordering::Relaxed),
            bytes_stored: c.bytes_stored.load(Ordering::Relaxed),
            corrupt_dropped: c.corrupt_dropped.load(Ordering::Relaxed),
            evicted: c.evicted.load(Ordering::Relaxed),
        }
    }

    /// Entries stored per tier: `(executions, models, distances)`.
    pub fn lens(&self) -> (usize, usize, usize) {
        (
            self.execs.iter().map(|m| m.lock().expect("corpus shard poisoned").map.len()).sum(),
            self.models.iter().map(|m| m.lock().expect("corpus shard poisoned").map.len()).sum(),
            self.distances.iter().map(|m| m.lock().expect("corpus shard poisoned").map.len()).sum(),
        )
    }

    /// Entries stored in the lifting tier (kept out of [`lens`] so the
    /// original three-tier shape stays stable for callers).
    ///
    /// [`lens`]: CorpusCache::lens
    pub fn lifting_len(&self) -> usize {
        self.liftings.iter().map(|m| m.lock().expect("corpus shard poisoned").map.len()).sum()
    }

    /// Looks up a cached family lifting: the selected parent forest
    /// (indices into the family's member list) and the number of
    /// co-optimal tie variants considered. Verified on hit like every
    /// tier; a corrupt entry is dropped and the family re-lifts.
    pub fn load_lifting(&self, key: u128) -> Option<(Vec<Option<usize>>, u64)> {
        let shard = &self.liftings[shard_of(key)];
        let mut s = shard.lock().expect("corpus shard poisoned");
        match s.map.get(&key) {
            None => {
                self.counters.lifting_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Some(entry) => match entry.verified().and_then(decode_lifting) {
                Some(v) => {
                    self.counters.lifting_hits.fetch_add(1, Ordering::Relaxed);
                    Some(v)
                }
                None => {
                    let freed = entry.bytes.len() as u64;
                    s.map.remove(&key);
                    self.counters.bytes_stored.fetch_sub(freed, Ordering::Relaxed);
                    self.counters.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
                    self.counters.lifting_misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
        }
    }

    /// Stores a freshly computed family lifting under its [`lift_key`].
    pub fn store_lifting(&self, key: u128, parent: &[Option<usize>], tie_variants: u64) {
        let entry = Entry::new(encode_lifting(parent, tie_variants));
        let shard = &self.liftings[shard_of(key)];
        let mut s = shard.lock().expect("corpus shard poisoned");
        s.insert_bounded(key, entry, self.shard_cap, &self.counters);
    }

    /// The execution-tier view for one analysis configuration: a
    /// [`rock_analysis::canon::ExecCache`] whose keys mix in the
    /// config's result-affecting knobs, so jobs running with different
    /// budgets never alias each other's entries.
    pub fn exec_cache(&self, config: &AnalysisConfig) -> CorpusExecCache<'_> {
        CorpusExecCache { cache: self, salt: exec_salt(config) }
    }

    fn exec_load(&self, key: u128) -> Option<Arc<CachedExec>> {
        let shard = &self.execs[shard_of(key)];
        let mut s = shard.lock().expect("corpus shard poisoned");
        match s.map.get(&key) {
            Some(ExecSlot::Exec { entry, exec }) => match entry.verified() {
                Some(_) => {
                    self.counters.tracelet_hits.fetch_add(1, Ordering::Relaxed);
                    Some(Arc::clone(exec))
                }
                None => {
                    // Corrupt: drop and recompute.
                    let freed = entry.bytes.len() as u64;
                    s.map.remove(&key);
                    self.counters.bytes_stored.fetch_sub(freed, Ordering::Relaxed);
                    self.counters.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
                    self.counters.tracelet_misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
            _ => {
                self.counters.tracelet_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn exec_store(&self, key: u128, exec: Arc<CachedExec>) {
        let entry = Entry::new(exec_fp(&exec).to_le_bytes().to_vec());
        let shard = &self.execs[shard_of(key)];
        let mut s = shard.lock().expect("corpus shard poisoned");
        s.insert_bounded(key, ExecSlot::Exec { entry, exec }, self.shard_cap, &self.counters);
    }

    // Ctor-recognition results live in the execution tier (they are
    // cached symbolic executions of a function body, just under the
    // empty ctor map), in a key space disjoint from the tracelet
    // entries via `CTOR_TAG`. They share the tier's counters and the
    // corruption hooks.
    fn ctor_load(&self, key: u128) -> Option<CachedCtors> {
        let shard = &self.execs[shard_of(key)];
        let mut s = shard.lock().expect("corpus shard poisoned");
        match s.map.get(&key) {
            Some(ExecSlot::Ctors(entry)) => match entry.verified().and_then(decode_ctors) {
                Some(ctors) => {
                    self.counters.tracelet_hits.fetch_add(1, Ordering::Relaxed);
                    Some(ctors)
                }
                None => {
                    let freed = entry.bytes.len() as u64;
                    s.map.remove(&key);
                    self.counters.bytes_stored.fetch_sub(freed, Ordering::Relaxed);
                    self.counters.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
                    self.counters.tracelet_misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
            _ => {
                self.counters.tracelet_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn ctor_store(&self, key: u128, ctors: &CachedCtors) {
        let entry = Entry::new(encode_ctors(ctors));
        let shard = &self.execs[shard_of(key)];
        let mut s = shard.lock().expect("corpus shard poisoned");
        s.insert_bounded(key, ExecSlot::Ctors(entry), self.shard_cap, &self.counters);
    }

    /// Looks up the trained model for a pool content key, verifying the
    /// stored verification image first. A hit shares the model (`Arc`),
    /// so its lazily built index and evaluation table are reused too.
    pub fn load_model(&self, key: ModelKey) -> Option<Arc<Slm<Event>>> {
        let shard = &self.models[shard_of(key)];
        let mut s = shard.lock().expect("corpus shard poisoned");
        match s.map.get(&key) {
            None => {
                self.counters.slm_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Some(me) => match me.entry.verified() {
                Some(_) => {
                    self.counters.slm_hits.fetch_add(1, Ordering::Relaxed);
                    Some(Arc::clone(&me.model))
                }
                None => {
                    let freed = me.entry.bytes.len() as u64;
                    s.map.remove(&key);
                    self.counters.bytes_stored.fetch_sub(freed, Ordering::Relaxed);
                    self.counters.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
                    self.counters.slm_misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
        }
    }

    /// Stores a freshly trained model under its pool content key. The
    /// verification image is the key itself (format byte plus the
    /// 16-byte pool fingerprint) — enough for the checksum discipline
    /// to detect bit rot without re-hashing a serialized pool per hit.
    pub fn store_model(&self, key: ModelKey, model: Arc<Slm<Event>>) {
        let mut bytes = vec![CORPUS_FORMAT];
        bytes.extend_from_slice(&key.to_le_bytes());
        let entry = Entry::new(bytes);
        let shard = &self.models[shard_of(key)];
        let mut s = shard.lock().expect("corpus shard poisoned");
        s.insert_bounded(key, ModelEntry { entry, model }, self.shard_cap, &self.counters);
    }

    /// Deterministically corrupts every stored byte image (all tiers)
    /// with `plan`'s seeded XOR mutations — the corruption-recovery
    /// test hook. Returns the number of entries touched.
    pub fn corrupt_all(&self, plan: &FaultPlan, mutations_per_entry: usize) -> usize {
        let mut touched = 0;
        for shard in &self.execs {
            for slot in shard.lock().expect("corpus shard poisoned").map.values_mut() {
                plan.corrupt(&mut slot.image_mut().bytes, mutations_per_entry);
                touched += 1;
            }
        }
        for shard in &self.models {
            for me in shard.lock().expect("corpus shard poisoned").map.values_mut() {
                plan.corrupt(&mut me.entry.bytes, mutations_per_entry);
                touched += 1;
            }
        }
        for shard in &self.distances {
            for entry in shard.lock().expect("corpus shard poisoned").map.values_mut() {
                plan.corrupt(&mut entry.bytes, mutations_per_entry);
                touched += 1;
            }
        }
        for shard in &self.liftings {
            for entry in shard.lock().expect("corpus shard poisoned").map.values_mut() {
                plan.corrupt(&mut entry.bytes, mutations_per_entry);
                touched += 1;
            }
        }
        touched
    }

    /// Serializes every verified entry in full (not just its
    /// verification image) for persistence, in a deterministic order:
    /// tier by tier, shard index ascending, key ascending within each
    /// shard. Entries that fail their checksum are silently skipped —
    /// they would be dropped on the next lookup anyway.
    ///
    /// Exec-tier payloads lead with a sub-tag byte (`0` = execution,
    /// `1` = ctor recognition) because both kinds share the tier's
    /// keyspace. Distance entries are re-keyed by
    /// [`distance_disk_key`], which folds the full `(metric, from, to)`
    /// triple into one `u128` — the triple itself travels in the
    /// payload so an import can verify the key before trusting it.
    pub fn export_entries(&self) -> Vec<(SubTier, u128, Vec<u8>)> {
        let mut out = Vec::new();
        for shard in &self.execs {
            for (&key, slot) in &shard.lock().expect("corpus shard poisoned").map {
                match slot {
                    ExecSlot::Exec { entry, exec } => {
                        if entry.verified().is_some() {
                            let mut bytes = vec![EXEC_SUBTAG_EXEC];
                            bytes.extend_from_slice(&encode_exec(exec));
                            out.push((SubTier::Exec, key, bytes));
                        }
                    }
                    ExecSlot::Ctors(entry) => {
                        if let Some(body) = entry.verified() {
                            let mut bytes = vec![EXEC_SUBTAG_CTORS];
                            bytes.extend_from_slice(body);
                            out.push((SubTier::Exec, key, bytes));
                        }
                    }
                }
            }
        }
        for shard in &self.models {
            for (&key, me) in &shard.lock().expect("corpus shard poisoned").map {
                if me.entry.verified().is_some() {
                    out.push((SubTier::Model, key, encode_model(&me.model)));
                }
            }
        }
        for shard in &self.distances {
            for (&(metric, from, to), entry) in &shard.lock().expect("corpus shard poisoned").map {
                let Some(bits) = entry.verified().and_then(|b| {
                    let raw: [u8; 8] = b.try_into().ok()?;
                    Some(u64::from_le_bytes(raw))
                }) else {
                    continue;
                };
                let key = distance_disk_key(metric, from, to);
                out.push((SubTier::Distance, key, encode_distance(metric, from, to, bits)));
            }
        }
        for shard in &self.liftings {
            for (&key, entry) in &shard.lock().expect("corpus shard poisoned").map {
                if let Some(body) = entry.verified() {
                    out.push((SubTier::Lifting, key, body.to_vec()));
                }
            }
        }
        out
    }

    /// Restores one exported entry. Decoding is fully validating:
    /// model payloads must reproduce their own pool content key,
    /// distance payloads must reproduce the disk key they were filed
    /// under — so a stale or misfiled artifact is rejected (`false`)
    /// rather than poisoning the cache. Existing keys are left
    /// untouched (first write wins, like every tier store). Imports
    /// count neither hits nor misses; only pipeline lookups do.
    pub fn import_entry(&self, tier: SubTier, key: u128, bytes: &[u8]) -> bool {
        match tier {
            SubTier::Exec => {
                let Some((&subtag, body)) = bytes.split_first() else {
                    return false;
                };
                match subtag {
                    EXEC_SUBTAG_EXEC => match decode_exec(body) {
                        Some(exec) => {
                            self.exec_store(key, Arc::new(exec));
                            true
                        }
                        None => false,
                    },
                    EXEC_SUBTAG_CTORS => match decode_ctors(body) {
                        Some(ctors) => {
                            self.ctor_store(key, &ctors);
                            true
                        }
                        None => false,
                    },
                    _ => false,
                }
            }
            SubTier::Model => match decode_model(key, bytes) {
                Some(model) => {
                    self.store_model(key, Arc::new(model));
                    true
                }
                None => false,
            },
            SubTier::Distance => match decode_distance(bytes) {
                Some((metric, from, to, d)) if distance_disk_key(metric, from, to) == key => {
                    self.store_distance(metric, &from, &to, d);
                    true
                }
                _ => false,
            },
            SubTier::Lifting => match decode_lifting(bytes) {
                Some(_) => {
                    let entry = Entry::new(bytes.to_vec());
                    let shard = &self.liftings[shard_of(key)];
                    let mut s = shard.lock().expect("corpus shard poisoned");
                    s.insert_bounded(key, entry, self.shard_cap, &self.counters);
                    true
                }
                None => false,
            },
        }
    }
}

/// The four persistable cache tiers, as seen by the incremental
/// sub-artifact store (one directory per tier on disk).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubTier {
    /// Cached symbolic executions and ctor recognitions.
    Exec,
    /// Trained statistical language models.
    Model,
    /// Pairwise model divergences.
    Distance,
    /// Family lifting results (parent forests + tie counts).
    Lifting,
}

impl SubTier {
    /// All tiers, in persistence order.
    pub const ALL: [SubTier; 4] =
        [SubTier::Exec, SubTier::Model, SubTier::Distance, SubTier::Lifting];

    /// Stable directory / display name.
    pub fn name(self) -> &'static str {
        match self {
            SubTier::Exec => "exec",
            SubTier::Model => "model",
            SubTier::Distance => "distance",
            SubTier::Lifting => "lifting",
        }
    }

    /// Stable one-byte wire tag.
    pub fn tag(self) -> u8 {
        match self {
            SubTier::Exec => 0,
            SubTier::Model => 1,
            SubTier::Distance => 2,
            SubTier::Lifting => 3,
        }
    }

    /// Inverse of [`SubTier::tag`].
    pub fn from_tag(tag: u8) -> Option<SubTier> {
        SubTier::ALL.into_iter().find(|t| t.tag() == tag)
    }
}

impl GlobalDistanceStore<ModelKey> for CorpusCache {
    fn load_distance(&self, metric: Metric, from: &ModelKey, to: &ModelKey) -> Option<f64> {
        let key = (metric, *from, *to);
        let shard = &self.distances[shard_of(*from ^ to.rotate_left(64))];
        let mut s = shard.lock().expect("corpus shard poisoned");
        match s.map.get(&key) {
            None => {
                self.counters.distance_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Some(entry) => match entry.verified().and_then(|b| {
                let bits: [u8; 8] = b.try_into().ok()?;
                Some(f64::from_le_bytes(bits))
            }) {
                Some(d) => {
                    self.counters.distance_hits.fetch_add(1, Ordering::Relaxed);
                    Some(d)
                }
                None => {
                    let freed = entry.bytes.len() as u64;
                    s.map.remove(&key);
                    self.counters.bytes_stored.fetch_sub(freed, Ordering::Relaxed);
                    self.counters.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
                    self.counters.distance_misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
        }
    }

    fn store_distance(&self, metric: Metric, from: &ModelKey, to: &ModelKey, d: f64) {
        let key = (metric, *from, *to);
        let shard = &self.distances[shard_of(*from ^ to.rotate_left(64))];
        let mut s = shard.lock().expect("corpus shard poisoned");
        s.insert_bounded(key, Entry::new(d.to_le_bytes().to_vec()), self.shard_cap, &self.counters);
    }
}

/// The execution-tier adapter handed to the behavioral analysis: keys
/// are `salt ⊕ function label`, where the salt fingerprints every
/// analysis knob that can change an execution result (`max_paths`,
/// `block_visit_limit`, `max_events_per_object`, the fuel limit —
/// deliberately *not* `tracelet_len`, which is applied downstream of the
/// cached event sequences, and not `deadline_ms`, under which the cache
/// is bypassed entirely).
#[derive(Clone, Copy, Debug)]
pub struct CorpusExecCache<'a> {
    cache: &'a CorpusCache,
    salt: u128,
}

impl ExecCache for CorpusExecCache<'_> {
    fn load(&self, key: Label) -> Option<Arc<CachedExec>> {
        self.cache.exec_load(self.salt ^ key.as_u128())
    }

    fn store(&self, key: Label, exec: Arc<CachedExec>) {
        self.cache.exec_store(self.salt ^ key.as_u128(), exec);
    }

    fn load_ctors(&self, key: Label) -> Option<CachedCtors> {
        self.cache.ctor_load(self.salt ^ key.as_u128() ^ CTOR_TAG)
    }

    fn store_ctors(&self, key: Label, ctors: &CachedCtors) {
        self.cache.ctor_store(self.salt ^ key.as_u128() ^ CTOR_TAG, ctors);
    }
}

/// XORed into ctor-recognition keys so they can share the execution
/// tier's shards without ever aliasing a tracelet entry.
const CTOR_TAG: u128 = 0xc70c_70c7_0c70_c70c_5a5a_5a5a_5a5a_5a5a;

/// Fingerprints the result-affecting analysis knobs for execution keys.
/// `tracelet_len` is included because entries carry pre-windowed
/// pieces: two configs that split at different lengths must not share.
fn exec_salt(config: &AnalysisConfig) -> u128 {
    let mut w = Writer::default();
    w.u8(CORPUS_FORMAT);
    w.u64(config.max_paths as u64);
    w.u64(config.block_visit_limit as u64);
    w.u64(config.max_events_per_object as u64);
    w.u64(config.fuel.limit());
    w.u64(config.tracelet_len as u64);
    key_of_bytes(&w.bytes)
}

/// The content key of one SLM training input: model depth plus the
/// tracelet **multiset** — exactly the state a trained [`Slm`] is a
/// pure function of. Pools with equal keys train bit-equal models, at
/// any thread count, in any binary.
///
/// The key folds per-tracelet fingerprints with a commutative
/// (wrapping) sum, so extraction order cannot change it and no sorted
/// multiset is materialized — this runs on every pool of every warm
/// job, and must cost one pass over the events.
pub fn pool_key(depth: usize, pool: &[Arc<[Event]>]) -> ModelKey {
    let mut sum_a: u64 = 0;
    let mut sum_b: u64 = 0;
    for t in pool {
        let fp = tracelet_fp(t);
        sum_a = sum_a.wrapping_add(fp as u64);
        sum_b = sum_b.wrapping_add((fp >> 64) as u64);
    }
    pool_key_of_counts(depth as u64, pool.len() as u64, sum_a, sum_b)
}

/// [`pool_key`] from its commutative accumulators — shared with the
/// model-payload verifier, which recomputes the key from `(sequence,
/// count)` pairs (`count` copies of a fingerprint sum to
/// `fp.wrapping_mul(count)` mod 2⁶⁴).
fn pool_key_of_counts(depth: u64, total: u64, sum_a: u64, sum_b: u64) -> ModelKey {
    let mut w = Writer::default();
    w.u8(CORPUS_FORMAT);
    w.u64(depth);
    w.u64(total);
    w.u64(sum_a);
    w.u64(sum_b);
    key_of_bytes(&w.bytes)
}

/// The content key of one family lifting: every input the lifting
/// stage's output is a pure function of — the tie-resolution config,
/// the family's member model keys **in family order** (the parent
/// vector indexes members by that order), and the family's weighted
/// candidate edge list as `(parent index, child index, distance bits)`
/// triples in the caller's deterministic order. Any changed member
/// model flips its `ModelKey`; any changed divergence flips its bits;
/// either flips this key, so a stale lifting can never be reused.
pub fn lift_key(
    resolve_ties: bool,
    tie_epsilon: f64,
    max_tie_variants: usize,
    members: &[ModelKey],
    edges: &[(u32, u32, u64)],
) -> u128 {
    let mut w = Writer::default();
    w.u8(CORPUS_FORMAT);
    w.u8(u8::from(resolve_ties));
    w.u64(tie_epsilon.to_bits());
    w.u64(max_tie_variants as u64);
    w.u64(members.len() as u64);
    for &m in members {
        w.u64(m as u64);
        w.u64((m >> 64) as u64);
    }
    w.u64(edges.len() as u64);
    for &(from, to, bits) in edges {
        w.u32(from);
        w.u32(to);
        w.u64(bits);
    }
    key_of_bytes(&w.bytes)
}

/// One word-mixing step of the dual-FNV content fingerprints: each
/// stream absorbs the word, multiplies, and folds the high bits back
/// down — every step a bijection on the stream state.
fn mix(a: &mut u64, b: &mut u64, v: u64) {
    *a = (*a ^ v).wrapping_mul(0x100_0000_01b3);
    *a ^= *a >> 32;
    *b = (*b ^ v.rotate_left(17)).wrapping_mul(0x100_0000_01b3);
    *b ^= *b >> 32;
}

/// The (tag, payload) word pair an event contributes to a fingerprint.
fn event_words(e: Event) -> (u64, u64) {
    match e {
        Event::C(i) => (0, i as u64),
        Event::R(o) => (1, o as i64 as u64),
        Event::W(o) => (2, o as i64 as u64),
        Event::This => (3, 0),
        Event::Arg(i) => (4, i as u64),
        Event::Ret => (5, 0),
        Event::Call(addr) => (6, addr.value()),
    }
}

/// Dual-FNV fingerprint of one tracelet's event sequence.
fn tracelet_fp(t: &[Event]) -> u128 {
    let mut a: u64 = 0xcbf2_9ce4_8422_2325;
    let mut b: u64 = 0x9e37_79b9_7f4a_7c15;
    mix(&mut a, &mut b, t.len() as u64);
    for &e in t {
        let (tag, payload) = event_words(e);
        mix(&mut a, &mut b, tag);
        mix(&mut a, &mut b, payload);
    }
    (u128::from(b) << 64) | u128::from(a)
}

/// Content fingerprint of a cached execution — the execution tier's
/// 16-byte verification image. Walks every field a serialized image
/// would cover (fuel, attribution structure, vtable labels, windowed
/// events), allocation-free: stores cost one pass, hit verification
/// costs a 16-byte checksum.
fn exec_fp(exec: &CachedExec) -> u128 {
    let mut a: u64 = 0xcbf2_9ce4_8422_2325;
    let mut b: u64 = 0x9e37_79b9_7f4a_7c15;
    mix(&mut a, &mut b, exec.fuel_spent);
    mix(&mut a, &mut b, exec.subs.len() as u64);
    for s in &exec.subs {
        match s.vtable {
            None => mix(&mut a, &mut b, 0),
            Some(l) => {
                mix(&mut a, &mut b, 1);
                mix(&mut a, &mut b, l.lo);
                mix(&mut a, &mut b, l.hi);
            }
        }
        mix(&mut a, &mut b, s.pieces.len() as u64);
        for p in &s.pieces {
            mix(&mut a, &mut b, p.len() as u64);
            for &e in p.iter() {
                let (tag, payload) = event_words(e);
                mix(&mut a, &mut b, tag);
                mix(&mut a, &mut b, payload);
            }
        }
    }
    (u128::from(b) << 64) | u128::from(a)
}

/// Folds a byte image into a 128-bit key via two FNV-1a streams.
fn key_of_bytes(bytes: &[u8]) -> u128 {
    let mut a: u64 = 0xcbf2_9ce4_8422_2325;
    let mut b: u64 = 0x9e37_79b9_7f4a_7c15;
    for &x in bytes {
        a = (a ^ u64::from(x)).wrapping_mul(0x100_0000_01b3);
        b = (b ^ u64::from(x ^ 0xa5)).wrapping_mul(0x100_0000_01b3);
    }
    (u128::from(b) << 64) | u128::from(a)
}

// --- Serialization (little-endian, length-prefixed) -------------------

#[derive(Default)]
struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }
    fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }
    fn u32(&mut self) -> Option<u32> {
        let s = self.bytes.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(s.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        let s = self.bytes.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(s.try_into().ok()?))
    }
    fn i64(&mut self) -> Option<i64> {
        self.u64().map(|v| v as i64)
    }
    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn encode_ctors(ctors: &CachedCtors) -> Vec<u8> {
    let mut w = Writer::default();
    w.u8(CORPUS_FORMAT);
    w.u32(ctors.stores.len() as u32);
    for &(off, label) in &ctors.stores {
        w.i64(i64::from(off));
        w.u64(label.lo);
        w.u64(label.hi);
    }
    w.bytes
}

fn decode_ctors(bytes: &[u8]) -> Option<CachedCtors> {
    let mut r = Reader::new(bytes);
    if r.u8()? != CORPUS_FORMAT {
        return None;
    }
    let count = r.u32()? as usize;
    let mut stores = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let off = i32::try_from(r.i64()?).ok()?;
        let label = Label { lo: r.u64()?, hi: r.u64()? };
        stores.push((off, label));
    }
    r.done().then_some(CachedCtors { stores })
}

// --- Full-entry serializers (incremental persistence) ------------------
//
// The in-memory tiers keep compact verification images; persisting an
// entry across processes needs the *whole* value. These encoders share
// the tiers' little-endian `Writer`/`Reader` and are fully validating
// on decode: structural damage, count lies, or trailing garbage all
// return `None`, which an importer treats as "recompute".

/// Leading payload byte of a persisted execution-tier entry holding a
/// full symbolic execution.
const EXEC_SUBTAG_EXEC: u8 = 0;
/// Leading payload byte of a persisted execution-tier entry holding a
/// ctor-recognition result.
const EXEC_SUBTAG_CTORS: u8 = 1;

/// Event wire form: the same `(tag, payload)` pair the fingerprints
/// mix, so the two views can never drift apart.
fn encode_event(w: &mut Writer, e: Event) {
    let (tag, payload) = event_words(e);
    w.u8(tag as u8);
    w.u64(payload);
}

fn decode_event(r: &mut Reader) -> Option<Event> {
    let tag = r.u8()?;
    let payload = r.u64()?;
    Some(match tag {
        0 => Event::C(usize::try_from(payload).ok()?),
        1 => Event::R(i32::try_from(payload as i64).ok()?),
        2 => Event::W(i32::try_from(payload as i64).ok()?),
        3 if payload == 0 => Event::This,
        4 => Event::Arg(usize::try_from(payload).ok()?),
        5 if payload == 0 => Event::Ret,
        6 => Event::Call(Addr::new(payload)),
        _ => return None,
    })
}

// Executions are dictionary-encoded: paths through branchy functions
// repeat whole sub-objects (a fork whose arms make the same calls
// yields identical per-path summaries), so the wire form stores each
// distinct piece and each distinct sub once and spells the original
// `subs` sequence as indices. Decoding rebuilds the exact path-major
// order — multiplicity is training evidence and must survive — while
// identical pieces share one `Arc` in memory, like a live hit.
fn encode_exec(exec: &CachedExec) -> Vec<u8> {
    let mut piece_dict: Vec<&Arc<[Event]>> = Vec::new();
    let mut piece_ids: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut sub_dict: Vec<(&CachedSub, Vec<u32>)> = Vec::new();
    let mut sub_ids: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut sub_seq: Vec<u32> = Vec::with_capacity(exec.subs.len());
    for s in &exec.subs {
        let mut indices = Vec::with_capacity(s.pieces.len());
        for p in &s.pieces {
            let mut pw = Writer::default();
            for &e in p.iter() {
                encode_event(&mut pw, e);
            }
            let next = piece_dict.len() as u32;
            let id = *piece_ids.entry(pw.bytes).or_insert_with(|| {
                piece_dict.push(p);
                next
            });
            indices.push(id);
        }
        let mut sw = Writer::default();
        match s.vtable {
            None => sw.u8(0),
            Some(l) => {
                sw.u8(1);
                sw.u64(l.lo);
                sw.u64(l.hi);
            }
        }
        for &i in &indices {
            sw.u32(i);
        }
        let next = sub_dict.len() as u32;
        let id = *sub_ids.entry(sw.bytes).or_insert_with(|| {
            sub_dict.push((s, indices));
            next
        });
        sub_seq.push(id);
    }

    let mut w = Writer::default();
    w.u8(CORPUS_FORMAT);
    w.u64(exec.fuel_spent);
    w.u32(piece_dict.len() as u32);
    for p in &piece_dict {
        w.u32(p.len() as u32);
        for &e in p.iter() {
            encode_event(&mut w, e);
        }
    }
    w.u32(sub_dict.len() as u32);
    for (s, indices) in &sub_dict {
        match s.vtable {
            None => w.u8(0),
            Some(l) => {
                w.u8(1);
                w.u64(l.lo);
                w.u64(l.hi);
            }
        }
        w.u32(indices.len() as u32);
        for &i in indices {
            w.u32(i);
        }
    }
    w.u32(sub_seq.len() as u32);
    for &i in &sub_seq {
        w.u32(i);
    }
    w.bytes
}

fn decode_exec(bytes: &[u8]) -> Option<CachedExec> {
    let mut r = Reader::new(bytes);
    if r.u8()? != CORPUS_FORMAT {
        return None;
    }
    let fuel_spent = r.u64()?;
    let piece_count = r.u32()? as usize;
    let mut piece_dict: Vec<Arc<[Event]>> = Vec::with_capacity(piece_count.min(1 << 16));
    for _ in 0..piece_count {
        let len = r.u32()? as usize;
        let mut events = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            events.push(decode_event(&mut r)?);
        }
        piece_dict.push(events.into());
    }
    let sub_count = r.u32()? as usize;
    let mut sub_dict: Vec<CachedSub> = Vec::with_capacity(sub_count.min(1 << 16));
    for _ in 0..sub_count {
        let vtable = match r.u8()? {
            0 => None,
            1 => Some(Label { lo: r.u64()?, hi: r.u64()? }),
            _ => return None,
        };
        let piece_refs = r.u32()? as usize;
        let mut pieces = Vec::with_capacity(piece_refs.min(1 << 16));
        for _ in 0..piece_refs {
            let id = r.u32()? as usize;
            pieces.push(Arc::clone(piece_dict.get(id)?));
        }
        sub_dict.push(CachedSub { vtable, pieces });
    }
    let seq_count = r.u32()? as usize;
    let mut subs = Vec::with_capacity(seq_count.min(1 << 16));
    for _ in 0..seq_count {
        let id = r.u32()? as usize;
        subs.push(sub_dict.get(id)?.clone());
    }
    r.done().then_some(CachedExec { subs, fuel_spent })
}

fn encode_model(model: &Slm<Event>) -> Vec<u8> {
    let mut w = Writer::default();
    w.u8(CORPUS_FORMAT);
    w.u64(model.depth() as u64);
    w.u32(model.unique_training_len() as u32);
    for (seq, count) in model.training() {
        w.u64(count);
        w.u32(seq.len() as u32);
        for &e in seq {
            encode_event(&mut w, e);
        }
    }
    w.bytes
}

/// Decodes a persisted model and **verifies it against its own key**:
/// the decoded `(sequence, count)` multiset must reproduce `key` under
/// [`pool_key`]'s commutative fold. Training is order-independent
/// ([`Slm::train_counted`]), so the rebuilt model is bit-identical to
/// the one originally trained from the live pool.
fn decode_model(key: ModelKey, bytes: &[u8]) -> Option<Slm<Event>> {
    let mut r = Reader::new(bytes);
    if r.u8()? != CORPUS_FORMAT {
        return None;
    }
    let depth = usize::try_from(r.u64()?).ok()?;
    let unique = r.u32()? as usize;
    let mut model = Slm::new(depth);
    let mut sum_a: u64 = 0;
    let mut sum_b: u64 = 0;
    let mut total: u64 = 0;
    let mut events = Vec::new();
    for _ in 0..unique {
        let count = r.u64()?;
        if count == 0 {
            return None;
        }
        let len = r.u32()? as usize;
        events.clear();
        for _ in 0..len {
            events.push(decode_event(&mut r)?);
        }
        let fp = tracelet_fp(&events);
        sum_a = sum_a.wrapping_add((fp as u64).wrapping_mul(count));
        sum_b = sum_b.wrapping_add(((fp >> 64) as u64).wrapping_mul(count));
        total = total.checked_add(count)?;
        model.train_counted(&events, count);
    }
    if !r.done() || pool_key_of_counts(depth as u64, total, sum_a, sum_b) != key {
        return None;
    }
    Some(model)
}

fn metric_tag(metric: Metric) -> u8 {
    match metric {
        Metric::KlDivergence => 0,
        Metric::JsDivergence => 1,
        Metric::JsDistance => 2,
    }
}

fn metric_from_tag(tag: u8) -> Option<Metric> {
    Metric::ALL.into_iter().find(|&m| metric_tag(m) == tag)
}

/// Encodes the `(metric, from, to)` triple of one distance entry — both
/// the disk key's preimage and the leading portion of its payload.
fn encode_distance_triple(metric: Metric, from: ModelKey, to: ModelKey) -> Writer {
    let mut w = Writer::default();
    w.u8(CORPUS_FORMAT);
    w.u8(metric_tag(metric));
    w.u64(from as u64);
    w.u64((from >> 64) as u64);
    w.u64(to as u64);
    w.u64((to >> 64) as u64);
    w
}

/// The `u128` a distance entry is filed under on disk: a fold of its
/// full `(metric, from, to)` triple. The triple also travels in the
/// payload, so an import recomputes this and rejects a misfiled entry.
pub fn distance_disk_key(metric: Metric, from: ModelKey, to: ModelKey) -> u128 {
    key_of_bytes(&encode_distance_triple(metric, from, to).bytes)
}

fn encode_distance(metric: Metric, from: ModelKey, to: ModelKey, d_bits: u64) -> Vec<u8> {
    let mut w = encode_distance_triple(metric, from, to);
    w.u64(d_bits);
    w.bytes
}

fn decode_distance(bytes: &[u8]) -> Option<(Metric, ModelKey, ModelKey, f64)> {
    let mut r = Reader::new(bytes);
    if r.u8()? != CORPUS_FORMAT {
        return None;
    }
    let metric = metric_from_tag(r.u8()?)?;
    let from = u128::from(r.u64()?) | (u128::from(r.u64()?) << 64);
    let to = u128::from(r.u64()?) | (u128::from(r.u64()?) << 64);
    let d = f64::from_bits(r.u64()?);
    r.done().then_some((metric, from, to, d))
}

fn encode_lifting(parent: &[Option<usize>], tie_variants: u64) -> Vec<u8> {
    let mut w = Writer::default();
    w.u8(CORPUS_FORMAT);
    w.u64(tie_variants);
    w.u32(parent.len() as u32);
    for p in parent {
        match p {
            None => w.u8(0),
            Some(i) => {
                w.u8(1);
                w.u32(*i as u32);
            }
        }
    }
    w.bytes
}

fn decode_lifting(bytes: &[u8]) -> Option<(Vec<Option<usize>>, u64)> {
    let mut r = Reader::new(bytes);
    if r.u8()? != CORPUS_FORMAT {
        return None;
    }
    let tie_variants = r.u64()?;
    let count = r.u32()? as usize;
    let mut parent = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        match r.u8()? {
            0 => parent.push(None),
            1 => {
                let i = r.u32()? as usize;
                if i >= count {
                    return None;
                }
                parent.push(Some(i));
            }
            _ => return None,
        }
    }
    r.done().then_some((parent, tie_variants))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_exec() -> CachedExec {
        CachedExec {
            subs: vec![
                CachedSub {
                    vtable: Some(Label { lo: 7, hi: 9 }),
                    pieces: vec![
                        vec![
                            Event::This,
                            Event::C(2),
                            Event::W(-8),
                            Event::Call(Addr::new(0xdead_beef)),
                        ]
                        .into(),
                        vec![Event::Ret].into(),
                    ],
                },
                CachedSub {
                    vtable: None,
                    pieces: vec![vec![Event::R(4), Event::Arg(1), Event::Ret].into()],
                },
            ],
            fuel_spent: 12345,
        }
    }

    #[test]
    fn exec_fp_covers_every_field() {
        let base = exec_fp(&sample_exec());
        let mut fuel = sample_exec();
        fuel.fuel_spent += 1;
        assert_ne!(exec_fp(&fuel), base, "fuel is covered");
        let mut ev = sample_exec();
        ev.subs[0].pieces[1] = vec![Event::C(3)].into();
        assert_ne!(exec_fp(&ev), base, "events are covered");
        let mut vt = sample_exec();
        vt.subs[0].vtable = None;
        assert_ne!(exec_fp(&vt), base, "vtable labels are covered");
        let mut shape = sample_exec();
        shape.subs.pop();
        assert_ne!(exec_fp(&shape), base, "attribution structure is covered");
    }

    #[test]
    fn pool_key_is_order_independent_with_multiplicity() {
        let a: Arc<[Event]> = vec![Event::C(0), Event::Ret].into();
        let b: Arc<[Event]> = vec![Event::This, Event::W(8)].into();
        let k1 = pool_key(2, &[a.clone(), b.clone(), a.clone()]);
        let k2 = pool_key(2, &[b.clone(), a.clone(), a.clone()]);
        assert_eq!(k1, k2, "multiset key ignores extraction order");
        let k3 = pool_key(2, &[a.clone(), b.clone()]);
        assert_ne!(k1, k3, "multiplicity matters");
        let k4 = pool_key(3, &[a, b]);
        assert_ne!(k3, k4, "depth matters");
    }

    #[test]
    fn exec_tier_hits_misses_and_corruption() {
        let cache = CorpusCache::new();
        let cfg = AnalysisConfig::default();
        let view = cache.exec_cache(&cfg);
        let key = Label { lo: 11, hi: 22 };
        assert_eq!(view.load(key), None);
        let exec = Arc::new(sample_exec());
        view.store(key, Arc::clone(&exec));
        let hit = view.load(key).expect("stored exec must hit");
        assert!(Arc::ptr_eq(&hit, &exec), "hits share the decoded execution");
        let s = cache.stats();
        assert_eq!((s.tracelet_hits, s.tracelet_misses), (1, 1));
        assert!(s.bytes_stored > 0);
        // A different config salts to a different key space.
        let other = cache.exec_cache(&AnalysisConfig::fast());
        assert_eq!(other.load(key), None);
        // Corrupt every entry: next load detects, drops, recomputes.
        let touched = cache.corrupt_all(&FaultPlan::seeded(5, 0), 3);
        assert_eq!(touched, 1);
        assert_eq!(view.load(key), None);
        let s = cache.stats();
        assert_eq!(s.corrupt_dropped, 1);
        assert_eq!(s.bytes_stored, 0);
        // Recompute path: store again, clean hit.
        view.store(key, Arc::clone(&exec));
        assert_eq!(view.load(key), Some(exec));
    }

    #[test]
    fn ctor_entries_share_the_exec_tier() {
        let cache = CorpusCache::new();
        let cfg = AnalysisConfig::default();
        let view = cache.exec_cache(&cfg);
        let key = Label { lo: 33, hi: 44 };
        assert_eq!(view.load_ctors(key), None);
        let ctors =
            CachedCtors { stores: vec![(0, Label { lo: 1, hi: 2 }), (16, Label { lo: 3, hi: 4 })] };
        view.store_ctors(key, &ctors);
        assert_eq!(view.load_ctors(key), Some(ctors.clone()));
        // The tagged key space never aliases the execution entries.
        assert_eq!(view.load(key), None);
        view.store(key, Arc::new(sample_exec()));
        assert_eq!(view.load_ctors(key), Some(ctors.clone()));
        // Corruption drops ctor entries like any other.
        let touched = cache.corrupt_all(&FaultPlan::seeded(7, 0), 3);
        assert_eq!(touched, 2);
        assert_eq!(view.load_ctors(key), None);
        assert!(cache.stats().corrupt_dropped >= 1);
        // Negative results (no stores) round-trip too.
        view.store_ctors(key, &CachedCtors::default());
        assert_eq!(view.load_ctors(key), Some(CachedCtors::default()));
    }

    #[test]
    fn ctors_roundtrip() {
        let ctors = CachedCtors { stores: vec![(-8, Label { lo: 5, hi: 6 })] };
        assert_eq!(decode_ctors(&encode_ctors(&ctors)), Some(ctors));
        assert_eq!(
            decode_ctors(&encode_ctors(&CachedCtors::default())),
            Some(CachedCtors::default())
        );
        assert_eq!(decode_ctors(&[]), None);
        assert_eq!(decode_ctors(&[0xff, 1, 2]), None);
    }

    #[test]
    fn model_tier_shares_the_same_arc() {
        let cache = CorpusCache::new();
        let pool: Vec<Arc<[Event]>> =
            vec![vec![Event::C(0), Event::C(1)].into(), vec![Event::Ret].into()];
        let key = pool_key(2, &pool);
        assert!(cache.load_model(key).is_none());
        let mut m = Slm::new(2);
        for t in &pool {
            m.train(t);
        }
        m.finalize();
        let arc = Arc::new(m);
        cache.store_model(key, Arc::clone(&arc));
        let hit = cache.load_model(key).expect("stored model must hit");
        assert!(Arc::ptr_eq(&hit, &arc), "hits share the finalized model");
        let s = cache.stats();
        assert_eq!((s.slm_hits, s.slm_misses), (1, 1));
    }

    #[test]
    fn bounded_cache_evicts_oldest_first_and_counts() {
        // Shard cap of 1 per tier: the second insert landing in an
        // occupied shard must evict that shard's older entry.
        let cache = CorpusCache::bounded(SHARDS);
        let d = 1.5_f64;
        for k in 0..64u128 {
            cache.store_distance(Metric::KlDivergence, &k, &(k + 1), d + k as f64);
        }
        let (_, _, dist_len) = cache.lens();
        assert!(dist_len <= SHARDS, "live entries bounded by cap ({dist_len} > {SHARDS})");
        let s = cache.stats();
        assert_eq!(s.evicted, 64 - dist_len as u64, "every displaced entry is counted");
        // The newest entry in its shard survives and verifies clean.
        let got = cache.load_distance(Metric::KlDivergence, &63, &64);
        assert_eq!(got.map(f64::to_bits), Some((d + 63.0).to_bits()));
        // Evicted keys simply miss — the caller recomputes and may
        // re-store, which evicts again rather than growing the shard.
        let victim = (0..64u128)
            .find(|k| cache.load_distance(Metric::KlDivergence, k, &(k + 1)).is_none())
            .expect("some key was evicted");
        cache.store_distance(Metric::KlDivergence, &victim, &(victim + 1), 9.0);
        let (_, _, after) = cache.lens();
        assert!(after <= SHARDS, "re-store under pressure must not grow the shard");
        // bytes_stored reflects live entries only: 8 bytes per distance.
        assert_eq!(cache.stats().bytes_stored, 8 * after as u64);
        // An unbounded cache never evicts.
        let unbounded = CorpusCache::new();
        for k in 0..64u128 {
            unbounded.store_distance(Metric::KlDivergence, &k, &(k + 1), d);
        }
        assert_eq!(unbounded.stats().evicted, 0);
        assert_eq!(unbounded.lens().2, 64);
    }

    #[test]
    fn bounded_exec_tier_evicts_deterministically() {
        let a = CorpusCache::bounded(SHARDS);
        let b = CorpusCache::bounded(SHARDS);
        let cfg = AnalysisConfig::default();
        for cache in [&a, &b] {
            let view = cache.exec_cache(&cfg);
            for i in 0..40 {
                view.store(Label { lo: i, hi: i * 3 + 1 }, Arc::new(sample_exec()));
            }
        }
        // Same insertion sequence → identical survivor sets.
        let cfg_view = (a.exec_cache(&cfg), b.exec_cache(&cfg));
        for i in 0..40 {
            let key = Label { lo: i, hi: i * 3 + 1 };
            assert_eq!(
                cfg_view.0.load(key).is_some(),
                cfg_view.1.load(key).is_some(),
                "eviction must be deterministic (key {i})"
            );
        }
        assert_eq!(a.stats().evicted, b.stats().evicted);
        assert!(a.stats().evicted > 0, "40 inserts over a 16-entry tier must evict");
    }

    #[test]
    fn distance_tier_stores_exact_bits() {
        let cache = CorpusCache::new();
        let (ka, kb): (ModelKey, ModelKey) = (1, 2);
        assert_eq!(cache.load_distance(Metric::KlDivergence, &ka, &kb), None);
        let d = 0.1234567890123_f64;
        cache.store_distance(Metric::KlDivergence, &ka, &kb, d);
        let got = cache.load_distance(Metric::KlDivergence, &ka, &kb).unwrap();
        assert_eq!(got.to_bits(), d.to_bits());
        // Directional: the reverse pair is its own entry.
        assert_eq!(cache.load_distance(Metric::KlDivergence, &kb, &ka), None);
        // Other metrics are their own entries too.
        assert_eq!(cache.load_distance(Metric::JsDivergence, &ka, &kb), None);
        let s = cache.stats();
        assert_eq!((s.distance_hits, s.distance_misses), (1, 3));
    }
}
