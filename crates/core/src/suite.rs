//! The evaluation suite: synthetic regenerations of the paper's 19
//! benchmarks (Table 2) and the figure examples.
//!
//! The original binaries (Windows/MSVC builds of open-source projects)
//! and their ground truths are not available, so each benchmark is a
//! MiniCpp program engineered to match the paper's reported **type
//! count** and **structural character**:
//!
//! * the ten *structurally resolvable* benchmarks compile with
//!   constructor calls intact (default options), so Phase II pinning
//!   resolves them — except where a split family is engineered (tinyxml,
//!   bafprp, tinyxmlSTL reproduce the "root lost its children" story);
//! * the nine *unresolvable* benchmarks compile with parent-ctor
//!   inlining (and, where the paper's error analysis calls for it,
//!   abstract-root elimination or COMDAT folding), leaving multiple
//!   candidate parents for the behavioral analysis to rank.
//!
//! Every [`Benchmark`] carries the paper's reported numbers so harnesses
//! can print measured-vs-paper tables.

use std::collections::BTreeMap;

use rock_minicpp::{
    compile, BodyBuilder, CompileError, CompileOptions, Compiled, Expr, Program, ProgramBuilder,
};

/// The paper's reported application distances for one benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperNumbers {
    /// Binary size reported in the paper (Kb) — informational only.
    pub size_kb: f64,
    /// Number of binary types.
    pub types: usize,
    /// (missing, added) without SLMs.
    pub without: (f64, f64),
    /// (missing, added) with SLMs.
    pub with: (f64, f64),
}

/// One benchmark: a generated program, its compile options, and the
/// paper's reference numbers.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Benchmark name (matches Table 2).
    pub name: &'static str,
    /// `true` for the top half of Table 2.
    pub structurally_resolvable: bool,
    /// The paper's numbers for this benchmark.
    pub paper: PaperNumbers,
    /// The source program.
    pub program: Program,
    /// Compilation options (which optimizations degrade the structure).
    pub options: CompileOptions,
}

impl Benchmark {
    /// Compiles the benchmark.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] (never expected for suite programs).
    pub fn compile(&self) -> Result<Compiled, CompileError> {
        compile(&self.program, &self.options)
    }
}

/// Per-class shape of a generated hierarchy — the public workload
/// generator's unit. Build a `Vec<ClassSpec>` (parents must have smaller
/// indices) and feed it to [`generate_program`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassSpec {
    /// Parent class index, or `None` for roots. Must be `<` this class's
    /// own index.
    pub parent: Option<usize>,
    /// New methods this class introduces.
    pub own_methods: usize,
    /// How many inherited slots to override (the first `k`; clipped to
    /// the inherited count).
    pub overrides: usize,
    /// Abstract: never instantiated, no driver; eliminated from the
    /// binary when `CompileOptions::eliminate_abstract` is set.
    pub is_abstract: bool,
    /// Inline this class's ctor into its children even in unoptimized
    /// builds (severs the rule-3 structural cue for this link only).
    pub inline_ctor: bool,
    /// Classes with equal seeds and equal field offsets produce
    /// byte-identical method bodies (COMDAT-folding bait).
    pub body_seed: u64,
}

impl ClassSpec {
    /// A plain node: no overrides, concrete, unique body seed.
    pub fn node(parent: Option<usize>, own_methods: usize, idx: usize) -> Self {
        ClassSpec {
            parent,
            own_methods,
            overrides: 0,
            is_abstract: false,
            inline_ctor: false,
            body_seed: idx as u64 + 1,
        }
    }
}

/// Generates a program from class specs: classes `{name}_C{i}` with one
/// field each, plus one driver per concrete class with a type-distinctive
/// usage pattern that preserves behavioral containment along inheritance
/// chains (children replay every ancestor's usage segment).
///
/// This is the workload generator behind the whole Table 2 suite; it is
/// public so downstream users can synthesize benchmarks with controlled
/// structural characters of their own.
pub fn generate_program(name: &str, specs: &[ClassSpec]) -> Program {
    let mut p = ProgramBuilder::new();
    emit_classes(&mut p, name, specs);
    p.finish()
}

/// Emits one spec family (classes + drivers) into an existing builder.
/// Everything the emitted *code* depends on — method bodies, driver
/// patterns — derives from `body_seed` and positions local to `specs`,
/// so two emissions with equal `name` and `specs` produce content-equal
/// functions no matter what else the program contains or where the
/// family lands in it (the property [`corpus_member`] builds on).
fn emit_classes(p: &mut ProgramBuilder, name: &str, specs: &[ClassSpec]) {
    // Slot-name bookkeeping: slots(i) = inherited slot names + own.
    let mut slots: Vec<Vec<String>> = Vec::with_capacity(specs.len());
    // The field each slot operates on: an overriding method accesses the
    // same object state as the method it replaces (the introducing
    // class's field), so override bodies stay within the shared
    // behavioral vocabulary and differ by their constants, not by alien
    // field offsets.
    let mut slot_fields: Vec<Vec<String>> = Vec::with_capacity(specs.len());
    // The slot indices each class "owns": slots it introduced plus slots
    // it overrode. Drivers replay one usage segment per chain member over
    // the member's owned slots, so a child's behavior *contains* every
    // ancestor's (the paper's containment hypothesis) while each class
    // still leaves a distinctive signature.
    let mut owned: Vec<Vec<usize>> = Vec::with_capacity(specs.len());

    for (i, spec) in specs.iter().enumerate() {
        let class_name = format!("{name}_C{i}");
        let (mut my_slots, mut my_slot_fields) = match spec.parent {
            None => (Vec::new(), Vec::new()),
            Some(pidx) => (slots[pidx].clone(), slot_fields[pidx].clone()),
        };
        let field = format!("f{i}");

        let mut cb = p.class(&class_name);
        if let Some(pidx) = spec.parent {
            cb.base(format!("{name}_C{pidx}"));
        }
        cb.field(&field);
        if spec.is_abstract {
            cb.abstract_class();
        }
        if spec.inline_ctor {
            cb.inline_ctor();
        }

        let mut my_owned = Vec::new();
        // Overrides: redefine the first k inherited slots, touching the
        // introducer's field.
        let k = spec.overrides.min(my_slots.len());
        let seed = spec.body_seed;
        for s in 0..k {
            let slot_name = my_slots[s].clone();
            let f = my_slot_fields[s].clone();
            cb.method(slot_name, move |b| {
                b.write("this", &f, Expr::Const(seed * 31 + s as u64));
                b.read("v", "this", &f);
                b.ret();
            });
            my_owned.push(s);
        }
        // New methods.
        for m in 0..spec.own_methods {
            let slot_name = format!("{name}_c{i}_m{m}");
            let f = field.clone();
            let s = my_slots.len();
            cb.method(slot_name.clone(), move |b| {
                b.write("this", &f, Expr::Const(seed * 31 + s as u64));
                b.read("v", "this", &f);
                b.ret();
            });
            my_slots.push(slot_name);
            my_slot_fields.push(field.clone());
            my_owned.push(s);
        }
        slots.push(my_slots);
        slot_fields.push(my_slot_fields);
        owned.push(my_owned);
    }

    // Drivers: one per concrete class, replaying each chain member's
    // segment root-first.
    for (i, spec) in specs.iter().enumerate() {
        if spec.is_abstract {
            continue;
        }
        let class_name = format!("{name}_C{i}");
        // Ancestor chain, root first, self last.
        let mut chain = vec![i];
        let mut cur = spec.parent;
        while let Some(pidx) = cur {
            chain.push(pidx);
            cur = specs[pidx].parent;
        }
        chain.reverse();
        let my_slots = slots[i].clone();
        let segments: Vec<(usize, Vec<String>)> = chain
            .iter()
            .map(|&a| {
                let names = owned[a].iter().map(|&s| my_slots[s].clone()).collect::<Vec<_>>();
                (a, names)
            })
            .collect();
        let anchor = my_slots[0].clone();
        let delete_it = i % 2 == 0;
        p.func(format!("drive_{name}_C{i}"), move |f| {
            f.new_obj("o", &class_name);
            for (a, seg) in &segments {
                if seg.is_empty() {
                    continue;
                }
                let reps = 1 + (a % 4);
                match a % 3 {
                    // Consecutive bursts per slot.
                    0 => {
                        for s in seg {
                            for _ in 0..reps {
                                f.vcall("o", s.clone(), vec![]);
                            }
                        }
                    }
                    // Interleaved with the anchor (Confirmable-style).
                    1 => {
                        for s in seg {
                            for _ in 0..reps {
                                f.vcall("o", anchor.clone(), vec![]);
                                f.vcall("o", s.clone(), vec![]);
                            }
                        }
                    }
                    // Single calls then an anchor burst (Flushable-style).
                    _ => {
                        for s in seg {
                            f.vcall("o", s.clone(), vec![]);
                        }
                        for _ in 0..reps {
                            f.vcall("o", anchor.clone(), vec![]);
                        }
                    }
                }
            }
            if delete_it {
                f.delete("o");
            }
            f.ret();
        });
    }
}

/// Builds a plain tree: `parents[i]` is the parent index of class `i`.
/// Own-method counts alternate 1/2 so vtable lengths vary.
fn tree(parents: &[Option<usize>]) -> Vec<ClassSpec> {
    parents.iter().enumerate().map(|(i, p)| ClassSpec::node(*p, 1 + i % 2, i)).collect()
}

fn resolvable_options() -> CompileOptions {
    CompileOptions::default()
}

fn optimized_options() -> CompileOptions {
    let mut o = CompileOptions::default();
    o.inline_parent_ctors = true;
    o.rodata_noise = 64;
    o
}

/// A chain of `n` classes: 0 -> 1 -> ... -> n-1.
fn chain(n: usize) -> Vec<Option<usize>> {
    (0..n).map(|i| if i == 0 { None } else { Some(i - 1) }).collect()
}

fn bench(
    name: &'static str,
    resolvable: bool,
    paper: PaperNumbers,
    specs: Vec<ClassSpec>,
    options: CompileOptions,
) -> Benchmark {
    Benchmark {
        name,
        structurally_resolvable: resolvable,
        paper,
        program: generate_program(name, &specs),
        options,
    }
}

fn paper(size_kb: f64, types: usize, without: (f64, f64), with: (f64, f64)) -> PaperNumbers {
    PaperNumbers { size_kb, types, without, with }
}

// --- the ten structurally resolvable benchmarks -------------------------

fn antispy_complete() -> Benchmark {
    bench(
        "AntispyComplete",
        true,
        paper(24.7, 3, (0.0, 0.33), (0.0, 0.33)),
        tree(&chain(3)),
        resolvable_options(),
    )
}

fn bafprp() -> Benchmark {
    // 23 types; a 3-node subtree (20,21,22) is severed: class 19 inlines
    // its ctor into its only child 20, which overrides everything it
    // inherits. Ancestors of 20 ({19, 0}) each lose 3 successors:
    // 6/23 ≈ 0.26 missing (paper: 0.3).
    let mut parents: Vec<Option<usize>> = vec![None];
    // Three subtrees under the root: 1-6, 7-12, 13-18 (chains of 6).
    for sub in 0..3 {
        for j in 0..6 {
            let idx = 1 + sub * 6 + j;
            parents.push(if j == 0 { Some(0) } else { Some(idx - 1) });
        }
    }
    parents.push(Some(0)); // 19: child of the root
    parents.push(Some(19)); // 20: severed below
    parents.push(Some(20)); // 21
    parents.push(Some(20)); // 22
    let mut specs = tree(&parents);
    specs[19].inline_ctor = true;
    specs[19].own_methods = 2;
    specs[20].overrides = usize::MAX; // clipped to inherited count
    specs[20].own_methods = 2;
    bench("bafprp", true, paper(52.9, 23, (0.3, 0.0), (0.3, 0.0)), specs, resolvable_options())
}

fn cppcheck() -> Benchmark {
    // Root + two subtrees.
    let parents = vec![None, Some(0), Some(1), Some(0), Some(3), Some(3)];
    bench(
        "cppcheck",
        true,
        paper(97.0, 6, (0.0, 0.0), (0.0, 0.0)),
        tree(&parents),
        resolvable_options(),
    )
}

fn midilib() -> Benchmark {
    // 20 types: root + 3 subtrees of 5 + chain of 4.
    let mut parents = vec![None];
    for sub in 0..3 {
        let base = 1 + sub * 5;
        parents.push(Some(0));
        for j in 1..5 {
            parents.push(Some(base + j - 1));
        }
    }
    for j in 0..4 {
        parents.push(if j == 0 { Some(0) } else { Some(15 + j) });
    }
    bench(
        "MidiLib",
        true,
        paper(400.0, 20, (0.0, 0.0), (0.0, 0.0)),
        tree(&parents),
        resolvable_options(),
    )
}

fn patl() -> Benchmark {
    bench(
        "patl",
        true,
        paper(36.5, 4, (0.0, 0.0), (0.0, 0.0)),
        tree(&[None, Some(0), Some(0), Some(1)]),
        resolvable_options(),
    )
}

fn pop3() -> Benchmark {
    bench(
        "pop3",
        true,
        paper(24.0, 2, (0.0, 0.0), (0.0, 0.0)),
        tree(&[None, Some(0)]),
        resolvable_options(),
    )
}

fn smtp() -> Benchmark {
    bench(
        "smtp",
        true,
        paper(26.0, 2, (0.0, 0.0), (0.0, 0.0)),
        tree(&[None, Some(0)]),
        resolvable_options(),
    )
}

fn tinyxml() -> Benchmark {
    // The paper's highest missing average: the root's link to the rest of
    // the hierarchy leaves no structural trace (ctor inlined, all methods
    // overridden), so the root lands in its own family and "loses" all 8
    // successors: 8/9 ≈ 0.89.
    let mut parents = vec![None, Some(0)];
    for j in 2..9 {
        parents.push(Some(j - 1));
    }
    let mut specs = tree(&parents);
    specs[0].inline_ctor = true;
    specs[0].own_methods = 2;
    specs[1].overrides = usize::MAX;
    specs[1].own_methods = 1;
    bench("tinyxml", true, paper(60.0, 9, (0.89, 0.0), (0.89, 0.0)), specs, resolvable_options())
}

fn tinyxml_stl() -> Benchmark {
    // 15 types in two trees; a 3-node subtree at depth 3 of the first
    // tree is severed: its 3 ancestors each lose 3 successors →
    // 9/15 = 0.6 missing.
    let mut parents = vec![None]; // 0: root of the second (intact) tree
    parents.push(None); // 1: root of the chain tree
    parents.push(Some(1)); // 2
    parents.push(Some(2)); // 3 (severed below this)
    parents.push(Some(3)); // 4: severed subtree root
    parents.push(Some(4)); // 5
    parents.push(Some(4)); // 6
    for j in 7..15 {
        parents.push(Some(if j < 11 { 0 } else { j - 4 }));
    }
    let mut specs = tree(&parents);
    specs[3].inline_ctor = true;
    specs[3].own_methods = 2;
    specs[4].overrides = usize::MAX;
    specs[4].own_methods = 2;
    bench(
        "tinyxmlSTL",
        true,
        paper(88.0, 15, (0.6, 0.27), (0.6, 0.27)),
        specs,
        resolvable_options(),
    )
}

fn yafc() -> Benchmark {
    // 15 types, two clean trees.
    let mut parents = vec![None];
    for j in 1..8 {
        parents.push(Some((j - 1) / 2));
    }
    parents.push(None); // 8: second root
    for j in 9..15 {
        parents.push(Some(8 + (j - 9) / 2));
    }
    bench(
        "yafc",
        true,
        paper(68.0, 15, (0.0, 0.2), (0.0, 0.2)),
        tree(&parents),
        resolvable_options(),
    )
}

// --- the nine benchmarks needing behavioral analysis ---------------------

fn analyzer() -> Benchmark {
    // Two 12-type trees; a leaf of each is COMDAT-folded with the other
    // (identical bodies at identical layout offsets), merging the
    // families; ctor inlining removes the pins.
    let mut parents: Vec<Option<usize>> = Vec::new();
    for t in 0..2 {
        let base = t * 12;
        parents.push(None);
        for j in 1..12 {
            parents.push(Some(base + (j - 1) / 3));
        }
    }
    let mut specs = tree(&parents);
    // Leaves 11 and 23 sit at the same depth with the same shape: force
    // identical bodies.
    specs[11].body_seed = 999;
    specs[23].body_seed = 999;
    specs[11].parent = Some(2);
    specs[23].parent = Some(14);
    specs[11].own_methods = 1;
    specs[23].own_methods = 1;
    let mut o = optimized_options();
    o.comdat_fold = true;
    bench("Analyzer", false, paper(419.0, 24, (0.21, 6.79), (0.25, 1.38)), specs, o)
}

fn cgridlistctrlex() -> Benchmark {
    // 28 concrete types + 2 abstract roots that are optimized out
    // (CEdit / CDialog in the paper's Fig. 9): their child pairs share
    // inherited implementations, so each pair forms a family with no
    // resolvable parent. The main 24-type tree keeps its ctor pins.
    let mut parents: Vec<Option<usize>> = vec![None];
    for j in 1..24 {
        parents.push(Some((j - 1) / 2));
    }
    let mut specs = tree(&parents);
    // Abstract root 24 with children 25, 26 (paper: CEdit's children).
    specs.push(ClassSpec { is_abstract: true, ..ClassSpec::node(None, 2, 24) });
    specs.push(ClassSpec::node(Some(24), 1, 25));
    specs.push(ClassSpec::node(Some(24), 1, 26));
    // Abstract root 27 with children 28, 29 (paper: CDialog's children).
    specs.push(ClassSpec { is_abstract: true, ..ClassSpec::node(None, 2, 27) });
    specs.push(ClassSpec::node(Some(27), 1, 28));
    specs.push(ClassSpec::node(Some(27), 1, 29));
    let mut o = CompileOptions::default();
    o.eliminate_abstract = true;
    o.rodata_noise = 64;
    bench("CGridListCtrlEx", false, paper(151.0, 28, (0.0, 0.46), (0.07, 0.07)), specs, o)
}

fn echoparams() -> Benchmark {
    // Four structurally equivalent types: a chain where each class
    // overrides exactly one inherited method and adds none — identical
    // vtable lengths, shared untouched slots, no ctor cues: 64 candidate
    // hierarchies (§6.4), resolved exactly by the SLMs.
    // generate() overrides the *first k* inherited slots, so give class i
    // a growing override window (1, 2, 3): every vtable keeps length 4,
    // slot 3 stays shared by all (one family), and no ctor cues survive.
    let mut specs = vec![ClassSpec::node(None, 4, 0)];
    for (i, k) in [(1usize, 1usize), (2, 2), (3, 3)] {
        let mut s = ClassSpec::node(Some(i - 1), 0, i);
        s.overrides = k;
        specs.push(s);
    }
    bench("echoparams", false, paper(58.0, 4, (0.0, 2.25), (0.0, 0.0)), specs, optimized_options())
}

fn gperf() -> Benchmark {
    // Root with 2 methods; three mids override one method each (equal
    // lengths → ambiguity), leaves below them.
    let mut specs = vec![ClassSpec::node(None, 3, 0)];
    for i in 1..4 {
        let mut s = ClassSpec::node(Some(0), 0, i);
        s.overrides = 1;
        specs.push(s);
    }
    for i in 4..10 {
        let mut s = ClassSpec::node(Some(1 + (i - 4) % 3), 0, i);
        s.overrides = 2;
        specs.push(s);
    }
    bench("gperf", false, paper(84.0, 10, (0.0, 3.8), (0.0, 0.5)), specs, optimized_options())
}

fn libctemplate() -> Benchmark {
    // 36 types, three trees; one subtree root is abstract and eliminated
    // (missing), the rest carries mild ambiguity.
    let mut parents: Vec<Option<usize>> = Vec::new();
    for t in 0..3 {
        let base = t * 12;
        parents.push(None);
        for j in 1..12 {
            parents.push(Some(base + (j - 1) / 2));
        }
    }
    parents.push(Some(2)); // 37th class so 36 remain after elimination
    let mut specs = tree(&parents);
    specs[12].is_abstract = true; // second tree's root vanishes
    bench("libctemplate", false, paper(1233.0, 36, (0.25, 0.33), (0.25, 0.11)), specs, {
        let mut o = optimized_options();
        o.eliminate_abstract = true;
        o
    })
}

fn showtraf() -> Benchmark {
    // 25 concrete types; like CGridListCtrlEx: a pinned main tree plus
    // one eliminated abstract root with a child pair.
    let mut parents: Vec<Option<usize>> = vec![None];
    for j in 1..22 {
        parents.push(Some((j - 1) / 2));
    }
    let mut specs = tree(&parents);
    specs.push(ClassSpec { is_abstract: true, ..ClassSpec::node(None, 2, 22) });
    specs.push(ClassSpec::node(Some(22), 1, 23));
    specs.push(ClassSpec::node(Some(22), 1, 24));
    specs.push(ClassSpec::node(Some(23), 1, 25));
    let mut o = CompileOptions::default();
    o.eliminate_abstract = true;
    bench("ShowTraf", false, paper(137.0, 25, (0.04, 0.4), (0.04, 0.08)), specs, o)
}

fn smoothing() -> Benchmark {
    // The paper's biggest Without-SLM blowup (added 7.9 → 1.1): a wide
    // family of equal-length vtables. Root with 2 methods; 14 children
    // each override one and add none; plus a clean 16-type second tree.
    let mut specs = vec![ClassSpec::node(None, 2, 0)];
    for i in 1..15 {
        let mut s = ClassSpec::node(Some(0), 0, i);
        s.overrides = 1;
        specs.push(s);
    }
    let base = specs.len();
    let mut parents: Vec<Option<usize>> = vec![None];
    for j in 1..16 {
        parents.push(Some(base + (j - 1) / 3));
    }
    for (j, p) in parents.into_iter().enumerate() {
        specs.push(ClassSpec::node(if j == 0 { None } else { p }, 1 + j % 2, base + j));
    }
    bench(
        "Smoothing",
        false,
        paper(453.0, 31, (0.19, 7.9), (0.23, 1.1)),
        specs,
        optimized_options(),
    )
}

fn td_unittest() -> Benchmark {
    // Two *unrelated* classes whose methods COMDAT-fold to one
    // implementation, wrongly merging their families (error source 1).
    let mut specs = vec![ClassSpec::node(None, 2, 0), ClassSpec::node(None, 2, 1)];
    specs[0].body_seed = 77;
    specs[1].body_seed = 77;
    let mut o = optimized_options();
    o.comdat_fold = true;
    bench("td_unittest", false, paper(101.0, 2, (0.0, 1.0), (0.0, 0.5)), specs, o)
}

fn tinyserver() -> Benchmark {
    // Two 2-chains merged by folded implementations.
    let mut specs = vec![
        ClassSpec::node(None, 2, 0),
        ClassSpec::node(Some(0), 1, 1),
        ClassSpec::node(None, 2, 2),
        ClassSpec::node(Some(2), 1, 3),
    ];
    specs[0].body_seed = 55;
    specs[2].body_seed = 55;
    let mut o = optimized_options();
    o.comdat_fold = true;
    bench("tinyserver", false, paper(46.0, 4, (0.0, 2.25), (0.0, 0.25)), specs, o)
}

/// All 19 Table 2 benchmarks, resolvable half first (paper order).
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        antispy_complete(),
        bafprp(),
        cppcheck(),
        midilib(),
        patl(),
        pop3(),
        smtp(),
        tinyxml(),
        tinyxml_stl(),
        yafc(),
        analyzer(),
        cgridlistctrlex(),
        echoparams(),
        gperf(),
        libctemplate(),
        showtraf(),
        smoothing(),
        td_unittest(),
        tinyserver(),
    ]
}

/// Looks a benchmark up by its Table 2 name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// The Fig. 3/5 running example: `Stream`, `ConfirmableStream`,
/// `FlushableStream` with the `useX` drivers, compiled with ctor inlining
/// so structure alone cannot place `FlushableStream` (Fig. 6).
pub fn streams_example() -> Benchmark {
    let mut p = ProgramBuilder::new();
    p.class("Stream").method("send", |b| {
        b.ret();
    });
    p.class("ConfirmableStream").base("Stream").method("confirm", |b| {
        b.ret();
    });
    p.class("FlushableStream")
        .base("Stream")
        .method("flush", |b| {
            b.ret();
        })
        .method("close", |b| {
            b.ret();
        });
    p.func("useStream", |f| {
        f.new_obj("s", "Stream");
        for _ in 0..3 {
            f.vcall("s", "send", vec![]);
        }
        f.ret();
    });
    p.func("useConfirmableStream", |f| {
        f.new_obj("s", "ConfirmableStream");
        for _ in 0..3 {
            f.vcall("s", "send", vec![]);
            f.vcall("s", "confirm", vec![]);
        }
        f.ret();
    });
    p.func("useFlushableStream", |f| {
        f.new_obj("s", "FlushableStream");
        for _ in 0..3 {
            f.vcall("s", "send", vec![]);
        }
        f.vcall("s", "flush", vec![]);
        f.vcall("s", "close", vec![]);
        f.ret();
    });
    Benchmark {
        name: "streams (Fig. 3)",
        structurally_resolvable: false,
        paper: paper(0.0, 3, (0.0, 0.0), (0.0, 0.0)),
        program: p.finish(),
        options: {
            let mut o = CompileOptions::default();
            o.inline_parent_ctors = true;
            o
        },
    }
}

/// The Fig. 1/2 motivation: a `DataSource` hierarchy where internal and
/// external sources must not be conflated (the CFI scenario of §1).
pub fn datasource_example() -> Benchmark {
    let mut p = ProgramBuilder::new();
    p.class("DataSource")
        .method("connect", |b| {
            b.ret();
        })
        .method("read", |b| {
            b.ret();
        });
    p.class("InternalDataSource").base("DataSource").method("local_path", |b| {
        b.ret();
    });
    p.class("ExternalDataSource").base("DataSource").method("verify_credentials", |b| {
        b.ret();
    });
    for (i, base) in [(0, "InternalDataSource"), (1, "InternalDataSource")] {
        p.class(format!("Internal{i}")).base(base).method(format!("int_extra{i}"), |b| {
            b.ret();
        });
    }
    for (i, base) in [(0, "ExternalDataSource"), (1, "ExternalDataSource")] {
        p.class(format!("External{i}")).base(base).method(format!("ext_extra{i}"), |b| {
            b.ret();
        });
    }
    // readInternal: connect + read (Fig. 1).
    p.func("readInternal", |f| {
        f.new_obj("ds", "Internal0");
        f.vcall("ds", "connect", vec![]);
        f.vcall("ds", "read", vec![]);
        f.ret();
    });
    p.func("readInternal1", |f| {
        f.new_obj("ds", "Internal1");
        f.vcall("ds", "connect", vec![]);
        f.vcall("ds", "read", vec![]);
        f.vcall("ds", "int_extra1", vec![]);
        f.ret();
    });
    // readExternal: connect + verify + read + filter (Fig. 1).
    p.func("readExternal", |f| {
        f.new_obj("ds", "External0");
        f.vcall("ds", "connect", vec![]);
        f.vcall("ds", "verify_credentials", vec![]);
        f.vcall("ds", "read", vec![]);
        f.ret();
    });
    p.func("readExternal1", |f| {
        f.new_obj("ds", "External1");
        f.vcall("ds", "connect", vec![]);
        f.vcall("ds", "verify_credentials", vec![]);
        f.vcall("ds", "read", vec![]);
        f.vcall("ds", "ext_extra1", vec![]);
        f.ret();
    });
    p.func("useBases", |f| {
        f.new_obj("i", "InternalDataSource");
        f.vcall("i", "connect", vec![]);
        f.vcall("i", "read", vec![]);
        f.vcall("i", "local_path", vec![]);
        f.new_obj("e", "ExternalDataSource");
        f.vcall("e", "connect", vec![]);
        f.vcall("e", "verify_credentials", vec![]);
        f.vcall("e", "read", vec![]);
        f.ret();
    });
    Benchmark {
        name: "datasource (Fig. 1)",
        structurally_resolvable: false,
        paper: paper(0.0, 7, (0.0, 0.0), (0.0, 0.0)),
        program: p.finish(),
        options: {
            let mut o = CompileOptions::default();
            o.inline_parent_ctors = true;
            o
        },
    }
}

/// A large generated program (no ground-truth comparison in the paper —
/// the Skype soak test of §6.1). `families` trees of `depth` levels with
/// `fanout` children per node.
pub fn stress_program(families: usize, depth: usize, fanout: usize) -> Benchmark {
    let mut specs: Vec<ClassSpec> = Vec::new();
    for _ in 0..families {
        let root = specs.len();
        specs.push(ClassSpec::node(None, 2, root));
        let mut level = vec![root];
        for _ in 1..depth {
            let mut next = Vec::new();
            for &p in &level {
                for _ in 0..fanout {
                    let idx = specs.len();
                    specs.push(ClassSpec::node(Some(p), 1 + idx % 2, idx));
                    next.push(idx);
                }
            }
            level = next;
        }
    }
    let types = specs.len();
    Benchmark {
        name: "stress",
        structurally_resolvable: false,
        paper: paper(0.0, types, (0.0, 0.0), (0.0, 0.0)),
        program: generate_program("stress", &specs),
        options: optimized_options(),
    }
}

/// The parent table corpus families are carved from: a root, two mid
/// nodes, and fan-out below (deep enough for containment chains, wide
/// enough for parent ambiguity under ctor inlining). A family takes a
/// prefix of this table, so every size shares the same upper shape.
/// Family size sets the cacheable-to-fixed work ratio of a member:
/// distance scoring grows with the square of the class count, so a
/// dozen-plus classes per family keeps jobs dominated by work the
/// corpus cache can absorb.
const CORPUS_FAMILY_PARENTS: [Option<usize>; 18] = [
    None,
    Some(0),
    Some(0),
    Some(1),
    Some(2),
    Some(1),
    Some(2),
    Some(3),
    Some(4),
    Some(5),
    Some(3),
    Some(6),
    Some(7),
    Some(8),
    Some(5),
    Some(6),
    Some(10),
    Some(12),
];

/// Specs for one corpus family: the first `classes` rows of
/// [`CORPUS_FAMILY_PARENTS`]. All code content derives from
/// `seed_base` and the local index, so equal `seed_base` means
/// content-equal families across binaries.
fn corpus_family_specs(seed_base: u64, classes: usize) -> Vec<ClassSpec> {
    CORPUS_FAMILY_PARENTS[..classes]
        .iter()
        .enumerate()
        .map(|(i, &parent)| {
            // Heavy on purpose: fleet members should be dominated by the
            // cacheable stages (execution, training, scoring), as real
            // binaries are, not by the fixed per-job structural floor.
            let mut s = ClassSpec::node(parent, 2 + i % 2, i);
            s.body_seed = seed_base + i as u64;
            if i >= 3 {
                s.overrides = 2;
            }
            s
        })
        .collect()
}

/// One member of the synthetic dedup corpus (`benches/corpus.rs` and the
/// corpus-dedup tests): 18 `lib` classes shared verbatim by *every*
/// member, 8 `app` classes shared by members with the same template
/// (`index % templates`), and one salt class unique to the member. The
/// lib-heavy split models a statically linked fleet, where the runtime
/// and in-house libraries dwarf each binary's unique application code.
///
/// Odd members declare the salt class first, which shifts every shared
/// function to different addresses — cross-binary reuse of tracelets,
/// SLMs, and distances then only works with position-independent
/// (content-derived) cache keys, never with address keys.
///
/// `templates` controls overlap: members `i` and `j` share their app
/// family iff `i % templates == j % templates`, so a corpus of `n`
/// members carries `templates` distinct app families. `templates = 0`
/// is treated as 1 (all members share one app family).
pub fn corpus_member(index: usize, templates: usize) -> Benchmark {
    let templates = templates.max(1);
    let mut p = ProgramBuilder::new();
    let mut salt = ClassSpec::node(None, 2, 0);
    salt.body_seed = 9000 + index as u64;
    let salt_specs = vec![salt];
    let salt_first = index % 2 == 1;
    if salt_first {
        emit_classes(&mut p, "salt", &salt_specs);
    }
    emit_classes(&mut p, "lib", &corpus_family_specs(1000, 18));
    let template = (index % templates) as u64;
    emit_classes(&mut p, "app", &corpus_family_specs(2000 + template * 100, 8));
    if !salt_first {
        emit_classes(&mut p, "salt", &salt_specs);
    }
    Benchmark {
        name: "corpus",
        structurally_resolvable: false,
        paper: paper(0.0, 27, (0.0, 0.0), (0.0, 0.0)),
        program: p.finish(),
        options: optimized_options(),
    }
}

/// Convenience: benchmark names and whether the paper lists them above
/// the line.
pub fn paper_rows() -> BTreeMap<&'static str, bool> {
    all_benchmarks().iter().map(|b| (b.name, b.structurally_resolvable)).collect()
}

// --- the incremental-delta workload -------------------------------------

/// One class in a [`DeltaFamily`]: a declarative spec whose fields map
/// one-to-one onto source constructs, so a tiny mutation of the spec is
/// a tiny, *known* source edit with a predictable artifact dirty set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaClass {
    /// Parent class index within the family (must be `<` own index).
    pub parent: Option<usize>,
    /// One virtual method per seed. A method's **name and body both
    /// derive from its seed**, so reordering this list reorders the
    /// vtable slot layout without changing any method's code — the
    /// "reorder vtable slots" edit is a pure layout change.
    pub methods: Vec<u64>,
    /// Index (mod `methods.len()`) of the slot this class's driver
    /// interleaves between calls. Bumping it retargets driver calls
    /// without touching a single method body ("flip a call target").
    pub anchor: usize,
}

/// One independent class family of the delta workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaFamily {
    /// Seed every method seed in the family derives from. Families with
    /// equal tags and shapes are content-equal across programs.
    pub tag: u64,
    /// The classes, parents before children.
    pub classes: Vec<DeltaClass>,
}

/// The incremental-delta workload spec (`tests/incremental_delta.rs`,
/// `benches/incremental.rs`): several independent class families plus a
/// per-image salt class. Mutate the spec with [`apply_delta`], re-emit
/// with [`delta_program`], and the two programs differ by exactly the
/// edit — everything else is content-identical, so a content-addressed
/// incremental store should reuse it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaSpec {
    /// The families ("libraries") of the image.
    pub families: Vec<DeltaFamily>,
    /// Seed of the image-unique salt class.
    pub salt_seed: u64,
    /// Declare the salt class first instead of last. Flipping this
    /// shifts every family function to a different address while
    /// leaving all of their bytes alone — the position-shift probe for
    /// address-keyed (rather than content-keyed) artifact stores.
    pub salt_first: bool,
}

/// One source-level edit of a [`DeltaSpec`]. Indices are taken modulo
/// the live range, so any variant applies to any spec — seeded fuzzers
/// can draw edits blindly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaEdit {
    /// Rewrite one method body (the canonical 1-function edit).
    EditBody {
        /// Family index (mod family count).
        family: usize,
        /// Class index within the family (mod class count).
        class: usize,
        /// Method index within the class (mod method count).
        method: usize,
    },
    /// Append a brand-new virtual method to one class.
    AddMethod {
        /// Family index (mod family count).
        family: usize,
        /// Class index within the family (mod class count).
        class: usize,
    },
    /// Drop the last method of one class (kept if it is the only one).
    RemoveMethod {
        /// Family index (mod family count).
        family: usize,
        /// Class index within the family (mod class count).
        class: usize,
    },
    /// Swap the first two declared methods of one class: identical
    /// method set and bodies, different vtable slot order.
    ReorderSlots {
        /// Family index (mod family count).
        family: usize,
        /// Class index within the family (mod class count).
        class: usize,
    },
    /// Graft a fresh leaf class onto one family.
    AddClass {
        /// Family index (mod family count).
        family: usize,
    },
    /// Retarget one driver's interleaved call to the next slot.
    FlipCallTarget {
        /// Family index (mod family count).
        family: usize,
        /// Class index within the family (mod class count).
        class: usize,
    },
    /// Re-seed one whole family (the 1-family edit: every method body
    /// in it changes, every other family is untouched).
    ReseedFamily {
        /// Family index (mod family count).
        family: usize,
    },
    /// Re-seed the image's salt class (the salt-class edit: no family
    /// function changes at all).
    ReseedSalt,
}

/// Cheap, deterministic 64-bit seed mixer (splitmix64 finalizer).
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds the base delta workload: `families` binary trees of
/// `classes_per_family` classes, two methods per class, all content
/// derived from `seed`. Trees are shallow so a leaf-class edit dirties
/// only the leaf's own driver, keeping the reachable dirty set of a
/// 1-function edit small relative to the image.
pub fn delta_spec(families: usize, classes_per_family: usize, seed: u64) -> DeltaSpec {
    let families = (0..families)
        .map(|f| {
            let tag = mix(seed, 0x00FA_0000 + f as u64);
            let classes = (0..classes_per_family)
                .map(|c| DeltaClass {
                    parent: if c == 0 { None } else { Some((c - 1) / 2) },
                    methods: (0..2).map(|m| mix(tag, (c * 16 + m) as u64)).collect(),
                    anchor: 0,
                })
                .collect();
            DeltaFamily { tag, classes }
        })
        .collect();
    DeltaSpec { families, salt_seed: mix(seed, 0x5A17), salt_first: false }
}

/// Applies one [`DeltaEdit`] in place. Always changes the emitted
/// program except for no-op corners (`RemoveMethod` on a single-method
/// class, `FlipCallTarget` on a single-method class), which callers
/// can detect by comparing specs.
pub fn apply_delta(spec: &mut DeltaSpec, edit: DeltaEdit) {
    let nfam = spec.families.len();
    match edit {
        DeltaEdit::EditBody { family, class, method } => {
            let fam = &mut spec.families[family % nfam];
            let nc = fam.classes.len();
            let cl = &mut fam.classes[class % nc];
            let nm = cl.methods.len();
            let m = &mut cl.methods[method % nm];
            *m = mix(*m, 0xED17_B0D1);
        }
        DeltaEdit::AddMethod { family, class } => {
            let fam = &mut spec.families[family % nfam];
            let nc = fam.classes.len();
            let cl = &mut fam.classes[class % nc];
            let fresh = mix(fam.tag, 0xADD0 + cl.methods.len() as u64 * 131);
            cl.methods.push(fresh);
        }
        DeltaEdit::RemoveMethod { family, class } => {
            let fam = &mut spec.families[family % nfam];
            let nc = fam.classes.len();
            let cl = &mut fam.classes[class % nc];
            if cl.methods.len() > 1 {
                cl.methods.pop();
            }
        }
        DeltaEdit::ReorderSlots { family, class } => {
            let fam = &mut spec.families[family % nfam];
            let nc = fam.classes.len();
            let cl = &mut fam.classes[class % nc];
            if cl.methods.len() > 1 {
                cl.methods.swap(0, 1);
            } else {
                // Single-method class: fall back to a body edit so the
                // mutation is never silently void.
                cl.methods[0] = mix(cl.methods[0], 0x5107_50A9);
            }
        }
        DeltaEdit::AddClass { family } => {
            let fam = &mut spec.families[family % nfam];
            let idx = fam.classes.len();
            fam.classes.push(DeltaClass {
                parent: Some((idx - 1) / 2),
                methods: vec![mix(fam.tag, 0xC1A5_5000 + idx as u64)],
                anchor: 0,
            });
        }
        DeltaEdit::FlipCallTarget { family, class } => {
            let fam = &mut spec.families[family % nfam];
            let nc = fam.classes.len();
            let cl = &mut fam.classes[class % nc];
            cl.anchor += 1;
        }
        DeltaEdit::ReseedFamily { family } => {
            let fam = &mut spec.families[family % nfam];
            fam.tag = mix(fam.tag, 0xFA_0511);
            let tag = fam.tag;
            for (c, cl) in fam.classes.iter_mut().enumerate() {
                for (m, seed) in cl.methods.iter_mut().enumerate() {
                    *seed = mix(tag, (c * 16 + m) as u64);
                }
            }
        }
        DeltaEdit::ReseedSalt => {
            spec.salt_seed = mix(spec.salt_seed, 0x5A17_ED17);
        }
    }
}

/// Emits one delta family into the builder. Class names derive from the
/// stable `name`, method names and bodies from the seeds alone, so
/// unchanged seeds produce byte-identical functions no matter what edit
/// happened elsewhere in the program.
fn emit_delta_family(p: &mut ProgramBuilder, name: &str, fam: &DeltaFamily) {
    // (method name, introducing field) per slot, inherited + own.
    let mut slots: Vec<Vec<(String, String)>> = Vec::with_capacity(fam.classes.len());
    for (ci, class) in fam.classes.iter().enumerate() {
        let class_name = format!("{name}_C{ci}");
        let field = format!("f{ci}");
        let mut my_slots = match class.parent {
            None => Vec::new(),
            Some(pi) => slots[pi].clone(),
        };
        let mut cb = p.class(&class_name);
        if let Some(pi) = class.parent {
            cb.base(format!("{name}_C{pi}"));
        }
        cb.field(&field);
        for &seed in &class.methods {
            let mname = format!("{name}_c{ci}_s{seed:016x}");
            let f = field.clone();
            cb.method(mname.clone(), move |b| {
                b.write("this", &f, Expr::Const(seed.wrapping_mul(31).wrapping_add(7)));
                b.read("v", "this", &f);
                b.ret();
            });
            my_slots.push((mname, field.clone()));
        }
        slots.push(my_slots);
    }

    // Drivers: every class is concrete; each driver replays its ancestor
    // chain's methods root-first, interleaving the class's anchor slot.
    for (ci, class) in fam.classes.iter().enumerate() {
        let class_name = format!("{name}_C{ci}");
        let mut chain = vec![ci];
        let mut cur = class.parent;
        while let Some(pi) = cur {
            chain.push(pi);
            cur = fam.classes[pi].parent;
        }
        chain.reverse();
        let segments: Vec<Vec<String>> = chain
            .iter()
            .map(|&a| {
                fam.classes[a].methods.iter().map(|&s| format!("{name}_c{a}_s{s:016x}")).collect()
            })
            .collect();
        let own = &class.methods;
        let anchor_seed = own[class.anchor % own.len()];
        let anchor = format!("{name}_c{ci}_s{anchor_seed:016x}");
        let delete_it = ci % 2 == 0;
        // Heavy on purpose, and heavy in the *cacheable* direction: each
        // replayed slot sits inside a branch diamond whose two arms make
        // the same calls. The symbolic executor forks on every branch
        // regardless of the condition, so cold analysis explores up to
        // `max_paths` near-identical paths per driver — while the
        // function body (hence its WL content label) stays small and the
        // tracelet multiset stays compact (identical arms add
        // multiplicity, not vocabulary). That mirrors real binaries,
        // where per-function analysis dwarfs the fixed per-run floor
        // (loading, labeling, preload i/o); a featherweight straight-line
        // driver would make that floor look artificially large and
        // understate the incremental win.
        let reps = 2 + ci % 3;
        let field = format!("f{ci}");
        p.func(format!("drive_{class_name}"), move |f| {
            f.new_obj("o", &class_name);
            f.read("c", "o", &field);
            for pass in 0..2 {
                for seg in &segments {
                    for s in seg {
                        let arm = |b: &mut BodyBuilder| {
                            for _ in 0..reps {
                                b.vcall("o", s.clone(), vec![]);
                                if pass == 0 {
                                    b.vcall("o", anchor.clone(), vec![]);
                                }
                            }
                        };
                        f.if_else(Expr::Var("c".into()), arm, arm);
                    }
                    f.vcall("o", anchor.clone(), vec![]);
                }
            }
            if delete_it {
                f.delete("o");
            }
            f.ret();
        });
    }
}

/// Emits a [`DeltaSpec`] into a compilable [`Benchmark`]. Family names
/// are positional (`d0`, `d1`, ...) so edits never rename a family; the
/// salt class is `salt_C0`, declared first when `salt_first` is set.
pub fn delta_program(spec: &DeltaSpec) -> Benchmark {
    let mut p = ProgramBuilder::new();
    let salt = DeltaFamily {
        tag: spec.salt_seed,
        classes: vec![DeltaClass {
            parent: None,
            methods: vec![mix(spec.salt_seed, 1), mix(spec.salt_seed, 2)],
            anchor: 0,
        }],
    };
    if spec.salt_first {
        emit_delta_family(&mut p, "salt", &salt);
    }
    for (fi, fam) in spec.families.iter().enumerate() {
        emit_delta_family(&mut p, &format!("d{fi}"), fam);
    }
    if !spec.salt_first {
        emit_delta_family(&mut p, "salt", &salt);
    }
    let types = spec.families.iter().map(|f| f.classes.len()).sum::<usize>() + 1;
    Benchmark {
        name: "delta",
        structurally_resolvable: false,
        paper: paper(0.0, types, (0.0, 0.0), (0.0, 0.0)),
        program: p.finish(),
        options: optimized_options(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_benchmarks_with_paper_type_counts() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 19);
        assert_eq!(all.iter().filter(|b| b.structurally_resolvable).count(), 10);
        for b in &all {
            let concrete = b
                .program
                .classes
                .iter()
                .filter(|c| !(b.options.eliminate_abstract && c.is_abstract()))
                .count();
            assert_eq!(
                concrete, b.paper.types,
                "{}: expected {} emitted types",
                b.name, b.paper.types
            );
        }
    }

    #[test]
    fn all_benchmarks_compile() {
        for b in all_benchmarks() {
            let compiled = b.compile().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert_eq!(
                compiled.ground_truth().len(),
                b.paper.types,
                "{}: ground truth size",
                b.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("tinyxml").is_some());
        assert!(benchmark("echoparams").is_some());
        assert!(benchmark("not-a-benchmark").is_none());
    }

    #[test]
    fn examples_compile() {
        assert!(streams_example().compile().is_ok());
        let ds = datasource_example();
        let c = ds.compile().unwrap();
        assert_eq!(c.ground_truth().len(), 7);
    }

    #[test]
    fn stress_scales() {
        let b = stress_program(2, 3, 2);
        assert_eq!(b.paper.types, 2 * (1 + 2 + 4));
        assert!(b.compile().is_ok());
    }

    #[test]
    fn corpus_members_share_content_at_shifted_addresses() {
        // Members 0 and 8 share the app template (8 % 8 == 0): identical
        // programs except for the salt class; member 1 shares nothing
        // with member 0 beyond the lib family and declares its salt
        // first, shifting every shared function.
        let m0 = corpus_member(0, 8).compile().unwrap();
        let m1 = corpus_member(1, 8).compile().unwrap();
        let m8 = corpus_member(8, 8).compile().unwrap();
        assert_eq!(m0.ground_truth().len(), 27);
        // Shared lib root method body exists in both, at *different*
        // addresses when the salt leads (member 1 vs member 0).
        let addr_of = |c: &rock_minicpp::Compiled, sym: &str| {
            c.image().symbols().by_name(sym).map(|s| s.addr).unwrap()
        };
        let sym = "lib_C0::lib_c0_m0";
        assert_ne!(addr_of(&m0, sym), addr_of(&m1, sym), "salt-first must shift {sym}");
        assert_eq!(addr_of(&m0, sym), addr_of(&m8, sym), "same layout, same address");
        // Distinct templates produce distinct app families.
        assert_eq!(corpus_member(0, 1).compile().unwrap().ground_truth().len(), 27);
    }

    #[test]
    fn delta_spec_compiles_and_every_edit_still_compiles() {
        let base = delta_spec(3, 5, 42);
        let b = delta_program(&base);
        assert_eq!(b.paper.types, 3 * 5 + 1);
        assert_eq!(b.compile().unwrap().ground_truth().len(), 16);
        let edits = [
            DeltaEdit::EditBody { family: 0, class: 4, method: 1 },
            DeltaEdit::AddMethod { family: 1, class: 2 },
            DeltaEdit::RemoveMethod { family: 1, class: 3 },
            DeltaEdit::ReorderSlots { family: 2, class: 0 },
            DeltaEdit::AddClass { family: 0 },
            DeltaEdit::FlipCallTarget { family: 2, class: 1 },
            DeltaEdit::ReseedFamily { family: 1 },
            DeltaEdit::ReseedSalt,
        ];
        for edit in edits {
            let mut mutated = base.clone();
            apply_delta(&mut mutated, edit);
            assert_ne!(mutated, base, "{edit:?} must change the spec");
            delta_program(&mutated).compile().unwrap_or_else(|e| panic!("{edit:?}: {e}"));
        }
    }

    #[test]
    fn delta_reorder_swaps_slots_without_touching_bodies() {
        let mut spec = delta_spec(2, 4, 7);
        let before = spec.families[1].classes[0].methods.clone();
        apply_delta(&mut spec, DeltaEdit::ReorderSlots { family: 1, class: 0 });
        let after = &spec.families[1].classes[0].methods;
        assert_eq!(after[0], before[1]);
        assert_eq!(after[1], before[0]);
        // Same method set (names and bodies travel with the seeds).
        let mut a = before.clone();
        let mut b = after.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn delta_salt_first_shifts_family_functions_without_changing_them() {
        let mut spec = delta_spec(2, 4, 11);
        let last = delta_program(&spec).compile().unwrap();
        spec.salt_first = true;
        let first = delta_program(&spec).compile().unwrap();
        let seed = spec.families[0].classes[0].methods[0];
        let sym = format!("d0_C0::d0_c0_s{seed:016x}");
        let addr_of = |c: &rock_minicpp::Compiled, sym: &str| {
            c.image().symbols().by_name(sym).map(|s| s.addr).unwrap()
        };
        assert_ne!(addr_of(&last, &sym), addr_of(&first, &sym), "salt-first must shift {sym}");
    }
}
