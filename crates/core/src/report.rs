//! Rendering of Table 2 (application distance, measured vs. paper).

use std::fmt::Write as _;

use crate::suite::Benchmark;
use crate::Evaluation;

/// One measured row of Table 2.
#[derive(Clone, Debug, PartialEq)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Number of ground-truth types.
    pub types: usize,
    /// Measured (missing, added) without SLMs.
    pub without: (f64, f64),
    /// Measured (missing, added) with SLMs.
    pub with: (f64, f64),
    /// Paper's (missing, added) without SLMs.
    pub paper_without: (f64, f64),
    /// Paper's (missing, added) with SLMs.
    pub paper_with: (f64, f64),
    /// Above or below Table 2's horizontal line.
    pub structurally_resolvable: bool,
}

impl Table2Row {
    /// Builds a row from a benchmark definition and its measurement.
    pub fn new(bench: &Benchmark, eval: &Evaluation) -> Self {
        Table2Row {
            name: bench.name.to_string(),
            types: eval.num_types,
            without: (eval.without_slm.avg_missing, eval.without_slm.avg_added),
            with: (eval.with_slm.avg_missing, eval.with_slm.avg_added),
            paper_without: bench.paper.without,
            paper_with: bench.paper.with,
            structurally_resolvable: bench.structurally_resolvable,
        }
    }

    /// Does the row reproduce the paper's qualitative shape? With SLMs
    /// must not *increase* added types, and where the paper reports a big
    /// improvement (added reduced by ≥ 50%) the measurement must improve
    /// too.
    pub fn shape_holds(&self) -> bool {
        let improves = self.with.1 <= self.without.1 + 1e-9;
        let paper_big_gain = self.paper_without.1 >= 2.0 * self.paper_with.1.max(0.05);
        let measured_gain = self.without.1 >= 2.0 * self.with.1.max(0.05);
        improves && (!paper_big_gain || measured_gain || self.without.1 < 0.05)
    }
}

/// Renders the full Table 2 as fixed-width text, resolvable benchmarks
/// above the line (paper layout), with paper values alongside.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>5} | {:>8} {:>8} | {:>8} {:>8} | {:>15} {:>15}",
        "benchmark", "types", "w/o miss", "w/o add", "w miss", "w add", "paper w/o", "paper w"
    );
    let _ = writeln!(out, "{}", "-".repeat(110));
    let mut line_drawn = false;
    for row in rows {
        if !row.structurally_resolvable && !line_drawn {
            let _ = writeln!(out, "{}", "-".repeat(110));
            line_drawn = true;
        }
        let _ = writeln!(
            out,
            "{:<18} {:>5} | {:>8.2} {:>8.2} | {:>8.2} {:>8.2} | {:>7.2}/{:<7.2} {:>7.2}/{:<7.2}",
            row.name,
            row.types,
            row.without.0,
            row.without.1,
            row.with.0,
            row.with.1,
            row.paper_without.0,
            row.paper_without.1,
            row.paper_with.0,
            row.paper_with.1,
        );
    }
    out
}

/// Renders Table 2 as a GitHub-flavoured markdown table (the format used
/// in EXPERIMENTS.md), measured values beside the paper's.
pub fn render_table2_markdown(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| benchmark | types | w/o SLM measured | w/ SLM measured | w/o SLM paper | w/ SLM paper |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for row in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {:.2} / {:.2} | {:.2} / {:.2} | {:.2} / {:.2} | {:.2} / {:.2} |",
            row.name,
            row.types,
            row.without.0,
            row.without.1,
            row.with.0,
            row.with.1,
            row.paper_without.0,
            row.paper_without.1,
            row.paper_with.0,
            row.paper_with.1,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, resolvable: bool, without: (f64, f64), with: (f64, f64)) -> Table2Row {
        Table2Row {
            name: name.into(),
            types: 4,
            without,
            with,
            paper_without: (0.0, 2.25),
            paper_with: (0.0, 0.0),
            structurally_resolvable: resolvable,
        }
    }

    #[test]
    fn shape_detection() {
        // Big improvement, matches the paper's big gain.
        assert!(row("a", false, (0.0, 2.25), (0.0, 0.0)).shape_holds());
        // No improvement where the paper improved a lot.
        assert!(!row("b", false, (0.0, 2.25), (0.0, 2.25)).shape_holds());
        // Regression (with > without) never passes.
        assert!(!row("c", false, (0.0, 0.5), (0.0, 2.0)).shape_holds());
    }

    #[test]
    fn markdown_rendering() {
        let rows = vec![row("tinyxml", true, (0.89, 0.0), (0.89, 0.0))];
        let md = render_table2_markdown(&rows);
        assert!(md.starts_with("| benchmark |"));
        assert!(md.contains("| tinyxml | 4 | 0.89 / 0.00 | 0.89 / 0.00 |"));
        assert_eq!(md.lines().count(), 3);
    }

    #[test]
    fn renders_with_separator() {
        let rows = vec![
            row("top", true, (0.0, 0.0), (0.0, 0.0)),
            row("bottom", false, (0.0, 2.0), (0.0, 0.2)),
        ];
        let text = render_table2(&rows);
        assert!(text.contains("benchmark"));
        assert!(text.contains("top"));
        assert!(text.contains("bottom"));
        // Header rule + mid-table separator.
        assert_eq!(text.matches(&"-".repeat(110)).count(), 2);
    }
}
