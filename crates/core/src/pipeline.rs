//! The end-to-end reconstruction pipeline.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use rock_analysis::{Analysis, Event, IncidentKind};
use rock_binary::Addr;
use rock_graph::Forest;
use rock_loader::{LoadIssue, LoadedBinary};
use rock_slm::{DistanceCache, GlobalDistanceStore, Metric, ModelKey, Slm};
use rock_structural::Structural;
use rock_trace::{names, MetricsRegistry, TraceCtx, TraceLevel, Tracer};

use crate::corpus::CorpusCache;
use crate::diagnostics::{Coverage, FaultKind, Severity, Stage, StageError, Subject};
use crate::faultplan::FaultPlan;
use crate::par::{par_map, Parallelism};
use crate::{RockConfig, StageTimings};

/// The Rock reconstructor.
///
/// Construct one with a [`RockConfig`] and call [`Rock::reconstruct`] on a
/// loaded (stripped) binary. Every reconstructor owns a shared
/// [`DistanceCache`]; [`Rock::with_shared_cache`] lets several
/// reconstructors (e.g. an ablation sweep over metrics) reuse one cache so
/// each `(metric, parent, child)` divergence is computed exactly once.
/// Cache keys are **content hashes** of each type's tracelet pool
/// ([`crate::corpus::pool_key`]), so equal keys imply equal training
/// inputs and the cache is safe to share across runs — and, with
/// [`RockConfig::canonical_calls`], across different binaries.
///
/// [`Rock::with_corpus_cache`] additionally attaches a fleet-wide
/// [`CorpusCache`]: symbolic executions, trained models, and distances
/// are then published to (and answered from) the shared store, so a
/// batch over overlapping binaries trains every distinct pool once.
#[derive(Clone, Debug, Default)]
pub struct Rock {
    config: RockConfig,
    cache: Arc<DistanceCache<ModelKey>>,
    corpus: Option<Arc<CorpusCache>>,
    fault: Option<Arc<FaultPlan>>,
    tracer: Option<Arc<Tracer>>,
    trace_level: TraceLevel,
}

/// Everything the pipeline produced for one binary.
#[derive(Clone, Debug)]
pub struct Reconstruction {
    /// The reconstructed hierarchy over binary types (vtable addresses) —
    /// the "With SLMs" result.
    pub hierarchy: Forest<Addr>,
    /// The structural analysis (families + possible parents) — the
    /// "Without SLMs" baseline works directly on this relation.
    pub structural: Structural,
    /// The behavioral analysis output (tracelets + recognized ctors).
    pub analysis: Analysis,
    /// Behavioral distances computed for surviving candidate edges:
    /// `(parent, child) -> distance`.
    pub distances: BTreeMap<(Addr, Addr), f64>,
    /// Per-stage wall-clock and work counters for this run.
    pub timings: StageTimings,
    /// Every contained fault of the run, in deterministic record order.
    pub diagnostics: Vec<StageError>,
    /// How much of the binary the run actually covered.
    pub coverage: Coverage,
    /// The run's full metrics registry (counters + histograms); the
    /// [`StageTimings`] counters are a fixed projection of it. Contains
    /// only deterministic work counts — never wall-clock values — so two
    /// runs of the same binary compare equal at any thread count.
    pub metrics: MetricsRegistry,
    /// The metric the distances were computed under.
    metric: Metric,
    /// The trained per-type models, kept so post-hoc queries
    /// ([`Reconstruction::k_most_likely_parents`]) can fill cache misses.
    /// Shared (`Arc`) because corpus runs alias one model across every
    /// type — in one binary or many — whose pool hashes identically.
    models: BTreeMap<Addr, Arc<Slm<Event>>>,
    /// Content key of every type's tracelet pool (trained or not);
    /// [`DistanceCache`] and [`CorpusCache`] lookups key on these.
    model_keys: BTreeMap<Addr, ModelKey>,
    /// The distance cache shared with (and warmed by) the pipeline run.
    cache: Arc<DistanceCache<ModelKey>>,
    /// The fleet-wide corpus cache, when the run had one attached.
    corpus: Option<Arc<CorpusCache>>,
}

impl Reconstruction {
    /// Convenience: candidate parents of `child` after the structural
    /// phase (the "Without SLMs" relation).
    pub fn possible_parents_of(&self, child: Addr) -> Vec<Addr> {
        self.structural.possible_parents().of(child)
    }

    /// The parent chosen by the full pipeline, if any.
    pub fn parent_of(&self, child: Addr) -> Option<Addr> {
        self.hierarchy.parent_of(&child).copied()
    }

    /// The trained model of a binary type, if the type exists.
    pub fn model_of(&self, addr: Addr) -> Option<&Slm<Event>> {
        self.models.get(&addr).map(|m| &**m)
    }

    /// §5.3 multiple inheritance: "if a type inherits from X different
    /// parents, we will observe assignments of X different vtable
    /// pointers … given that we observe X assignments, we will choose the
    /// X most likely parents as the type's parents." Returns, per type,
    /// as many parents as its constructor's vptr-store count indicates
    /// (single-inheritance types keep their one arborescence parent).
    pub fn mi_parents(&self) -> BTreeMap<Addr, Vec<Addr>> {
        let counts = self.structural.vptr_store_counts();
        let mut out = BTreeMap::new();
        for family in self.structural.families() {
            for &child in family {
                let k = counts.get(&child).copied().unwrap_or(1).max(1);
                let parents = self.k_most_likely_parents(k).remove(&child).unwrap_or_default();
                out.insert(child, parents);
            }
        }
        out
    }

    /// §6.4 "Applying Control Flow Integrity": assigns up to `k` most
    /// likely parents per type, trading false negatives for false
    /// positives ("our algorithm supports this at the cost of increased
    /// computational complexity, while still polynomial").
    ///
    /// The arborescence-chosen parent always ranks first; further slots
    /// are filled by ascending behavioral distance among the surviving
    /// structural candidates. Distances not computed during lifting are
    /// filled through the run's shared [`DistanceCache`], so repeated
    /// queries never recompute a divergence.
    pub fn k_most_likely_parents(&self, k: usize) -> BTreeMap<Addr, Vec<Addr>> {
        let mut out = BTreeMap::new();
        for family in self.structural.families() {
            for &child in family {
                let chosen = self.parent_of(child);
                let mut ranked: Vec<(f64, Addr)> = self
                    .structural
                    .possible_parents()
                    .of(child)
                    .into_iter()
                    .filter(|p| Some(*p) != chosen)
                    .map(|p| (self.distance_of(p, child), p))
                    .collect();
                ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
                let mut parents: Vec<Addr> = chosen.into_iter().collect();
                parents.extend(ranked.into_iter().map(|(_, p)| p));
                parents.truncate(k);
                out.insert(child, parents);
            }
        }
        out
    }

    /// The behavioral distance of a candidate edge: answered from the
    /// lifting pass when available, otherwise computed through the shared
    /// cache; `f64::MAX` if either endpoint has no model.
    fn distance_of(&self, parent: Addr, child: Addr) -> f64 {
        if let Some(d) = self.distances.get(&(parent, child)) {
            return *d;
        }
        let (Some(pm), Some(cm)) = (self.models.get(&parent), self.models.get(&child)) else {
            return f64::MAX;
        };
        let (Some(kp), Some(kc)) = (self.model_keys.get(&parent), self.model_keys.get(&child))
        else {
            return f64::MAX;
        };
        let global = self.corpus.as_deref().map(|c| c as &dyn GlobalDistanceStore<ModelKey>);
        self.cache.distance_via(self.metric, (kp, &**pm), (kc, &**cm), global)
    }
}

impl fmt::Display for Reconstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "reconstructed hierarchy over {} types:", self.hierarchy.len())?;
        write!(f, "{}", self.hierarchy)
    }
}

impl Rock {
    /// Creates a reconstructor with its own (empty) distance cache.
    pub fn new(config: RockConfig) -> Self {
        Rock::with_shared_cache(config, Arc::new(DistanceCache::new()))
    }

    /// Creates a reconstructor that shares `cache` with other passes
    /// (ablation sweeps, repeated reconstructions). Content keys make
    /// sharing sound across binaries too: equal keys imply equal pools.
    pub fn with_shared_cache(config: RockConfig, cache: Arc<DistanceCache<ModelKey>>) -> Self {
        Rock {
            config,
            cache,
            corpus: None,
            fault: None,
            tracer: None,
            trace_level: TraceLevel::default(),
        }
    }

    /// Attaches a fleet-wide [`CorpusCache`]: subsequent runs answer
    /// symbolic executions, SLM trainings, and distances from the shared
    /// store when a content key matches, and publish fresh results back.
    /// Pair it with [`RockConfig::with_canonical_calls`] so keys survive
    /// layout changes between binaries.
    pub fn with_corpus_cache(mut self, corpus: Arc<CorpusCache>) -> Self {
        self.corpus = Some(corpus);
        self
    }

    /// Attaches a deterministic [`FaultPlan`]: named functions and stage
    /// items panic, get skipped, or run starved, exercising the
    /// containment paths without any wall-clock randomness.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Attaches a span [`Tracer`]: stage and per-item spans of every
    /// subsequent run are recorded into it. Tracing never changes
    /// results — `tests/trace_determinism.rs` pins bit-identical output
    /// with and without a tracer at every thread count. Spans are
    /// filtered through the [`TraceLevel`] set by
    /// [`Rock::with_trace_level`] ([`TraceLevel::Full`] by default, so
    /// attaching a tracer alone behaves exactly as before levels
    /// existed).
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Sets the [`TraceLevel`] spans are filtered through: `stage` keeps
    /// only the coarse stage spans, `sampled` adds a deterministic
    /// 1-in-16 sample of per-item spans, `full` records everything.
    /// Metrics and diagnostics are unaffected — they record 100% of the
    /// work at every level.
    pub fn with_trace_level(mut self, level: TraceLevel) -> Self {
        self.trace_level = level;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &RockConfig {
        &self.config
    }

    /// The distance cache this reconstructor reads and warms.
    pub fn cache(&self) -> &Arc<DistanceCache<ModelKey>> {
        &self.cache
    }

    /// The attached corpus cache, if any.
    pub fn corpus_cache(&self) -> Option<&Arc<CorpusCache>> {
        self.corpus.as_ref()
    }

    /// The corpus cache viewed as the distance tier's global store.
    pub(crate) fn global_distances(&self) -> Option<&dyn GlobalDistanceStore<ModelKey>> {
        self.corpus.as_deref().map(|c| c as &dyn GlobalDistanceStore<ModelKey>)
    }

    /// Runs the full pipeline on a loaded binary.
    ///
    /// The hot loops (SLM training, distance matrices, arborescences) run
    /// on [`RockConfig::parallelism`] threads; every merge happens in
    /// deterministic input order, so the result is bit-identical to
    /// [`Parallelism::Serial`] whatever setting is active.
    ///
    /// # Panics
    ///
    /// Only with [`RockConfig::strict`] set, on the first error-severity
    /// diagnostic — use [`Rock::try_reconstruct`] to handle that case.
    pub fn reconstruct(&self, loaded: &LoadedBinary) -> Reconstruction {
        match self.try_reconstruct(loaded) {
            Ok(recon) => recon,
            Err(e) => panic!("strict reconstruction failed: {e}"),
        }
    }

    /// Like [`Rock::reconstruct`], but surfaces strict-mode failures.
    ///
    /// Without [`RockConfig::strict`] this never returns `Err`: every
    /// fault — a panicking symbolic execution, an untrainable model, a
    /// faulting arborescence search — is contained, recorded in
    /// [`Reconstruction::diagnostics`], and accounted for by
    /// [`Reconstruction::coverage`], while the rest of the binary is
    /// still reconstructed. With `strict`, the first error-severity
    /// [`StageError`] aborts the run instead (the old fail-fast shape).
    ///
    /// This is a thin loop over the staged pipeline ([`Rock::begin`] +
    /// [`crate::StagedRun::advance`]) — supervised checkpoint/resume runs
    /// drive the *same* stage bodies, so the two paths cannot drift.
    pub fn try_reconstruct(&self, loaded: &LoadedBinary) -> Result<Reconstruction, StageError> {
        let mut run = self.begin(loaded);
        while !run.is_done() {
            run.advance()?;
        }
        Ok(run.finish())
    }

    /// The attached fault plan, if any.
    pub(crate) fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_deref()
    }

    /// The span-recording context (disabled when no tracer is attached),
    /// filtering at the configured [`TraceLevel`].
    pub(crate) fn trace_ctx(&self) -> TraceCtx<'_> {
        match self.tracer.as_deref() {
            Some(t) => TraceCtx::with_level(t, self.trace_level),
            None => TraceCtx::disabled(),
        }
    }
}

/// Assembles a [`Reconstruction`] from finished stage outputs (the
/// private-field constructor used by [`crate::StagedRun::finish`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_reconstruction(
    hierarchy: Forest<Addr>,
    structural: Structural,
    analysis: Analysis,
    distances: BTreeMap<(Addr, Addr), f64>,
    timings: StageTimings,
    diagnostics: Vec<StageError>,
    coverage: Coverage,
    metrics: MetricsRegistry,
    metric: Metric,
    models: BTreeMap<Addr, Arc<Slm<Event>>>,
    model_keys: BTreeMap<Addr, ModelKey>,
    cache: Arc<DistanceCache<ModelKey>>,
    corpus: Option<Arc<CorpusCache>>,
) -> Reconstruction {
    Reconstruction {
        hierarchy,
        structural,
        analysis,
        distances,
        timings,
        diagnostics,
        coverage,
        metrics,
        metric,
        models,
        model_keys,
        cache,
        corpus,
    }
}

/// Maps a loader degradation onto the diagnostic taxonomy.
pub(crate) fn load_issue_error(issue: &LoadIssue) -> StageError {
    let (subject, kind, severity) = match issue {
        LoadIssue::NoTextSection => (Subject::Image, FaultKind::MissingText, Severity::Error),
        LoadIssue::TruncatedText { .. } => {
            (Subject::Image, FaultKind::TruncatedDecode, Severity::Error)
        }
        LoadIssue::SkippedPrefix { .. } => {
            (Subject::Image, FaultKind::SkippedPrefix, Severity::Warning)
        }
        LoadIssue::RejectedVtableCandidate { at } => {
            (Subject::Vtable(*at), FaultKind::RejectedVtable, Severity::Warning)
        }
    };
    StageError { stage: Stage::Load, subject, kind, severity }
}

/// Maps a behavioral-analysis incident onto the diagnostic taxonomy.
pub(crate) fn incident_error(entry: Addr, incident: &IncidentKind) -> StageError {
    let (kind, severity) = match incident {
        IncidentKind::Panicked(msg) => (FaultKind::Panicked(msg.clone()), Severity::Error),
        IncidentKind::FuelExhausted => (FaultKind::FuelExhausted, Severity::Error),
        IncidentKind::DeadlineExceeded => (FaultKind::DeadlineExceeded, Severity::Error),
        IncidentKind::Skipped => (FaultKind::Skipped, Severity::Warning),
    };
    StageError { stage: Stage::Analysis, subject: Subject::Function(entry), kind, severity }
}

/// One child's scored candidate edges, plus everything that was dropped
/// on the way and why.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct ChildEdges {
    /// Accepted `(parent, child, distance)` edges.
    pub(crate) accepted: Vec<(Addr, Addr, f64)>,
    /// Candidates outside the family's member list (ctor merges).
    pub(crate) foreign: usize,
    /// Candidate pairs skipped because an endpoint has no trained model
    /// (its training faulted upstream).
    pub(crate) unmodeled: Vec<(Addr, Addr)>,
}

/// Scores one child's surviving candidate edges within its family.
///
/// `index` is the family's member list; **foreign** candidates — parents
/// proposed by the structural phase (e.g. via a ctor merge) that are not
/// family members — are counted and dropped: indexing them
/// unconditionally (`index[&parent]`) was a panic; they carry no position
/// in the family's digraph. `distance` returns `None` when an endpoint
/// has no model; those pairs are reported in
/// [`ChildEdges::unmodeled`] instead of being scored.
pub(crate) fn child_candidate_edges(
    index: &BTreeMap<Addr, usize>,
    child: Addr,
    candidates: impl Fn(Addr) -> Vec<Addr>,
    mut distance: impl FnMut(Addr, Addr) -> Option<f64>,
) -> ChildEdges {
    let mut edges = ChildEdges::default();
    for parent in candidates(child) {
        if !index.contains_key(&parent) {
            eprintln!(
                "rock: skipping foreign parent candidate {parent} for {child} \
                 (outside its family)"
            );
            edges.foreign += 1;
            continue;
        }
        match distance(parent, child) {
            Some(d) => edges.accepted.push((parent, child, d)),
            None => edges.unmodeled.push((parent, child)),
        }
    }
    edges
}

/// Behavioral family repartitioning — the future-work extension the paper
/// sketches in §6.4 ("our current implementation does not attempt to
/// repartition based on usage"): false family *splits* (error source 2 —
/// compiler-omitted structural cues) leave hierarchy roots whose true
/// parent sits in another family. For each root, consider cross-family
/// parents that pass the rule-1 slot check; adopt the best one if its
/// behavioral distance is no worse than the distances of the edges already
/// accepted within families.
///
/// Runs in two phases so the scan parallelizes and the outcome is
/// independent of scan order: first every root's best candidate is scored
/// against a **snapshot** of the hierarchy, then the proposals are applied
/// serially by [`apply_adoptions`], which re-checks ancestry against the
/// *current* hierarchy before each insert. Returns the number of
/// adoptions applied.
#[allow(clippy::too_many_arguments)]
pub(crate) fn repartition(
    hierarchy: &mut Forest<Addr>,
    distances: &mut BTreeMap<(Addr, Addr), f64>,
    structural: &Structural,
    models: &BTreeMap<Addr, Arc<Slm<Event>>>,
    model_keys: &BTreeMap<Addr, ModelKey>,
    loaded: &LoadedBinary,
    metric: Metric,
    cache: &DistanceCache<ModelKey>,
    global: Option<&dyn GlobalDistanceStore<ModelKey>>,
    par: Parallelism,
    ctx: TraceCtx<'_>,
) -> usize {
    // Acceptance threshold: the worst distance among already-chosen edges
    // (no edges chosen => nothing to calibrate against; bail out).
    let chosen: Vec<f64> = hierarchy
        .nodes()
        .filter_map(|n| {
            let p = hierarchy.parent_of(n)?;
            distances.get(&(*p, *n)).copied()
        })
        .collect();
    let Some(threshold) = chosen.iter().copied().reduce(f64::max) else {
        return 0;
    };

    let family_of: BTreeMap<Addr, usize> = structural
        .families()
        .iter()
        .enumerate()
        .flat_map(|(i, f)| f.iter().map(move |a| (*a, i)))
        .collect();

    // Phase 1: score every root against the snapshot. Roots come out of
    // the forest in address order and par_map preserves input order, so
    // the proposal list is deterministic.
    let roots: Vec<Addr> = hierarchy.roots().into_iter().copied().collect();
    let scanned = par_map(par, &roots, |&root| {
        let mut spans = ctx.local();
        let token = spans.enter(names::REPARTITION_ROOT, root.value());
        let proposal = scan_root(
            root, hierarchy, &family_of, models, model_keys, loaded, metric, cache, global,
        );
        spans.exit(token);
        // Cross-family edges had no structural support, so require only
        // that they stay within 2x the worst accepted edge.
        (proposal.filter(|&(d, _)| d <= 2.0 * threshold), spans)
    });

    // Phase 2: collect worker spans in input order (merged under one
    // lock at the end — the mutex is a stage-boundary cost, not a
    // per-root one), then apply serially with the ancestry re-check.
    let mut proposals = Vec::new();
    let mut buffers = Vec::new();
    for (&root, (proposal, spans)) in roots.iter().zip(scanned) {
        if !spans.is_empty() {
            buffers.push(spans);
        }
        if let Some((d, parent)) = proposal {
            proposals.push((root, parent, d));
        }
    }
    ctx.merge_many(buffers);
    apply_adoptions(hierarchy, distances, proposals)
}

/// Scores one hierarchy root against every cross-family candidate,
/// returning the best `(distance, parent)` if any survives the filters.
#[allow(clippy::too_many_arguments)]
fn scan_root(
    root: Addr,
    hierarchy: &Forest<Addr>,
    family_of: &BTreeMap<Addr, usize>,
    models: &BTreeMap<Addr, Arc<Slm<Event>>>,
    model_keys: &BTreeMap<Addr, ModelKey>,
    loaded: &LoadedBinary,
    metric: Metric,
    cache: &DistanceCache<ModelKey>,
    global: Option<&dyn GlobalDistanceStore<ModelKey>>,
) -> Option<(f64, Addr)> {
    let root_vt = loaded.vtable_at(root)?;
    // A root whose training faulted has no model to compare with.
    let root_model = models.get(&root)?;
    let root_key = model_keys.get(&root)?;
    let root_family = family_of.get(&root);
    let mut best: Option<(f64, Addr)> = None;
    for cand in loaded.vtables() {
        if family_of.get(&cand.addr()) == root_family {
            continue; // same family: structural phase already decided
        }
        // Rule 1 across families: a parent cannot have more slots.
        if cand.len() > root_vt.len() {
            continue;
        }
        // Cheap prefilter against the snapshot; the authoritative
        // cycle check happens at apply time.
        if hierarchy.successors(&root).contains(&cand.addr()) {
            continue;
        }
        let Some(cand_model) = models.get(&cand.addr()) else {
            continue; // unmodeled candidate: nothing to score
        };
        let Some(cand_key) = model_keys.get(&cand.addr()) else {
            continue;
        };
        let d = cache.distance_via(
            metric,
            (cand_key, &**cand_model),
            (root_key, &**root_model),
            global,
        );
        // Parenthood is asymmetric (§4.2.1): the candidate's behavior
        // should be *contained* in the root's, so encoding parent
        // with child must be cheaper than the reverse.
        let d_rev = cache.distance_via(
            metric,
            (root_key, &**root_model),
            (cand_key, &**cand_model),
            global,
        );
        if d >= d_rev {
            continue;
        }
        if best.map(|(bd, _)| d < bd).unwrap_or(true) {
            best = Some((d, cand.addr()));
        }
    }
    best
}

/// Applies cross-family adoption proposals to the hierarchy, skipping any
/// that would close a cycle.
///
/// Proposals were scored against a snapshot: by the time one is applied,
/// an *earlier* adoption in the same pass may have re-rooted `parent`'s
/// tree underneath `root`, so inserting the edge would create a cycle.
/// The ancestry check therefore runs against the **current** hierarchy
/// immediately before each insert — not against the snapshot.
fn apply_adoptions(
    hierarchy: &mut Forest<Addr>,
    distances: &mut BTreeMap<(Addr, Addr), f64>,
    proposals: impl IntoIterator<Item = (Addr, Addr, f64)>,
) -> usize {
    let mut applied = 0;
    for (root, parent, d) in proposals {
        if root == parent || hierarchy.successors(&root).contains(&parent) {
            continue;
        }
        hierarchy.insert(root, Some(parent));
        distances.insert((parent, root), d);
        applied += 1;
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_graph::{min_spanning_forest, DiGraph};
    use rock_minicpp::{compile, CompileOptions, ProgramBuilder};

    /// The paper's running example (Fig. 3/5): Stream + two children, each
    /// with a distinctive usage pattern, optimized so structure alone
    /// cannot decide FlushableStream's parent (Fig. 6 ambiguity).
    fn streams_optimized() -> (LoadedBinary, rock_minicpp::Compiled) {
        let mut p = ProgramBuilder::new();
        p.class("Stream").method("send", |b| {
            b.ret();
        });
        p.class("ConfirmableStream").base("Stream").method("confirm", |b| {
            b.ret();
        });
        p.class("FlushableStream")
            .base("Stream")
            .method("flush", |b| {
                b.ret();
            })
            .method("close", |b| {
                b.ret();
            });
        // Fig. 5 drivers.
        p.func("useStream", |f| {
            f.new_obj("s", "Stream");
            for _ in 0..3 {
                f.vcall("s", "send", vec![]);
            }
            f.ret();
        });
        p.func("useConfirmableStream", |f| {
            f.new_obj("s", "ConfirmableStream");
            for _ in 0..3 {
                f.vcall("s", "send", vec![]);
                f.vcall("s", "confirm", vec![]);
            }
            f.ret();
        });
        p.func("useFlushableStream", |f| {
            f.new_obj("s", "FlushableStream");
            for _ in 0..3 {
                f.vcall("s", "send", vec![]);
            }
            f.vcall("s", "flush", vec![]);
            f.vcall("s", "close", vec![]);
            f.ret();
        });
        let mut opts = CompileOptions::default();
        opts.inline_parent_ctors = true; // remove the ctor cue
        let compiled = compile(&p.finish(), &opts).unwrap();
        let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
        (loaded, compiled)
    }

    #[test]
    fn reconstructs_fig4_hierarchy() {
        let (loaded, compiled) = streams_optimized();
        let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
        let stream = compiled.vtable_of("Stream").unwrap();
        let confirmable = compiled.vtable_of("ConfirmableStream").unwrap();
        let flushable = compiled.vtable_of("FlushableStream").unwrap();
        // Structure alone leaves FlushableStream ambiguous...
        assert!(recon.possible_parents_of(flushable).len() >= 2);
        // ...but the SLM + arborescence resolves it to Stream (Fig. 6a).
        assert_eq!(recon.parent_of(flushable), Some(stream));
        assert_eq!(recon.parent_of(confirmable), Some(stream));
        assert_eq!(recon.parent_of(stream), None);
    }

    #[test]
    fn fig6_distances_rank_correct_parent_first() {
        let (loaded, compiled) = streams_optimized();
        let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
        let stream = compiled.vtable_of("Stream").unwrap();
        let confirmable = compiled.vtable_of("ConfirmableStream").unwrap();
        let flushable = compiled.vtable_of("FlushableStream").unwrap();
        let d_good = recon.distances[&(stream, flushable)];
        let d_bad = recon.distances[&(confirmable, flushable)];
        assert!(
            d_good < d_bad,
            "D(Stream->Flushable) = {d_good} should beat D(Confirmable->Flushable) = {d_bad}"
        );
    }

    #[test]
    fn display_shows_tree() {
        let (loaded, _) = streams_optimized();
        let recon = Rock::new(RockConfig::default()).reconstruct(&loaded);
        let text = recon.to_string();
        assert!(text.contains("reconstructed hierarchy over 3 types"));
    }

    #[test]
    fn timings_cover_the_run() {
        let (loaded, _) = streams_optimized();
        let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
        let t = recon.timings;
        assert_eq!(t.slm_count, 3);
        assert!(t.slm_nodes > 0 && t.slm_edges > 0 && t.slm_bytes > 0);
        assert!(t.slm_total_words > 0);
        assert!(t.slm_unique_words as u64 <= t.slm_total_words, "dedup can only shrink");
        assert!(t.edge_count >= recon.distances.len());
        assert!(t.threads >= 1);
        assert!(t.total >= t.analysis);
        assert_eq!(t.foreign_candidates, 0);
        // Every lifted edge came through the cache exactly once.
        assert_eq!(t.cache_misses as usize, recon.distances.len());
    }

    #[test]
    fn shared_cache_is_reused_across_runs() {
        let (loaded, _) = streams_optimized();
        let rock = Rock::new(RockConfig::paper());
        let first = rock.reconstruct(&loaded);
        let second = rock.reconstruct(&loaded);
        assert!(first.timings.cache_misses > 0);
        // The second pass finds every pair already cached.
        assert_eq!(second.timings.cache_misses, 0);
        assert_eq!(second.timings.cache_hits, first.timings.cache_misses);
        assert_eq!(first.distances, second.distances);
    }

    /// Regression: a possible-parent candidate outside the family's member
    /// list (as a ctor merge can produce) must be skipped, not `index[..]`
    /// panicked on.
    #[test]
    fn child_candidate_edges_skip_foreign_candidates() {
        let family = [Addr::new(0x1000), Addr::new(0x2000)];
        let foreign = Addr::new(0xdead);
        let index: BTreeMap<Addr, usize> =
            family.iter().enumerate().map(|(i, a)| (*a, i)).collect();
        let mut graph = DiGraph::new(family.len());
        let mut skipped = 0;
        for &child in &family {
            let edges = child_candidate_edges(
                &index,
                child,
                |c| {
                    if c == Addr::new(0x2000) {
                        // One legitimate candidate and one from outside.
                        vec![Addr::new(0x1000), foreign]
                    } else {
                        vec![]
                    }
                },
                |_, _| Some(1.0),
            );
            skipped += edges.foreign;
            assert!(edges.unmodeled.is_empty());
            if child == Addr::new(0x2000) {
                assert_eq!(edges.accepted, vec![(Addr::new(0x1000), Addr::new(0x2000), 1.0)]);
            } else {
                assert!(edges.accepted.is_empty());
            }
            for (parent, child, d) in edges.accepted {
                graph.add_edge(index[&parent], index[&child], d);
            }
        }
        assert_eq!(skipped, 1);
        let parent = min_spanning_forest(&graph).parent;
        assert_eq!(parent, vec![None, Some(0)]);
    }

    #[test]
    fn clean_run_has_empty_diagnostics_and_full_coverage() {
        let (loaded, _) = streams_optimized();
        let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
        assert!(recon.diagnostics.is_empty(), "clean run: {:?}", recon.diagnostics);
        assert!(recon.coverage.is_complete(), "clean run: {:?}", recon.coverage);
        assert_eq!(recon.timings.skipped_functions, 0);
        assert_eq!(recon.timings.fuel_exhausted, 0);
        assert_eq!(recon.timings.rejected_vtables, 0);
        assert_eq!(recon.timings.diagnostics_bytes, 0);
    }

    #[test]
    fn analysis_fault_is_contained_and_recorded() {
        let (loaded, _) = streams_optimized();
        let victim = loaded.functions()[0].entry();
        let plan = Arc::new(FaultPlan::new().panic_on(victim));
        let recon = Rock::new(RockConfig::paper()).with_fault_plan(plan).reconstruct(&loaded);
        assert_eq!(recon.coverage.functions_skipped, 1);
        assert_eq!(recon.timings.skipped_functions, 1);
        let e = recon
            .diagnostics
            .iter()
            .find(|e| e.stage == Stage::Analysis)
            .expect("analysis fault must be recorded");
        assert_eq!(e.subject, Subject::Function(victim));
        assert_eq!(e.severity, Severity::Error);
        assert!(recon.timings.diagnostics_bytes > 0);
        // The rest of the binary is still reconstructed.
        assert_eq!(recon.hierarchy.len(), 3);
    }

    #[test]
    fn training_faults_degrade_types_to_roots() {
        let (loaded, _) = streams_optimized();
        let plan = Arc::new(FaultPlan::new().panic_in(Stage::Training));
        let recon = Rock::new(RockConfig::paper()).with_fault_plan(plan).reconstruct(&loaded);
        // No models trained: every candidate edge is unmodeled, every
        // type degrades to a root — but the run still completes.
        assert_eq!(recon.coverage.models_trained, 0);
        assert!(recon.distances.is_empty());
        assert_eq!(recon.hierarchy.len(), 3);
        for node in recon.hierarchy.nodes() {
            assert_eq!(recon.hierarchy.parent_of(node), None);
        }
        let training_errors =
            recon.diagnostics.iter().filter(|e| e.stage == Stage::Training).count();
        assert_eq!(training_errors, 3, "one error per vtable");
        assert!(recon
            .diagnostics
            .iter()
            .any(|e| e.stage == Stage::Distances && e.kind == FaultKind::MissingModel));
    }

    #[test]
    fn lifting_faults_degrade_families_not_the_run() {
        let (loaded, _) = streams_optimized();
        let plan = Arc::new(FaultPlan::new().panic_in(Stage::Lifting));
        let recon = Rock::new(RockConfig::paper()).with_fault_plan(plan).reconstruct(&loaded);
        assert_eq!(recon.coverage.families_degraded, recon.coverage.families_total);
        assert_eq!(recon.coverage.families_lifted, 0);
        // Distances were still computed; only the arborescence was lost.
        assert!(!recon.distances.is_empty());
        for node in recon.hierarchy.nodes() {
            assert_eq!(recon.hierarchy.parent_of(node), None);
        }
    }

    #[test]
    fn strict_mode_fails_fast_on_the_first_error() {
        let (loaded, _) = streams_optimized();
        let victim = loaded.functions()[0].entry();
        let plan = Arc::new(FaultPlan::new().panic_on(victim));
        let rock = Rock::new(RockConfig::paper().with_strict()).with_fault_plan(plan);
        let err = rock.try_reconstruct(&loaded).expect_err("strict must fail fast");
        assert_eq!(err.stage, Stage::Analysis);
        assert_eq!(err.subject, Subject::Function(victim));
        // Warnings alone do not trip strict mode.
        let skip_plan = Arc::new(FaultPlan::new().skip(victim));
        let rock = Rock::new(RockConfig::paper().with_strict()).with_fault_plan(skip_plan);
        assert!(rock.try_reconstruct(&loaded).is_ok(), "skips are warnings");
    }

    /// Regression for the repartition mutation-order hazard: proposals
    /// scored against a snapshot can, once an earlier adoption lands,
    /// point a root at its own (new) descendant. The apply step must
    /// re-check ancestry against the current hierarchy and keep the
    /// forest acyclic.
    #[test]
    fn apply_adoptions_rechecks_ancestry_against_current_hierarchy() {
        let (a, b) = (Addr::new(0x10), Addr::new(0x20));
        let mut hierarchy: Forest<Addr> = Forest::new();
        hierarchy.insert(a, None);
        hierarchy.insert(b, None);
        let mut distances = BTreeMap::new();
        // Scored against the snapshot (two independent roots), both
        // adoptions look fine; applying both would close the cycle a→b→a.
        let proposals = vec![(a, b, 0.5), (b, a, 0.6)];
        apply_adoptions(&mut hierarchy, &mut distances, proposals);
        assert!(hierarchy.is_acyclic(), "adoption pass must never close a cycle");
        assert_eq!(hierarchy.parent_of(&a), Some(&b));
        assert_eq!(hierarchy.parent_of(&b), None, "second adoption must be rejected");
        assert_eq!(distances.get(&(b, a)), Some(&0.5));
        assert_eq!(distances.get(&(a, b)), None);
        // Self-adoption is rejected outright.
        apply_adoptions(&mut hierarchy, &mut distances, vec![(b, b, 0.1)]);
        assert!(hierarchy.is_acyclic());
        assert_eq!(hierarchy.parent_of(&b), None);
    }
}
