//! The end-to-end reconstruction pipeline.

use std::collections::BTreeMap;
use std::fmt;

use rock_analysis::{extract_tracelets, Analysis, Event};
use rock_binary::Addr;
use rock_graph::{min_spanning_forest, DiGraph, Forest};
use rock_loader::LoadedBinary;
use rock_slm::Slm;
use rock_structural::{analyze, Structural};

use crate::RockConfig;

/// The Rock reconstructor.
///
/// Construct one with a [`RockConfig`] and call [`Rock::reconstruct`] on a
/// loaded (stripped) binary.
#[derive(Clone, Debug, Default)]
pub struct Rock {
    config: RockConfig,
}

/// Everything the pipeline produced for one binary.
#[derive(Clone, Debug)]
pub struct Reconstruction {
    /// The reconstructed hierarchy over binary types (vtable addresses) —
    /// the "With SLMs" result.
    pub hierarchy: Forest<Addr>,
    /// The structural analysis (families + possible parents) — the
    /// "Without SLMs" baseline works directly on this relation.
    pub structural: Structural,
    /// The behavioral analysis output (tracelets + recognized ctors).
    pub analysis: Analysis,
    /// Behavioral distances computed for surviving candidate edges:
    /// `(parent, child) -> distance`.
    pub distances: BTreeMap<(Addr, Addr), f64>,
}

impl Reconstruction {
    /// Convenience: candidate parents of `child` after the structural
    /// phase (the "Without SLMs" relation).
    pub fn possible_parents_of(&self, child: Addr) -> Vec<Addr> {
        self.structural.possible_parents().of(child)
    }

    /// The parent chosen by the full pipeline, if any.
    pub fn parent_of(&self, child: Addr) -> Option<Addr> {
        self.hierarchy.parent_of(&child).copied()
    }

    /// §5.3 multiple inheritance: "if a type inherits from X different
    /// parents, we will observe assignments of X different vtable
    /// pointers … given that we observe X assignments, we will choose the
    /// X most likely parents as the type's parents." Returns, per type,
    /// as many parents as its constructor's vptr-store count indicates
    /// (single-inheritance types keep their one arborescence parent).
    pub fn mi_parents(&self) -> BTreeMap<Addr, Vec<Addr>> {
        let counts = self.structural.vptr_store_counts();
        let mut out = BTreeMap::new();
        for family in self.structural.families() {
            for &child in family {
                let k = counts.get(&child).copied().unwrap_or(1).max(1);
                let parents = self
                    .k_most_likely_parents(k)
                    .remove(&child)
                    .unwrap_or_default();
                out.insert(child, parents);
            }
        }
        out
    }

    /// §6.4 "Applying Control Flow Integrity": assigns up to `k` most
    /// likely parents per type, trading false negatives for false
    /// positives ("our algorithm supports this at the cost of increased
    /// computational complexity, while still polynomial").
    ///
    /// The arborescence-chosen parent always ranks first; further slots
    /// are filled by ascending behavioral distance among the surviving
    /// structural candidates.
    pub fn k_most_likely_parents(&self, k: usize) -> BTreeMap<Addr, Vec<Addr>> {
        let mut out = BTreeMap::new();
        for family in self.structural.families() {
            for &child in family {
                let chosen = self.parent_of(child);
                let mut ranked: Vec<(f64, Addr)> = self
                    .structural
                    .possible_parents()
                    .of(child)
                    .into_iter()
                    .filter(|p| Some(*p) != chosen)
                    .map(|p| {
                        (self.distances.get(&(p, child)).copied().unwrap_or(f64::MAX), p)
                    })
                    .collect();
                ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
                let mut parents: Vec<Addr> = chosen.into_iter().collect();
                parents.extend(ranked.into_iter().map(|(_, p)| p));
                parents.truncate(k);
                out.insert(child, parents);
            }
        }
        out
    }
}

impl fmt::Display for Reconstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "reconstructed hierarchy over {} types:", self.hierarchy.len())?;
        write!(f, "{}", self.hierarchy)
    }
}

impl Rock {
    /// Creates a reconstructor.
    pub fn new(config: RockConfig) -> Self {
        Rock { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &RockConfig {
        &self.config
    }

    /// Runs the full pipeline on a loaded binary.
    pub fn reconstruct(&self, loaded: &LoadedBinary) -> Reconstruction {
        // Behavioral analysis (also recognizes ctor-like functions).
        let analysis = extract_tracelets(loaded, &self.config.analysis);
        // Structural analysis.
        let structural = analyze(loaded, analysis.ctors(), &self.config.analysis);

        // One SLM per binary type.
        let mut models: BTreeMap<Addr, Slm<Event>> = BTreeMap::new();
        for vt in loaded.vtables() {
            let mut m = Slm::new(self.config.analysis.slm_depth);
            for t in analysis.tracelets().of_type(vt.addr()) {
                m.train(t);
            }
            models.insert(vt.addr(), m);
        }

        // Per family: weighted digraph over surviving candidate edges,
        // then a minimum-weight maximal forest.
        let mut hierarchy: Forest<Addr> = Forest::new();
        let mut distances = BTreeMap::new();
        for family in structural.families() {
            let index: BTreeMap<Addr, usize> =
                family.iter().enumerate().map(|(i, a)| (*a, i)).collect();
            let mut graph = DiGraph::new(family.len());
            for &child in family {
                for parent in structural.possible_parents().of(child) {
                    let d = self
                        .config
                        .metric
                        .distance(&models[&parent], &models[&child]);
                    distances.insert((parent, child), d);
                    graph.add_edge(index[&parent], index[&child], d);
                }
            }
            let parent = if self.config.resolve_ties {
                // §4.2.2: several arborescences may share the minimal
                // weight; resolve with the majority-vote heuristic.
                let variants = rock_graph::co_optimal_forests(
                    &graph,
                    self.config.tie_epsilon,
                    self.config.max_tie_variants,
                );
                rock_graph::vote_select(&variants).parent.clone()
            } else {
                min_spanning_forest(&graph).parent
            };
            for (i, p) in parent.iter().enumerate() {
                hierarchy.insert(family[i], p.map(|pi| family[pi]));
            }
        }

        if self.config.repartition_families {
            repartition(
                &mut hierarchy,
                &mut distances,
                &structural,
                &models,
                loaded,
                self.config.metric,
            );
        }

        Reconstruction { hierarchy, structural, analysis, distances }
    }
}

/// Behavioral family repartitioning — the future-work extension the paper
/// sketches in §6.4 ("our current implementation does not attempt to
/// repartition based on usage"): false family *splits* (error source 2 —
/// compiler-omitted structural cues) leave hierarchy roots whose true
/// parent sits in another family. For each root, consider cross-family
/// parents that pass the rule-1 slot check; adopt the best one if its
/// behavioral distance is no worse than the distances of the edges already
/// accepted within families.
fn repartition(
    hierarchy: &mut Forest<Addr>,
    distances: &mut BTreeMap<(Addr, Addr), f64>,
    structural: &rock_structural::Structural,
    models: &BTreeMap<Addr, Slm<Event>>,
    loaded: &LoadedBinary,
    metric: rock_slm::Metric,
) {
    // Acceptance threshold: the worst distance among already-chosen edges
    // (no edges chosen => nothing to calibrate against; bail out).
    let chosen: Vec<f64> = hierarchy
        .nodes()
        .filter_map(|n| {
            let p = hierarchy.parent_of(n)?;
            distances.get(&(*p, *n)).copied()
        })
        .collect();
    let Some(threshold) = chosen.iter().copied().reduce(f64::max) else {
        return;
    };

    let family_of: BTreeMap<Addr, usize> = structural
        .families()
        .iter()
        .enumerate()
        .flat_map(|(i, f)| f.iter().map(move |a| (*a, i)))
        .collect();

    let roots: Vec<Addr> = hierarchy.roots().into_iter().copied().collect();
    for root in roots {
        let Some(root_vt) = loaded.vtable_at(root) else { continue };
        let root_family = family_of.get(&root);
        let mut best: Option<(f64, Addr)> = None;
        for cand in loaded.vtables() {
            if family_of.get(&cand.addr()) == root_family {
                continue; // same family: structural phase already decided
            }
            // Rule 1 across families: a parent cannot have more slots.
            if cand.len() > root_vt.len() {
                continue;
            }
            // No cycles: the candidate must not descend from this root.
            if hierarchy.successors(&root).contains(&cand.addr()) {
                continue;
            }
            let d = metric.distance(&models[&cand.addr()], &models[&root]);
            // Parenthood is asymmetric (§4.2.1): the candidate's behavior
            // should be *contained* in the root's, so encoding parent
            // with child must be cheaper than the reverse.
            let d_rev = metric.distance(&models[&root], &models[&cand.addr()]);
            if d >= d_rev {
                continue;
            }
            if best.map(|(bd, _)| d < bd).unwrap_or(true) {
                best = Some((d, cand.addr()));
            }
        }
        if let Some((d, parent)) = best {
            // Cross-family edges had no structural support, so require
            // only that they stay within 2x the worst accepted edge.
            if d <= 2.0 * threshold {
                hierarchy.insert(root, Some(parent));
                distances.insert((parent, root), d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_minicpp::{compile, CompileOptions, ProgramBuilder};

    /// The paper's running example (Fig. 3/5): Stream + two children, each
    /// with a distinctive usage pattern, optimized so structure alone
    /// cannot decide FlushableStream's parent (Fig. 6 ambiguity).
    fn streams_optimized() -> (LoadedBinary, rock_minicpp::Compiled) {
        let mut p = ProgramBuilder::new();
        p.class("Stream").method("send", |b| {
            b.ret();
        });
        p.class("ConfirmableStream").base("Stream").method("confirm", |b| {
            b.ret();
        });
        p.class("FlushableStream")
            .base("Stream")
            .method("flush", |b| {
                b.ret();
            })
            .method("close", |b| {
                b.ret();
            });
        // Fig. 5 drivers.
        p.func("useStream", |f| {
            f.new_obj("s", "Stream");
            for _ in 0..3 {
                f.vcall("s", "send", vec![]);
            }
            f.ret();
        });
        p.func("useConfirmableStream", |f| {
            f.new_obj("s", "ConfirmableStream");
            for _ in 0..3 {
                f.vcall("s", "send", vec![]);
                f.vcall("s", "confirm", vec![]);
            }
            f.ret();
        });
        p.func("useFlushableStream", |f| {
            f.new_obj("s", "FlushableStream");
            for _ in 0..3 {
                f.vcall("s", "send", vec![]);
            }
            f.vcall("s", "flush", vec![]);
            f.vcall("s", "close", vec![]);
            f.ret();
        });
        let mut opts = CompileOptions::default();
        opts.inline_parent_ctors = true; // remove the ctor cue
        let compiled = compile(&p.finish(), &opts).unwrap();
        let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
        (loaded, compiled)
    }

    #[test]
    fn reconstructs_fig4_hierarchy() {
        let (loaded, compiled) = streams_optimized();
        let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
        let stream = compiled.vtable_of("Stream").unwrap();
        let confirmable = compiled.vtable_of("ConfirmableStream").unwrap();
        let flushable = compiled.vtable_of("FlushableStream").unwrap();
        // Structure alone leaves FlushableStream ambiguous...
        assert!(recon.possible_parents_of(flushable).len() >= 2);
        // ...but the SLM + arborescence resolves it to Stream (Fig. 6a).
        assert_eq!(recon.parent_of(flushable), Some(stream));
        assert_eq!(recon.parent_of(confirmable), Some(stream));
        assert_eq!(recon.parent_of(stream), None);
    }

    #[test]
    fn fig6_distances_rank_correct_parent_first() {
        let (loaded, compiled) = streams_optimized();
        let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
        let stream = compiled.vtable_of("Stream").unwrap();
        let confirmable = compiled.vtable_of("ConfirmableStream").unwrap();
        let flushable = compiled.vtable_of("FlushableStream").unwrap();
        let d_good = recon.distances[&(stream, flushable)];
        let d_bad = recon.distances[&(confirmable, flushable)];
        assert!(
            d_good < d_bad,
            "D(Stream->Flushable) = {d_good} should beat D(Confirmable->Flushable) = {d_bad}"
        );
    }

    #[test]
    fn display_shows_tree() {
        let (loaded, _) = streams_optimized();
        let recon = Rock::new(RockConfig::default()).reconstruct(&loaded);
        let text = recon.to_string();
        assert!(text.contains("reconstructed hierarchy over 3 types"));
    }
}
