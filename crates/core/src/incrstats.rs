//! Plain counters describing incremental sub-artifact activity.
//!
//! The incremental persistence layer lives in `rock-supervisor` (its
//! `incr` module); the counter struct lives here (mirroring
//! [`crate::CorpusStats`] and [`crate::StoreStats`]) so that
//! [`crate::StageTimings`] can absorb incremental deltas without a
//! circular crate dependency.

/// Counters for one incremental preload/flush cycle.
///
/// Like store counters, these are observability only: they ride in
/// timings, metrics documents, and report lines, but never enter the
/// pipeline's own registry or diagnostics — an incremental run stays
/// byte-identical to a cold run everywhere that matters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrStats {
    /// Sub-artifacts restored into the corpus cache at preload.
    pub preloaded: u64,
    /// Sub-artifacts newly written to disk at flush.
    pub flushed: u64,
    /// Sub-artifacts already on disk and skipped at flush.
    pub unchanged: u64,
    /// Sub-artifacts rejected at preload (bad frame, failed checksum,
    /// or a payload that does not reproduce its own key) — each one
    /// simply recomputes.
    pub corrupt_skipped: u64,
    /// Sub-artifact reads or writes abandoned on an i/o error.
    pub io_errors: u64,
}

impl IncrStats {
    /// Component-wise accumulation (preload + flush phases).
    pub fn add(&mut self, other: &IncrStats) {
        self.preloaded += other.preloaded;
        self.flushed += other.flushed;
        self.unchanged += other.unchanged;
        self.corrupt_skipped += other.corrupt_skipped;
        self.io_errors += other.io_errors;
    }

    /// True when any counter is non-zero.
    pub fn has_activity(&self) -> bool {
        *self != IncrStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_componentwise() {
        let mut a = IncrStats { preloaded: 3, flushed: 1, ..Default::default() };
        a.add(&IncrStats { preloaded: 2, corrupt_skipped: 1, ..Default::default() });
        assert_eq!(
            a,
            IncrStats { preloaded: 5, flushed: 1, corrupt_skipped: 1, ..Default::default() }
        );
    }

    #[test]
    fn activity_gate() {
        assert!(!IncrStats::default().has_activity());
        assert!(IncrStats { preloaded: 1, ..Default::default() }.has_activity());
        assert!(IncrStats { io_errors: 1, ..Default::default() }.has_activity());
    }
}
