//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] decides — purely from its seed and the identity of
//! each work item — which functions panic, get skipped, or run with a
//! starved fuel budget, and which stage items fault mid-pipeline. No
//! wall-clock or OS randomness is consulted, so the same plan on the
//! same binary produces bit-identical reconstructions whatever the
//! thread count, and a failing seed replays exactly.

use std::collections::{BTreeMap, BTreeSet};

use rock_analysis::{AnalysisHooks, Budget, FunctionDirective};
use rock_binary::Addr;

use crate::diagnostics::Stage;
use crate::staged::StageId;

/// SplitMix64 finalizer: a strong 64-bit mix used to derive per-item
/// decisions from the plan seed.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic plan of injected faults.
///
/// Explicit directives (built with [`FaultPlan::panic_on`] and friends)
/// always win; on top of them, [`FaultPlan::seeded`] makes every
/// `(stage, item)` pair independently fault with a fixed per-mille
/// probability derived from the seed.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rate_per_mille: u32,
    panic_functions: BTreeSet<Addr>,
    skip_functions: BTreeSet<Addr>,
    starved_functions: BTreeMap<Addr, u64>,
    panic_stages: BTreeSet<Stage>,
    interrupt_after: BTreeSet<StageId>,
    fail_attempts: u32,
}

impl FaultPlan {
    /// An explicit plan with no seeded faults.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A plan where every `(stage, item)` pair independently faults with
    /// probability `rate_per_mille / 1000` (clamped to 1000), decided by
    /// hashing the seed with the item's identity.
    pub fn seeded(seed: u64, rate_per_mille: u32) -> Self {
        FaultPlan { seed, rate_per_mille: rate_per_mille.min(1000), ..FaultPlan::default() }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Makes the behavioral analysis of `function` panic (contained).
    pub fn panic_on(mut self, function: Addr) -> Self {
        self.panic_functions.insert(function);
        self
    }

    /// Makes the behavioral analysis skip `function`.
    pub fn skip(mut self, function: Addr) -> Self {
        self.skip_functions.insert(function);
        self
    }

    /// Runs `function` with a starved fuel budget of `steps`.
    pub fn starve(mut self, function: Addr, steps: u64) -> Self {
        self.starved_functions.insert(function, steps);
        self
    }

    /// Makes every item of `stage` panic (contained). Only the parallel
    /// stages — [`Stage::Training`], [`Stage::Distances`],
    /// [`Stage::Lifting`] — honor stage-wide panics; function-level
    /// faults go through the [`AnalysisHooks`] implementation.
    pub fn panic_in(mut self, stage: Stage) -> Self {
        self.panic_stages.insert(stage);
        self
    }

    /// Interrupts a supervised run right after `stage` completes (and
    /// after its checkpoint is written), simulating a crash / kill at
    /// that boundary. Drives the resume property tests: a run
    /// interrupted after any stage and then resumed must reproduce the
    /// uninterrupted result bit for bit.
    pub fn interrupt_after(mut self, stage: StageId) -> Self {
        self.interrupt_after.insert(stage);
        self
    }

    /// Whether a supervised run should stop at the boundary after
    /// `stage`. Honored by the supervisor's checkpoint loop, not by the
    /// in-process pipeline (a direct `reconstruct` ignores it).
    pub fn should_interrupt_after(&self, stage: StageId) -> bool {
        self.interrupt_after.contains(&stage)
    }

    /// Makes the first `count` supervised pipeline attempts panic
    /// outright (an *uncontained* fault, unlike [`FaultPlan::panic_on`]),
    /// driving the supervisor's retry ladder deterministically: attempt
    /// `count` is the first one allowed to run.
    pub fn fail_attempts(mut self, count: u32) -> Self {
        self.fail_attempts = count;
        self
    }

    /// Whether 0-based supervised attempt `attempt` should panic before
    /// doing any work. Honored by the supervisor, not by a direct
    /// `reconstruct`.
    pub fn should_fail_attempt(&self, attempt: u32) -> bool {
        attempt < self.fail_attempts
    }

    /// One deterministic 64-bit draw for `(stage, key)`.
    fn draw(&self, stage: Stage, key: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64((stage as u64) << 32 ^ key))
    }

    /// Whether a seeded fault hits `(stage, key)`.
    fn seeded_hit(&self, stage: Stage, key: u64) -> bool {
        self.rate_per_mille > 0 && self.draw(stage, key) % 1000 < u64::from(self.rate_per_mille)
    }

    /// Whether the item identified by `key` should panic inside `stage`.
    pub fn should_panic_in(&self, stage: Stage, key: u64) -> bool {
        self.panic_stages.contains(&stage) || self.seeded_hit(stage, key)
    }

    /// XORs `count` seeded byte positions of `bytes` with seeded values,
    /// returning the mutated positions. Structure-oblivious corruption
    /// for loader-robustness tests.
    pub fn corrupt(&self, bytes: &mut [u8], count: usize) -> Vec<usize> {
        if bytes.is_empty() {
            return Vec::new();
        }
        let mut positions = Vec::with_capacity(count);
        for i in 0..count {
            let r = splitmix64(self.seed ^ splitmix64(0xC0FF_EE00 ^ i as u64));
            let pos = (r % bytes.len() as u64) as usize;
            // Never XOR with 0: every listed position really changes.
            bytes[pos] ^= ((r >> 32) as u8) | 1;
            positions.push(pos);
        }
        positions
    }
}

impl AnalysisHooks for FaultPlan {
    fn before_function(&self, function: Addr) -> FunctionDirective {
        if self.panic_functions.contains(&function) {
            return FunctionDirective::Panic;
        }
        if self.skip_functions.contains(&function) {
            return FunctionDirective::Skip;
        }
        if let Some(&steps) = self.starved_functions.get(&function) {
            return FunctionDirective::Fuel(Budget::steps(steps));
        }
        if self.seeded_hit(Stage::Analysis, function.value()) {
            // A second independent draw picks the fault flavor.
            return match self.draw(Stage::Analysis, !function.value()) % 3 {
                0 => FunctionDirective::Panic,
                1 => FunctionDirective::Skip,
                _ => FunctionDirective::Fuel(Budget::steps(2)),
            };
        }
        FunctionDirective::Run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_directives_win() {
        let plan = FaultPlan::new()
            .panic_on(Addr::new(0x10))
            .skip(Addr::new(0x20))
            .starve(Addr::new(0x30), 5);
        assert_eq!(plan.before_function(Addr::new(0x10)), FunctionDirective::Panic);
        assert_eq!(plan.before_function(Addr::new(0x20)), FunctionDirective::Skip);
        assert_eq!(
            plan.before_function(Addr::new(0x30)),
            FunctionDirective::Fuel(Budget::steps(5))
        );
        assert_eq!(plan.before_function(Addr::new(0x40)), FunctionDirective::Run);
    }

    #[test]
    fn seeded_decisions_are_deterministic() {
        let a = FaultPlan::seeded(7, 500);
        let b = FaultPlan::seeded(7, 500);
        for addr in 0..256u64 {
            assert_eq!(
                a.before_function(Addr::new(addr)),
                b.before_function(Addr::new(addr)),
                "seeded plans must agree at {addr:#x}"
            );
            assert_eq!(
                a.should_panic_in(Stage::Training, addr),
                b.should_panic_in(Stage::Training, addr)
            );
        }
        assert_eq!(a.seed(), 7);
    }

    #[test]
    fn seeded_rate_roughly_holds() {
        let plan = FaultPlan::seeded(3, 500);
        let hits = (0..1000u64).filter(|&k| plan.seeded_hit(Stage::Analysis, k)).count();
        assert!((300..700).contains(&hits), "~50% expected, got {hits}/1000");
        let never = FaultPlan::seeded(3, 0);
        assert!((0..1000u64).all(|k| !never.seeded_hit(Stage::Analysis, k)));
        let always = FaultPlan::seeded(3, 5000); // clamped to 1000
        assert!((0..1000u64).all(|k| always.seeded_hit(Stage::Analysis, k)));
    }

    #[test]
    fn stage_panics_are_per_stage() {
        let plan = FaultPlan::new().panic_in(Stage::Training);
        assert!(plan.should_panic_in(Stage::Training, 0));
        assert!(!plan.should_panic_in(Stage::Lifting, 0));
    }

    #[test]
    fn interrupts_are_per_boundary_and_inert_by_default() {
        let plan = FaultPlan::new().interrupt_after(StageId::Training);
        assert!(plan.should_interrupt_after(StageId::Training));
        assert!(!plan.should_interrupt_after(StageId::Analysis));
        assert!(!FaultPlan::seeded(9, 500).should_interrupt_after(StageId::Lifting));
    }

    #[test]
    fn attempt_failures_count_down_then_stop() {
        let plan = FaultPlan::new().fail_attempts(2);
        assert!(plan.should_fail_attempt(0));
        assert!(plan.should_fail_attempt(1));
        assert!(!plan.should_fail_attempt(2));
        assert!(!FaultPlan::new().should_fail_attempt(0));
    }

    #[test]
    fn corruption_mutates_listed_positions() {
        let plan = FaultPlan::seeded(11, 0);
        let clean = vec![0u8; 64];
        let mut dirty = clean.clone();
        let positions = plan.corrupt(&mut dirty, 8);
        assert_eq!(positions.len(), 8);
        for &p in &positions {
            assert_ne!(dirty[p], clean[p], "position {p} must change");
        }
        // Deterministic: same plan, same mutations.
        let mut again = clean.clone();
        assert_eq!(plan.corrupt(&mut again, 8), positions);
        assert_eq!(again, dirty);
        // Empty input is a no-op.
        assert!(plan.corrupt(&mut [], 4).is_empty());
    }
}
